"""Euclidean projections onto L1 balls and the probability simplex.

Algorithm 2 of the paper (Nesterov's projected gradient) repeatedly projects
the candidate matrix ``L`` onto the feasible set

    { L : sum_i |L_ij| <= 1  for every column j }          (Formula 11)

which decouples into one L1-ball projection per column. We implement the
classic O(d log d) sort-based algorithm of Duchi, Shalev-Shwartz, Singer and
Chandra (ICML 2008, reference [10] in the paper), both for single vectors and
vectorised across all columns of a matrix at once.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.validation import as_matrix, as_vector, check_positive

__all__ = [
    "project_simplex",
    "project_l1_ball",
    "project_columns_l1",
    "project_columns_l2",
    "l1_ball_distance",
]


def project_simplex(v, radius=1.0):
    """Project ``v`` onto the simplex ``{ w : w >= 0, sum(w) = radius }``.

    Uses the sort-and-threshold characterisation: the projection is
    ``max(v - theta, 0)`` where ``theta`` is chosen so the result sums to
    ``radius``.
    """
    v = as_vector(v, "v")
    radius = check_positive(radius, "radius")
    u = np.sort(v)[::-1]
    css = np.cumsum(u) - radius
    indices = np.arange(1, v.size + 1)
    cond = u - css / indices > 0
    if not np.any(cond):
        # Degenerate: all mass goes to the single largest coordinate.
        rho = 1
    else:
        rho = indices[cond][-1]
    theta = css[rho - 1] / rho
    return np.maximum(v - theta, 0.0)


def project_l1_ball(v, radius=1.0):
    """Project ``v`` onto the L1 ball ``{ w : ||w||_1 <= radius }``.

    If ``v`` is already inside the ball it is returned unchanged (as a copy).
    Otherwise the projection is ``sign(v) * project_simplex(|v|)``.
    """
    v = as_vector(v, "v")
    radius = check_positive(radius, "radius")
    if np.abs(v).sum() <= radius:
        return v.copy()
    w = project_simplex(np.abs(v), radius)
    return np.sign(v) * w


#: Cached index vectors keyed by matrix shape — the solver hot loop calls
#: the projection tens of thousands of times on identically-shaped iterates.
_INDEX_CACHE = {}


def _shape_indices(r, n):
    cached = _INDEX_CACHE.get((r, n))
    if cached is None:
        cached = (np.arange(r - 1, -1, -1, dtype=np.float64), np.arange(n))
        _INDEX_CACHE[(r, n)] = cached
    return cached


def _project_columns_l1_core(matrix, radius=1.0):
    """Validation-free core of :func:`project_columns_l1` (hot loop).

    Branch-free vectorised Duchi et al.: compute the soft threshold
    ``theta`` for every column at once and clamp it at zero. Columns
    already inside the ball produce ``theta <= 0``, so the clamp leaves
    them bit-for-bit untouched — no inside/outside gather needed. The
    sort and prefix scan run in transposed layout, rewritten in ascending
    index space ``j = r-1-k`` so every pass walks contiguous memory:
    the classic rule on the descending order ``u_0 >= u_1 >= ...``,

        rho   = max{k : u_k (k+1) > (sum_{i<=k} u_i) - radius},
        theta = (sum_{k<=rho} u_k - radius) / (rho + 1),

    becomes ``cond_j = a_j (r-1-j) > above_j - radius`` with
    ``above_j = sum_{i>j} a_i`` and ``rho + 1 = r - j*``, ``j*`` the first
    true index (always exists: at ``j = r-1`` the condition is
    ``0 > -radius``).
    """
    r, n = matrix.shape
    coef, rows = _shape_indices(r, n)
    asc = np.empty((n, r))
    np.abs(matrix.T, out=asc)
    asc.sort(axis=1)
    above = asc.cumsum(axis=1)
    np.subtract(above[:, -1:], above, out=above)
    above -= radius
    cond = asc * coef > above
    first = cond.argmax(axis=1)
    theta = above[rows, first] + asc[rows, first]
    theta /= r - first
    np.maximum(theta, 0.0, out=theta)
    # Soft-threshold by theta without an abs/sign round trip:
    # shrink(x) = x - clip(x, -theta, theta), two array passes total.
    clipped = np.clip(matrix, -theta[None, :], theta[None, :])
    np.subtract(matrix, clipped, out=clipped)
    return clipped


def project_columns_l1(matrix, radius=1.0):
    """Project every column of ``matrix`` onto the L1 ball of ``radius``.

    This is the feasible-set projection of Formula (11), vectorised so that
    all columns are processed with a single sort. Columns already inside the
    ball are left untouched.

    Parameters
    ----------
    matrix:
        Array of shape (r, n); the feasibility constraint applies per column.
    radius:
        L1 budget per column (1.0 in the paper, fixing sensitivity to 1).

    Returns
    -------
    numpy.ndarray
        Array of the same shape whose columns all satisfy
        ``sum_i |L_ij| <= radius`` (up to float rounding).
    """
    matrix = as_matrix(matrix, "matrix")
    radius = check_positive(radius, "radius")
    return _project_columns_l1_core(matrix, radius)


def _project_columns_l2_core(matrix, radius=1.0):
    """Validation-free core of :func:`project_columns_l2` (hot loop)."""
    norms = np.sqrt(np.einsum("ij,ij->j", matrix, matrix))
    scale = np.ones_like(norms)
    outside = norms > radius
    scale[outside] = radius / norms[outside]
    return matrix * scale[None, :]


def project_columns_l2(matrix, radius=1.0):
    """Project every column of ``matrix`` onto the L2 ball of ``radius``.

    The L2 feasible set of the Gaussian / (eps, delta)-DP variant of the
    decomposition program: each column is simply rescaled onto the sphere
    when it lies outside. Columns inside the ball are untouched.
    """
    matrix = as_matrix(matrix, "matrix")
    radius = check_positive(radius, "radius")
    return _project_columns_l2_core(matrix, radius)


def l1_ball_distance(matrix, radius=1.0):
    """Frobenius distance from ``matrix`` to the per-column L1 feasible set.

    Zero iff every column already satisfies the constraint; useful as a
    feasibility diagnostic in tests and convergence checks.
    """
    matrix = as_matrix(matrix, "matrix")
    projected = project_columns_l1(matrix, radius)
    return float(np.linalg.norm(matrix - projected))
