"""Euclidean projections onto L1 balls and the probability simplex.

Algorithm 2 of the paper (Nesterov's projected gradient) repeatedly projects
the candidate matrix ``L`` onto the feasible set

    { L : sum_i |L_ij| <= 1  for every column j }          (Formula 11)

which decouples into one L1-ball projection per column. We implement the
classic O(d log d) sort-based algorithm of Duchi, Shalev-Shwartz, Singer and
Chandra (ICML 2008, reference [10] in the paper), both for single vectors and
vectorised across all columns of a matrix at once.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.validation import as_matrix, as_vector, check_positive

__all__ = [
    "project_simplex",
    "project_l1_ball",
    "project_columns_l1",
    "project_columns_l2",
    "l1_ball_distance",
]


def project_simplex(v, radius=1.0):
    """Project ``v`` onto the simplex ``{ w : w >= 0, sum(w) = radius }``.

    Uses the sort-and-threshold characterisation: the projection is
    ``max(v - theta, 0)`` where ``theta`` is chosen so the result sums to
    ``radius``.
    """
    v = as_vector(v, "v")
    radius = check_positive(radius, "radius")
    u = np.sort(v)[::-1]
    css = np.cumsum(u) - radius
    indices = np.arange(1, v.size + 1)
    cond = u - css / indices > 0
    if not np.any(cond):
        # Degenerate: all mass goes to the single largest coordinate.
        rho = 1
    else:
        rho = indices[cond][-1]
    theta = css[rho - 1] / rho
    return np.maximum(v - theta, 0.0)


def project_l1_ball(v, radius=1.0):
    """Project ``v`` onto the L1 ball ``{ w : ||w||_1 <= radius }``.

    If ``v`` is already inside the ball it is returned unchanged (as a copy).
    Otherwise the projection is ``sign(v) * project_simplex(|v|)``.
    """
    v = as_vector(v, "v")
    radius = check_positive(radius, "radius")
    if np.abs(v).sum() <= radius:
        return v.copy()
    w = project_simplex(np.abs(v), radius)
    return np.sign(v) * w


def project_columns_l1(matrix, radius=1.0):
    """Project every column of ``matrix`` onto the L1 ball of ``radius``.

    This is the feasible-set projection of Formula (11), vectorised so that
    all columns are processed with a single sort. Columns already inside the
    ball are left untouched.

    Parameters
    ----------
    matrix:
        Array of shape (r, n); the feasibility constraint applies per column.
    radius:
        L1 budget per column (1.0 in the paper, fixing sensitivity to 1).

    Returns
    -------
    numpy.ndarray
        Array of the same shape whose columns all satisfy
        ``sum_i |L_ij| <= radius`` (up to float rounding).
    """
    matrix = as_matrix(matrix, "matrix")
    radius = check_positive(radius, "radius")
    r, n = matrix.shape

    abs_m = np.abs(matrix)
    norms = abs_m.sum(axis=0)
    outside = norms > radius
    if not np.any(outside):
        return matrix.copy()

    result = matrix.copy()
    sub = abs_m[:, outside]
    # Sorted descending along each column.
    u = -np.sort(-sub, axis=0)
    css = np.cumsum(u, axis=0) - radius
    indices = np.arange(1, r + 1, dtype=np.float64)[:, None]
    cond = u - css / indices > 0
    # rho = largest index where cond holds; cond always holds at index 0
    # for columns outside the ball (u[0] > radius/1 >= ... wait: u[0] - (u[0]-radius) = radius > 0).
    rho = cond.shape[0] - 1 - np.argmax(cond[::-1, :], axis=0)
    theta = np.take_along_axis(css, rho[None, :], axis=0).ravel() / (rho + 1)
    projected = np.maximum(sub - theta[None, :], 0.0) * np.sign(matrix[:, outside])
    result[:, outside] = projected
    return result


def project_columns_l2(matrix, radius=1.0):
    """Project every column of ``matrix`` onto the L2 ball of ``radius``.

    The L2 feasible set of the Gaussian / (eps, delta)-DP variant of the
    decomposition program: each column is simply rescaled onto the sphere
    when it lies outside. Columns inside the ball are untouched.
    """
    matrix = as_matrix(matrix, "matrix")
    radius = check_positive(radius, "radius")
    norms = np.sqrt(np.sum(matrix**2, axis=0))
    scale = np.ones_like(norms)
    outside = norms > radius
    scale[outside] = radius / norms[outside]
    return matrix * scale[None, :]


def l1_ball_distance(matrix, radius=1.0):
    """Frobenius distance from ``matrix`` to the per-column L1 feasible set.

    Zero iff every column already satisfies the constraint; useful as a
    feasibility diagnostic in tests and convergence checks.
    """
    matrix = as_matrix(matrix, "matrix")
    projected = project_columns_l1(matrix, radius)
    return float(np.linalg.norm(matrix - projected))
