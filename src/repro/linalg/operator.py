"""Implicit workload operators: ``W`` as actions, never as an array.

The batch answer ``W x`` and every quantity the Low-Rank Mechanism's fit
needs — products ``W v`` / ``W^T u``, the Gram action ``W W^T u``, column
L1 norms for the sensitivity ``Delta(W)`` — are *actions* of the workload,
not reads of its entries. Structured workload families (prefix sums, range
queries, sliding windows, marginals, Kronecker products) admit closed-form
actions costing ``O(m + n)`` instead of ``O(m n)``, which is what lets the
package fit and serve domains (n = 65,536 and beyond) whose dense ``m x n``
matrix could not even be allocated.

:class:`WorkloadOperator` is the protocol; the concrete backends are

* :class:`DenseOperator` — a plain ndarray (the compatibility wrapper);
* :class:`SparseOperator` — a scipy CSR matrix;
* :class:`IntervalOperator` — rows are contiguous 0/1 ranges ``[lo, hi]``
  (prefix, all-range, sliding-window, random-range workloads), applied with
  cumulative-sum / difference-array tricks in ``O(m + n)``;
* :class:`MarginalOperator` — row and column marginals of a grid domain;
* :class:`KronOperator` — a lazy Kronecker product ``W1 (x) W2`` applied
  factor-wise via ``(A (x) C) x = vec(A X C^T)``;
* :class:`ScaledOperator` — ``alpha * base`` without touching the base.

``to_dense`` is the explicit escape hatch back to an array; callers that
reach for it on a large domain get a clear error from
:class:`repro.workloads.Workload`'s guarded ``.matrix`` instead of an
out-of-memory crash.

Identity is content-based: every operator exposes a canonical
``descriptor()`` (family tag, shape, and the defining integer/float
payload) and :func:`descriptor_digest` hashes it — the substrate for
``Workload.content_digest`` on implicit workloads, stable across processes
without materialising anything.
"""

from __future__ import annotations

import abc
import hashlib

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.linalg.validation import as_vector, check_positive_int

__all__ = [
    "WorkloadOperator",
    "DenseOperator",
    "SparseOperator",
    "IntervalOperator",
    "MarginalOperator",
    "KronOperator",
    "ScaledOperator",
    "as_operator",
    "descriptor_digest",
    "operator_spec",
    "operator_from_spec",
]


def descriptor_digest(descriptor):
    """SHA-1 hex digest of a canonical operator descriptor.

    Descriptors are nested tuples of strings, ints, floats and ``bytes``;
    the digest walks the structure with explicit type/length framing so two
    different descriptors can never collide by concatenation.
    """
    digest = hashlib.sha1()

    def _update(item):
        if isinstance(item, tuple):
            digest.update(b"(")
            for member in item:
                _update(member)
            digest.update(b")")
        elif isinstance(item, bytes):
            digest.update(b"b%d:" % len(item))
            digest.update(item)
        elif isinstance(item, str):
            encoded = item.encode()
            digest.update(b"s%d:" % len(encoded))
            digest.update(encoded)
        elif isinstance(item, (int, np.integer)):
            digest.update(b"i%d;" % int(item))
        elif isinstance(item, (float, np.floating)):
            digest.update(b"f" + repr(float(item)).encode() + b";")
        else:  # pragma: no cover - descriptors are built by this module
            raise ValidationError(
                f"unsupported descriptor element {type(item).__name__}"
            )

    _update(descriptor)
    return digest.hexdigest()


class WorkloadOperator(abc.ABC):
    """Protocol for an implicit ``m x n`` workload matrix.

    Subclasses implement the actions; everything downstream (the
    :class:`repro.workloads.Workload` facade, the matvec-driven randomized
    SVD, the sensitivity computation, release operators) consumes only this
    interface, so a workload family joins the large-domain regime by
    implementing one class here.
    """

    #: ``(m, n)`` — set by subclass constructors.
    shape = (0, 0)
    #: Family tag (first element of the descriptor), e.g. ``"interval"``.
    kind = "operator"

    # ------------------------------------------------------------------ #
    # Core actions
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def matvec(self, x):
        """``W x`` for a length-``n`` vector."""

    @abc.abstractmethod
    def rmatvec(self, u):
        """``W^T u`` for a length-``m`` vector."""

    def matmat(self, x):
        """``W X`` for an ``(n, k)`` block; default loops :meth:`matvec`."""
        x = np.asarray(x, dtype=np.float64)
        return np.stack([self.matvec(x[:, j]) for j in range(x.shape[1])], axis=1)

    def rmatmat(self, u):
        """``W^T U`` for an ``(m, k)`` block; default loops :meth:`rmatvec`."""
        u = np.asarray(u, dtype=np.float64)
        return np.stack([self.rmatvec(u[:, j]) for j in range(u.shape[1])], axis=1)

    def gram(self, u):
        """Gram action ``(W W^T) u`` — the kernel of power iteration and
        range-finder sketches on ``W W^T``. Accepts a vector or an
        ``(m, k)`` block."""
        u = np.asarray(u, dtype=np.float64)
        if u.ndim == 1:
            return self.matvec(self.rmatvec(u))
        return self.matmat(self.rmatmat(u))

    # ------------------------------------------------------------------ #
    # Closed-form scalars
    # ------------------------------------------------------------------ #
    def column_abs_sums(self):
        """Per-column L1 norms ``sum_i |W_ij|`` — the L1 sensitivity
        profile (Definition 2). Subclasses override with their closed form
        (e.g. interval coverage counts via one ``rmatvec`` of ones); this
        base fallback materialises, because ``rmatvec`` alone cannot take
        absolute values of entries it never sees."""
        return np.abs(self.to_dense()).sum(axis=0)

    def column_sq_sums(self):
        """Per-column squared L2 norms ``sum_i W_ij^2`` (the Gaussian /
        L2-sensitivity profile)."""
        dense = self.to_dense()
        return np.sum(dense * dense, axis=0)

    def frobenius_squared(self):
        """``||W||_F^2``; default derives it from :meth:`column_sq_sums`."""
        return float(np.sum(self.column_sq_sums()))

    # ------------------------------------------------------------------ #
    # Identity and materialisation
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def descriptor(self):
        """Canonical content description: a nested tuple of primitives
        (family tag first) that uniquely determines the matrix entries.
        Provenance (names, generation seeds) stays out — two operators of
        the **same family** with the same entries must produce the same
        descriptor. Across families the descriptor deliberately differs
        even for identical entries (an :class:`IntervalOperator` prefix and
        a :class:`DenseOperator` holding the same 0/1 matrix hash apart):
        representation is part of identity, matching
        ``Workload.__eq__``'s digest-based contract."""

    def content_digest(self):
        """Process-stable SHA-1 digest of :meth:`descriptor`."""
        return descriptor_digest(self.descriptor())

    def to_dense(self):
        """Materialise the full ``m x n`` array — the explicit escape
        hatch. Costs ``O(m n)`` memory; large-domain callers should stay on
        the actions. Default: apply to the identity block-wise."""
        m, n = self.shape
        return self.matmat(np.eye(n))

    def __repr__(self):
        return f"{type(self).__name__}(shape={self.shape})"


def as_operator(value):
    """Coerce a dense array / sparse matrix / operator to a
    :class:`WorkloadOperator`."""
    if isinstance(value, WorkloadOperator):
        return value
    if sp.issparse(value):
        return SparseOperator(value)
    return DenseOperator(value)


class DenseOperator(WorkloadOperator):
    """Compatibility wrapper presenting a dense array as an operator."""

    kind = "dense"

    def __init__(self, matrix):
        from repro.linalg.validation import as_matrix

        self._matrix = as_matrix(matrix, "matrix")
        # Freeze, as the dense Workload path does: a later in-place edit
        # would silently invalidate memoized digests (the plan-cache keys).
        self._matrix.setflags(write=False)
        self.shape = self._matrix.shape

    def matvec(self, x):
        return self._matrix @ x

    def rmatvec(self, u):
        return self._matrix.T @ u

    def matmat(self, x):
        return self._matrix @ x

    def rmatmat(self, u):
        return self._matrix.T @ u

    def column_abs_sums(self):
        return np.abs(self._matrix).sum(axis=0)

    def column_sq_sums(self):
        return np.sum(self._matrix * self._matrix, axis=0)

    def descriptor(self):
        return (
            "dense",
            int(self.shape[0]),
            int(self.shape[1]),
            np.ascontiguousarray(self._matrix).tobytes(),
        )

    def to_dense(self):
        return self._matrix


class SparseOperator(WorkloadOperator):
    """A scipy CSR matrix as a workload operator."""

    kind = "sparse"

    def __init__(self, matrix):
        if not sp.issparse(matrix):
            raise ValidationError("SparseOperator expects a scipy sparse matrix")
        csr = matrix.tocsr().astype(np.float64)
        if csr.shape[0] == 0 or csr.shape[1] == 0:
            raise ValidationError(f"matrix must be non-empty, got shape {csr.shape}")
        csr.sum_duplicates()
        # Freeze the defining arrays so post-construction mutation cannot
        # desynchronise content from the memoized digest.
        for member in (csr.data, csr.indices, csr.indptr):
            member.setflags(write=False)
        self._matrix = csr
        self.shape = csr.shape

    def matvec(self, x):
        return self._matrix @ x

    def rmatvec(self, u):
        return self._matrix.T @ u

    def matmat(self, x):
        return np.asarray(self._matrix @ x)

    def rmatmat(self, u):
        return np.asarray(self._matrix.T @ u)

    def column_abs_sums(self):
        return np.asarray(abs(self._matrix).sum(axis=0)).ravel()

    def column_sq_sums(self):
        return np.asarray(self._matrix.multiply(self._matrix).sum(axis=0)).ravel()

    def frobenius_squared(self):
        return float(np.sum(self._matrix.data**2))

    def descriptor(self):
        csr = self._matrix
        return (
            "sparse",
            int(self.shape[0]),
            int(self.shape[1]),
            np.ascontiguousarray(csr.indptr, dtype=np.int64).tobytes(),
            np.ascontiguousarray(csr.indices, dtype=np.int64).tobytes(),
            np.ascontiguousarray(csr.data, dtype=np.float64).tobytes(),
        )

    def to_dense(self):
        return self._matrix.toarray()


class IntervalOperator(WorkloadOperator):
    """Rows are contiguous unit-weight ranges ``[lo_i, hi_i]`` over the
    domain — the shape of prefix, all-range, sliding-window and random
    range workloads.

    ``matvec`` is two reads of one cumulative sum per query; ``rmatvec``
    is a difference-array scatter plus one cumulative sum — both
    ``O(m + n)`` against the dense ``O(m n)``.
    """

    kind = "interval"

    def __init__(self, lows, highs, n):
        n = check_positive_int(n, "n")
        # Own copies: np.asarray/ravel could alias the caller's buffer, and
        # a later caller-side mutation must not desynchronise answers from
        # the memoized content digest.
        lows = np.array(lows, dtype=np.int64, copy=True).ravel()
        highs = np.array(highs, dtype=np.int64, copy=True).ravel()
        if lows.size == 0 or lows.size != highs.size:
            raise ValidationError(
                f"lows/highs must be equal-length non-empty arrays, "
                f"got {lows.size} and {highs.size}"
            )
        if lows.min() < 0 or highs.max() >= n or np.any(lows > highs):
            raise ValidationError(
                "every interval must satisfy 0 <= lo <= hi < n"
            )
        lows.setflags(write=False)
        highs.setflags(write=False)
        self._lows = lows
        self._highs = highs
        self.shape = (int(lows.size), n)

    @property
    def lows(self):
        return self._lows

    @property
    def highs(self):
        return self._highs

    def matvec(self, x):
        prefix = np.concatenate(([0.0], np.cumsum(x)))
        return prefix[self._highs + 1] - prefix[self._lows]

    def matmat(self, x):
        x = np.asarray(x, dtype=np.float64)
        prefix = np.vstack([np.zeros((1, x.shape[1])), np.cumsum(x, axis=0)])
        return prefix[self._highs + 1] - prefix[self._lows]

    def rmatvec(self, u):
        diff = np.zeros(self.shape[1] + 1)
        np.add.at(diff, self._lows, u)
        np.add.at(diff, self._highs + 1, -u)
        return np.cumsum(diff)[: self.shape[1]]

    def rmatmat(self, u):
        u = np.asarray(u, dtype=np.float64)
        diff = np.zeros((self.shape[1] + 1, u.shape[1]))
        np.add.at(diff, self._lows, u)
        np.add.at(diff, self._highs + 1, -u)
        return np.cumsum(diff, axis=0)[: self.shape[1]]

    def column_abs_sums(self):
        # Coverage counts: how many intervals contain each cell.
        return self.rmatvec(np.ones(self.shape[0]))

    def column_sq_sums(self):
        # 0/1 entries: squared sums equal the coverage counts.
        return self.column_abs_sums()

    def frobenius_squared(self):
        return float(np.sum(self._highs - self._lows + 1))

    def descriptor(self):
        return (
            "interval",
            int(self.shape[0]),
            int(self.shape[1]),
            np.ascontiguousarray(self._lows).tobytes(),
            np.ascontiguousarray(self._highs).tobytes(),
        )

    def to_dense(self):
        m, n = self.shape
        dense = np.zeros((m, n))
        # Difference-array fill, then a cumulative sum along each row.
        dense[np.arange(m), self._lows] = 1.0
        past_end = self._highs + 1 < n
        dense[np.arange(m)[past_end], (self._highs + 1)[past_end]] -= 1.0
        return np.cumsum(dense, axis=1)


class MarginalOperator(WorkloadOperator):
    """Row and column marginals of a ``rows x cols`` grid domain laid out
    row-major: the first ``rows`` queries are row sums, the next ``cols``
    are column sums."""

    kind = "marginal"

    def __init__(self, rows, cols):
        rows = check_positive_int(rows, "rows")
        cols = check_positive_int(cols, "cols")
        self.rows = rows
        self.cols = cols
        self.shape = (rows + cols, rows * cols)

    def matvec(self, x):
        grid = np.asarray(x, dtype=np.float64).reshape(self.rows, self.cols)
        return np.concatenate([grid.sum(axis=1), grid.sum(axis=0)])

    def matmat(self, x):
        x = np.asarray(x, dtype=np.float64)
        grid = x.reshape(self.rows, self.cols, x.shape[1])
        return np.concatenate([grid.sum(axis=1), grid.sum(axis=0)], axis=0)

    def rmatvec(self, u):
        u = np.asarray(u, dtype=np.float64)
        return (u[: self.rows, None] + u[None, self.rows :]).ravel()

    def rmatmat(self, u):
        u = np.asarray(u, dtype=np.float64)
        row_part = u[: self.rows]
        col_part = u[self.rows :]
        return (row_part[:, None, :] + col_part[None, :, :]).reshape(
            self.shape[1], u.shape[1]
        )

    def column_abs_sums(self):
        # Every cell lies in exactly one row sum and one column sum.
        return np.full(self.shape[1], 2.0)

    def column_sq_sums(self):
        return np.full(self.shape[1], 2.0)

    def frobenius_squared(self):
        return float(2 * self.shape[1])

    def descriptor(self):
        return ("marginal", int(self.rows), int(self.cols))

    def to_dense(self):
        dense = np.zeros(self.shape)
        for i in range(self.rows):
            dense[i, i * self.cols : (i + 1) * self.cols] = 1.0
        for j in range(self.cols):
            dense[self.rows + j, j :: self.cols] = 1.0
        return dense


class KronOperator(WorkloadOperator):
    """Lazy Kronecker product ``W1 (x) W2`` over the row-major product
    domain. Applications use the vec trick
    ``(A (x) C) x = vec(A X C^T)`` on the factors' own operators, so
    structured factors stay implicit all the way down."""

    kind = "kron"

    def __init__(self, left, right):
        self.left = as_operator(left)
        self.right = as_operator(right)
        self.shape = (
            self.left.shape[0] * self.right.shape[0],
            self.left.shape[1] * self.right.shape[1],
        )

    def matvec(self, x):
        n1 = self.left.shape[1]
        n2 = self.right.shape[1]
        grid = as_vector(x, "x", size=n1 * n2).reshape(n1, n2)
        # A X C^T, computed factor-wise: first X C^T = (C X^T)^T, then A ( . ).
        xct = self.right.matmat(grid.T).T
        return self.left.matmat(xct).ravel()

    def rmatvec(self, u):
        m1 = self.left.shape[0]
        m2 = self.right.shape[0]
        grid = as_vector(u, "u", size=m1 * m2).reshape(m1, m2)
        # A^T U C = (C^T (A^T U)^T)^T.
        atu = self.left.rmatmat(grid)
        return self.right.rmatmat(atu.T).T.ravel()

    def matmat(self, x):
        # Batched vec trick: fold the k columns into the factor matmats
        # (two factor applications total) instead of the base class's
        # k-matvec loop — the shape the sketch and batched serving hit.
        x = np.asarray(x, dtype=np.float64)
        n1, n2 = self.left.shape[1], self.right.shape[1]
        m1, m2 = self.left.shape[0], self.right.shape[0]
        k = x.shape[1]
        grids = x.reshape(n1, n2, k)
        # Apply C along axis 1: (n2, n1*k) -> (m2, n1*k).
        right_applied = self.right.matmat(
            grids.transpose(1, 0, 2).reshape(n2, n1 * k)
        ).reshape(m2, n1, k)
        # Apply A along axis 0: (n1, m2*k) -> (m1, m2*k).
        left_applied = self.left.matmat(
            right_applied.transpose(1, 0, 2).reshape(n1, m2 * k)
        ).reshape(m1, m2, k)
        return left_applied.reshape(m1 * m2, k)

    def rmatmat(self, u):
        u = np.asarray(u, dtype=np.float64)
        n1, n2 = self.left.shape[1], self.right.shape[1]
        m1, m2 = self.left.shape[0], self.right.shape[0]
        k = u.shape[1]
        grids = u.reshape(m1, m2, k)
        left_applied = self.left.rmatmat(grids.reshape(m1, m2 * k)).reshape(
            n1, m2, k
        )
        right_applied = self.right.rmatmat(
            left_applied.transpose(1, 0, 2).reshape(m2, n1 * k)
        ).reshape(n2, n1, k)
        return right_applied.transpose(1, 0, 2).reshape(n1 * n2, k)

    def column_abs_sums(self):
        return np.kron(self.left.column_abs_sums(), self.right.column_abs_sums())

    def column_sq_sums(self):
        return np.kron(self.left.column_sq_sums(), self.right.column_sq_sums())

    def frobenius_squared(self):
        return self.left.frobenius_squared() * self.right.frobenius_squared()

    def descriptor(self):
        return ("kron", self.left.descriptor(), self.right.descriptor())

    def to_dense(self):
        return np.kron(self.left.to_dense(), self.right.to_dense())


def operator_spec(operator, arrays, prefix="op"):
    """Serialise an operator into a JSON-able spec plus named arrays.

    The integer/float payload that defines the operator goes into
    ``arrays`` (an ``{name: ndarray}`` dict destined for an ``.npz``
    archive) under ``prefix``-derived keys; the returned spec records the
    family and scalar parameters. :func:`operator_from_spec` inverts it.
    This is how the plan cache persists *implicit* workloads without
    materialising them — a prefix workload at n = 65,536 stores two
    length-n index vectors, not a 34 GB matrix.
    """
    operator = as_operator(operator)
    if isinstance(operator, DenseOperator):
        arrays[f"{prefix}_matrix"] = operator.to_dense()
        return {"kind": "dense"}
    if isinstance(operator, SparseOperator):
        csr = operator._matrix
        arrays[f"{prefix}_indptr"] = np.asarray(csr.indptr, dtype=np.int64)
        arrays[f"{prefix}_indices"] = np.asarray(csr.indices, dtype=np.int64)
        arrays[f"{prefix}_data"] = np.asarray(csr.data, dtype=np.float64)
        return {"kind": "sparse", "m": int(operator.shape[0]), "n": int(operator.shape[1])}
    if isinstance(operator, IntervalOperator):
        arrays[f"{prefix}_lows"] = operator.lows
        arrays[f"{prefix}_highs"] = operator.highs
        return {"kind": "interval", "n": int(operator.shape[1])}
    if isinstance(operator, MarginalOperator):
        return {"kind": "marginal", "rows": int(operator.rows), "cols": int(operator.cols)}
    if isinstance(operator, ScaledOperator):
        return {
            "kind": "scaled",
            "factor": float(operator.factor),
            "base": operator_spec(operator.base, arrays, prefix=f"{prefix}b"),
        }
    if isinstance(operator, KronOperator):
        return {
            "kind": "kron",
            "left": operator_spec(operator.left, arrays, prefix=f"{prefix}l"),
            "right": operator_spec(operator.right, arrays, prefix=f"{prefix}r"),
        }
    raise ValidationError(
        f"operator family {type(operator).__name__!r} is not serializable"
    )


def operator_from_spec(spec, arrays, prefix="op"):
    """Rebuild an operator serialised by :func:`operator_spec`.

    ``arrays`` is any mapping supporting ``[]`` (a loaded npz archive
    works)."""
    kind = spec.get("kind")
    if kind == "dense":
        return DenseOperator(np.asarray(arrays[f"{prefix}_matrix"], dtype=np.float64))
    if kind == "sparse":
        m, n = int(spec["m"]), int(spec["n"])
        return SparseOperator(
            sp.csr_matrix(
                (
                    np.asarray(arrays[f"{prefix}_data"], dtype=np.float64),
                    np.asarray(arrays[f"{prefix}_indices"], dtype=np.int64),
                    np.asarray(arrays[f"{prefix}_indptr"], dtype=np.int64),
                ),
                shape=(m, n),
            )
        )
    if kind == "interval":
        return IntervalOperator(
            np.asarray(arrays[f"{prefix}_lows"], dtype=np.int64),
            np.asarray(arrays[f"{prefix}_highs"], dtype=np.int64),
            int(spec["n"]),
        )
    if kind == "marginal":
        return MarginalOperator(int(spec["rows"]), int(spec["cols"]))
    if kind == "scaled":
        return ScaledOperator(
            operator_from_spec(spec["base"], arrays, prefix=f"{prefix}b"),
            float(spec["factor"]),
        )
    if kind == "kron":
        return KronOperator(
            operator_from_spec(spec["left"], arrays, prefix=f"{prefix}l"),
            operator_from_spec(spec["right"], arrays, prefix=f"{prefix}r"),
        )
    raise ValidationError(f"unknown operator spec kind {kind!r}")


class ScaledOperator(WorkloadOperator):
    """``alpha * base`` without touching the base operator."""

    kind = "scaled"

    def __init__(self, base, factor):
        self.base = as_operator(base)
        self.factor = float(factor)
        if not np.isfinite(self.factor) or self.factor == 0.0:
            raise ValidationError(f"factor must be finite and non-zero, got {factor}")
        self.shape = self.base.shape

    def matvec(self, x):
        return self.factor * self.base.matvec(x)

    def rmatvec(self, u):
        return self.factor * self.base.rmatvec(u)

    def matmat(self, x):
        return self.factor * self.base.matmat(x)

    def rmatmat(self, u):
        return self.factor * self.base.rmatmat(u)

    def column_abs_sums(self):
        return abs(self.factor) * self.base.column_abs_sums()

    def column_sq_sums(self):
        return self.factor * self.factor * self.base.column_sq_sums()

    def frobenius_squared(self):
        return self.factor * self.factor * self.base.frobenius_squared()

    def descriptor(self):
        return ("scaled", float(self.factor), self.base.descriptor())

    def to_dense(self):
        return self.factor * self.base.to_dense()
