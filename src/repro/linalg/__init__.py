"""Linear-algebra substrate: projections, SVD helpers, Haar and tree strategies."""

from repro.linalg.haar import (
    haar_analysis,
    haar_inverse_rows,
    haar_matrix,
    haar_sensitivity,
    haar_synthesis,
    is_power_of_two,
    next_power_of_two,
)
from repro.linalg.projection import (
    l1_ball_distance,
    project_columns_l1,
    project_columns_l2,
    project_l1_ball,
    project_simplex,
)
from repro.linalg.randomized import (
    RANDOMIZED_SVD_MIN_DIM,
    power_iteration_lmax,
    randomized_svd,
)
from repro.linalg.svd import (
    effective_rank,
    eigenvalue_ratio,
    frobenius_norm,
    low_rank_approximation,
    matrix_rank,
    singular_values,
    svd_decomposition,
)
from repro.linalg.trees import (
    tree_apply,
    tree_apply_transpose,
    tree_consistency,
    tree_matrix,
    tree_num_nodes,
    tree_pseudoinverse_rows,
    tree_sensitivity,
)
from repro.linalg.validation import (
    as_matrix,
    as_vector,
    check_positive,
    check_positive_int,
    check_probability,
    check_shape_compatible,
    ensure_rng,
)

__all__ = [
    "as_matrix",
    "as_vector",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_shape_compatible",
    "effective_rank",
    "eigenvalue_ratio",
    "ensure_rng",
    "frobenius_norm",
    "haar_analysis",
    "haar_inverse_rows",
    "haar_matrix",
    "haar_sensitivity",
    "haar_synthesis",
    "is_power_of_two",
    "l1_ball_distance",
    "low_rank_approximation",
    "matrix_rank",
    "next_power_of_two",
    "power_iteration_lmax",
    "project_columns_l1",
    "project_columns_l2",
    "project_l1_ball",
    "project_simplex",
    "randomized_svd",
    "RANDOMIZED_SVD_MIN_DIM",
    "singular_values",
    "svd_decomposition",
    "tree_apply",
    "tree_apply_transpose",
    "tree_consistency",
    "tree_matrix",
    "tree_num_nodes",
    "tree_pseudoinverse_rows",
    "tree_sensitivity",
]
