"""Dyadic interval trees for the Hierarchical Mechanism (HM).

HM (Hay, Rastogi, Miklau, Suciu, PVLDB 2010 — reference [15] in the paper)
answers every node of a balanced binary tree over the domain: the root is the
total count, each internal node is the sum of its dyadic interval, and the
leaves are the unit counts. For a domain of size ``n = 2^h`` the strategy
matrix ``A`` has ``2n - 1`` rows; every data cell lies in exactly one node
per level, so the L1 column norm (sensitivity) is the tree height

    Delta(A) = log2(n) + 1.

After adding Laplace noise to every node, HM boosts accuracy with Hay et
al.'s *consistency* step, which is exactly the least-squares estimate
``x_hat = A^+ (A x + noise)``. For a complete binary tree the least-squares
solve has a two-pass closed form (implemented in
:func:`tree_consistency`), validated against the dense pseudo-inverse in the
test suite.

Node ordering used everywhere in this module: breadth-first, root (index 0)
followed level by level, left to right; leaves occupy the last ``n`` slots
``[n - 1, 2n - 2]``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import ValidationError
from repro.linalg.haar import is_power_of_two
from repro.linalg.validation import as_matrix, as_vector

__all__ = [
    "tree_num_nodes",
    "tree_sensitivity",
    "tree_apply",
    "tree_apply_transpose",
    "tree_consistency",
    "tree_consistency_rows",
    "tree_matrix",
    "tree_pseudoinverse_rows",
]


def _check_domain(n):
    if not is_power_of_two(n):
        raise ValidationError(f"hierarchical tree requires a power-of-two domain, got n={n}")


def tree_num_nodes(n):
    """Number of nodes (strategy rows) in the complete binary tree: 2n - 1."""
    _check_domain(n)
    return 2 * n - 1


def tree_sensitivity(n):
    """L1 sensitivity of the tree strategy: ``log2(n) + 1`` (tree height)."""
    _check_domain(n)
    return float(np.log2(n)) + 1.0


def tree_apply(x):
    """Compute ``A x``: the exact answer at every tree node.

    Returns the length ``2n - 1`` vector in breadth-first order. O(n).
    """
    x = as_vector(x, "x")
    n = x.size
    _check_domain(n)
    levels = [x]
    while levels[-1].size > 1:
        levels.append(levels[-1].reshape(-1, 2).sum(axis=1))
    # levels: [leaves, ..., root]; breadth-first output wants root first.
    return np.concatenate(list(reversed(levels)))


def tree_apply_transpose(y):
    """Compute ``A^T y`` for a node-indexed vector ``y``.

    Entry ``j`` of the result sums ``y`` over all ancestors of leaf ``j``
    (including the leaf itself). O(n log n) by pushing level sums down.
    """
    y = as_vector(y, "y")
    total_nodes = y.size
    n = (total_nodes + 1) // 2
    _check_domain(n)
    if total_nodes != 2 * n - 1:
        raise ValidationError(f"y has {total_nodes} entries; expected 2n-1 for some power-of-two n")
    # Walk down the levels, accumulating the running ancestor sum.
    offset = 0
    accumulated = np.zeros(1)
    size = 1
    while size <= n:
        accumulated = accumulated + y[offset : offset + size]
        offset += size
        if size == n:
            break
        accumulated = np.repeat(accumulated, 2)
        size *= 2
    return accumulated


def tree_matrix(n, sparse=True):
    """Materialise the tree strategy matrix ``A`` ((2n-1) x n).

    For tests and small domains; the mechanisms use the fast operators.
    """
    _check_domain(n)
    rows, cols = [], []
    row_index = 0
    size = 1
    while size <= n:
        block = n // size
        for node in range(size):
            for j in range(node * block, (node + 1) * block):
                rows.append(row_index)
                cols.append(j)
            row_index += 1
        size *= 2
    vals = np.ones(len(rows))
    matrix = sp.csr_matrix((vals, (rows, cols)), shape=(2 * n - 1, n))
    return matrix if sparse else matrix.toarray()


def tree_consistency(noisy, branching=2):
    """Least-squares consistent leaf estimate from noisy node answers.

    Implements the two-pass algorithm of Hay et al. (PVLDB 2010) for a
    complete tree with uniform per-node noise:

    1. *Bottom-up*: each node's subtree-sum estimate ``z[v]`` is the
       inverse-variance weighted mean of its own noisy answer and the sum
       of its children's estimates.
    2. *Top-down*: the slack between a parent's final estimate and the sum
       of its children's ``z`` values is split evenly among the children.

    Parameters
    ----------
    noisy:
        Noisy node answers in breadth-first order (length ``2n - 1``).
    branching:
        Tree fan-out (2 for the mechanisms in this package).

    Returns
    -------
    numpy.ndarray
        The length-``n`` least-squares estimate of the data vector,
        equal to ``A^+ noisy`` (validated against ``numpy.linalg.pinv``).
    """
    noisy = as_vector(noisy, "noisy")
    total_nodes = noisy.size
    n = (total_nodes + 1) // 2
    _check_domain(n)
    if total_nodes != 2 * n - 1:
        raise ValidationError(f"noisy has {total_nodes} entries; expected 2n-1")
    b = int(branching)
    if b != 2:
        raise ValidationError("only branching factor 2 is supported")

    # Split breadth-first vector into levels: level 0 = root ... level h = leaves.
    levels = []
    offset = 0
    size = 1
    while size <= n:
        levels.append(noisy[offset : offset + size].copy())
        offset += size
        size *= 2
    height = len(levels)  # number of levels; leaves at index height-1

    # Bottom-up pass: z[level] of subtree-sum estimates.
    z = [None] * height
    z[height - 1] = levels[height - 1].copy()
    for level in range(height - 2, -1, -1):
        child_sums = z[level + 1].reshape(-1, 2).sum(axis=1)
        # Node at this level has i = (height - level) "tree height", leaves i=1.
        i = height - level
        numerator = b**i - b ** (i - 1)
        denominator = b**i - 1
        weight_self = numerator / denominator
        weight_children = (b ** (i - 1) - 1) / denominator
        z[level] = weight_self * levels[level] + weight_children * child_sums

    # Top-down pass: distribute parent slack evenly among children.
    final = [None] * height
    final[0] = z[0].copy()
    for level in range(1, height):
        parent = final[level - 1]
        child_sums = z[level].reshape(-1, 2).sum(axis=1)
        slack = (parent - child_sums) / b
        final[level] = z[level] + np.repeat(slack, 2)
    return final[height - 1]


def tree_consistency_rows(noisy):
    """:func:`tree_consistency` applied to every **row** of a ``(k, 2n-1)``
    block of noisy node answers.

    Row ``i`` of the result equals ``tree_consistency(noisy[i])``; both
    passes walk the levels once for the whole block — the batched serving
    path of the Hierarchical Mechanism.
    """
    noisy = as_matrix(noisy, "noisy")
    k, total_nodes = noisy.shape
    n = (total_nodes + 1) // 2
    _check_domain(n)
    if total_nodes != 2 * n - 1:
        raise ValidationError(f"noisy has {total_nodes} columns; expected 2n-1")
    b = 2

    levels = []
    offset = 0
    size = 1
    while size <= n:
        levels.append(noisy[:, offset : offset + size].copy())
        offset += size
        size *= 2
    height = len(levels)

    # Bottom-up pass (see tree_consistency for the weights' derivation).
    z = [None] * height
    z[height - 1] = levels[height - 1].copy()
    for level in range(height - 2, -1, -1):
        child_sums = z[level + 1].reshape(k, -1, 2).sum(axis=2)
        i = height - level
        denominator = b**i - 1
        weight_self = (b**i - b ** (i - 1)) / denominator
        weight_children = (b ** (i - 1) - 1) / denominator
        z[level] = weight_self * levels[level] + weight_children * child_sums

    # Top-down pass: distribute parent slack evenly among children.
    final = z[0].copy()
    for level in range(1, height):
        child_sums = z[level].reshape(k, -1, 2).sum(axis=2)
        slack = (final - child_sums) / b
        final = z[level] + np.repeat(slack, 2, axis=1)
    return final


def tree_pseudoinverse_rows(w, tol=1e-10, maxiter=None):
    """Compute ``W A^+`` row by row without forming ``A^+``.

    Since ``A^+ = (A^T A)^{-1} A^T``, row ``i`` of ``W A^+`` is
    ``A u_i`` with ``(A^T A) u_i = w_i``, solved by conjugate gradient using
    the fast ``O(n log n)`` operators. Used by the analytic expected-error
    computation ``2 Delta^2 / eps^2 * ||W A^+||_F^2`` for HM.
    """
    w = as_matrix(w, "w")
    m, n = w.shape
    _check_domain(n)

    def matvec(v):
        return tree_apply_transpose(tree_apply(v))

    operator = spla.LinearOperator((n, n), matvec=matvec, dtype=np.float64)
    rows = np.empty((m, 2 * n - 1))
    for i in range(m):
        solution, info = spla.cg(operator, w[i], rtol=tol, maxiter=maxiter)
        if info != 0:
            raise RuntimeError(f"CG failed to converge for row {i} (info={info})")
        rows[i] = tree_apply(solution)
    return rows
