"""Randomized spectral kernels for the solver hot path.

Two primitives keep :func:`repro.core.alm.decompose_workload` off the dense
LAPACK path when matrices grow:

* :func:`randomized_svd` — a seeded Halko–Martinsson–Tropp range-finder SVD
  (Gaussian sketch + power/subspace iteration + small exact SVD). Below a
  size threshold, or when the requested rank is a large fraction of the
  small dimension, it transparently falls back to exact
  ``numpy.linalg.svd`` — at those sizes LAPACK is both faster and exact, so
  callers never pay for the approximation when it cannot win. The input may
  be a dense array **or** a :class:`repro.linalg.operator.WorkloadOperator`
  — the sketch then runs entirely on ``matmat``/``rmatmat`` actions and
  never materialises ``W``, which is how implicit workloads at
  ``n = 65,536`` get a spectral cache at all.
* :func:`power_iteration_lmax` — the top eigenvalue (Lipschitz constant of
  the Formula-10 gradient) of a symmetric PSD Gram matrix by power
  iteration, warm-startable from a previous eigenvector so repeated calls
  on slowly-moving ``B^T B`` converge in a handful of matvecs instead of a
  full ``eigvalsh``. The Gram may equally be given as an *action* (a
  :class:`WorkloadOperator`, whose ``gram`` is ``W W^T``, or any callable)
  so the Lipschitz constant of an implicit workload costs matvecs only.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.validation import as_matrix, check_positive, check_positive_int, ensure_rng

__all__ = [
    "randomized_svd",
    "power_iteration_lmax",
    "rank_discovery_needs_dense",
    "RANDOMIZED_SVD_MIN_DIM",
    "OPERATOR_DENSE_FALLBACK_ENTRIES",
    "RANK_DISCOVERY_DENSE_ENTRIES",
]

#: Below this small dimension, exact LAPACK SVD beats the sketch.
RANDOMIZED_SVD_MIN_DIM = 192

#: Dense fallbacks for operator inputs are taken only below this entry
#: count — materialising more defeats the point of being implicit.
OPERATOR_DENSE_FALLBACK_ENTRIES = 4_000_000

#: Rank *discovery* (rank=None) needs the full spectrum, which a capped
#: sketch cannot certify; up to this entry count the dense solve is used
#: instead of refusing. Matches ``Workload.MAX_DENSE_ENTRIES`` so every
#: implicit workload whose matrix could legally materialise keeps its
#: pre-operator default-fit behaviour; only genuinely large domains demand
#: an explicit rank.
RANK_DISCOVERY_DENSE_ENTRIES = 50_000_000


def rank_discovery_needs_dense(shape, rank):
    """True when a ``rank=None`` fit of an implicit ``shape`` workload must
    take the dense path: the small dimension exceeds the sketch cap (so no
    sketch can certify the numerical rank) while the matrix is still cheap
    enough to materialise. The single predicate shared by
    ``decompose_workload_operator`` and ``LowRankMechanism._fit`` so the
    two routing decisions can never diverge."""
    m, n = shape
    return (
        rank is None
        and min(m, n) > RANDOMIZED_SVD_MIN_DIM
        and m * n <= RANK_DISCOVERY_DENSE_ENTRIES
    )


def _randomized_svd_operator(operator, rank, oversample, n_iter, rng, min_dim):
    """Range-finder SVD driven purely by operator actions."""
    m, n = operator.shape
    small = min(m, n)
    k = min(rank, small)
    sketch = min(k + oversample, small)
    if (small <= min_dim or sketch >= 0.8 * small) and (
        m * n <= OPERATOR_DENSE_FALLBACK_ENTRIES
    ):
        u, sigma, vt = np.linalg.svd(operator.to_dense(), full_matrices=False)
        return u[:, :k], sigma[:k], vt[:k, :]

    rng = ensure_rng(rng)
    y = operator.matmat(rng.standard_normal((n, sketch)))
    for _ in range(int(n_iter)):
        q, _ = np.linalg.qr(y)
        y = operator.matmat(operator.rmatmat(q))
    q, _ = np.linalg.qr(y)
    u_small, sigma, vt = np.linalg.svd(operator.rmatmat(q).T, full_matrices=False)
    return (q @ u_small)[:, :k], sigma[:k], vt[:k, :]


def randomized_svd(matrix, rank, oversample=10, n_iter=4, rng=None, min_dim=None):
    """Approximate thin SVD ``(U, sigma, Vt)`` truncated to ``rank`` factors.

    Implements the randomized range finder of Halko, Martinsson & Tropp
    (2011): sketch ``Y = W Omega`` with a Gaussian test matrix of
    ``rank + oversample`` columns, improve the basis with ``n_iter``
    QR-stabilised power iterations (``Y <- W (W^T Q)``), then take the exact
    SVD of the small projected matrix ``Q^T W``.

    Parameters
    ----------
    matrix:
        The (m x n) matrix to factor — a dense array, or a
        :class:`repro.linalg.operator.WorkloadOperator` to run the whole
        sketch on matvec actions (no dense ``W`` is ever formed; the exact
        fallback is taken only when materialising is demonstrably cheap).
    rank:
        Number of leading singular triplets wanted.
    oversample:
        Extra sketch columns beyond ``rank`` (HMT recommend 5-10).
    n_iter:
        Power-iteration count; each sharpens the spectral gap, and 2-4
        suffice for the fast-decaying spectra of workload matrices.
    rng:
        Seed or generator for the Gaussian sketch (deterministic results
        for a fixed seed).
    min_dim:
        Fallback threshold: when ``min(m, n)`` is at most this (default
        :data:`RANDOMIZED_SVD_MIN_DIM`), or the sketch would cover most of
        the small dimension anyway, the exact LAPACK SVD is used.

    Returns
    -------
    tuple
        ``(u, sigma, vt)`` with ``u`` (m x k), ``sigma`` (k,), ``vt``
        (k x n) and ``k = min(rank, m, n)``.
    """
    rank = check_positive_int(rank, "rank")
    oversample = check_positive_int(oversample, "oversample")
    if n_iter < 0 or int(n_iter) != n_iter:
        raise ValidationError(f"n_iter must be a non-negative integer, got {n_iter}")
    if min_dim is None:
        min_dim = RANDOMIZED_SVD_MIN_DIM
    from repro.linalg.operator import WorkloadOperator

    if isinstance(matrix, WorkloadOperator):
        return _randomized_svd_operator(matrix, rank, oversample, n_iter, rng, min_dim)
    w = as_matrix(matrix, "matrix")
    m, n = w.shape
    small = min(m, n)
    k = min(rank, small)
    sketch = min(k + oversample, small)
    if small <= min_dim or sketch >= 0.8 * small:
        u, sigma, vt = np.linalg.svd(w, full_matrices=False)
        return u[:, :k], sigma[:k], vt[:k, :]

    rng = ensure_rng(rng)
    y = w @ rng.standard_normal((n, sketch))
    for _ in range(int(n_iter)):
        q, _ = np.linalg.qr(y)
        y = w @ (w.T @ q)
    q, _ = np.linalg.qr(y)
    u_small, sigma, vt = np.linalg.svd(q.T @ w, full_matrices=False)
    return (q @ u_small)[:, :k], sigma[:k], vt[:k, :]


def power_iteration_lmax(gram, v0=None, tol=1e-9, max_iters=200, dim=None):
    """Top eigenvalue and eigenvector of a symmetric PSD matrix or action.

    Classic power iteration with a relative-change stopping rule. Intended
    for the Nesterov Lipschitz constant ``lambda_max(B^T B)``: across block
    sweeps ``B`` moves slowly, so warm-starting ``v0`` from the previous
    sweep's eigenvector typically converges in a few matvecs (geometric
    rate ``(lambda_2 / lambda_1)^2`` from an already-aligned start).

    Parameters
    ----------
    gram:
        Symmetric positive semi-definite (r x r) matrix, **or** its action:
        a :class:`repro.linalg.operator.WorkloadOperator` (its ``gram``
        method, i.e. ``W W^T``, is iterated — ``lmax`` is then
        ``sigma_max(W)^2`` from matvecs alone), or any ``v -> G v``
        callable (``dim`` required).
    v0:
        Optional warm-start vector (length r); any non-zero vector works.
        ``None`` uses a deterministic slanted start (never the zero vector,
        and extremely unlikely to be orthogonal to the top eigenspace).
    tol:
        Relative eigenvalue-change stopping threshold.
    max_iters:
        Iteration cap.
    dim:
        Length of the iterated vector; required when ``gram`` is a plain
        callable, ignored otherwise.

    Returns
    -------
    tuple
        ``(lmax, v)`` — the eigenvalue estimate (monotonically approached
        from below) and the unit eigenvector, reusable as the next ``v0``.
    """
    from repro.linalg.operator import WorkloadOperator

    if isinstance(gram, WorkloadOperator):
        apply_gram = gram.gram
        r = gram.shape[0]
    elif callable(gram) and not isinstance(gram, np.ndarray):
        if dim is None:
            raise ValidationError("dim is required when gram is a callable action")
        apply_gram = gram
        r = check_positive_int(dim, "dim")
    else:
        g = as_matrix(gram, "gram")
        if g.shape[0] != g.shape[1]:
            raise ValidationError(f"gram must be square, got shape {g.shape}")
        apply_gram = g.__matmul__
        r = g.shape[0]
    tol = check_positive(tol, "tol")
    max_iters = check_positive_int(max_iters, "max_iters")
    if v0 is not None:
        v = np.asarray(v0, dtype=np.float64).ravel()
        if v.size != r or not np.all(np.isfinite(v)) or float(v @ v) == 0.0:
            v = None
        else:
            v = v / np.linalg.norm(v)
    else:
        v = None
    if v is None:
        # Deterministic, non-uniform start: overlaps every coordinate
        # direction with distinct weights.
        v = np.linspace(1.0, 2.0, r)
        v /= np.linalg.norm(v)

    lmax = 0.0
    for _ in range(max_iters):
        gv = apply_gram(v)
        norm_sq = float(gv @ gv)
        if norm_sq <= 0.0:
            # v is in the null space; restart from the deterministic slant.
            v = np.linspace(1.0, 2.0, r)
            v /= np.linalg.norm(v)
            gv = apply_gram(v)
            norm_sq = float(gv @ gv)
            if norm_sq <= 0.0:
                return 0.0, v
        new_lmax = float(v @ gv)
        v = gv / np.sqrt(norm_sq)
        if abs(new_lmax - lmax) <= tol * max(abs(new_lmax), 1e-30):
            return new_lmax, v
        lmax = new_lmax
    return lmax, v
