"""Randomized spectral kernels for the solver hot path.

Two primitives keep :func:`repro.core.alm.decompose_workload` off the dense
LAPACK path when matrices grow:

* :func:`randomized_svd` — a seeded Halko–Martinsson–Tropp range-finder SVD
  (Gaussian sketch + power/subspace iteration + small exact SVD). Below a
  size threshold, or when the requested rank is a large fraction of the
  small dimension, it transparently falls back to exact
  ``numpy.linalg.svd`` — at those sizes LAPACK is both faster and exact, so
  callers never pay for the approximation when it cannot win.
* :func:`power_iteration_lmax` — the top eigenvalue (Lipschitz constant of
  the Formula-10 gradient) of a symmetric PSD Gram matrix by power
  iteration, warm-startable from a previous eigenvector so repeated calls
  on slowly-moving ``B^T B`` converge in a handful of matvecs instead of a
  full ``eigvalsh``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.validation import as_matrix, check_positive, check_positive_int, ensure_rng

__all__ = ["randomized_svd", "power_iteration_lmax", "RANDOMIZED_SVD_MIN_DIM"]

#: Below this small dimension, exact LAPACK SVD beats the sketch.
RANDOMIZED_SVD_MIN_DIM = 192


def randomized_svd(matrix, rank, oversample=10, n_iter=4, rng=None, min_dim=None):
    """Approximate thin SVD ``(U, sigma, Vt)`` truncated to ``rank`` factors.

    Implements the randomized range finder of Halko, Martinsson & Tropp
    (2011): sketch ``Y = W Omega`` with a Gaussian test matrix of
    ``rank + oversample`` columns, improve the basis with ``n_iter``
    QR-stabilised power iterations (``Y <- W (W^T Q)``), then take the exact
    SVD of the small projected matrix ``Q^T W``.

    Parameters
    ----------
    matrix:
        The (m x n) matrix to factor.
    rank:
        Number of leading singular triplets wanted.
    oversample:
        Extra sketch columns beyond ``rank`` (HMT recommend 5-10).
    n_iter:
        Power-iteration count; each sharpens the spectral gap, and 2-4
        suffice for the fast-decaying spectra of workload matrices.
    rng:
        Seed or generator for the Gaussian sketch (deterministic results
        for a fixed seed).
    min_dim:
        Fallback threshold: when ``min(m, n)`` is at most this (default
        :data:`RANDOMIZED_SVD_MIN_DIM`), or the sketch would cover most of
        the small dimension anyway, the exact LAPACK SVD is used.

    Returns
    -------
    tuple
        ``(u, sigma, vt)`` with ``u`` (m x k), ``sigma`` (k,), ``vt``
        (k x n) and ``k = min(rank, m, n)``.
    """
    w = as_matrix(matrix, "matrix")
    rank = check_positive_int(rank, "rank")
    oversample = check_positive_int(oversample, "oversample")
    if n_iter < 0 or int(n_iter) != n_iter:
        raise ValidationError(f"n_iter must be a non-negative integer, got {n_iter}")
    if min_dim is None:
        min_dim = RANDOMIZED_SVD_MIN_DIM
    m, n = w.shape
    small = min(m, n)
    k = min(rank, small)
    sketch = min(k + oversample, small)
    if small <= min_dim or sketch >= 0.8 * small:
        u, sigma, vt = np.linalg.svd(w, full_matrices=False)
        return u[:, :k], sigma[:k], vt[:k, :]

    rng = ensure_rng(rng)
    y = w @ rng.standard_normal((n, sketch))
    for _ in range(int(n_iter)):
        q, _ = np.linalg.qr(y)
        y = w @ (w.T @ q)
    q, _ = np.linalg.qr(y)
    u_small, sigma, vt = np.linalg.svd(q.T @ w, full_matrices=False)
    return (q @ u_small)[:, :k], sigma[:k], vt[:k, :]


def power_iteration_lmax(gram, v0=None, tol=1e-9, max_iters=200):
    """Top eigenvalue and eigenvector of a symmetric PSD matrix.

    Classic power iteration with a relative-change stopping rule. Intended
    for the Nesterov Lipschitz constant ``lambda_max(B^T B)``: across block
    sweeps ``B`` moves slowly, so warm-starting ``v0`` from the previous
    sweep's eigenvector typically converges in a few matvecs (geometric
    rate ``(lambda_2 / lambda_1)^2`` from an already-aligned start).

    Parameters
    ----------
    gram:
        Symmetric positive semi-definite (r x r) matrix.
    v0:
        Optional warm-start vector (length r); any non-zero vector works.
        ``None`` uses a deterministic slanted start (never the zero vector,
        and extremely unlikely to be orthogonal to the top eigenspace).
    tol:
        Relative eigenvalue-change stopping threshold.
    max_iters:
        Iteration cap.

    Returns
    -------
    tuple
        ``(lmax, v)`` — the eigenvalue estimate (monotonically approached
        from below) and the unit eigenvector, reusable as the next ``v0``.
    """
    g = as_matrix(gram, "gram")
    if g.shape[0] != g.shape[1]:
        raise ValidationError(f"gram must be square, got shape {g.shape}")
    tol = check_positive(tol, "tol")
    max_iters = check_positive_int(max_iters, "max_iters")
    r = g.shape[0]
    if v0 is not None:
        v = np.asarray(v0, dtype=np.float64).ravel()
        if v.size != r or not np.all(np.isfinite(v)) or float(v @ v) == 0.0:
            v = None
        else:
            v = v / np.linalg.norm(v)
    else:
        v = None
    if v is None:
        # Deterministic, non-uniform start: overlaps every coordinate
        # direction with distinct weights.
        v = np.linspace(1.0, 2.0, r)
        v /= np.linalg.norm(v)

    lmax = 0.0
    for _ in range(max_iters):
        gv = g @ v
        norm_sq = float(gv @ gv)
        if norm_sq <= 0.0:
            # v is in the null space; restart from the deterministic slant.
            v = np.linspace(1.0, 2.0, r)
            v /= np.linalg.norm(v)
            gv = g @ v
            norm_sq = float(gv @ gv)
            if norm_sq <= 0.0:
                return 0.0, v
        new_lmax = float(v @ gv)
        v = gv / np.sqrt(norm_sq)
        if abs(new_lmax - lmax) <= tol * max(abs(new_lmax), 1e-30):
            return new_lmax, v
        lmax = new_lmax
    return lmax, v
