"""Input validation helpers shared across the package.

Every public entry point in :mod:`repro` funnels its array arguments through
these functions so that error messages are uniform and the numerical code can
assume well-formed ``float64`` arrays.
"""

from __future__ import annotations

import numbers

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError

__all__ = [
    "as_epsilon_batch",
    "as_matrix",
    "as_vector",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_shape_compatible",
    "ensure_rng",
]


def as_epsilon_batch(epsilons):
    """Coerce a batch of per-release epsilons to a 1-D float64 array.

    A scalar promotes to a one-element batch; every entry must be positive
    and finite. The single validation rule behind the vectorised
    multi-release path (``Mechanism.answer_many``, the batched noise
    helpers in :mod:`repro.privacy.noise`).
    """
    epsilons = np.asarray(epsilons, dtype=np.float64)
    if epsilons.ndim == 0:
        epsilons = epsilons[None]
    if epsilons.ndim != 1 or epsilons.size == 0:
        raise ValidationError(
            f"epsilons must be a non-empty 1-D sequence, got shape {epsilons.shape}"
        )
    if not np.all(np.isfinite(epsilons)) or np.any(epsilons <= 0.0):
        raise ValidationError("every epsilon must be positive and finite")
    return epsilons


def as_matrix(value, name="matrix", allow_sparse=False):
    """Coerce ``value`` to a 2-D float64 array (or sparse matrix).

    Parameters
    ----------
    value:
        Anything :func:`numpy.asarray` accepts, or a scipy sparse matrix.
    name:
        Name used in error messages.
    allow_sparse:
        When True, scipy sparse inputs are passed through (converted to CSR).

    Returns
    -------
    numpy.ndarray or scipy.sparse.csr_matrix
        A 2-D array with dtype float64 and at least one row and column.
    """
    if type(value) is np.ndarray and value.dtype == np.float64 and value.ndim == 2:
        # Fast path for the solver hot loop: already a dense 2-D float64
        # array, so only the cheap semantic checks remain.
        if value.shape[0] == 0 or value.shape[1] == 0:
            raise ValidationError(f"{name} must be non-empty, got shape {value.shape}")
        if not np.isfinite(value).all():
            raise ValidationError(f"{name} contains NaN or infinite entries")
        return value

    if sp.issparse(value):
        if not allow_sparse:
            raise ValidationError(f"{name} must be dense, got sparse matrix")
        matrix = value.tocsr().astype(np.float64)
        if matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise ValidationError(f"{name} must be non-empty, got shape {matrix.shape}")
        return matrix

    matrix = np.asarray(value, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got ndim={matrix.ndim}")
    if matrix.shape[0] == 0 or matrix.shape[1] == 0:
        raise ValidationError(f"{name} must be non-empty, got shape {matrix.shape}")
    if not np.all(np.isfinite(matrix)):
        raise ValidationError(f"{name} contains NaN or infinite entries")
    return matrix


def as_vector(value, name="vector", size=None):
    """Coerce ``value`` to a 1-D float64 array, optionally of a fixed size."""
    vector = np.asarray(value, dtype=np.float64)
    if vector.ndim == 2 and 1 in vector.shape:
        vector = vector.ravel()
    if vector.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional, got ndim={vector.ndim}")
    if vector.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if not np.all(np.isfinite(vector)):
        raise ValidationError(f"{name} contains NaN or infinite entries")
    if size is not None and vector.size != size:
        raise ValidationError(f"{name} must have length {size}, got {vector.size}")
    return vector


def check_positive(value, name="value"):
    """Validate that ``value`` is a finite, strictly positive real number."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValidationError(f"{name} must be positive and finite, got {value}")
    return value


def check_positive_int(value, name="value"):
    """Validate that ``value`` is a strictly positive integer."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValidationError(f"{name} must be >= 1, got {value}")
    return value


def check_probability(value, name="value"):
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_shape_compatible(matrix, vector, matrix_name="W", vector_name="x"):
    """Validate that ``matrix @ vector`` is well defined."""
    if matrix.shape[1] != vector.shape[0]:
        raise ValidationError(
            f"{matrix_name} has {matrix.shape[1]} columns but "
            f"{vector_name} has length {vector.shape[0]}"
        )


def ensure_rng(rng=None):
    """Return a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh default generator), an integer seed, or an
    existing generator (returned unchanged). This is the single place the
    package converts user-provided randomness.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, numbers.Integral) and not isinstance(rng, bool):
        return np.random.default_rng(int(rng))
    raise ValidationError(
        f"rng must be None, an int seed, or numpy.random.Generator, got {type(rng).__name__}"
    )
