"""Unnormalised Haar wavelet transform over a power-of-two domain.

This is the strategy substrate behind the Wavelet Mechanism (WM) baseline
(Xiao, Wang, Gehrke, ICDE 2010 — reference [28] in the paper). We use the
*unnormalised* Haar family:

* row 0 ("root"): the total sum, coefficient ``c_0 = sum_j x_j``;
* one "detail" row per internal node of the dyadic tree: for a block of
  ``s`` consecutive cells, the coefficient is
  ``(sum of left s/2 cells) - (sum of right s/2 cells)``.

For a domain of size ``n = 2^h`` this yields exactly ``n`` rows and the
transform matrix ``A`` is invertible. Every data cell participates in the
root row plus one detail row per level, each with coefficient magnitude 1,
so the L1 column norm (query sensitivity, Definition 2) is uniformly

    Delta(A) = 1 + log2(n).

The inverse transform distributes each coefficient back over its block:
the column of ``A^{-1}`` for the root is ``1/n`` everywhere, and for a
detail row over a block of size ``s`` it is ``+1/s`` on the left half and
``-1/s`` on the right half. All four operators (analysis, synthesis and
their adjoint/inverse-on-rows forms) run in ``O(n log n)`` without ever
materialising a dense matrix; a sparse CSR form is available for tests.

Coefficient ordering used everywhere in this module: index 0 is the root,
followed by detail coefficients level by level — block size ``n`` first
(one coefficient), then block size ``n/2`` (two), ..., down to block size 2
(``n/2`` coefficients). Within a level, blocks run left to right.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.linalg.validation import as_matrix, as_vector

__all__ = [
    "is_power_of_two",
    "next_power_of_two",
    "haar_sensitivity",
    "haar_analysis",
    "haar_synthesis",
    "haar_synthesis_rows",
    "haar_inverse_rows",
    "haar_matrix",
]


def is_power_of_two(n):
    """True iff ``n`` is a positive power of two."""
    return isinstance(n, (int, np.integer)) and n >= 1 and (n & (n - 1)) == 0


def next_power_of_two(n):
    """Smallest power of two that is >= ``n`` (n must be >= 1)."""
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    return 1 << (int(n) - 1).bit_length()


def _check_domain(n):
    if not is_power_of_two(n):
        raise ValidationError(f"Haar transform requires a power-of-two domain, got n={n}")


def haar_sensitivity(n):
    """L1 sensitivity of the Haar strategy: ``1 + log2(n)``."""
    _check_domain(n)
    return 1.0 + float(np.log2(n)) if n > 1 else 1.0


def haar_analysis(x):
    """Forward transform ``A x``: root total followed by level-order details.

    ``x`` must have power-of-two length. Runs in O(n log n).
    """
    x = as_vector(x, "x")
    n = x.size
    _check_domain(n)
    coefficients = [np.array([x.sum()])]
    sums = x
    # Collect detail coefficients top-down: block size n, n/2, ..., 2.
    levels = []
    while sums.size > 1:
        pairs = sums.reshape(-1, 2)
        levels.append(pairs[:, 0] - pairs[:, 1])
        sums = pairs.sum(axis=1)
    # ``levels`` currently runs bottom-up (block size 2 first); reverse it.
    coefficients.extend(reversed(levels))
    return np.concatenate(coefficients)


def haar_synthesis(c):
    """Inverse transform ``A^{-1} c``: reconstruct cell values from
    coefficients produced by :func:`haar_analysis` (same ordering)."""
    c = as_vector(c, "c")
    n = c.size
    _check_domain(n)
    sums = np.array([c[0]])
    offset = 1
    while sums.size < n:
        details = c[offset : offset + sums.size]
        offset += sums.size
        left = (sums + details) / 2.0
        right = (sums - details) / 2.0
        sums = np.empty(2 * left.size)
        sums[0::2] = left
        sums[1::2] = right
    return sums


def haar_synthesis_rows(c):
    """Inverse transform applied to every **row** of a ``(k, n)`` block.

    Row ``i`` of the result equals ``haar_synthesis(c[i])``; the levels are
    walked once for the whole block, so ``k`` releases cost one transform
    pass plus vectorised arithmetic — the batched serving path of the
    Wavelet Mechanism (one RNG draw, one transform, one GEMM).
    """
    c = as_matrix(c, "c")
    k, n = c.shape
    _check_domain(n)
    sums = c[:, :1].copy()
    offset = 1
    while sums.shape[1] < n:
        width = sums.shape[1]
        details = c[:, offset : offset + width]
        offset += width
        left = (sums + details) / 2.0
        right = (sums - details) / 2.0
        merged = np.empty((k, 2 * width))
        merged[:, 0::2] = left
        merged[:, 1::2] = right
        sums = merged
    return sums


def haar_inverse_rows(w):
    """Compute ``W A^{-1}`` for a row-matrix ``W`` without forming ``A``.

    Row ``i`` of the result is ``(A^{-1})^T w_i``; by the block structure of
    ``A^{-1}`` its root entry is ``mean(w_i)`` and its detail entry for a
    block of size ``s`` is ``(left-half sum - right-half sum) / s``.
    Runs in ``O(m n log n)``; used to evaluate the analytic expected error
    ``2 Delta^2 / eps^2 * ||W A^{-1}||_F^2`` of the Wavelet Mechanism.
    """
    w = as_matrix(w, "w")
    m, n = w.shape
    _check_domain(n)
    columns = [w.sum(axis=1, keepdims=True) / n]
    block = n
    while block >= 2:
        reshaped = w.reshape(m, n // block, block)
        half = block // 2
        left = reshaped[:, :, :half].sum(axis=2)
        right = reshaped[:, :, half:].sum(axis=2)
        columns.append((left - right) / block)
        block //= 2
    return np.concatenate(columns, axis=1)


def haar_matrix(n, sparse=True):
    """Materialise the Haar strategy matrix ``A`` (n x n).

    Intended for tests and small domains; the mechanisms use the fast
    operators above. With ``sparse=True`` returns CSR, else a dense array.
    """
    _check_domain(n)
    rows, cols, vals = [], [], []
    # Root row.
    rows.extend([0] * n)
    cols.extend(range(n))
    vals.extend([1.0] * n)
    row_index = 1
    block = n
    while block >= 2:
        half = block // 2
        for start in range(0, n, block):
            for j in range(start, start + half):
                rows.append(row_index)
                cols.append(j)
                vals.append(1.0)
            for j in range(start + half, start + block):
                rows.append(row_index)
                cols.append(j)
                vals.append(-1.0)
            row_index += 1
        block //= 2
    matrix = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
    return matrix if sparse else matrix.toarray()
