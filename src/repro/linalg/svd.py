"""SVD utilities used throughout the Low-Rank Mechanism.

The paper's analysis (Section 3.3, Lemma 3/4, Theorem 2) is phrased in terms
of the singular values of the workload matrix ``W`` — which it calls
"eigenvalues" of the decomposition ``W = U Sigma V``. This module provides:

* numerically robust rank computation,
* singular-value extraction and the eigenvalue ratio ``C = lambda_1/lambda_r``,
* truncated low-rank approximation,
* the SVD-based feasible decomposition used to warm-start Algorithm 1
  (the construction from the proof of Lemma 3).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.validation import as_matrix, check_positive_int

__all__ = [
    "singular_values",
    "matrix_rank",
    "effective_rank",
    "eigenvalue_ratio",
    "low_rank_approximation",
    "rank_tolerance",
    "svd_decomposition",
    "frobenius_norm",
]


def rank_tolerance(shape, singular_values_desc):
    """Numpy's standard numerical-rank cutoff ``max(m, n) * eps * sigma_max``.

    The single definition shared by every site that counts singular values
    above the noise floor (``choose_rank``, the solver's spectral cache,
    the exact closure's rank test, ``Workload.rank``), so they always agree
    on the rank of the same matrix.
    """
    sigma = np.asarray(singular_values_desc)
    leading = float(sigma[0]) if sigma.size else 0.0
    return max(shape) * np.finfo(np.float64).eps * leading


def singular_values(matrix):
    """Return the singular values of ``matrix`` in non-ascending order."""
    matrix = as_matrix(matrix, "matrix")
    return np.linalg.svd(matrix, compute_uv=False)


def matrix_rank(matrix, tol=None):
    """Numerical rank of ``matrix`` (count of singular values above ``tol``).

    ``tol`` defaults to numpy's standard ``max(m, n) * eps * sigma_max``.
    """
    matrix = as_matrix(matrix, "matrix")
    return int(np.linalg.matrix_rank(matrix, tol=tol))


def effective_rank(matrix, energy=0.99):
    """Smallest k such that the top-k singular values hold ``energy`` of the
    squared spectral mass.

    Used to pick a compact decomposition rank when the workload is only
    *approximately* low rank (the motivation for the relaxed Formula (8)).
    """
    if not 0.0 < energy <= 1.0:
        raise ValidationError(f"energy must be in (0, 1], got {energy}")
    sigma = singular_values(matrix)
    total = float(np.sum(sigma**2))
    if total == 0.0:
        return 0
    cumulative = np.cumsum(sigma**2) / total
    return int(np.searchsorted(cumulative, energy - 1e-12) + 1)


def eigenvalue_ratio(matrix, tol=None):
    """Ratio ``C = lambda_1 / lambda_r`` between the largest and smallest
    non-zero singular values (Theorem 2's conditioning constant)."""
    matrix = as_matrix(matrix, "matrix")
    sigma = np.linalg.svd(matrix, compute_uv=False)
    if tol is None:
        tol = max(matrix.shape) * np.finfo(np.float64).eps * (sigma[0] if sigma.size else 0.0)
    nonzero = sigma[sigma > tol]
    if nonzero.size == 0:
        raise ValidationError("matrix has rank zero; eigenvalue ratio undefined")
    return float(nonzero[0] / nonzero[-1])


def low_rank_approximation(matrix, rank):
    """Best rank-``rank`` approximation of ``matrix`` in Frobenius norm
    (Eckart-Young), returned as a dense array of the original shape."""
    matrix = as_matrix(matrix, "matrix")
    rank = check_positive_int(rank, "rank")
    u, sigma, vt = np.linalg.svd(matrix, full_matrices=False)
    k = min(rank, sigma.size)
    return (u[:, :k] * sigma[:k]) @ vt[:k, :]


def svd_decomposition(matrix, rank=None):
    """Thin SVD ``(U, sigma, Vt)`` optionally truncated to ``rank`` factors."""
    matrix = as_matrix(matrix, "matrix")
    u, sigma, vt = np.linalg.svd(matrix, full_matrices=False)
    if rank is not None:
        rank = check_positive_int(rank, "rank")
        k = min(rank, sigma.size)
        u, sigma, vt = u[:, :k], sigma[:k], vt[:k, :]
    return u, sigma, vt


def frobenius_norm(matrix):
    """Frobenius norm ``||W||_F`` (Section 3.3)."""
    matrix = as_matrix(matrix, "matrix", allow_sparse=True)
    if hasattr(matrix, "toarray") and not isinstance(matrix, np.ndarray):
        import scipy.sparse.linalg as spla

        return float(spla.norm(matrix))
    return float(np.linalg.norm(matrix))
