"""Baseline Laplace mechanisms (Section 3.2 of the paper).

Two straightforward ways of answering a batch under eps-DP:

* **Noise on data** (``M_D``, the experiments' "LM"): perturb every unit
  count with ``Lap(1/eps)`` and evaluate the workload on the noisy counts.
  Expected total squared error: ``2 ||W||_F^2 / eps^2`` (Eq. 4).
* **Noise on results** (``M_R``, "NOQ" in the introduction): answer the
  queries exactly and perturb each result with ``Lap(Delta(W)/eps)`` where
  ``Delta(W)`` is the workload's L1 sensitivity.
  Expected total squared error: ``2 m Delta(W)^2 / eps^2`` (Eq. 5).

The paper notes ``M_R`` can only win when ``m < n``; both are dominated by a
good workload decomposition, which is LRM's whole point.
"""

from __future__ import annotations

import numpy as np

from repro.mechanisms.base import Mechanism
from repro.mechanisms.operator import ReleaseOperator
from repro.privacy.noise import laplace_noise

__all__ = ["NoiseOnDataMechanism", "NoiseOnResultsMechanism", "LaplaceMechanism"]


class NoiseOnDataMechanism(Mechanism):
    """``M_D``: Laplace noise on the unit counts, then evaluate ``W``.

    Each record changes exactly one unit count by 1, so the per-count
    sensitivity is 1 regardless of the workload.
    """

    name = "LM"
    privacy_params = ("unit_sensitivity",)

    def __init__(self, unit_sensitivity=1.0):
        super().__init__()
        self.unit_sensitivity = float(unit_sensitivity)

    def _answer(self, x, epsilon, rng):
        noisy_data = x + laplace_noise(x.size, self.unit_sensitivity, epsilon, rng)
        # Workload applied as an action: implicit workloads (prefix, range,
        # marginal, Kronecker families) never materialise their matrix.
        return self.workload.operator.matvec(noisy_data)

    def release_operator(self):
        """Identity strategy (noise on the counts), recombination ``W``.

        Implicit workloads hand over their operator, so the serving path
        recombines through the fast action instead of a dense GEMM."""
        if not self.is_fitted:
            return None
        workload = self._workload
        return ReleaseOperator(
            strategy=None,
            recombination=workload.operator if workload.is_implicit else workload.matrix,
            sensitivity=self.unit_sensitivity,
        )

    def expected_squared_error(self, epsilon):
        """``2 Delta^2 ||W||_F^2 / eps^2`` — linear in the domain size for
        dense workloads, which is why LM degrades in Figures 4-6."""
        self._check_fitted()
        scale = self.unit_sensitivity / float(epsilon)
        return 2.0 * scale * scale * self.workload.frobenius_squared


class NoiseOnResultsMechanism(Mechanism):
    """``M_R``: Laplace noise straight on the ``m`` query answers."""

    name = "NOR"

    def _answer(self, x, epsilon, rng):
        exact = self.workload.answer(x)
        sensitivity = self.workload.sensitivity
        if sensitivity == 0.0:
            return exact
        return exact + laplace_noise(exact.size, sensitivity, epsilon, rng)

    def release_operator(self):
        """Strategy ``W`` itself, identity recombination."""
        if not self.is_fitted:
            return None
        workload = self._workload
        sensitivity = workload.sensitivity
        return ReleaseOperator(
            strategy=workload.operator if workload.is_implicit else workload.matrix,
            recombination=None,
            sensitivity=sensitivity,
            noise="laplace" if sensitivity > 0.0 else "none",
        )

    def expected_squared_error(self, epsilon):
        """``2 m Delta(W)^2 / eps^2``."""
        self._check_fitted()
        sensitivity = self.workload.sensitivity
        scale = sensitivity / float(epsilon)
        return 2.0 * self.workload.num_queries * scale * scale


#: Alias matching the experiment tables: the paper's "LM" is noise-on-data
#: (its Figure 4-6 error grows linearly with n; see DESIGN.md Section 5).
LaplaceMechanism = NoiseOnDataMechanism
