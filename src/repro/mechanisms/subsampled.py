"""Privacy amplification by subsampling: serve histograms from a sample.

Running a Gaussian-family mechanism on a Bernoulli subsample (each unit
included independently with probability ``q``) amplifies its privacy
guarantee: the release satisfies ``(log(1 + q (e^eps - 1)), q delta)``-DP
on the full dataset (Balle, Barthe & Gaboardi 2018), and under RDP
accounting composes with the much tighter subsampled-Gaussian curve
(Mironov, Talwar & Zhang 2019). At small ``q`` this multiplies the number
of releases a fixed budget admits by orders of magnitude — the price is
sampling variance in the answers.

:class:`SubsampledMechanism` wraps any Gaussian-family mechanism: it thins
the (integral, non-negative) unit counts binomially, answers through the
inner mechanism on the thinned counts, and rescales by ``1/q``
(Horvitz-Thompson, unbiased). Its :meth:`release_cost` is a
``subsampled_gaussian`` :class:`~repro.privacy.cost.NoiseCost` carrying
the *base* (eps, delta) and the sample rate, so every accountant charges
the amplified guarantee and the RDP ledger composes the amplified curve.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.validation import check_positive
from repro.mechanisms.base import Mechanism
from repro.privacy.cost import NoiseCost

__all__ = ["SubsampledMechanism"]

#: Inner-cost families the subsampled-Gaussian amplification analysis
#: covers (the discrete Gaussian shares the continuous curve, CKS 2020).
_AMPLIFIABLE_FAMILIES = ("gaussian", "discrete_gaussian")


class SubsampledMechanism(Mechanism):
    """Bernoulli-subsampled serving of a Gaussian-family mechanism.

    Parameters
    ----------
    inner:
        The base mechanism: a registry label (e.g. ``"GNOR"``) or a
        :class:`Mechanism` instance. Must be Gaussian-family
        (``requires_delta``) — pure-DP inner mechanisms are rejected,
        because the subsampled-Gaussian accounting curve would not
        describe them.
    sample_rate:
        Bernoulli inclusion probability ``q`` in (0, 1].
    **inner_kwargs:
        Forwarded to the registry factory when ``inner`` is a label.

    The data vector must hold non-negative integral counts (they are
    thinned binomially: each of the ``x_i`` units survives independently
    with probability ``q``). Answers are rescaled by ``1/q`` so the
    release is an unbiased estimate of the full-data answers.
    """

    name = "SUB"
    requires_delta = True
    privacy_params = ("sample_rate", "delta")

    def __init__(self, inner="GNOR", sample_rate=0.1, **inner_kwargs):
        super().__init__()
        if isinstance(inner, Mechanism):
            if inner_kwargs:
                raise ValidationError(
                    "inner_kwargs are only valid with a registry label, "
                    "not a mechanism instance"
                )
            self._inner_label = None
            self._inner_kwargs = {}
            self.inner = inner
        else:
            from repro.mechanisms.registry import make_mechanism

            self._inner_label = str(inner).strip().upper()
            self._inner_kwargs = dict(inner_kwargs)
            self.inner = make_mechanism(self._inner_label, **inner_kwargs)
        if not self.inner.requires_delta:
            raise ValidationError(
                f"SubsampledMechanism needs a Gaussian-family inner "
                f"mechanism; {type(self.inner).__name__} is pure eps-DP"
            )
        sample_rate = check_positive(sample_rate, "sample_rate")
        if sample_rate > 1.0:
            raise ValidationError(
                f"sample_rate must be in (0, 1], got {sample_rate}"
            )
        self.sample_rate = float(sample_rate)

    @property
    def delta(self):
        """The inner mechanism's per-release delta (base, pre-amplification)."""
        return float(getattr(self.inner, "delta", 0.0))

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _fit(self, workload):
        self.inner.fit(workload)

    def _answer(self, x, epsilon, rng):
        counts = np.asarray(x, dtype=np.float64)
        if np.any(counts < 0.0) or not np.allclose(counts, np.rint(counts)):
            raise ValidationError(
                "SubsampledMechanism needs non-negative integral unit "
                "counts (Bernoulli thinning operates on individual units)"
            )
        if self.sample_rate >= 1.0:
            thinned = counts
        else:
            thinned = rng.binomial(
                np.rint(counts).astype(np.int64), self.sample_rate
            ).astype(np.float64)
        return self.inner._answer(thinned, epsilon, rng) / self.sample_rate

    def release_operator(self):
        """``None``: thinning is data-dependent, so the release is not a
        fixed linear pipeline and is served through :meth:`answer`."""
        return None

    # ------------------------------------------------------------------ #
    # Privacy cost
    # ------------------------------------------------------------------ #
    def release_cost(self, epsilon):
        """A ``subsampled_gaussian`` cost: base (eps, delta) plus ``q``.

        Additive accountants charge the amplified pair
        ``(log(1 + q (e^eps - 1)), q delta)``; the RDP accountant composes
        the subsampled-Gaussian curve. At ``q = 1`` both reduce exactly to
        the inner mechanism's own cost arithmetic.
        """
        epsilon = check_positive(epsilon, "epsilon")
        inner_cost = self.inner.release_cost(epsilon)
        if inner_cost.family not in _AMPLIFIABLE_FAMILIES:
            raise ValidationError(
                f"cannot amplify a {inner_cost.family!r} release by "
                "subsampling; only Gaussian-family inner mechanisms are "
                "supported"
            )
        return NoiseCost(
            family="subsampled_gaussian",
            epsilon=inner_cost.epsilon,
            delta=inner_cost.delta,
            sigma_or_scale=inner_cost.sigma_or_scale,
            sensitivity=inner_cost.sensitivity,
            sample_rate=self.sample_rate,
        )

    # ------------------------------------------------------------------ #
    # Spec protocol
    # ------------------------------------------------------------------ #
    def to_spec(self):
        if self._inner_label is None:
            inner_spec = self.inner.to_spec()  # may itself raise
            return {
                "inner_class": type(self.inner).__name__,
                "inner_spec": inner_spec,
                "sample_rate": self.sample_rate,
            }
        return {
            "inner": self._inner_label,
            "inner_kwargs": self._inner_kwargs,
            "sample_rate": self.sample_rate,
        }

    @classmethod
    def from_spec(cls, spec):
        spec = dict(spec)
        if "inner" in spec:
            return cls(
                inner=spec["inner"],
                sample_rate=spec.get("sample_rate", 0.1),
                **spec.get("inner_kwargs", {}),
            )
        import repro.mechanisms as _mechanisms

        inner_cls = getattr(_mechanisms, spec["inner_class"], None)
        if inner_cls is None or not (
            isinstance(inner_cls, type) and issubclass(inner_cls, Mechanism)
        ):
            raise ValidationError(
                f"unknown inner mechanism class {spec.get('inner_class')!r}"
            )
        inner = inner_cls.from_spec(spec.get("inner_spec", {}))
        return cls(inner=inner, sample_rate=spec.get("sample_rate", 0.1))

    # ------------------------------------------------------------------ #
    # Plan metadata
    # ------------------------------------------------------------------ #
    def plan_metadata(self):
        meta = super().plan_metadata()
        meta["noise"] = "subsampled_gaussian"
        meta["sample_rate"] = self.sample_rate
        meta["inner"] = self.inner.plan_metadata()
        return meta

    def __repr__(self):
        return (
            f"{type(self).__name__}(inner={type(self.inner).__name__}, "
            f"q={self.sample_rate})"
        )
