"""Wavelet Mechanism (WM) — Privelet-style baseline.

Xiao, Wang and Gehrke (ICDE 2010; reference [28] in the paper) publish the
noisy Haar wavelet coefficients of the data vector and reconstruct. We use
the uniform-noise matrix-mechanism variant of their strategy (see DESIGN.md):
the strategy matrix is the unnormalised Haar family of
:mod:`repro.linalg.haar` with L1 sensitivity ``1 + log2(n)``, the noisy
coefficients are inverted exactly with the fast synthesis transform, and the
workload is evaluated on the reconstructed counts.

Expected total squared error (strategy-mechanism calculus):

    2 * (1 + log2 n)^2 / eps^2 * ||W A^{-1}||_F^2

For a range query, ``||w A^{-1}||^2`` involves only the ``O(log n)``
coefficients whose dyadic support straddles the range endpoints — the
polylogarithmic behaviour that makes WM strong on WRange at large ``n``.

Domains that are not a power of two are zero-padded; padding columns carry
zero workload weight so neither sensitivity nor error is affected.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.haar import (
    haar_analysis,
    haar_inverse_rows,
    haar_sensitivity,
    haar_synthesis,
    haar_synthesis_rows,
    next_power_of_two,
)
from repro.mechanisms.base import Mechanism
from repro.privacy.noise import laplace_noise, laplace_noise_batch

__all__ = ["WaveletMechanism"]


class WaveletMechanism(Mechanism):
    """Haar-wavelet strategy mechanism (WM in the experiments)."""

    name = "WM"

    def __init__(self):
        super().__init__()
        self._padded_n = None
        self._padded_workload = None
        self._coefficient_norm_squared = None

    def _fit(self, workload):
        n = workload.domain_size
        self._padded_n = next_power_of_two(n)
        if self._padded_n == n:
            self._padded_workload = workload.matrix
        else:
            padded = np.zeros((workload.num_queries, self._padded_n))
            padded[:, :n] = workload.matrix
            self._padded_workload = padded
        self._coefficient_norm_squared = None

    @property
    def strategy_sensitivity(self):
        """L1 sensitivity of the wavelet strategy: ``1 + log2(n_padded)``."""
        self._check_fitted()
        return haar_sensitivity(self._padded_n)

    def _pad(self, x):
        if self._padded_n == x.size:
            return x
        padded_x = np.zeros(self._padded_n)
        padded_x[: x.size] = x
        return padded_x

    def _answer(self, x, epsilon, rng):
        coefficients = haar_analysis(self._pad(x))
        noisy = coefficients + laplace_noise(
            coefficients.size, self.strategy_sensitivity, epsilon, rng
        )
        reconstructed = haar_synthesis(noisy)
        return self._padded_workload @ reconstructed

    def _answer_many(self, x, epsilons, rng):
        """``k`` releases with one analysis, one ``(k, n)`` noise draw, one
        batched synthesis and one GEMM.

        Row ``i`` is distributed exactly as ``answer(x, epsilons[i])``; the
        RNG stream advances in one block instead of ``k`` (the documented
        batched-release stream change, extended to the fast-transform
        mechanisms)."""
        coefficients = haar_analysis(self._pad(x))
        noisy = coefficients[None, :] + laplace_noise_batch(
            coefficients.size, self.strategy_sensitivity, epsilons, rng
        )
        reconstructed = haar_synthesis_rows(noisy)
        return reconstructed @ self._padded_workload.T

    def expected_squared_error(self, epsilon):
        """``2 Delta^2 / eps^2 * ||W A^{-1}||_F^2`` with the fast transform."""
        self._check_fitted()
        if self._coefficient_norm_squared is None:
            transformed = haar_inverse_rows(self._padded_workload)
            self._coefficient_norm_squared = float(np.sum(transformed**2))
        scale = self.strategy_sensitivity / float(epsilon)
        return 2.0 * scale * scale * self._coefficient_norm_squared
