"""Gaussian-mechanism baselines for (eps, delta)-differential privacy.

The paper's program is eps-DP with Laplace noise; its matrix-mechanism
lineage (Li et al.) equally supports the relaxed (eps, delta)-DP model with
Gaussian noise calibrated to the **L2** sensitivity. These baselines pair
with :class:`repro.core.lrm.GaussianLowRankMechanism`, which solves the
decomposition program under per-column L2 constraints.

Noise is calibrated by the analytic Gaussian mechanism
(:func:`repro.privacy.noise.gaussian_sigma`): the exact privacy-profile
inversion of Balle & Wang (2018), valid at every ``eps > 0`` — not the
classical ``sqrt(2 ln(1.25/delta))/eps`` formula, which only guarantees
(eps, delta)-DP for ``eps < 1``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.validation import check_positive
from repro.mechanisms.base import Mechanism
from repro.mechanisms.operator import ReleaseOperator
from repro.privacy.noise import discrete_gaussian_noise, gaussian_noise, gaussian_sigma
from repro.privacy.sensitivity import l2_sensitivity

__all__ = [
    "DiscreteGaussianNoiseOnResultsMechanism",
    "GaussianNoiseOnDataMechanism",
    "GaussianNoiseOnResultsMechanism",
]


def _check_delta(delta):
    delta = check_positive(delta, "delta")
    if delta >= 1.0:
        raise ValidationError(f"delta must be < 1, got {delta}")
    return delta


class GaussianNoiseOnDataMechanism(Mechanism):
    """Gaussian noise on the unit counts (the (eps, delta) analogue of LM).

    Each record changes one unit count by 1, so the per-count L2
    sensitivity is 1; the release is ``W (x + N(0, sigma^2)^n)``.
    """

    name = "GLM"
    requires_delta = True
    privacy_params = ("delta", "unit_sensitivity")

    def __init__(self, delta=1e-6, unit_sensitivity=1.0):
        super().__init__()
        self.delta = _check_delta(delta)
        self.unit_sensitivity = check_positive(unit_sensitivity, "unit_sensitivity")

    def to_spec(self):
        return {"delta": self.delta, "unit_sensitivity": self.unit_sensitivity}

    def plan_metadata(self):
        meta = super().plan_metadata()
        meta["noise"] = "gaussian"
        meta["sensitivity"] = float(self.unit_sensitivity)
        # A reference point only: under the analytic calibration sigma is
        # *not* proportional to 1/eps, so this cannot be rescaled to other
        # epsilons (use gaussian_sigma directly for those).
        meta["sigma_at_unit_epsilon"] = float(
            gaussian_sigma(self.unit_sensitivity, 1.0, self.delta)
        )
        return meta

    def _answer(self, x, epsilon, rng):
        noisy_data = x + gaussian_noise(x.size, self.unit_sensitivity, epsilon, self.delta, rng)
        return self.workload.operator.matvec(noisy_data)

    def release_operator(self):
        """Identity strategy (noise on the counts), recombination ``W``."""
        if not self.is_fitted:
            return None
        workload = self._workload
        return ReleaseOperator(
            strategy=None,
            recombination=workload.operator if workload.is_implicit else workload.matrix,
            sensitivity=self.unit_sensitivity,
            noise="gaussian",
            delta=self.delta,
        )

    def expected_squared_error(self, epsilon):
        """``sigma^2 ||W||_F^2`` with the analytic Gaussian sigma (valid at
        every eps, including eps >= 1)."""
        self._check_fitted()
        sigma = gaussian_sigma(self.unit_sensitivity, epsilon, self.delta)
        return sigma * sigma * self.workload.frobenius_squared


class GaussianNoiseOnResultsMechanism(Mechanism):
    """Gaussian noise straight on the ``m`` query answers, calibrated to the
    workload's L2 sensitivity (max column L2 norm)."""

    name = "GNOR"
    requires_delta = True
    privacy_params = ("delta",)

    def __init__(self, delta=1e-6):
        super().__init__()
        self.delta = _check_delta(delta)

    def to_spec(self):
        return {"delta": self.delta}

    def plan_metadata(self):
        meta = super().plan_metadata()
        meta["noise"] = "gaussian"
        if self.is_fitted:
            sensitivity = l2_sensitivity(self.workload.operator)
            meta["sensitivity"] = float(sensitivity)
            if sensitivity > 0.0:
                meta["sigma_at_unit_epsilon"] = float(
                    gaussian_sigma(sensitivity, 1.0, self.delta)
                )
        return meta

    def _answer(self, x, epsilon, rng):
        exact = self.workload.answer(x)
        sensitivity = l2_sensitivity(self.workload.operator)
        if sensitivity == 0.0:
            return exact
        return exact + gaussian_noise(exact.size, sensitivity, epsilon, self.delta, rng)

    def release_operator(self):
        """Strategy ``W`` itself, identity recombination."""
        if not self.is_fitted:
            return None
        workload = self._workload
        sensitivity = l2_sensitivity(workload.operator)
        strategy = workload.operator if workload.is_implicit else workload.matrix
        if sensitivity == 0.0:
            return ReleaseOperator(
                strategy=strategy, recombination=None,
                sensitivity=0.0, noise="none",
            )
        return ReleaseOperator(
            strategy=strategy,
            recombination=None,
            sensitivity=sensitivity,
            noise="gaussian",
            delta=self.delta,
        )

    def expected_squared_error(self, epsilon):
        """``m * sigma^2`` with sigma calibrated to ``Delta_2(W)``."""
        self._check_fitted()
        sensitivity = l2_sensitivity(self.workload.operator)
        if sensitivity == 0.0:
            return 0.0
        sigma = gaussian_sigma(sensitivity, epsilon, self.delta)
        return self.workload.num_queries * sigma * sigma


class DiscreteGaussianNoiseOnResultsMechanism(GaussianNoiseOnResultsMechanism):
    """Integer noise on the query answers: the discrete Gaussian of
    Canonne, Kamath & Steinke (2020) at the analytic-Gaussian sigma.

    The discrete Gaussian at scale ``sigma`` satisfies every (eps, delta)
    guarantee the continuous Gaussian at the same ``sigma`` does (CKS
    2020, Thm. 7), so the privacy calibration, budget arithmetic and RDP
    curve are shared with :class:`GaussianNoiseOnResultsMechanism` — only
    the samples differ: they are integers, so counting workloads with
    integral exact answers release integral noisy answers (no
    floating-point side channel, directly publishable as counts).
    """

    name = "DGNOR"

    def _answer(self, x, epsilon, rng):
        exact = self.workload.answer(x)
        sensitivity = l2_sensitivity(self.workload.operator)
        if sensitivity == 0.0:
            return exact
        return exact + discrete_gaussian_noise(
            exact.size, sensitivity, epsilon, self.delta, rng
        )

    def release_operator(self):
        """Same pipeline as GNOR with the integer noise family."""
        operator = super().release_operator()
        if operator is None or operator.noise == "none":
            return operator
        return ReleaseOperator(
            strategy=operator.strategy,
            recombination=None,
            sensitivity=operator.sensitivity,
            noise="discrete_gaussian",
            delta=self.delta,
        )

    def plan_metadata(self):
        meta = super().plan_metadata()
        meta["noise"] = "discrete_gaussian"
        return meta

    def expected_squared_error(self, epsilon):
        """``m * sigma^2``, a (tight) upper bound: the discrete Gaussian's
        variance never exceeds the continuous ``sigma^2`` (CKS 2020)."""
        return super().expected_squared_error(epsilon)
