"""Mechanisms: Laplace baselines, WM, HM, MM and the registry."""

from repro.mechanisms.base import Mechanism, as_workload
from repro.mechanisms.baselines import (
    LaplaceMechanism,
    NoiseOnDataMechanism,
    NoiseOnResultsMechanism,
)
from repro.mechanisms.gaussian import (
    DiscreteGaussianNoiseOnResultsMechanism,
    GaussianNoiseOnDataMechanism,
    GaussianNoiseOnResultsMechanism,
)
from repro.mechanisms.hierarchical import HierarchicalMechanism
from repro.mechanisms.matrix_mechanism import MatrixMechanism
from repro.mechanisms.operator import ReleaseOperator
from repro.mechanisms.registry import PAPER_MECHANISMS, make_mechanism, mechanism_names
from repro.mechanisms.strategy import StrategyMechanism, SVDStrategyMechanism
from repro.mechanisms.subsampled import SubsampledMechanism
from repro.mechanisms.wavelet import WaveletMechanism

__all__ = [
    "DiscreteGaussianNoiseOnResultsMechanism",
    "GaussianNoiseOnDataMechanism",
    "GaussianNoiseOnResultsMechanism",
    "HierarchicalMechanism",
    "LaplaceMechanism",
    "MatrixMechanism",
    "Mechanism",
    "NoiseOnDataMechanism",
    "NoiseOnResultsMechanism",
    "PAPER_MECHANISMS",
    "ReleaseOperator",
    "SVDStrategyMechanism",
    "StrategyMechanism",
    "SubsampledMechanism",
    "WaveletMechanism",
    "as_workload",
    "make_mechanism",
    "mechanism_names",
]
