"""Hierarchical Mechanism (HM) — Hay et al. tree baseline with consistency.

Hay, Rastogi, Miklau and Suciu (PVLDB 2010; reference [15] in the paper)
answer every node of a balanced binary tree over the domain under the
Laplace mechanism (sensitivity = tree height ``log2 n + 1``) and then apply
*constrained inference*: the least-squares estimate consistent with the tree
structure, which provably lowers the error of every range query. The
two-pass closed form of that least-squares solve is implemented in
:func:`repro.linalg.trees.tree_consistency`.

Expected total squared error:

    2 * (log2 n + 1)^2 / eps^2 * ||W A^+||_F^2

computed with conjugate gradients against the fast tree operators (no dense
pseudo-inverse is ever formed). Non-power-of-two domains are zero-padded.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.haar import next_power_of_two
from repro.linalg.trees import (
    tree_apply,
    tree_consistency,
    tree_consistency_rows,
    tree_num_nodes,
    tree_pseudoinverse_rows,
    tree_sensitivity,
)
from repro.mechanisms.base import Mechanism
from repro.privacy.noise import laplace_noise, laplace_noise_batch

__all__ = ["HierarchicalMechanism"]


class HierarchicalMechanism(Mechanism):
    """Binary-tree strategy mechanism with Hay consistency (HM)."""

    name = "HM"

    def __init__(self):
        super().__init__()
        self._padded_n = None
        self._padded_workload = None
        self._pinv_norm_squared = None

    def _fit(self, workload):
        n = workload.domain_size
        self._padded_n = next_power_of_two(n)
        if self._padded_n == n:
            self._padded_workload = workload.matrix
        else:
            padded = np.zeros((workload.num_queries, self._padded_n))
            padded[:, :n] = workload.matrix
            self._padded_workload = padded
        self._pinv_norm_squared = None

    @property
    def strategy_sensitivity(self):
        """Tree height ``log2(n_padded) + 1``."""
        self._check_fitted()
        return tree_sensitivity(self._padded_n)

    @property
    def num_nodes(self):
        """Number of noisy node answers per release: ``2 n_padded - 1``."""
        self._check_fitted()
        return tree_num_nodes(self._padded_n)

    def _pad(self, x):
        if self._padded_n == x.size:
            return x
        padded_x = np.zeros(self._padded_n)
        padded_x[: x.size] = x
        return padded_x

    def _answer(self, x, epsilon, rng):
        node_answers = tree_apply(self._pad(x))
        noisy = node_answers + laplace_noise(
            node_answers.size, self.strategy_sensitivity, epsilon, rng
        )
        estimate = tree_consistency(noisy)
        return self._padded_workload @ estimate

    def _answer_many(self, x, epsilons, rng):
        """``k`` releases with one tree evaluation, one ``(k, 2n-1)`` noise
        draw, one batched consistency pass and one GEMM.

        Row ``i`` is distributed exactly as ``answer(x, epsilons[i])``; the
        RNG stream advances in one block instead of ``k`` (the documented
        batched-release stream change, extended to the fast-transform
        mechanisms)."""
        node_answers = tree_apply(self._pad(x))
        noisy = node_answers[None, :] + laplace_noise_batch(
            node_answers.size, self.strategy_sensitivity, epsilons, rng
        )
        estimates = tree_consistency_rows(noisy)
        return estimates @ self._padded_workload.T

    def expected_squared_error(self, epsilon):
        """``2 Delta^2 / eps^2 * ||W A^+||_F^2`` via CG on the tree normal
        equations; the (workload-dependent) norm is cached after first use."""
        self._check_fitted()
        if self._pinv_norm_squared is None:
            rows = tree_pseudoinverse_rows(self._padded_workload)
            self._pinv_norm_squared = float(np.sum(rows**2))
        scale = self.strategy_sensitivity / float(epsilon)
        return 2.0 * scale * scale * self._pinv_norm_squared
