"""Name-based mechanism registry used by the experiment harness and CLI.

Maps the paper's mechanism labels (MM, LM, WM, HM, LRM, plus NOR) to
factories. LRM is imported lazily to keep :mod:`repro.mechanisms` free of a
circular dependency on :mod:`repro.core`.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.mechanisms.baselines import NoiseOnDataMechanism, NoiseOnResultsMechanism
from repro.mechanisms.gaussian import (
    DiscreteGaussianNoiseOnResultsMechanism,
    GaussianNoiseOnDataMechanism,
    GaussianNoiseOnResultsMechanism,
)
from repro.mechanisms.hierarchical import HierarchicalMechanism
from repro.mechanisms.matrix_mechanism import MatrixMechanism
from repro.mechanisms.strategy import SVDStrategyMechanism
from repro.mechanisms.wavelet import WaveletMechanism

__all__ = ["make_mechanism", "mechanism_names", "PAPER_MECHANISMS"]

#: The five mechanisms compared in Section 6, in the paper's order.
PAPER_MECHANISMS = ("MM", "LM", "WM", "HM", "LRM")


def _make_lrm(**kwargs):
    from repro.core.lrm import LowRankMechanism

    return LowRankMechanism(**kwargs)


def _make_glrm(**kwargs):
    from repro.core.lrm import GaussianLowRankMechanism

    return GaussianLowRankMechanism(**kwargs)


def _make_subsampled(**kwargs):
    from repro.mechanisms.subsampled import SubsampledMechanism

    return SubsampledMechanism(**kwargs)


_FACTORIES = {
    "MM": MatrixMechanism,
    "LM": NoiseOnDataMechanism,
    "NOD": NoiseOnDataMechanism,
    "NOR": NoiseOnResultsMechanism,
    "NOQ": NoiseOnResultsMechanism,
    "WM": WaveletMechanism,
    "HM": HierarchicalMechanism,
    "LRM": _make_lrm,
    "GLM": GaussianNoiseOnDataMechanism,
    "GNOR": GaussianNoiseOnResultsMechanism,
    "DGNOR": DiscreteGaussianNoiseOnResultsMechanism,
    "GLRM": _make_glrm,
    "SVDM": SVDStrategyMechanism,
    "SUB": _make_subsampled,
}


def mechanism_names():
    """All labels accepted by :func:`make_mechanism`."""
    return list(_FACTORIES)


def make_mechanism(name, **kwargs):
    """Instantiate a mechanism by its paper label (case-insensitive).

    Keyword arguments are forwarded to the mechanism constructor (e.g.
    ``make_mechanism("LRM", gamma=1.0, rank_ratio=1.2)``).
    """
    key = str(name).strip().upper()
    if key not in _FACTORIES:
        raise ValidationError(f"unknown mechanism {name!r}; choose from {mechanism_names()}")
    return _FACTORIES[key](**kwargs)
