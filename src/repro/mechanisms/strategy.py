"""Generic strategy mechanisms: answer ``W`` through a user-chosen strategy.

The matrix-mechanism calculus underlying the whole paper: pick a strategy
matrix ``A`` whose rows are the queries actually asked under the Laplace
mechanism, then recombine the noisy strategy answers to the workload via
least squares. The expected total squared error is

    2 * Delta_1(A)^2 / eps^2 * ||W A^+||_F^2.

Two concrete classes:

* :class:`StrategyMechanism` — bring your own ``A`` (the building block the
  paper's introduction walks through by hand);
* :class:`SVDStrategyMechanism` — the always-available Lemma-3 strategy
  ``A = V^T / sqrt(r)`` built from the workload's SVD; this is the LRM
  warm start run *as a mechanism*, which makes it the natural ablation
  baseline for how much the ALM optimisation actually buys.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.validation import as_matrix
from repro.mechanisms.base import Mechanism
from repro.mechanisms.operator import ReleaseOperator
from repro.privacy.noise import laplace_noise
from repro.privacy.sensitivity import l1_sensitivity

__all__ = ["StrategyMechanism", "SVDStrategyMechanism"]


class StrategyMechanism(Mechanism):
    """Answer a workload through an explicit strategy matrix ``A``.

    Parameters
    ----------
    strategy:
        The (r x n) strategy matrix. The fitted workload must lie in its
        row space (checked at ``fit`` time), otherwise the recombination
        cannot reproduce the exact answers.
    rcond:
        Pseudo-inverse cutoff forwarded to :func:`numpy.linalg.pinv`.
    """

    name = "STRATEGY"

    def __init__(self, strategy, rcond=1e-12):
        super().__init__()
        self.strategy = as_matrix(strategy, "strategy")
        self.rcond = float(rcond)
        self._recombination = None
        self._sensitivity = None

    def _fit(self, workload):
        if self.strategy.shape[1] != workload.domain_size:
            raise ValidationError(
                f"strategy has {self.strategy.shape[1]} columns but workload "
                f"has {workload.domain_size}"
            )
        pinv = np.linalg.pinv(self.strategy, rcond=self.rcond)
        recombination = workload.matrix @ pinv
        residual = recombination @ self.strategy - workload.matrix
        w_norm = max(float(np.linalg.norm(workload.matrix)), 1e-300)
        if float(np.linalg.norm(residual)) > 1e-6 * w_norm:
            raise ValidationError("workload is not in the row space of the strategy")
        self._recombination = recombination
        self._sensitivity = l1_sensitivity(self.strategy)

    def _answer(self, x, epsilon, rng):
        strategy_answers = self.strategy @ x
        if self._sensitivity > 0.0:
            strategy_answers = strategy_answers + laplace_noise(
                strategy_answers.size, self._sensitivity, epsilon, rng
            )
        return self._recombination @ strategy_answers

    def release_operator(self):
        """The explicit ``(A, W A^+)`` pipeline."""
        if not self.is_fitted:
            return None
        return ReleaseOperator(
            strategy=self.strategy,
            recombination=self._recombination,
            sensitivity=self._sensitivity,
            noise="laplace" if self._sensitivity > 0.0 else "none",
        )

    @property
    def strategy_sensitivity(self):
        """L1 sensitivity of the strategy actually asked."""
        self._check_fitted()
        return self._sensitivity

    def expected_squared_error(self, epsilon):
        """``2 Delta_1(A)^2 / eps^2 * ||W A^+||_F^2``."""
        self._check_fitted()
        scale = self._sensitivity / float(epsilon)
        return 2.0 * scale * scale * float(np.sum(self._recombination**2))


class SVDStrategyMechanism(Mechanism):
    """The Lemma-3 SVD strategy run as a mechanism (LRM-without-ALM).

    Fits the strategy ``A = V^T / Delta(V^T)`` where ``V`` comes from the
    thin SVD of the workload (rescaled onto the sensitivity boundary), and
    recombines with ``B = U S Delta``. Exactly the warm start the ALM
    solver improves upon — comparing this against
    :class:`repro.core.lrm.LowRankMechanism` isolates the optimisation's
    contribution (the ablation DESIGN.md calls out).
    """

    name = "SVDM"

    def __init__(self):
        super().__init__()
        self._b = None
        self._l = None
        self._sensitivity = None

    def _fit(self, workload):
        u, sigma, vt = np.linalg.svd(workload.matrix, full_matrices=False)
        tol = max(workload.shape) * np.finfo(np.float64).eps * (sigma[0] if sigma.size else 0.0)
        k = max(int(np.sum(sigma > tol)), 1)
        u, sigma, vt = u[:, :k], sigma[:k], vt[:k, :]
        delta = l1_sensitivity(vt)
        if delta <= 0.0:
            raise ValidationError("workload has an all-zero spectrum")
        self._l = vt / delta
        self._b = u * (sigma * delta)
        self._sensitivity = l1_sensitivity(self._l)

    def _answer(self, x, epsilon, rng):
        strategy_answers = self._l @ x
        strategy_answers = strategy_answers + laplace_noise(
            strategy_answers.size, self._sensitivity, epsilon, rng
        )
        return self._b @ strategy_answers

    def release_operator(self):
        """The Lemma-3 ``(L, B)`` pair."""
        if not self.is_fitted:
            return None
        return ReleaseOperator(
            strategy=self._l, recombination=self._b, sensitivity=self._sensitivity
        )

    @property
    def decomposition_factors(self):
        """The fitted ``(B, L)`` pair."""
        self._check_fitted()
        return self._b, self._l

    def expected_squared_error(self, epsilon):
        """Lemma 1 applied to the SVD pair: ``2 tr(B^T B) Delta^2 / eps^2``."""
        self._check_fitted()
        scale = self._sensitivity / float(epsilon)
        return 2.0 * float(np.sum(self._b**2)) * scale * scale
