"""Matrix Mechanism (MM) — the paper's main competitor, per its Appendix B.

Li et al. (PODS 2010; reference [16]) choose a full-rank strategy matrix
``A`` minimising ``||A||_2^2 * tr(W^T W (A^T A)^{-1})``. The paper's own
implementation (Appendix B) substitutes ``M = A^T A`` and solves the
semidefinite program

    min_{M > 0}  max(diag(M)) * tr(W^T W M^{-1})

with two devices we reproduce exactly:

* the non-smooth ``max(diag(M))`` is replaced by the log-sum-exp smoothing
  ``f_mu(v) = max(v) + mu * log(sum_i exp((v_i - max(v)) / mu))`` whose
  gradient is the softmax of ``v / mu`` (Eq. 14-15, written in the
  overflow-safe form of the appendix);
* the smoothed objective is minimised with the non-monotone spectral
  projected gradient method of Birgin, Martinez and Raydan (reference [2]),
  projecting onto the positive-definite cone by eigenvalue clipping.

The recovered strategy is ``A = M^{1/2}``. Crucially — and this is the
paper's critique — the optimisation targets the **L2** approximation of the
objective while eps-DP noise must be calibrated to the **L1** sensitivity of
``A``; the mechanism therefore runs with the true L1 column norm of
``M^{1/2}``, which is why MM's practical accuracy trails even noise-on-data
in Figures 4-6.

Cost: each iteration performs dense ``n x n`` eigen/solve work, so MM is
``O(n^3)`` per step — the "enormous computational overhead" of Section 1.
Keep ``n`` modest (the experiment harness caps MM's domain).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.exceptions import DecompositionError
from repro.linalg.validation import check_positive, check_positive_int
from repro.mechanisms.base import Mechanism
from repro.privacy.noise import laplace_noise
from repro.privacy.sensitivity import l1_sensitivity

__all__ = ["MatrixMechanism", "smoothed_max", "smoothed_max_gradient"]


def smoothed_max(v, mu):
    """Uniform smooth approximation of ``max(v)`` (Eq. 14, stable form)."""
    v = np.asarray(v, dtype=np.float64)
    top = float(v.max())
    return top + mu * float(np.log(np.sum(np.exp((v - top) / mu))))


def smoothed_max_gradient(v, mu):
    """Gradient of :func:`smoothed_max`: the softmax of ``v / mu``
    (Eq. 15, overflow-safe form)."""
    v = np.asarray(v, dtype=np.float64)
    shifted = np.exp((v - v.max()) / mu)
    return shifted / shifted.sum()


class MatrixMechanism(Mechanism):
    """Appendix-B Matrix Mechanism with spectral projected gradient.

    Parameters
    ----------
    max_iters:
        Iteration cap for the projected-gradient solve.
    smoothing:
        The ``mu`` of the log-sum-exp smoothing; ``None`` picks
        ``0.01 / log(n + 1)`` so the uniform approximation error of
        ``max(diag(M))`` is about 1%.
    eig_floor:
        Eigenvalues of ``M`` are clipped to at least this value when
        projecting back onto the positive-definite cone.
    history:
        Window length for the non-monotone line-search reference value.
    tol:
        Relative objective-change stopping tolerance.
    """

    name = "MM"

    def __init__(self, max_iters=60, smoothing=None, eig_floor=1e-8, history=10, tol=1e-7):
        super().__init__()
        self.max_iters = check_positive_int(max_iters, "max_iters")
        self.smoothing = None if smoothing is None else check_positive(smoothing, "smoothing")
        self.eig_floor = check_positive(eig_floor, "eig_floor")
        self.history = check_positive_int(history, "history")
        self.tol = check_positive(tol, "tol")
        self._strategy = None
        self._strategy_sensitivity = None
        self._recombination = None
        self._objective_history = None

    # ------------------------------------------------------------------ #
    # Optimisation internals
    # ------------------------------------------------------------------ #
    def _project_psd(self, m):
        """Project a symmetric matrix onto {M : eigenvalues >= eig_floor}."""
        m = 0.5 * (m + m.T)
        eigenvalues, eigenvectors = np.linalg.eigh(m)
        clipped = np.maximum(eigenvalues, self.eig_floor)
        return (eigenvectors * clipped) @ eigenvectors.T

    def _objective_and_gradient(self, m, s, mu):
        """Smoothed objective ``f_mu(diag M) * tr(S M^{-1})`` and gradient."""
        try:
            cho = sla.cho_factor(m, lower=True, check_finite=False)
        except np.linalg.LinAlgError as exc:  # pragma: no cover - guarded by projection
            raise DecompositionError("M left the PD cone during line search") from exc
        m_inv_s = sla.cho_solve(cho, s, check_finite=False)
        trace_term = float(np.trace(m_inv_s))
        v = np.diag(m)
        f_max = smoothed_max(v, mu)
        objective = f_max * trace_term
        # d/dM [tr(S M^{-1})] = -M^{-1} S M^{-1};  d/dM f_mu(diag M) = diag(softmax).
        m_inv_s_m_inv = sla.cho_solve(cho, m_inv_s.T, check_finite=False)
        gradient = np.diag(trace_term * smoothed_max_gradient(v, mu)) - f_max * m_inv_s_m_inv
        gradient = 0.5 * (gradient + gradient.T)
        return objective, gradient

    def _solve(self, w):
        """Run non-monotone SPG on the smoothed SDP; returns optimal M."""
        n = w.shape[1]
        s = w.T @ w
        mu = self.smoothing if self.smoothing is not None else 0.01 / np.log(n + 1.0)
        m = np.eye(n)
        objective, gradient = self._objective_and_gradient(m, s, mu)
        history = [objective]
        alpha = 1.0
        previous_m = None
        previous_gradient = None
        for iteration in range(self.max_iters):
            direction = self._project_psd(m - alpha * gradient) - m
            derivative = float(np.sum(gradient * direction))
            if derivative > -1e-15:
                break  # Stationary on the feasible set.
            # Non-monotone Armijo backtracking against the history max.
            reference = max(history[-self.history :])
            step = 1.0
            accepted = False
            for _ in range(30):
                candidate = m + step * direction
                try:
                    cand_objective, cand_gradient = self._objective_and_gradient(candidate, s, mu)
                except DecompositionError:
                    step *= 0.5
                    continue
                if cand_objective <= reference + 1e-4 * step * derivative:
                    accepted = True
                    break
                step *= 0.5
            if not accepted:
                break
            previous_m, previous_gradient = m, gradient
            m, objective, gradient = candidate, cand_objective, cand_gradient
            history.append(objective)
            # Barzilai-Borwein spectral step length.
            sk = m - previous_m
            yk = gradient - previous_gradient
            sk_yk = float(np.sum(sk * yk))
            if sk_yk > 1e-12:
                alpha = float(np.sum(sk * sk)) / sk_yk
                alpha = min(max(alpha, 1e-6), 1e6)
            else:
                alpha = 1.0
            if (
                len(history) > 2
                and abs(history[-2] - history[-1]) <= self.tol * max(abs(history[-2]), 1.0)
            ):
                break
        self._objective_history = history
        return m

    # ------------------------------------------------------------------ #
    # Mechanism interface
    # ------------------------------------------------------------------ #
    def _fit(self, workload):
        w = workload.matrix
        m_opt = self._solve(w)
        # A = M^{1/2} via symmetric eigendecomposition (Appendix B).
        eigenvalues, eigenvectors = np.linalg.eigh(m_opt)
        eigenvalues = np.maximum(eigenvalues, self.eig_floor)
        strategy = (eigenvectors * np.sqrt(eigenvalues)) @ eigenvectors.T
        self._strategy = strategy
        # eps-DP requires the true L1 sensitivity of the strategy actually run.
        self._strategy_sensitivity = l1_sensitivity(strategy)
        # Cache W A^{-1} for answering and the analytic error.
        self._recombination = sla.solve(strategy, w.T, assume_a="sym").T

    @property
    def strategy_matrix(self):
        """The fitted full-rank strategy ``A = M^{1/2}`` (n x n)."""
        self._check_fitted()
        return self._strategy

    @property
    def strategy_sensitivity(self):
        """True L1 sensitivity of the fitted strategy."""
        self._check_fitted()
        return self._strategy_sensitivity

    @property
    def objective_history(self):
        """Smoothed-objective value per accepted SPG iteration."""
        self._check_fitted()
        return list(self._objective_history)

    def _answer(self, x, epsilon, rng):
        strategy_answers = self._strategy @ x
        noisy = strategy_answers + laplace_noise(
            strategy_answers.size, self._strategy_sensitivity, epsilon, rng
        )
        # x_hat = A^{-1} noisy; answers = W x_hat = (W A^{-1}) noisy.
        return self._recombination @ noisy

    def release_operator(self):
        """The SDP-optimised ``(A, W A^{-1})`` pipeline."""
        if not self.is_fitted:
            return None
        from repro.mechanisms.operator import ReleaseOperator

        return ReleaseOperator(
            strategy=self._strategy,
            recombination=self._recombination,
            sensitivity=self._strategy_sensitivity,
        )

    def expected_squared_error(self, epsilon):
        """``2 Delta_1(A)^2 / eps^2 * ||W A^{-1}||_F^2``."""
        self._check_fitted()
        scale = self._strategy_sensitivity / float(epsilon)
        return 2.0 * scale * scale * float(np.sum(self._recombination**2))
