"""Release operators: the data-independent linear form of a release.

Every mechanism in the paper's family releases

    M(Q, D) = B (L x + noise(Delta(L) / eps)^r)            (Eq. 6 shape)

for some strategy ``L`` (possibly the identity), recombination ``B``
(possibly the identity), sensitivity ``Delta`` and noise family. A
:class:`ReleaseOperator` captures exactly that tuple, which is what lets the
serving layer (:mod:`repro.engine.compiled`) precompute ``L x`` once per
data epoch and answer ``k`` releases with one RNG draw and one GEMM instead
of ``k`` GEMV/draw round trips.

Mechanisms expose their operator through
:meth:`repro.mechanisms.base.Mechanism.release_operator`; mechanisms whose
release is not a plain matrix pipeline (the fast-transform WM/HM, whose
consistency steps are cheaper as transforms than as dense matrices) return
``None`` and keep the per-release code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.operator import WorkloadOperator
from repro.privacy.cost import NoiseCost
from repro.privacy.noise import (
    discrete_gaussian_noise,
    discrete_gaussian_noise_batch,
    gaussian_noise,
    gaussian_noise_batch,
    gaussian_sigma,
    laplace_noise,
    laplace_noise_batch,
)

__all__ = ["ReleaseOperator"]


def _apply(factor, vector):
    """``factor @ vector`` for a dense array or an implicit operator."""
    if isinstance(factor, WorkloadOperator):
        return factor.matvec(vector)
    return factor @ vector


def _apply_rows(factor, rows):
    """``rows @ factor.T`` — apply ``factor`` to every row of a ``(k, n)``
    block, staying implicit for operator factors."""
    if isinstance(factor, WorkloadOperator):
        return factor.matmat(rows.T).T
    return rows @ factor.T


@dataclass(frozen=True)
class ReleaseOperator:
    """The linear pipeline of one mechanism's release.

    Attributes
    ----------
    strategy:
        ``L`` (r x n) — a dense array or an implicit
        :class:`repro.linalg.operator.WorkloadOperator` — or ``None`` for
        the identity (noise-on-data mechanisms, where the strategy answers
        *are* the unit counts).
    recombination:
        ``B`` (m x r), dense or implicit, or ``None`` for the identity
        (noise-on-results mechanisms). Implicit factors are applied through
        their matvec actions, so large-domain workloads release without a
        dense GEMM against an ``m x n`` array.
    sensitivity:
        ``Delta(L)`` under the mechanism's norm (L1 for Laplace, L2 for
        Gaussian).
    noise:
        ``"laplace"``, ``"gaussian"``, ``"discrete_gaussian"`` (integer
        noise at the Gaussian-calibrated sigma, for integral releases),
        or ``"none"`` (a zero-sensitivity strategy releases exact
        strategy answers — the mechanism decides).
    delta:
        Per-release failure probability (Gaussian-family noise only).
    """

    strategy: Optional[Union[np.ndarray, WorkloadOperator]]
    recombination: Optional[Union[np.ndarray, WorkloadOperator]]
    sensitivity: float
    noise: str = "laplace"
    delta: float = 0.0

    def __post_init__(self):
        if self.noise not in ("laplace", "gaussian", "discrete_gaussian", "none"):
            raise ValidationError(f"unknown noise family {self.noise!r}")
        if self.noise in ("gaussian", "discrete_gaussian") and not (
            0.0 < self.delta < 1.0
        ):
            raise ValidationError(
                f"{self.noise} noise needs 0 < delta < 1, got {self.delta}"
            )

    @property
    def strategy_size(self):
        """Length ``r`` of the noisy intermediate vector; ``None`` when the
        strategy is the identity (then ``r == len(x)``)."""
        return None if self.strategy is None else self.strategy.shape[0]

    def strategy_answers(self, x):
        """The data-dependent half of a release: ``L x`` (or ``x``)."""
        return x if self.strategy is None else _apply(self.strategy, x)

    def cost(self, epsilon):
        """The typed :class:`~repro.privacy.cost.NoiseCost` of one release.

        The (epsilon, delta) guarantee matches what the scalar engine
        charged bit for bit; the family and noise magnitude make the audit
        record self-describing. ``noise="none"`` (a zero-sensitivity
        strategy) still charges the declared pair, under the family the
        scalar accountants historically *assumed* for it (Gaussian when
        the release carries a delta, Laplace otherwise).
        """
        epsilon = float(epsilon)
        if self.noise == "laplace":
            return NoiseCost(
                family="laplace",
                epsilon=epsilon,
                sigma_or_scale=(
                    self.sensitivity / epsilon if self.sensitivity > 0.0 else None
                ),
                sensitivity=self.sensitivity,
            )
        if self.noise in ("gaussian", "discrete_gaussian"):
            return NoiseCost(
                family=self.noise,
                epsilon=epsilon,
                delta=self.delta,
                sigma_or_scale=(
                    gaussian_sigma(self.sensitivity, epsilon, self.delta)
                    if self.sensitivity > 0.0
                    else None
                ),
                sensitivity=self.sensitivity,
            )
        family = "gaussian" if self.delta > 0.0 else "laplace"
        return NoiseCost(
            family=family, epsilon=epsilon, delta=self.delta, sensitivity=0.0
        )

    # ------------------------------------------------------------------ #
    # Releasing
    # ------------------------------------------------------------------ #
    def _noise_rows(self, size, epsilons, rng):
        """One ``(k, size)`` draw covering the whole batch."""
        if self.noise == "laplace":
            return laplace_noise_batch(size, self.sensitivity, epsilons, rng)
        if self.noise == "discrete_gaussian":
            return discrete_gaussian_noise_batch(
                size, self.sensitivity, epsilons, self.delta, rng
            )
        return gaussian_noise_batch(size, self.sensitivity, epsilons, self.delta, rng)

    def answer(self, strategy_answers, epsilon, rng):
        """One release from precomputed strategy answers.

        Draws noise with the same RNG call shape as the mechanism's own
        ``_answer`` (so seeded engine streams are unchanged by compilation)
        and applies the recombination.
        """
        if self.noise == "none":
            noisy = strategy_answers
        elif self.noise == "laplace":
            noisy = strategy_answers + laplace_noise(
                strategy_answers.size, self.sensitivity, epsilon, rng
            )
        elif self.noise == "discrete_gaussian":
            noisy = strategy_answers + discrete_gaussian_noise(
                strategy_answers.size, self.sensitivity, epsilon, self.delta, rng
            )
        else:
            noisy = strategy_answers + gaussian_noise(
                strategy_answers.size, self.sensitivity, epsilon, self.delta, rng
            )
        return noisy if self.recombination is None else _apply(self.recombination, noisy)

    def answer_many(self, strategy_answers, epsilons, rng):
        """``k`` releases as a ``(k, m)`` array: one RNG draw, one GEMM.

        Row ``i`` is distributed exactly as ``answer(strategy_answers,
        epsilons[i], rng)``; only the RNG stream layout differs from a loop
        (one ``(k, r)`` draw instead of ``k`` ``(r,)`` draws).
        """
        epsilons = np.asarray(epsilons, dtype=np.float64)
        if self.noise == "none":
            noisy = np.broadcast_to(
                strategy_answers, (epsilons.size, strategy_answers.size)
            )
        else:
            noisy = strategy_answers[None, :] + self._noise_rows(
                strategy_answers.size, epsilons, rng
            )
        if self.recombination is None:
            return np.array(noisy) if self.noise == "none" else noisy
        return _apply_rows(self.recombination, np.asarray(noisy))
