"""Mechanism framework: the shared interface every mechanism implements.

A *mechanism* answers a fixed batch workload ``W`` under
eps-differential privacy. The lifecycle mirrors scikit-learn:

1. ``mechanism.fit(workload)`` — any per-workload optimisation (a no-op for
   the Laplace baselines, an SDP for MM, the ALM decomposition for LRM).
2. ``mechanism.answer(x, epsilon, rng)`` — one noisy release of ``W x``.
3. ``mechanism.answer_many(x, epsilons, rng)`` — ``k`` independent releases
   at once: mechanisms with a linear release operator draw all noise in one
   ``(k, r)`` RNG call and recombine with one GEMM (the high-traffic
   serving path); others fall back to a loop.
4. ``mechanism.expected_squared_error(epsilon)`` — the analytic expected
   total squared error ``E ||y_noisy - W x||_2^2`` where available, and
5. ``mechanism.empirical_squared_error(x, epsilon, trials, rng)`` — the
   Monte-Carlo estimate the paper's experiments report (20 trials), run
   through the batched path.

Every ``answer`` call (and every row of ``answer_many``) is an independent
eps-DP release; repeated calls compose sequentially (use
:class:`repro.privacy.PrivacyBudget` to track).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.linalg.validation import (
    as_epsilon_batch,
    as_vector,
    check_positive,
    check_positive_int,
    ensure_rng,
)
from repro.privacy.cost import NoiseCost
from repro.workloads.workload import Workload

__all__ = ["Mechanism", "as_workload"]


def as_workload(workload):
    """Coerce a :class:`Workload` or raw matrix into a :class:`Workload`."""
    if isinstance(workload, Workload):
        return workload
    return Workload(workload)


class Mechanism(abc.ABC):
    """Abstract base class for batch linear-query mechanisms.

    Subclasses implement ``_fit`` (optional) and ``_answer`` (required), and
    override ``expected_squared_error`` when a closed form exists.
    """

    #: Short name used in experiment tables (e.g. "LRM", "WM").
    name = "mechanism"

    #: True for mechanisms whose releases carry a failure probability delta
    #: (the Gaussian family). The engine uses this to charge (eps, delta)
    #: against an approximate-DP accountant instead of plain eps.
    requires_delta = False

    #: Names of constructor parameters that change the *privacy calibration*
    #: of a release independently of the fitted state — e.g. an assumed
    #: ``unit_sensitivity`` or a Gaussian ``delta``. Solver/tuning knobs do
    #: NOT belong here (their noise is calibrated to whatever strategy they
    #: produce, so any fit is a valid release). The engine's plan cache
    #: refuses to serve a cached plan whose privacy parameters differ from
    #: the serving engine's configuration; subclasses adding such a
    #: parameter MUST declare it or differently-configured engines sharing
    #: a cache can silently release under-noised answers.
    privacy_params = ()

    def __init__(self):
        self._workload = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, workload):
        """Prepare the mechanism for the given workload; returns ``self``."""
        workload = as_workload(workload)
        self._workload = workload
        self._fit(workload)
        return self

    def _fit(self, workload):
        """Subclass hook; default is a no-op."""

    @property
    def workload(self):
        """The fitted workload (raises if ``fit`` has not been called)."""
        self._check_fitted()
        return self._workload

    @property
    def is_fitted(self):
        """True once ``fit`` has been called."""
        return self._workload is not None

    def _check_fitted(self):
        if self._workload is None:
            raise NotFittedError(f"{type(self).__name__} must be fitted before use")

    # ------------------------------------------------------------------ #
    # Answering
    # ------------------------------------------------------------------ #
    def answer(self, x, epsilon, rng=None):
        """One eps-differentially-private release of the batch answer.

        Parameters
        ----------
        x:
            Data vector of length ``n`` (the unit counts).
        epsilon:
            Privacy budget for this release.
        rng:
            ``None``, an int seed, or a :class:`numpy.random.Generator`.

        Returns
        -------
        numpy.ndarray
            Noisy answers of length ``m``.
        """
        self._check_fitted()
        x = as_vector(x, "x", size=self._workload.domain_size)
        epsilon = check_positive(epsilon, "epsilon")
        rng = ensure_rng(rng)
        return self._answer(x, epsilon, rng)

    @abc.abstractmethod
    def _answer(self, x, epsilon, rng):
        """Produce one noisy answer vector; inputs are pre-validated."""

    def answer_many(self, x, epsilons, rng=None):
        """``k`` independent releases of ``W x`` as a ``(k, m)`` array.

        Row ``i`` is an ``epsilons[i]``-DP release distributed exactly like
        ``answer(x, epsilons[i])``; the releases compose sequentially (total
        cost ``sum(epsilons)``). Mechanisms exposing a
        :meth:`release_operator` draw the whole batch's noise in one
        ``(k, r)`` RNG call and recombine with a single GEMM; the RNG
        stream therefore advances differently from ``k`` separate
        ``answer`` calls (intentional — the distributions are identical).
        """
        self._check_fitted()
        x = as_vector(x, "x", size=self._workload.domain_size)
        epsilons = as_epsilon_batch(epsilons)
        rng = ensure_rng(rng)
        return self._answer_many(x, epsilons, rng)

    def _answer_many(self, x, epsilons, rng):
        """Batched release hook; inputs are pre-validated.

        Default: vectorise through the release operator when the mechanism
        has one, else loop over :meth:`_answer`.
        """
        operator = self.release_operator()
        if operator is not None:
            return operator.answer_many(operator.strategy_answers(x), epsilons, rng)
        return np.stack([self._answer(x, epsilon, rng) for epsilon in epsilons])

    # ------------------------------------------------------------------ #
    # Release operator (serving hot path)
    # ------------------------------------------------------------------ #
    def release_operator(self):
        """The release as a data-independent linear pipeline, or ``None``.

        Mechanisms whose release is ``B (L x + noise)`` return a
        :class:`repro.mechanisms.operator.ReleaseOperator` so the serving
        layer can precompute ``L x`` per data epoch and batch noise draws;
        mechanisms built on fast transforms (WM, HM) keep the default
        ``None`` and are served through :meth:`answer`. Only meaningful
        once fitted.
        """
        return None

    # ------------------------------------------------------------------ #
    # Privacy cost
    # ------------------------------------------------------------------ #
    def release_cost(self, epsilon):
        """The typed :class:`~repro.privacy.cost.NoiseCost` of one release.

        Operator-backed mechanisms delegate to
        :meth:`ReleaseOperator.cost`, which records the noise family,
        calibrated magnitude and sensitivity alongside the (eps, delta)
        guarantee. Mechanisms without an operator fall back to the family
        the scalar accountants historically assumed from
        :attr:`requires_delta` — the same (eps, delta) floats, now
        self-describing. Subclasses with richer structure (subsampling,
        custom calibration) override this.
        """
        epsilon = check_positive(epsilon, "epsilon")
        operator = self.release_operator()
        if operator is not None and operator.noise != "none":
            return operator.cost(epsilon)
        # No operator (or a zero-sensitivity "none" release): charge the
        # (eps, delta) the scalar engine always charged for this mechanism
        # — the declared delta, even when no noise is actually drawn.
        delta = float(getattr(self, "delta", 0.0)) if self.requires_delta else 0.0
        family = "gaussian" if delta > 0.0 else "laplace"
        if operator is not None:
            return NoiseCost(
                family=family, epsilon=epsilon, delta=delta, sensitivity=0.0
            )
        return NoiseCost(family=family, epsilon=epsilon, delta=delta)

    # ------------------------------------------------------------------ #
    # Spec protocol (disk plan-cache survival for custom mechanisms)
    # ------------------------------------------------------------------ #
    def to_spec(self):
        """Constructor arguments as a JSON-serializable dict.

        Mechanisms implementing this protocol can be archived inside a
        saved :class:`repro.engine.plan.ExecutionPlan` even when they are
        not in the built-in registry: the plan file stores
        ``{class, module, spec}`` and the loader rebuilds the mechanism
        with :meth:`from_spec` and refits it. The default raises — only
        mechanisms whose full configuration round-trips through plain JSON
        should opt in. Fitted state is NOT part of the spec; the loader
        restores it separately (or refits).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the spec protocol; "
            "override to_spec()/from_spec() to make it plan-cacheable"
        )

    @classmethod
    def from_spec(cls, spec):
        """Rebuild a mechanism from :meth:`to_spec` output.

        Default: the spec is the constructor keyword dict. Subclasses
        whose constructors take non-JSON arguments override this.
        """
        return cls(**dict(spec))

    # ------------------------------------------------------------------ #
    # Error accounting
    # ------------------------------------------------------------------ #
    def expected_squared_error(self, epsilon):
        """Analytic expected total squared error ``E ||y - W x||^2``.

        Subclasses with a closed form override this; the default raises.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no analytic error formula; "
            "use empirical_squared_error"
        )

    def average_expected_error(self, epsilon):
        """Per-query analytic expected error (total divided by ``m``),
        the paper's *Average Squared Error* in expectation."""
        self._check_fitted()
        return self.expected_squared_error(epsilon) / self._workload.num_queries

    def empirical_squared_error(self, x, epsilon, trials=20, rng=None):
        """Monte-Carlo total squared error, averaged over ``trials`` runs.

        This is the measurement protocol of Section 6: each algorithm is
        executed repeatedly (20 times in the paper) and the mean squared L2
        distance to the exact answers is reported. The trials run through
        the batched :meth:`answer_many` path — one RNG draw and one GEMM
        for operator-backed mechanisms — so the RNG stream differs from the
        historical per-trial loop (the per-trial distribution does not).
        """
        self._check_fitted()
        trials = check_positive_int(trials, "trials")
        x = as_vector(x, "x", size=self._workload.domain_size)
        epsilon = check_positive(epsilon, "epsilon")
        rng = ensure_rng(rng)
        exact = self._workload.answer(x)
        noisy = self._answer_many(x, np.full(trials, epsilon), rng)
        residual = noisy - exact[None, :]
        return float(np.sum(residual * residual)) / trials

    def empirical_average_error(self, x, epsilon, trials=20, rng=None):
        """Per-query Monte-Carlo error (the figure-axis metric)."""
        self._check_fitted()
        sse = self.empirical_squared_error(x, epsilon, trials=trials, rng=rng)
        return sse / self._workload.num_queries

    # ------------------------------------------------------------------ #
    # Plan metadata
    # ------------------------------------------------------------------ #
    def plan_metadata(self):
        """Facts an :class:`repro.engine.plan.ExecutionPlan` reports about
        this mechanism: class, label, privacy model, fitted-workload
        identity. Subclasses extend with mechanism-specific structure
        (decomposition rank, noise calibration, ...) — everything returned
        must be JSON-serializable.
        """
        meta = {
            "class": type(self).__name__,
            "name": self.name,
            "privacy_model": "(eps, delta)-DP" if self.requires_delta else "pure eps-DP",
            "is_fitted": self.is_fitted,
        }
        if self.requires_delta:
            meta["delta"] = float(getattr(self, "delta", 0.0))
        if self.is_fitted:
            meta["workload_shape"] = list(self._workload.shape)
            meta["workload_digest"] = self._workload.content_digest
        return meta

    def __repr__(self):
        fitted = f"fitted shape={self._workload.shape}" if self.is_fitted else "unfitted"
        return f"{type(self).__name__}({fitted})"
