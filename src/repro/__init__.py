"""repro — reproduction of the Low-Rank Mechanism (Yuan et al., VLDB 2012).

Answers batches of linear counting queries under eps-differential privacy by
decomposing the workload matrix ``W = B L`` and injecting Laplace noise into
the low-rank intermediate ``L x`` (the Low-Rank Mechanism), alongside full
implementations of the baselines it is evaluated against: the Laplace
mechanism (noise on data and on results), the Wavelet Mechanism, the
Hierarchical Mechanism and the Matrix Mechanism.

Quickstart::

    import numpy as np
    from repro import LowRankMechanism, wrelated

    workload = wrelated(m=64, n=256, s=10, seed=0)
    x = np.random.default_rng(1).integers(0, 100, 256).astype(float)
    mech = LowRankMechanism(gamma=1e-2).fit(workload)
    noisy_answers = mech.answer(x, epsilon=1.0, rng=2)
"""

from repro.core.alm import (
    Decomposition,
    decompose_workload,
    decompose_workload_operator,
)
from repro.core.bounds import (
    approximation_ratio,
    bound_summary,
    hardt_talwar_lower_bound,
    lrm_error_upper_bound,
    relaxed_error_bound,
)
from repro.core.kron import KronLowRankMechanism
from repro.core.lrm import GaussianLowRankMechanism, LowRankMechanism
from repro.data.datasets import load_dataset, net_trace, search_logs, social_network
from repro.data.histogram import DomainMapper, grid_histogram_from_records, histogram_from_records
from repro.engine import (
    ExecutionPlan,
    PlanCache,
    PrivateQueryEngine,
    Release,
    build_plan,
    rank_mechanisms,
    select_mechanism,
)
from repro.data.transforms import merge_to_domain
from repro.exceptions import (
    DecompositionError,
    NotFittedError,
    PrivacyBudgetError,
    ReproError,
    ValidationError,
)
from repro.analysis.postprocess import postprocess_answers, project_consistent
from repro.io.serialization import (
    load_decomposition,
    load_fitted_lrm,
    load_plan,
    save_decomposition,
    save_fitted_lrm,
    save_plan,
)
from repro.mechanisms import (
    GaussianNoiseOnDataMechanism,
    GaussianNoiseOnResultsMechanism,
    HierarchicalMechanism,
    LaplaceMechanism,
    MatrixMechanism,
    Mechanism,
    NoiseOnDataMechanism,
    NoiseOnResultsMechanism,
    SVDStrategyMechanism,
    StrategyMechanism,
    WaveletMechanism,
    make_mechanism,
)
from repro.privacy.accountant import (
    ApproxDPAccountant,
    BudgetAccountant,
    PureDPAccountant,
    make_accountant,
)
from repro.privacy.budget import PrivacyBudget
from repro.workloads import (
    Workload,
    allrange_workload,
    identity_workload,
    marginals_workload,
    prefix_workload,
    sliding_window_workload,
    total_workload,
    wdiscrete,
    workload_by_name,
    wrange,
    wrelated,
)

__version__ = "1.0.0"

__all__ = [
    "ApproxDPAccountant",
    "BudgetAccountant",
    "Decomposition",
    "DecompositionError",
    "DomainMapper",
    "ExecutionPlan",
    "GaussianLowRankMechanism",
    "GaussianNoiseOnDataMechanism",
    "GaussianNoiseOnResultsMechanism",
    "HierarchicalMechanism",
    "KronLowRankMechanism",
    "LaplaceMechanism",
    "LowRankMechanism",
    "MatrixMechanism",
    "Mechanism",
    "NoiseOnDataMechanism",
    "NoiseOnResultsMechanism",
    "NotFittedError",
    "PlanCache",
    "PrivacyBudget",
    "PrivacyBudgetError",
    "PrivateQueryEngine",
    "PureDPAccountant",
    "Release",
    "ReproError",
    "SVDStrategyMechanism",
    "StrategyMechanism",
    "ValidationError",
    "WaveletMechanism",
    "Workload",
    "__version__",
    "allrange_workload",
    "approximation_ratio",
    "bound_summary",
    "build_plan",
    "decompose_workload",
    "decompose_workload_operator",
    "grid_histogram_from_records",
    "hardt_talwar_lower_bound",
    "histogram_from_records",
    "identity_workload",
    "load_dataset",
    "load_decomposition",
    "load_fitted_lrm",
    "load_plan",
    "lrm_error_upper_bound",
    "make_accountant",
    "make_mechanism",
    "marginals_workload",
    "merge_to_domain",
    "net_trace",
    "postprocess_answers",
    "prefix_workload",
    "project_consistent",
    "rank_mechanisms",
    "relaxed_error_bound",
    "save_decomposition",
    "save_fitted_lrm",
    "save_plan",
    "select_mechanism",
    "sliding_window_workload",
    "search_logs",
    "social_network",
    "total_workload",
    "wdiscrete",
    "workload_by_name",
    "wrange",
    "wrelated",
]
