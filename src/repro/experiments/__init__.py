"""Experiment harnesses reproducing the paper's evaluation (Section 6)."""

from repro.experiments.config import (
    BENCH_GRID,
    DEFAULTS,
    FULL_GRID,
    PARAMETER_GRID,
    REDUCED_GRID,
    default_gamma,
    grid_for_scale,
    resolve_scale,
)
from repro.experiments.figures import (
    ALL_FIGURES,
    figure2_gamma,
    figure3_rank_ratio,
    figure4_domain_size_wdiscrete,
    figure5_domain_size_wrange,
    figure6_domain_size_wrelated,
    figure7_query_size_wrange,
    figure8_query_size_wrelated,
    figure9_rank_s,
)
from repro.experiments.reporting import ascii_chart, format_series, format_table, summarize_result
from repro.experiments.runner import ExperimentResult, dataset_vector, run_comparison_point

__all__ = [
    "ALL_FIGURES",
    "BENCH_GRID",
    "DEFAULTS",
    "ExperimentResult",
    "FULL_GRID",
    "PARAMETER_GRID",
    "REDUCED_GRID",
    "ascii_chart",
    "dataset_vector",
    "default_gamma",
    "figure2_gamma",
    "figure3_rank_ratio",
    "figure4_domain_size_wdiscrete",
    "figure5_domain_size_wrange",
    "figure6_domain_size_wrelated",
    "figure7_query_size_wrange",
    "figure8_query_size_wrelated",
    "figure9_rank_s",
    "format_series",
    "format_table",
    "grid_for_scale",
    "resolve_scale",
    "run_comparison_point",
    "summarize_result",
]
