"""Generic experiment running utilities shared by all figure harnesses."""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.comparison import compare_mechanisms
from repro.data.datasets import load_dataset
from repro.data.transforms import merge_to_domain
from repro.exceptions import ValidationError
from repro.linalg.validation import ensure_rng

__all__ = ["ExperimentResult", "dataset_vector", "run_comparison_point"]


@dataclass
class ExperimentResult:
    """Structured output of one experiment (one paper figure).

    ``rows`` is a list of flat dicts; every row carries at least
    ``mechanism`` and the sweep parameter named by ``sweep_parameter``,
    plus ``average_squared_error`` (None for failures).
    """

    name: str
    sweep_parameter: str
    rows: list = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def add_row(self, **row):
        """Append one measurement row."""
        self.rows.append(dict(row))

    def mechanisms(self):
        """Distinct mechanism labels present, in first-seen order."""
        seen = []
        for row in self.rows:
            label = row.get("mechanism")
            if label is not None and label not in seen:
                seen.append(label)
        return seen

    def series(self, mechanism, value_key="average_squared_error", **filters):
        """(xs, ys) arrays for one mechanism, filtered by extra row keys.

        Rows whose value is ``None`` (mechanism failures) are skipped.
        """
        xs, ys = [], []
        for row in self.rows:
            if row.get("mechanism") != mechanism:
                continue
            if any(row.get(key) != value for key, value in filters.items()):
                continue
            value = row.get(value_key)
            if value is None:
                continue
            xs.append(row[self.sweep_parameter])
            ys.append(value)
        return np.asarray(xs), np.asarray(ys)

    def to_json(self, path=None, indent=2):
        """Serialise to JSON (returns the string; writes when ``path``)."""
        payload = {
            "name": self.name,
            "sweep_parameter": self.sweep_parameter,
            "metadata": self.metadata,
            "rows": self.rows,
        }
        text = json.dumps(payload, indent=indent, default=float)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    def to_csv(self, path=None):
        """Serialise rows to CSV (returns the string; writes when ``path``)."""
        if not self.rows:
            raise ValidationError("no rows to serialise")
        columns = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        lines = [",".join(columns)]
        for row in self.rows:
            lines.append(",".join("" if row.get(c) is None else str(row.get(c)) for c in columns))
        text = "\n".join(lines) + "\n"
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text


def dataset_vector(dataset, n, seed=2012):
    """Load a named dataset and merge it down to domain size ``n``.

    Accepts a dataset name (Section 6 datasets) or a raw vector, which is
    merged (or rejected if shorter than ``n``).
    """
    if isinstance(dataset, str):
        raw = load_dataset(dataset, seed=seed)
    else:
        raw = np.asarray(dataset, dtype=np.float64)
    return merge_to_domain(raw, n)


def run_comparison_point(
    result,
    workload,
    x,
    epsilon,
    mechanisms,
    trials,
    rng,
    mechanism_kwargs=None,
    **row_extras,
):
    """Measure ``mechanisms`` at one sweep point and append rows to ``result``."""
    rows = compare_mechanisms(
        workload,
        x,
        epsilon,
        mechanisms=mechanisms,
        trials=trials,
        rng=rng,
        mechanism_kwargs=mechanism_kwargs,
    )
    for row in rows:
        result.add_row(
            mechanism=row.mechanism,
            average_squared_error=row.average_squared_error,
            expected_average_error=row.expected_average_error,
            fit_seconds=row.fit_seconds,
            answer_seconds=row.answer_seconds,
            failure=row.failure,
            epsilon=epsilon,
            **row_extras,
        )
    return rows
