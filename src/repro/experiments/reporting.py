"""Text reporting: render ExperimentResults as the paper's tables/series."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.experiments.runner import ExperimentResult

__all__ = ["format_table", "format_series", "summarize_result", "ascii_chart"]


def _format_value(value, width=12):
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float):
        return f"{value:.4g}".rjust(width)
    return str(value).rjust(width)


def format_table(result, value_key="average_squared_error", group_keys=()):
    """Render an :class:`ExperimentResult` as a fixed-width text table.

    Rows are sweep values, columns are mechanisms; one table per distinct
    combination of ``group_keys`` (e.g. ``("dataset",)`` to mirror the
    paper's per-dataset sub-figures).
    """
    if not isinstance(result, ExperimentResult):
        raise ValidationError("format_table expects an ExperimentResult")
    if not result.rows:
        return f"{result.name}: (no rows)\n"

    group_keys = tuple(group_keys)
    groups = []
    for row in result.rows:
        key = tuple(row.get(k) for k in group_keys)
        if key not in groups:
            groups.append(key)

    mechanisms = result.mechanisms()
    sweep = result.sweep_parameter
    lines = [f"== {result.name} ({value_key}) =="]
    for group in groups:
        if group_keys:
            label = ", ".join(f"{k}={v}" for k, v in zip(group_keys, group))
            lines.append(f"-- {label} --")
        sweep_values = []
        for row in result.rows:
            if tuple(row.get(k) for k in group_keys) != group:
                continue
            if row[sweep] not in sweep_values:
                sweep_values.append(row[sweep])
        header = sweep.rjust(12) + "".join(name.rjust(12) for name in mechanisms)
        lines.append(header)
        for value in sweep_values:
            cells = [_format_value(value)]
            for name in mechanisms:
                cell = None
                for row in result.rows:
                    if (
                        row.get("mechanism") == name
                        and row[sweep] == value
                        and tuple(row.get(k) for k in group_keys) == group
                    ):
                        cell = row.get(value_key)
                        break
                cells.append(_format_value(cell))
            lines.append("".join(cells))
    return "\n".join(lines) + "\n"


def format_series(result, mechanism, value_key="average_squared_error", **filters):
    """One mechanism's sweep series as aligned ``x y`` text lines."""
    xs, ys = result.series(mechanism, value_key=value_key, **filters)
    lines = [f"{result.name} / {mechanism} ({value_key})"]
    for x, y in zip(xs, ys):
        lines.append(f"  {x!s:>10}  {y:.6g}")
    return "\n".join(lines) + "\n"


def ascii_chart(
    result,
    mechanisms=None,
    value_key="average_squared_error",
    width=64,
    height=16,
    log_y=True,
    **filters,
):
    """Render an ExperimentResult as a terminal line chart (no matplotlib).

    One plot character per mechanism (its first letter); the y axis is
    log10 of the error by default, matching the paper's log-scale figures.
    Returns the chart as a string.
    """
    if not isinstance(result, ExperimentResult):
        raise ValidationError("ascii_chart expects an ExperimentResult")
    mechanisms = list(mechanisms) if mechanisms is not None else result.mechanisms()
    series = {}
    for name in mechanisms:
        xs, ys = result.series(name, value_key=value_key, **filters)
        if ys.size:
            series[name] = (np.asarray(xs, dtype=float), np.asarray(ys, dtype=float))
    if not series:
        return f"{result.name}: (no data)\n"

    all_y = np.concatenate([ys for _, ys in series.values()])
    if log_y:
        all_y = np.log10(np.maximum(all_y, 1e-300))
    y_min, y_max = float(all_y.min()), float(all_y.max())
    if y_max - y_min < 1e-12:
        y_max = y_min + 1.0
    all_x = np.concatenate([xs for xs, _ in series.values()])
    x_min, x_max = float(all_x.min()), float(all_x.max())
    if x_max - x_min < 1e-12:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, (xs, ys) in series.items():
        marker = name[0].upper()
        values = np.log10(np.maximum(ys, 1e-300)) if log_y else ys
        for x, y in zip(xs, values):
            col = int(round((x - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((y - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = marker

    axis_label = "log10(error)" if log_y else "error"
    lines = [f"{result.name}: {value_key} vs {result.sweep_parameter} ({axis_label})"]
    lines.append(f"  top={y_max:.2f}")
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width)
    lines.append(f"  bottom={y_min:.2f}   x: {x_min:g} .. {x_max:g}")
    legend = ", ".join(f"{name[0].upper()}={name}" for name in series)
    lines.append(f"  legend: {legend}")
    return "\n".join(lines) + "\n"


def summarize_result(result, value_key="average_squared_error"):
    """Compact per-mechanism summary: geometric-mean error over the sweep.

    Useful for quick 'who wins overall' checks; the geometric mean matches
    the figures' log-scale comparison.
    """
    summary = {}
    for mechanism in result.mechanisms():
        _, ys = result.series(mechanism, value_key=value_key)
        if ys.size == 0:
            summary[mechanism] = None
            continue
        positive = ys[ys > 0]
        summary[mechanism] = float(np.exp(np.mean(np.log(positive)))) if positive.size else 0.0
    return summary
