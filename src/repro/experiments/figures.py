"""Experiment harnesses reproducing every figure of the paper (Figures 2-9).

Each ``figure*`` function regenerates one paper figure as an
:class:`repro.experiments.runner.ExperimentResult` holding the same series
the paper plots. The functions accept a ``scale`` argument:

* ``"reduced"`` (default) — trimmed grids that finish in minutes and
  preserve every qualitative shape;
* ``"full"`` — the paper's Table 1 grid (hours of compute, like the
  original Matlab runs). Also selectable via ``REPRO_FULL_SCALE=1``.

All randomness is seeded; rerunning a harness reproduces its numbers.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.alm import decompose_workload
from repro.core.lrm import LowRankMechanism
from repro.experiments.config import DEFAULTS, grid_for_scale
from repro.experiments.runner import ExperimentResult, dataset_vector, run_comparison_point
from repro.linalg.validation import ensure_rng
from repro.workloads.generators import workload_by_name

__all__ = [
    "figure2_gamma",
    "figure3_rank_ratio",
    "figure4_domain_size_wdiscrete",
    "figure5_domain_size_wrange",
    "figure6_domain_size_wrelated",
    "figure7_query_size_wrange",
    "figure8_query_size_wrelated",
    "figure9_rank_s",
    "ALL_FIGURES",
]

_PAPER_DATASETS = ("search_logs", "net_trace", "social_network")
_PAPER_WORKLOADS = ("WDiscrete", "WRange", "WRelated")


def _workload_args(kind, m, n, s_ratio, seed):
    """Common kwargs for :func:`workload_by_name` per workload kind."""
    kwargs = {"m": m, "n": n, "seed": seed}
    if str(kind).lower() == "wrelated":
        kwargs["s"] = max(int(round(s_ratio * min(m, n))), 1)
    return kwargs


def _lrm_kwargs(grid):
    """LRM solver budgets matched to the experiment scale."""
    return dict(grid["lrm_budget"])


# --------------------------------------------------------------------- #
# Figure 2: LRM error and time vs relaxation gamma
# --------------------------------------------------------------------- #
def figure2_gamma(
    dataset="search_logs",
    workload_kinds=_PAPER_WORKLOADS,
    scale=None,
    seed=DEFAULTS["seed"],
):
    """Figure 2: effect of the relaxation parameter ``gamma`` on LRM.

    For each workload kind and each ``gamma``, the workload is decomposed
    once (the decomposition does not depend on ``epsilon``) and the
    empirical error is measured for every privacy budget; decomposition
    wall-clock time is recorded per gamma. Expected shapes: error flat in
    gamma over five orders of magnitude, time decreasing with gamma, error
    scaling as ``1/eps^2``.
    """
    grid = grid_for_scale(scale)
    n, m = grid["n"], grid["m"]
    result = ExperimentResult(
        name="figure2",
        sweep_parameter="gamma",
        metadata={"dataset": dataset, "n": n, "m": m, "trials": grid["trials"]},
    )
    x = dataset_vector(dataset, n, seed=seed)
    rng = ensure_rng(seed)
    for kind in workload_kinds:
        workload = workload_by_name(kind, **_workload_args(kind, m, n, DEFAULTS["s_ratio"], seed))
        for gamma in grid["gammas"]:
            started = time.perf_counter()
            mechanism = LowRankMechanism(
                gamma=gamma, gamma_is_relative=False, **_lrm_kwargs(grid)
            ).fit(workload)
            fit_seconds = time.perf_counter() - started
            for epsilon in grid["epsilons"]:
                error = mechanism.empirical_average_error(
                    x, epsilon, trials=grid["trials"], rng=rng
                )
                result.add_row(
                    mechanism="LRM",
                    workload=kind,
                    gamma=gamma,
                    epsilon=epsilon,
                    average_squared_error=error,
                    fit_seconds=fit_seconds,
                )
    return result


# --------------------------------------------------------------------- #
# Figure 3: LRM error and time vs rank ratio r / rank(W)
# --------------------------------------------------------------------- #
def figure3_rank_ratio(
    dataset="search_logs",
    workload_kinds=_PAPER_WORKLOADS,
    scale=None,
    seed=DEFAULTS["seed"],
):
    """Figure 3: effect of the decomposition rank ``r = ratio * rank(W)``.

    Expected shapes: error up to orders of magnitude worse for ratio < 1
    (the decomposition cannot represent W), flat for ratio >= 1.2, with
    decomposition time growing with the ratio.
    """
    grid = grid_for_scale(scale)
    n, m = grid["n"], grid["m"]
    result = ExperimentResult(
        name="figure3",
        sweep_parameter="rank_ratio",
        metadata={"dataset": dataset, "n": n, "m": m, "trials": grid["trials"]},
    )
    x = dataset_vector(dataset, n, seed=seed)
    rng = ensure_rng(seed)
    for kind in workload_kinds:
        workload = workload_by_name(kind, **_workload_args(kind, m, n, DEFAULTS["s_ratio"], seed))
        base_rank = workload.rank
        for ratio in grid["rank_ratios"]:
            rank = max(int(round(ratio * base_rank)), 1)
            started = time.perf_counter()
            mechanism = LowRankMechanism(rank=rank, **_lrm_kwargs(grid)).fit(workload)
            fit_seconds = time.perf_counter() - started
            for epsilon in grid["epsilons"]:
                error = mechanism.empirical_average_error(
                    x, epsilon, trials=grid["trials"], rng=rng
                )
                result.add_row(
                    mechanism="LRM",
                    workload=kind,
                    rank_ratio=ratio,
                    rank=rank,
                    epsilon=epsilon,
                    average_squared_error=error,
                    fit_seconds=fit_seconds,
                    structural_error=mechanism.decomposition.residual_norm,
                )
    return result


# --------------------------------------------------------------------- #
# Figures 4-6: all mechanisms vs domain size n
# --------------------------------------------------------------------- #
def _figure_domain_size(figure_name, workload_kind, datasets, scale, seed):
    grid = grid_for_scale(scale)
    m = grid["m"]
    epsilon = DEFAULTS["epsilon"]
    result = ExperimentResult(
        name=figure_name,
        sweep_parameter="n",
        metadata={"workload": workload_kind, "m": m, "epsilon": epsilon, "trials": grid["trials"]},
    )
    rng = ensure_rng(seed)
    lrm_kwargs = _lrm_kwargs(grid)
    for dataset in datasets:
        for n in grid["ns"]:
            workload = workload_by_name(
                workload_kind, **_workload_args(workload_kind, m, n, DEFAULTS["s_ratio"], seed)
            )
            x = dataset_vector(dataset, n, seed=seed)
            mechanisms = ["LM", "WM", "HM", "LRM"]
            # MM's O(n^3) solver is capped, mirroring its exclusion from the
            # larger paper configurations.
            if n <= grid["mm_max_n"]:
                mechanisms.insert(0, "MM")
            run_comparison_point(
                result,
                workload,
                x,
                epsilon,
                mechanisms=mechanisms,
                trials=grid["trials"],
                rng=rng,
                mechanism_kwargs={"LRM": lrm_kwargs},
                dataset=dataset,
                n=n,
            )
    return result


def figure4_domain_size_wdiscrete(datasets=_PAPER_DATASETS, scale=None, seed=DEFAULTS["seed"]):
    """Figure 4: mechanisms vs domain size on WDiscrete (eps = 0.1).

    Expected shapes: MM worst; LM competitive at small n; LRM's error stops
    growing once n exceeds the workload rank cap min(m, n).
    """
    return _figure_domain_size("figure4", "WDiscrete", datasets, scale, seed)


def figure5_domain_size_wrange(datasets=_PAPER_DATASETS, scale=None, seed=DEFAULTS["seed"]):
    """Figure 5: mechanisms vs domain size on WRange (eps = 0.1).

    Expected shapes: WM/HM beat LM at large n (their log-n strategies suit
    ranges); LRM best overall.
    """
    return _figure_domain_size("figure5", "WRange", datasets, scale, seed)


def figure6_domain_size_wrelated(datasets=_PAPER_DATASETS, scale=None, seed=DEFAULTS["seed"]):
    """Figure 6: mechanisms vs domain size on WRelated (eps = 0.1).

    Expected shapes: LRM wins by growing margins (orders of magnitude at
    large n) because rank(W) = s stays fixed while the others scale with n.
    """
    return _figure_domain_size("figure6", "WRelated", datasets, scale, seed)


# --------------------------------------------------------------------- #
# Figures 7-8: mechanisms vs query count m
# --------------------------------------------------------------------- #
def _figure_query_size(figure_name, workload_kind, datasets, scale, seed):
    grid = grid_for_scale(scale)
    n = grid["n"]
    epsilon = DEFAULTS["epsilon"]
    result = ExperimentResult(
        name=figure_name,
        sweep_parameter="m",
        metadata={"workload": workload_kind, "n": n, "epsilon": epsilon, "trials": grid["trials"]},
    )
    rng = ensure_rng(seed)
    lrm_kwargs = _lrm_kwargs(grid)
    for dataset in datasets:
        x = dataset_vector(dataset, n, seed=seed)
        for m in grid["ms"]:
            if m > n:
                continue  # the paper studies m <= n
            workload = workload_by_name(
                workload_kind, **_workload_args(workload_kind, m, n, DEFAULTS["s_ratio"], seed)
            )
            run_comparison_point(
                result,
                workload,
                x,
                epsilon,
                mechanisms=["LM", "WM", "HM", "LRM"],
                trials=grid["trials"],
                rng=rng,
                mechanism_kwargs={"LRM": lrm_kwargs},
                dataset=dataset,
                m=m,
            )
    return result


def figure7_query_size_wrange(datasets=_PAPER_DATASETS, scale=None, seed=DEFAULTS["seed"]):
    """Figure 7: mechanisms vs batch size m on WRange (eps = 0.1).

    Expected shapes: LRM best for m << n; the gap closes as m approaches n
    (random ranges lose the low-rank property), where WM is competitive.
    """
    return _figure_query_size("figure7", "WRange", datasets, scale, seed)


def figure8_query_size_wrelated(datasets=_PAPER_DATASETS, scale=None, seed=DEFAULTS["seed"]):
    """Figure 8: mechanisms vs batch size m on WRelated (eps = 0.1).

    Expected shapes: LRM dominates at every m because rank(W) = s stays low
    regardless of m.
    """
    return _figure_query_size("figure8", "WRelated", datasets, scale, seed)


# --------------------------------------------------------------------- #
# Figure 9: mechanisms vs base-query count s (WRelated rank)
# --------------------------------------------------------------------- #
def figure9_rank_s(datasets=_PAPER_DATASETS, scale=None, seed=DEFAULTS["seed"]):
    """Figure 9: effect of the workload rank ``s = ratio * min(m, n)``.

    Expected shapes: LRM's advantage is largest at small s and decays as
    s approaches min(m, n); the other mechanisms are s-insensitive.
    """
    grid = grid_for_scale(scale)
    n, m = grid["n"], grid["m"]
    epsilon = DEFAULTS["epsilon"]
    result = ExperimentResult(
        name="figure9",
        sweep_parameter="s_ratio",
        metadata={"workload": "WRelated", "n": n, "m": m, "epsilon": epsilon},
    )
    rng = ensure_rng(seed)
    lrm_kwargs = _lrm_kwargs(grid)
    for dataset in datasets:
        x = dataset_vector(dataset, n, seed=seed)
        for s_ratio in grid["s_ratios"]:
            s = max(int(round(s_ratio * min(m, n))), 1)
            workload = workload_by_name("WRelated", m=m, n=n, s=s, seed=seed)
            run_comparison_point(
                result,
                workload,
                x,
                epsilon,
                mechanisms=["LM", "WM", "HM", "LRM"],
                trials=grid["trials"],
                rng=rng,
                mechanism_kwargs={"LRM": lrm_kwargs},
                dataset=dataset,
                s_ratio=s_ratio,
                s=s,
            )
    return result


#: Registry used by the CLI and the benchmark suite.
ALL_FIGURES = {
    "figure2": figure2_gamma,
    "figure3": figure3_rank_ratio,
    "figure4": figure4_domain_size_wdiscrete,
    "figure5": figure5_domain_size_wrange,
    "figure6": figure6_domain_size_wrelated,
    "figure7": figure7_query_size_wrange,
    "figure8": figure8_query_size_wrelated,
    "figure9": figure9_rank_s,
}
