"""Experiment configuration: Table 1 parameter grid and harness defaults.

``PARAMETER_GRID`` transcribes Table 1 of the paper. The paper marks default
values in bold, which the plain-text source does not preserve; the defaults
below follow the paper's explicit statements where available (rank ratio 1.2,
Section 6.1; 20 trials; eps = 0.1 for Figures 4-9) and otherwise pick the
mid-grid values noted in DESIGN.md.

The harness runs at three scales:

* **bench** — tiny grids used by the pytest-benchmark suite so that
  ``pytest benchmarks/`` completes in minutes;
* **reduced** (default) — grids trimmed so each figure finishes in minutes
  on a laptop while preserving every qualitative shape;
* **full** — the paper's grid; enable with environment variable
  ``REPRO_FULL_SCALE=1`` or ``scale="full"`` (hours, like the original
  Matlab runs).
"""

from __future__ import annotations

import os

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "PARAMETER_GRID",
    "DEFAULTS",
    "BENCH_GRID",
    "REDUCED_GRID",
    "FULL_GRID",
    "grid_for_scale",
    "resolve_scale",
    "default_gamma",
]

#: Table 1 of the paper, verbatim.
PARAMETER_GRID = {
    "gamma": (1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0),
    "rank_ratio": (0.8, 1.0, 1.2, 1.4, 1.7, 2.1, 2.5, 3.0, 3.6),
    "n": (128, 256, 512, 1024, 2048, 4096, 8192),
    "m": (64, 128, 256, 512, 1024),
    "s_ratio": (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    "epsilon": (1.0, 0.1, 0.01),
}

#: Default experiment parameters (see module docstring for provenance).
DEFAULTS = {
    "n": 512,
    "m": 256,
    "epsilon": 0.1,
    "rank_ratio": 1.2,
    "s_ratio": 0.4,
    "gamma": 1.0,
    "trials": 20,
    "seed": 2012,
}

#: Paper-scale sweep grid (Figures 2-9).
FULL_GRID = {
    "gammas": PARAMETER_GRID["gamma"],
    "rank_ratios": PARAMETER_GRID["rank_ratio"],
    "ns": PARAMETER_GRID["n"],
    "ms": PARAMETER_GRID["m"],
    "s_ratios": PARAMETER_GRID["s_ratio"],
    "epsilons": PARAMETER_GRID["epsilon"],
    "trials": 20,
    "n": DEFAULTS["n"],
    "m": DEFAULTS["m"],
    "mm_max_n": 1024,
    "lrm_budget": {},
}

#: Reduced grid: same parameters, trimmed ranges, fewer trials.
REDUCED_GRID = {
    "gammas": (1e-3, 1e-2, 1e-1, 1.0, 10.0),
    "rank_ratios": (0.8, 1.0, 1.2, 1.7, 2.5),
    "ns": (64, 128, 256, 512),
    "ms": (32, 64, 128),
    "s_ratios": (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
    "epsilons": (1.0, 0.1, 0.01),
    "trials": 5,
    "n": 256,
    "m": 64,
    "mm_max_n": 256,
    "lrm_budget": {"max_outer": 80, "max_inner": 5, "nesterov_iters": 40, "stall_iters": 20},
}

#: Benchmark grid: the smallest sweeps that still exhibit every shape.
BENCH_GRID = {
    "gammas": (1e-3, 1e-1, 10.0),
    "rank_ratios": (0.8, 1.2, 2.5),
    "ns": (64, 128, 256),
    "ms": (32, 64),
    "s_ratios": (0.1, 0.4, 1.0),
    "epsilons": (1.0, 0.1),
    "trials": 3,
    "n": 256,
    "m": 32,
    "mm_max_n": 128,
    "lrm_budget": {"max_outer": 45, "max_inner": 4, "nesterov_iters": 30, "stall_iters": 15},
}

_GRIDS = {"full": FULL_GRID, "reduced": REDUCED_GRID, "bench": BENCH_GRID}


def resolve_scale(scale=None):
    """Resolve the experiment scale: explicit argument beats the
    ``REPRO_FULL_SCALE`` environment variable, default is "reduced"."""
    if scale is None:
        scale = "full" if os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0") else "reduced"
    scale = str(scale).lower()
    if scale not in _GRIDS:
        raise ValidationError(f"scale must be one of {sorted(_GRIDS)}, got {scale!r}")
    return scale


def grid_for_scale(scale=None):
    """The sweep grid for the requested scale (a fresh dict copy)."""
    return dict(_GRIDS[resolve_scale(scale)])


def default_gamma(workload_matrix, relative=1e-2):
    """Scale-aware relaxation tolerance: ``relative * ||W||_F``.

    The paper sweeps absolute ``gamma`` values on one dataset (Figure 2);
    across heterogeneous workload scales a relative tolerance is more
    robust, and Figure 2 shows the error is insensitive to gamma across
    five orders of magnitude.
    """
    norm = float(np.linalg.norm(np.asarray(workload_matrix, dtype=np.float64)))
    return max(relative * norm, 1e-8)
