"""Noise primitives: Laplace (Section 3.1) and Gaussian (the (eps, delta)
extension).

The Laplace Mechanism adds i.i.d. zero-mean Laplace noise with scale
``Delta / eps`` to each coordinate of a query answer, where ``Delta`` is the
L1 sensitivity of the query set. The variance of ``Lap(s)`` is ``2 s^2``, so
the expected squared error of an m-dimensional answer is ``2 m Delta^2/eps^2``.

The Gaussian mechanism supports the relaxed (eps, delta)-differential
privacy used by the L2 branch of the matrix-mechanism line (and flagged as
future work in the paper): noise ``N(0, sigma^2)`` calibrated to the *L2*
sensitivity. The default calibration is the **analytic Gaussian mechanism**
(Balle & Wang, ICML 2018): the smallest sigma whose exact privacy profile

    P(Z >= Delta/(2 sigma) - eps sigma/Delta)
        - e^eps P(Z >= Delta/(2 sigma) + eps sigma/Delta) <= delta

holds (``Z`` standard normal), found by bisection — valid for **every**
``eps > 0``. The classical Dwork & Roth calibration
``sigma = Delta_2 sqrt(2 ln(1.25/delta)) / eps`` is available as
``mode="classical"``; it is only a sufficient condition for ``eps < 1`` and
is rejected outside that range. Note that the analytic sigma is **not**
proportional to ``1/eps``, so batched releases compute one calibrated sigma
per epsilon (:func:`gaussian_sigma_batch`) instead of scaling a unit-eps
sigma.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy.special import log_ndtr, ndtr

from repro.exceptions import ValidationError
from repro.linalg.validation import (
    as_epsilon_batch,
    check_positive,
    check_positive_int,
    ensure_rng,
)

__all__ = [
    "laplace_noise",
    "laplace_noise_batch",
    "laplace_scale",
    "laplace_variance",
    "expected_squared_noise",
    "gaussian_sigma",
    "gaussian_sigma_batch",
    "gaussian_profile_delta",
    "gaussian_noise",
    "gaussian_noise_batch",
    "expected_squared_gaussian_noise",
    "discrete_gaussian_noise",
    "discrete_gaussian_noise_batch",
]


def _batch_scales(unit_scale, epsilons):
    """Per-release noise scales ``unit_scale / eps_i`` as a ``(k, 1)``
    column, ready to broadcast against a ``(k, size)`` draw. ``unit_scale``
    is the noise scale at ``eps = 1`` — the scale formulas divide by
    epsilon last, so this is bit-identical to the per-release calibration.
    Only valid for noise families whose scale is proportional to ``1/eps``
    (Laplace; *not* the analytic Gaussian calibration).
    """
    epsilons = as_epsilon_batch(epsilons)
    return (unit_scale / epsilons)[:, None]


def laplace_scale(sensitivity, epsilon):
    """Noise scale ``Delta / eps`` calibrated for eps-differential privacy."""
    sensitivity = check_positive(sensitivity, "sensitivity")
    epsilon = check_positive(epsilon, "epsilon")
    return sensitivity / epsilon


def laplace_variance(scale):
    """Variance of a Laplace variable with the given scale: ``2 scale^2``."""
    scale = check_positive(scale, "scale")
    return 2.0 * scale * scale


def laplace_noise(size, sensitivity, epsilon, rng=None):
    """Draw ``size`` i.i.d. Laplace samples with scale ``sensitivity/epsilon``.

    Parameters
    ----------
    size:
        Number of samples (positive int) or a shape tuple.
    sensitivity, epsilon:
        L1 sensitivity of the query set and the privacy budget.
    rng:
        ``None``, an int seed, or a :class:`numpy.random.Generator`.
    """
    if isinstance(size, tuple):
        for dim in size:
            check_positive_int(dim, "size dimension")
    else:
        size = (check_positive_int(size, "size"),)
    scale = laplace_scale(sensitivity, epsilon)
    rng = ensure_rng(rng)
    return rng.laplace(loc=0.0, scale=scale, size=size)


def laplace_noise_batch(size, sensitivity, epsilons, rng=None):
    """Draw Laplace noise for ``k`` releases in **one** RNG call.

    Returns a ``(k, size)`` array whose row ``i`` is i.i.d. Laplace noise
    with scale ``sensitivity / epsilons[i]`` — the batched form of
    :func:`laplace_noise` behind the vectorised multi-release serving path
    (``Mechanism.answer_many``). Row ``i`` is distributed exactly as a
    standalone ``laplace_noise(size, sensitivity, epsilons[i])`` draw; only
    the RNG stream position differs from ``k`` separate calls.
    """
    size = check_positive_int(size, "size")
    scales = _batch_scales(laplace_scale(sensitivity, 1.0), epsilons)
    rng = ensure_rng(rng)
    return rng.laplace(loc=0.0, scale=scales, size=(scales.shape[0], size))


def expected_squared_noise(count, sensitivity, epsilon):
    """Expected total squared error of adding Laplace noise to ``count``
    answers at the given sensitivity: ``2 * count * (Delta/eps)^2``."""
    count = check_positive_int(count, "count")
    scale = laplace_scale(sensitivity, epsilon)
    return float(count) * laplace_variance(scale)


# --------------------------------------------------------------------- #
# Gaussian calibration
# --------------------------------------------------------------------- #
def _check_failure_delta(delta):
    delta = check_positive(delta, "delta")
    if delta >= 1.0:
        raise ValidationError(f"delta must be < 1, got {delta}")
    return delta


def gaussian_profile_delta(sigma, l2_sensitivity, epsilon):
    """Exact privacy profile of the Gaussian mechanism at ``epsilon``.

    The smallest ``delta`` for which ``N(0, sigma^2)`` noise on a query of
    L2 sensitivity ``Delta_2`` is (eps, delta)-DP (Balle & Wang 2018,
    Theorem 8):

        delta(sigma) = Phi(Delta/(2 sigma) - eps sigma/Delta)
                       - e^eps Phi(-Delta/(2 sigma) - eps sigma/Delta)

    with ``Phi`` the standard normal CDF. Decreasing in ``sigma``;
    vectorised over ``sigma`` and/or ``epsilon``. This is the condition the
    analytic calibration inverts, exposed so tests (and auditors) can
    verify a calibrated sigma against the promised guarantee.
    """
    l2_sensitivity = check_positive(l2_sensitivity, "l2_sensitivity")
    sigma = np.asarray(sigma, dtype=np.float64)
    epsilon = np.asarray(epsilon, dtype=np.float64)
    ratio = sigma / l2_sensitivity
    with np.errstate(over="ignore", under="ignore", invalid="ignore"):
        a = 0.5 / ratio - epsilon * ratio
        b = 0.5 / ratio + epsilon * ratio
        # e^eps Phi(-b) in log space; the true product never exceeds 1, so
        # capping the exponent at 0 only suppresses overflow during
        # bracketing, never changes a meaningful value.
        tail = np.exp(np.minimum(epsilon + log_ndtr(-b), 0.0))
        profile = ndtr(a) - tail
    return profile


#: Bisection bracket (in log sigma/Delta) and iteration count for the
#: analytic calibration. The bracket covers eps from ~1e-18 to ~1e18 at any
#: delta representable in doubles; the fixed iteration count converges the
#: interval far below one ulp *and* keeps every batch element's search
#: independent of its neighbours, so a batch entry is bit-identical to the
#: same epsilon calibrated alone.
_ANALYTIC_LOG_BRACKET = (np.log(1e-20), np.log(1e30))
_ANALYTIC_ITERATIONS = 90


def _analytic_sigma_ratios(epsilons, delta):
    """Minimal ``sigma / Delta_2`` ratios satisfying the profile, per eps.

    Bisection on ``log(sigma/Delta)`` with the invariant that the upper
    endpoint always satisfies ``profile <= delta``; returning the upper
    endpoint therefore never under-noises (the interval at convergence is
    far below one ulp, so this costs no utility).
    """
    epsilons = np.asarray(epsilons, dtype=np.float64)
    lo = np.full(epsilons.shape, _ANALYTIC_LOG_BRACKET[0])
    hi = np.full(epsilons.shape, _ANALYTIC_LOG_BRACKET[1])
    if np.any(gaussian_profile_delta(np.exp(hi), 1.0, epsilons) > delta):
        raise ValidationError(
            "analytic Gaussian calibration bracket exhausted; epsilon/delta "
            "outside the calibratable range"
        )
    for _ in range(_ANALYTIC_ITERATIONS):
        mid = 0.5 * (lo + hi)
        too_small = gaussian_profile_delta(np.exp(mid), 1.0, epsilons) > delta
        lo = np.where(too_small, mid, lo)
        hi = np.where(too_small, hi, mid)
    return np.exp(hi)


#: Batches with at most this many *distinct* epsilons calibrate through the
#: lru-cached scalar path (one cache hit per distinct value on repeated
#: serving calls); larger spreads run one vectorised bisection instead of a
#: long Python loop of tiny ones.
_BATCH_CACHE_MAX_DISTINCT = 32


@lru_cache(maxsize=4096)
def _analytic_sigma_ratio_cached(epsilon, delta):
    """Scalar analytic ``sigma/Delta`` ratio, memoized for repeated releases.

    Computed through the same vectorised bisection as the batch path (on a
    one-element array), so a cached single-release sigma is bit-identical
    to the corresponding batch entry.
    """
    return float(_analytic_sigma_ratios(np.array([epsilon]), delta)[0])


def gaussian_sigma(l2_sensitivity, epsilon, delta, mode="analytic"):
    """Standard deviation calibrating the Gaussian mechanism to
    (eps, delta)-DP.

    ``mode="analytic"`` (default) is the analytic Gaussian mechanism of
    Balle & Wang (2018): the smallest sigma whose exact privacy profile
    (:func:`gaussian_profile_delta`) is at most ``delta`` — valid at every
    ``epsilon > 0``. ``mode="classical"`` is the Dwork & Roth (Thm A.1)
    formula ``Delta_2 sqrt(2 ln(1.25/delta)) / eps``, a sufficient
    condition only for ``eps < 1``; requesting it at ``eps >= 1`` raises
    (the formula silently under-noises there). Where both are valid the
    analytic sigma is never larger.
    """
    l2_sensitivity = check_positive(l2_sensitivity, "l2_sensitivity")
    epsilon = check_positive(epsilon, "epsilon")
    delta = _check_failure_delta(delta)
    if mode == "classical":
        if epsilon >= 1.0:
            raise ValidationError(
                "classical Gaussian calibration (Dwork & Roth Thm A.1) is "
                f"only valid for epsilon < 1, got {epsilon}; use the default "
                'mode="analytic" calibration'
            )
        return l2_sensitivity * np.sqrt(2.0 * np.log(1.25 / delta)) / epsilon
    if mode != "analytic":
        raise ValidationError(f"unknown Gaussian calibration mode {mode!r}")
    return l2_sensitivity * _analytic_sigma_ratio_cached(epsilon, delta)


def gaussian_sigma_batch(l2_sensitivity, epsilons, delta, mode="analytic"):
    """Per-release Gaussian sigmas for a batch of epsilons, as a ``(k,)``
    array.

    Entry ``i`` equals ``gaussian_sigma(l2_sensitivity, epsilons[i],
    delta, mode)`` **bit-exactly** (the analytic bisection is element-wise
    independent), which is what keeps every row of a batched Gaussian
    release distributed exactly as the corresponding single release. The
    analytic calibration is not proportional to ``1/eps``, so this is a
    genuine per-epsilon solve, vectorised.
    """
    l2_sensitivity = check_positive(l2_sensitivity, "l2_sensitivity")
    epsilons = as_epsilon_batch(epsilons)
    delta = _check_failure_delta(delta)
    if mode == "classical":
        if np.any(epsilons >= 1.0):
            raise ValidationError(
                "classical Gaussian calibration is only valid for epsilon < 1; "
                f"got max epsilon {float(np.max(epsilons))}"
            )
        return l2_sensitivity * np.sqrt(2.0 * np.log(1.25 / delta)) / epsilons
    if mode != "analytic":
        raise ValidationError(f"unknown Gaussian calibration mode {mode!r}")
    # Serving batches repeat a handful of distinct epsilons, so solve each
    # distinct value once. Few distinct values route through the lru-cached
    # scalar path (amortized across calls on the hot path); many distinct
    # values run one vectorised bisection over the deduplicated set. Both
    # are bit-identical per element to the standalone calibration — the
    # bisection is element-wise independent.
    unique, inverse = np.unique(epsilons, return_inverse=True)
    if unique.size <= _BATCH_CACHE_MAX_DISTINCT:
        ratios = np.array(
            [_analytic_sigma_ratio_cached(float(eps), delta) for eps in unique]
        )
    else:
        ratios = _analytic_sigma_ratios(unique, delta)
    return l2_sensitivity * ratios[inverse]


def gaussian_noise(size, l2_sensitivity, epsilon, delta, rng=None):
    """Draw i.i.d. Gaussian mechanism noise for ``size`` answers.

    Parameters mirror :func:`laplace_noise`, with the L2 sensitivity and the
    additional failure probability ``delta``.
    """
    if isinstance(size, tuple):
        for dim in size:
            check_positive_int(dim, "size dimension")
    else:
        size = (check_positive_int(size, "size"),)
    sigma = gaussian_sigma(l2_sensitivity, epsilon, delta)
    rng = ensure_rng(rng)
    return rng.normal(loc=0.0, scale=sigma, size=size)


def gaussian_noise_batch(size, l2_sensitivity, epsilons, delta, rng=None):
    """Draw Gaussian-mechanism noise for ``k`` releases in one RNG call.

    The (eps, delta) analogue of :func:`laplace_noise_batch`: a ``(k, size)``
    array whose row ``i`` has standard deviation
    ``gaussian_sigma(l2_sensitivity, epsilons[i], delta)`` exactly. Under
    the analytic calibration the per-release sigmas are solved per epsilon
    (:func:`gaussian_sigma_batch`) rather than scaled from a unit-epsilon
    sigma — the ``1/eps`` shortcut is only correct for the classical
    formula.
    """
    size = check_positive_int(size, "size")
    sigmas = gaussian_sigma_batch(l2_sensitivity, epsilons, delta)[:, None]
    rng = ensure_rng(rng)
    return rng.normal(loc=0.0, scale=sigmas, size=(sigmas.shape[0], size))


def expected_squared_gaussian_noise(count, l2_sensitivity, epsilon, delta):
    """Expected total squared error of the Gaussian mechanism on ``count``
    answers: ``count * sigma^2``."""
    count = check_positive_int(count, "count")
    sigma = gaussian_sigma(l2_sensitivity, epsilon, delta)
    return float(count) * sigma * sigma


# --------------------------------------------------------------------- #
# Discrete Gaussian (integral releases)
# --------------------------------------------------------------------- #
def _discrete_gaussian_samples(sigma, count, rng):
    """``count`` exact discrete-Gaussian samples at parameter ``sigma``.

    Canonne, Kamath & Steinke 2020 ("The Discrete Gaussian for
    Differential Privacy"), Algorithm 3: propose from the discrete
    Laplace at integer scale ``t = floor(sigma) + 1`` — realized as the
    difference of two i.i.d. geometric variables, which has mass
    proportional to ``exp(-|y|/t)`` — and accept with probability
    ``exp(-(|y| - sigma^2/t)^2 / (2 sigma^2))``. The accepted law is
    exactly ``P(Y = y) ∝ exp(-y^2 / (2 sigma^2))`` on the integers: no
    floating-point noise floor, no tail truncation.
    """
    t = int(np.floor(sigma)) + 1
    geom_p = 1.0 - np.exp(-1.0 / t)
    sigma_sq = sigma * sigma
    out = np.empty(count, dtype=np.int64)
    filled = 0
    while filled < count:
        need = count - filled
        # Headroom for rejections; the CKS proposal accepts with
        # probability bounded away from 0 uniformly in sigma.
        batch = max(16, 2 * need)
        failures_up = rng.geometric(geom_p, size=batch) - 1
        failures_down = rng.geometric(geom_p, size=batch) - 1
        proposal = failures_up - failures_down
        log_accept = -((np.abs(proposal) - sigma_sq / t) ** 2) / (2.0 * sigma_sq)
        accepted = proposal[rng.random(batch) < np.exp(log_accept)]
        take = min(accepted.size, need)
        out[filled:filled + take] = accepted[:take]
        filled += take
    return out


def discrete_gaussian_noise(size, l2_sensitivity, epsilon, delta, rng=None):
    """Draw i.i.d. **integer** discrete-Gaussian noise for ``size`` answers.

    The sigma is the same analytic (eps, delta) calibration the continuous
    Gaussian mechanism uses: the discrete Gaussian at equal sigma enjoys
    the same (eps, delta)- and concentrated-DP guarantees as the
    continuous one (Canonne–Kamath–Steinke 2020, Thm 7 / Thm 4), so the
    budget arithmetic — additive pairs and RDP curves alike — is shared
    with the ``gaussian`` family. Returns ``int64`` samples: adding them
    to integral query answers keeps the release exactly integral, no
    post-hoc rounding (and the privacy cost of rounding) required.
    """
    if isinstance(size, tuple):
        for dim in size:
            check_positive_int(dim, "size dimension")
        count = int(np.prod(size))
    else:
        size = (check_positive_int(size, "size"),)
        count = size[0]
    sigma = gaussian_sigma(l2_sensitivity, epsilon, delta)
    rng = ensure_rng(rng)
    return _discrete_gaussian_samples(sigma, count, rng).reshape(size)


def discrete_gaussian_noise_batch(size, l2_sensitivity, epsilons, delta, rng=None):
    """Discrete-Gaussian noise for ``k`` releases as a ``(k, size)`` array.

    The integral analogue of :func:`gaussian_noise_batch`: row ``i`` is
    distributed as ``discrete_gaussian_noise(size, l2_sensitivity,
    epsilons[i], delta)``. The rejection sampler is sequential per
    release (each row's acceptance pattern consumes a variable slice of
    the RNG stream), so rows are sampled in order rather than in one
    vectorised draw.
    """
    size = check_positive_int(size, "size")
    sigmas = gaussian_sigma_batch(l2_sensitivity, epsilons, delta)
    rng = ensure_rng(rng)
    rows = [_discrete_gaussian_samples(float(sigma), size, rng) for sigma in sigmas]
    return np.stack(rows, axis=0)
