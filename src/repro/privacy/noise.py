"""Noise primitives: Laplace (Section 3.1) and Gaussian (the (eps, delta)
extension).

The Laplace Mechanism adds i.i.d. zero-mean Laplace noise with scale
``Delta / eps`` to each coordinate of a query answer, where ``Delta`` is the
L1 sensitivity of the query set. The variance of ``Lap(s)`` is ``2 s^2``, so
the expected squared error of an m-dimensional answer is ``2 m Delta^2/eps^2``.

The Gaussian mechanism supports the relaxed (eps, delta)-differential
privacy used by the L2 branch of the matrix-mechanism line (and flagged as
future work in the paper): noise ``N(0, sigma^2)`` with
``sigma = Delta_2 * sqrt(2 ln(1.25/delta)) / eps`` calibrated to the *L2*
sensitivity satisfies (eps, delta)-DP for eps < 1 (Dwork & Roth, Thm A.1).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.validation import (
    as_epsilon_batch,
    check_positive,
    check_positive_int,
    ensure_rng,
)

__all__ = [
    "laplace_noise",
    "laplace_noise_batch",
    "laplace_scale",
    "laplace_variance",
    "expected_squared_noise",
    "gaussian_sigma",
    "gaussian_noise",
    "gaussian_noise_batch",
    "expected_squared_gaussian_noise",
]


def _batch_scales(unit_scale, epsilons):
    """Per-release noise scales ``unit_scale / eps_i`` as a ``(k, 1)``
    column, ready to broadcast against a ``(k, size)`` draw. ``unit_scale``
    is the noise scale at ``eps = 1`` — the scale formulas divide by
    epsilon last, so this is bit-identical to the per-release calibration.
    """
    epsilons = as_epsilon_batch(epsilons)
    return (unit_scale / epsilons)[:, None]


def laplace_scale(sensitivity, epsilon):
    """Noise scale ``Delta / eps`` calibrated for eps-differential privacy."""
    sensitivity = check_positive(sensitivity, "sensitivity")
    epsilon = check_positive(epsilon, "epsilon")
    return sensitivity / epsilon


def laplace_variance(scale):
    """Variance of a Laplace variable with the given scale: ``2 scale^2``."""
    scale = check_positive(scale, "scale")
    return 2.0 * scale * scale


def laplace_noise(size, sensitivity, epsilon, rng=None):
    """Draw ``size`` i.i.d. Laplace samples with scale ``sensitivity/epsilon``.

    Parameters
    ----------
    size:
        Number of samples (positive int) or a shape tuple.
    sensitivity, epsilon:
        L1 sensitivity of the query set and the privacy budget.
    rng:
        ``None``, an int seed, or a :class:`numpy.random.Generator`.
    """
    if isinstance(size, tuple):
        for dim in size:
            check_positive_int(dim, "size dimension")
    else:
        size = (check_positive_int(size, "size"),)
    scale = laplace_scale(sensitivity, epsilon)
    rng = ensure_rng(rng)
    return rng.laplace(loc=0.0, scale=scale, size=size)


def laplace_noise_batch(size, sensitivity, epsilons, rng=None):
    """Draw Laplace noise for ``k`` releases in **one** RNG call.

    Returns a ``(k, size)`` array whose row ``i`` is i.i.d. Laplace noise
    with scale ``sensitivity / epsilons[i]`` — the batched form of
    :func:`laplace_noise` behind the vectorised multi-release serving path
    (``Mechanism.answer_many``). Row ``i`` is distributed exactly as a
    standalone ``laplace_noise(size, sensitivity, epsilons[i])`` draw; only
    the RNG stream position differs from ``k`` separate calls.
    """
    size = check_positive_int(size, "size")
    scales = _batch_scales(laplace_scale(sensitivity, 1.0), epsilons)
    rng = ensure_rng(rng)
    return rng.laplace(loc=0.0, scale=scales, size=(scales.shape[0], size))


def expected_squared_noise(count, sensitivity, epsilon):
    """Expected total squared error of adding Laplace noise to ``count``
    answers at the given sensitivity: ``2 * count * (Delta/eps)^2``."""
    count = check_positive_int(count, "count")
    scale = laplace_scale(sensitivity, epsilon)
    return float(count) * laplace_variance(scale)


def gaussian_sigma(l2_sensitivity, epsilon, delta):
    """Standard deviation of the analytic Gaussian mechanism:
    ``Delta_2 * sqrt(2 ln(1.25/delta)) / eps`` ((eps, delta)-DP, eps < 1)."""
    l2_sensitivity = check_positive(l2_sensitivity, "l2_sensitivity")
    epsilon = check_positive(epsilon, "epsilon")
    delta = check_positive(delta, "delta")
    if delta >= 1.0:
        raise ValidationError(f"delta must be < 1, got {delta}")
    return l2_sensitivity * np.sqrt(2.0 * np.log(1.25 / delta)) / epsilon


def gaussian_noise(size, l2_sensitivity, epsilon, delta, rng=None):
    """Draw i.i.d. Gaussian mechanism noise for ``size`` answers.

    Parameters mirror :func:`laplace_noise`, with the L2 sensitivity and the
    additional failure probability ``delta``.
    """
    if isinstance(size, tuple):
        for dim in size:
            check_positive_int(dim, "size dimension")
    else:
        size = (check_positive_int(size, "size"),)
    sigma = gaussian_sigma(l2_sensitivity, epsilon, delta)
    rng = ensure_rng(rng)
    return rng.normal(loc=0.0, scale=sigma, size=size)


def gaussian_noise_batch(size, l2_sensitivity, epsilons, delta, rng=None):
    """Draw Gaussian-mechanism noise for ``k`` releases in one RNG call.

    The (eps, delta) analogue of :func:`laplace_noise_batch`: a ``(k, size)``
    array whose row ``i`` has standard deviation
    ``gaussian_sigma(l2_sensitivity, epsilons[i], delta)``.
    """
    size = check_positive_int(size, "size")
    sigmas = _batch_scales(gaussian_sigma(l2_sensitivity, 1.0, delta), epsilons)
    rng = ensure_rng(rng)
    return rng.normal(loc=0.0, scale=sigmas, size=(sigmas.shape[0], size))


def expected_squared_gaussian_noise(count, l2_sensitivity, epsilon, delta):
    """Expected total squared error of the Gaussian mechanism on ``count``
    answers: ``count * sigma^2``."""
    count = check_positive_int(count, "count")
    sigma = gaussian_sigma(l2_sensitivity, epsilon, delta)
    return float(count) * sigma * sigma
