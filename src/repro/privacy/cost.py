"""Typed per-release privacy costs.

Historically every layer of the stack passed a bare ``(epsilon, delta)``
pair and the RDP accountant *inferred* the noise family from it ("δ=0
means Laplace").  That inference was a documented assumption, not a
structural fact: the ledger composed curves it could not verify, and new
noise families (subsampled Gaussian, discrete Gaussian) had no way to
describe themselves.  :class:`NoiseCost` replaces the scalar vocabulary
with a self-describing value object that every layer — mechanisms,
accountants, the durable ledger, release metadata, ``explain()`` and the
CLI — shares.

Bit-compatibility contract
--------------------------
Scalar ``(epsilon, delta)`` costs remain first-class everywhere a
:class:`NoiseCost` is accepted, and the arithmetic an accountant performs
on them is unchanged: :func:`charged_pair` returns the pair itself, and
the RDP curve for a typed Laplace/Gaussian cost is computed with exactly
the legacy expressions, so existing ledgers and tests see bit-identical
floats.

``NoiseCost`` is deliberately **not iterable**: legacy code paths that
normalised costs with ``tuple(cost)`` must go through
:func:`as_spend_cost` instead, so a typed cost can never be silently
downcast to an untyped pair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ValidationError

#: Noise families a :class:`NoiseCost` may describe.  ``laplace`` is the
#: pure-DP family; the other three satisfy (ε, δ)-DP with δ > 0.
COST_FAMILIES = (
    "laplace",
    "gaussian",
    "subsampled_gaussian",
    "discrete_gaussian",
)

#: Families whose per-release guarantee requires δ > 0.
_DELTA_FAMILIES = ("gaussian", "subsampled_gaussian", "discrete_gaussian")


def amplified_pair(epsilon, delta, sample_rate):
    """The (ε, δ) guarantee after amplification by Bernoulli subsampling.

    Standard bound (Balle, Barthe & Gaboardi 2018; Li, Qardaji & Su 2012):
    running an (ε, δ)-DP mechanism on a subsample that includes each row
    independently with probability ``q`` satisfies
    ``(log(1 + q·(e^ε − 1)), q·δ)``-DP on the full dataset.
    """
    if sample_rate >= 1.0:
        return float(epsilon), float(delta)
    amplified_epsilon = math.log1p(sample_rate * math.expm1(epsilon))
    return amplified_epsilon, sample_rate * delta


@dataclass(frozen=True)
class NoiseCost:
    """Self-describing privacy cost of one release.

    Parameters
    ----------
    family:
        One of :data:`COST_FAMILIES`.
    epsilon, delta:
        The (ε, δ)-DP guarantee of the *base* mechanism, i.e. before any
        subsampling amplification.  ``delta`` must be 0 for ``laplace``
        and in (0, 1) for the Gaussian families.
    sigma_or_scale:
        Audit-only record of the calibrated noise magnitude (Laplace
        scale b or Gaussian σ, per unit sensitivity times
        ``sensitivity``).  Never used in accounting arithmetic — the
        accountants re-derive noise magnitudes from (ε, δ) with the
        exact legacy expressions so composition stays bit-identical.
    sensitivity:
        The query sensitivity the noise was calibrated against (L1 for
        Laplace, L2 for the Gaussian families).  Audit-only.
    sample_rate:
        Bernoulli inclusion probability q of the subsample the release
        was computed from.  q < 1 is only meaningful for
        ``subsampled_gaussian``; additive accountants charge the
        amplified pair, the RDP accountant composes the subsampled
        Gaussian curve.
    """

    family: str
    epsilon: float
    delta: float = 0.0
    sigma_or_scale: float | None = None
    sensitivity: float = 1.0
    sample_rate: float = 1.0

    def __post_init__(self):
        if self.family not in COST_FAMILIES:
            raise ValidationError(
                f"unknown noise family {self.family!r}; expected one of "
                f"{COST_FAMILIES}"
            )
        object.__setattr__(self, "epsilon", float(self.epsilon))
        object.__setattr__(self, "delta", float(self.delta))
        object.__setattr__(self, "sensitivity", float(self.sensitivity))
        object.__setattr__(self, "sample_rate", float(self.sample_rate))
        if self.sigma_or_scale is not None:
            object.__setattr__(
                self, "sigma_or_scale", float(self.sigma_or_scale)
            )
        if not self.epsilon > 0.0 or not math.isfinite(self.epsilon):
            raise ValidationError(
                f"epsilon must be a positive finite float, got {self.epsilon!r}"
            )
        if self.family == "laplace":
            if self.delta != 0.0:
                raise ValidationError(
                    f"laplace cost must have delta == 0, got {self.delta!r}"
                )
        elif self.family in _DELTA_FAMILIES:
            if not 0.0 < self.delta < 1.0:
                raise ValidationError(
                    f"{self.family} cost needs delta in (0, 1), got "
                    f"{self.delta!r}"
                )
        if not 0.0 < self.sample_rate <= 1.0:
            raise ValidationError(
                f"sample_rate must be in (0, 1], got {self.sample_rate!r}"
            )
        if self.sample_rate < 1.0 and self.family != "subsampled_gaussian":
            raise ValidationError(
                f"sample_rate < 1 is only valid for subsampled_gaussian "
                f"costs, not {self.family!r}"
            )
        if self.sensitivity < 0.0 or not math.isfinite(self.sensitivity):
            raise ValidationError(
                f"sensitivity must be a non-negative finite float, got "
                f"{self.sensitivity!r}"
            )
        if self.sigma_or_scale is not None and not self.sigma_or_scale >= 0.0:
            raise ValidationError(
                f"sigma_or_scale must be non-negative, got "
                f"{self.sigma_or_scale!r}"
            )

    def charged_pair(self):
        """The (ε, δ) an additive (pure/basic) accountant charges.

        This is the single δ-handling rule shared by every accountant:
        the *amplified* per-release guarantee is what sums against the
        budget.  For q = 1 it is exactly ``(epsilon, delta)`` — the same
        floats the scalar code path charged — so untyped and typed
        releases of the same guarantee compose bit-identically.
        """
        return amplified_pair(self.epsilon, self.delta, self.sample_rate)

    def to_record(self):
        """JSON-serializable dict for journals and release metadata."""
        record = {
            "family": self.family,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "sensitivity": self.sensitivity,
            "sample_rate": self.sample_rate,
        }
        if self.sigma_or_scale is not None:
            record["sigma_or_scale"] = self.sigma_or_scale
        if self.sample_rate < 1.0:
            # Audit convenience only — from_record() re-derives it.
            charged_epsilon, charged_delta = self.charged_pair()
            record["charged"] = [charged_epsilon, charged_delta]
        return record

    @classmethod
    def from_record(cls, record):
        """Rebuild a cost from :meth:`to_record` output.

        Unknown keys (including the derived ``charged`` pair) are
        ignored so newer writers stay readable.
        """
        if not isinstance(record, dict) or "family" not in record:
            raise ValidationError(
                f"not a NoiseCost record: {record!r}"
            )
        try:
            return cls(
                family=record["family"],
                epsilon=record["epsilon"],
                delta=record.get("delta", 0.0),
                sigma_or_scale=record.get("sigma_or_scale"),
                sensitivity=record.get("sensitivity", 1.0),
                sample_rate=record.get("sample_rate", 1.0),
            )
        except (KeyError, TypeError) as exc:
            raise ValidationError(
                f"malformed NoiseCost record {record!r}: {exc}"
            ) from exc


def charged_pair(cost):
    """The (ε, δ) pair an additive accountant charges for ``cost``.

    Typed costs delegate to :meth:`NoiseCost.charged_pair`; untyped
    ``(epsilon, delta)`` pairs are returned as the same floats, keeping
    the scalar arithmetic untouched.
    """
    if isinstance(cost, NoiseCost):
        return cost.charged_pair()
    epsilon, delta = cost
    return float(epsilon), float(delta)


def as_spend_cost(cost, delta=0.0):
    """Normalise a ``spend()``-style argument to a NoiseCost or pair.

    ``spend(epsilon, delta)`` historically took two scalars; it now also
    accepts a :class:`NoiseCost` (in which case the separate ``delta``
    argument must be left at 0 — the typed cost already carries its δ).
    Pair tuples/lists are normalised to float pairs for the legacy path.
    """
    if isinstance(cost, NoiseCost):
        if delta not in (0, 0.0):
            raise ValidationError(
                "spend(cost, delta) with a typed NoiseCost must not pass a "
                f"separate delta (got {delta!r}); the cost already carries it"
            )
        return cost
    if isinstance(cost, (tuple, list)):
        if len(cost) != 2:
            raise ValidationError(
                f"cost pair must have exactly two entries, got {cost!r}"
            )
        if delta not in (0, 0.0):
            raise ValidationError(
                "spend() with an (epsilon, delta) pair must not pass a "
                f"separate delta (got {delta!r})"
            )
        return float(cost[0]), float(cost[1])
    try:
        return float(cost), float(delta)
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"cannot interpret {cost!r} as a privacy cost; expected a scalar "
            "epsilon, an (epsilon, delta) pair, or a NoiseCost"
        ) from exc


def cost_record(cost):
    """Journal encoding: list pair for untyped costs, dict for typed."""
    if isinstance(cost, NoiseCost):
        return cost.to_record()
    epsilon, delta = cost
    return [float(epsilon), float(delta)]


def cost_from_record(record):
    """Inverse of :func:`cost_record`; the journal upgrade shim.

    Pre-typed (format 1) journals encode every cost as an
    ``[epsilon, delta]`` list — those come back as the same float pair
    the scalar accountants always replayed, bit for bit.  Typed costs
    (format 2) are dicts and come back as :class:`NoiseCost`.
    """
    if isinstance(record, dict):
        return NoiseCost.from_record(record)
    if isinstance(record, (tuple, list)) and len(record) == 2:
        return float(record[0]), float(record[1])
    raise ValidationError(f"unrecognised cost record {record!r}")
