"""Pluggable privacy accountants: (epsilon, delta) ledgers for the engine.

:class:`repro.privacy.budget.PrivacyBudget` tracks a single scalar epsilon
under sequential composition — exactly the paper's pure eps-DP model. A
production engine additionally needs (a) an *audited, atomic* way to charge
several releases at once and (b) the relaxed (eps, delta) model the Gaussian
mechanisms live in. This module abstracts both behind one interface:

* :class:`PureDPAccountant` — sequential composition of pure eps-DP
  releases (``sum eps_i <= eps_total``); refuses any release with
  ``delta > 0``.
* :class:`ApproxDPAccountant` — *basic composition* for (eps, delta)-DP
  (Dwork & Roth, Thm 3.16): ``sum eps_i <= eps_total`` and
  ``sum delta_i <= delta_total``. Pure releases (``delta = 0``) compose
  freely alongside Gaussian ones.
* :class:`repro.privacy.rdp.RDPAccountant` — concentrated-DP (Rényi)
  composition: the ledger is an accumulated RDP curve, converted to an
  (eps, delta_total) guarantee on every admission check. Far tighter than
  basic composition for many Gaussian releases (see :mod:`repro.privacy.rdp`).

The ledger *state* is an opaque value managed through the ``_ledger_state``
/ ``_fits_state`` / ``_commit_state`` hooks — a scalar ``(spent_epsilon,
spent_delta)`` pair for the two composition-by-addition accountants, an RDP
curve for the Rényi one — so :meth:`BudgetAccountant.spend_many` can
simulate the sequential ledger for *any* composition rule and stay
all-or-nothing and bit-identical to a loop of :meth:`spend` calls.

Costs flow through the hooks either as legacy ``(epsilon, delta)`` float
pairs or as typed :class:`repro.privacy.cost.NoiseCost` objects.  The
additive accountants charge a typed cost's *charged pair* (the amplified
(ε, δ) guarantee — identical to ``(epsilon, delta)`` at sample rate 1), so
scalar arithmetic is bit-for-bit unchanged; the RDP accountant reads the
family off the typed cost instead of inferring it from ``delta``.

Migration note for ``spend()`` callers: ``spend(epsilon, delta)`` still
accepts two scalars and returns the validated pair.  It now *also* accepts
a single :class:`~repro.privacy.cost.NoiseCost` (``spend(cost)``, no
separate delta) and then returns that cost object; ``spend_many`` likewise
accepts a mix of pairs and typed costs.  Code that unpacked the return
value as ``eps, delta = accountant.spend(...)`` must use
``repro.privacy.cost.charged_pair`` on the result if it may receive typed
costs — ``NoiseCost`` is deliberately not iterable.

Both scalar accountants absorb floating-point dust at the boundary:
spending a budget down in steps whose exact sum equals the total always
succeeds and leaves ``remaining_epsilon == 0.0`` exactly (no
``0.3 - 3 * 0.1 != 0`` failures), while a genuine overspend raises
:class:`repro.exceptions.PrivacyBudgetError` *before* any state changes —
``spend_many`` is all-or-nothing.
"""

from __future__ import annotations

import abc

from repro.exceptions import PrivacyBudgetError, ReproError
from repro.linalg.validation import check_positive
from repro.privacy.cost import NoiseCost, as_spend_cost, charged_pair

__all__ = [
    "BudgetAccountant",
    "PureDPAccountant",
    "ApproxDPAccountant",
    "make_accountant",
]


def _check_delta(delta, name="delta"):
    delta = float(delta)
    if delta < 0.0:
        raise PrivacyBudgetError(f"{name} must be >= 0, got {delta}")
    if delta >= 1.0:
        raise PrivacyBudgetError(f"{name} must be < 1, got {delta}")
    return delta


class BudgetAccountant(abc.ABC):
    """Mutable (epsilon, delta) privacy ledger.

    Subclasses define one composition rule via :meth:`_validate_cost` (and,
    for non-additive rules, the ledger-state hooks); the base class owns
    the protocol: spend tracking, the atomic :meth:`spend_many`, snapshots
    and the reporting properties.
    """

    #: Short label recorded in release audit metadata.
    name = "accountant"

    def __init__(self, total_epsilon, total_delta=0.0):
        self._total_epsilon = check_positive(total_epsilon, "total_epsilon")
        self._total_delta = _check_delta(total_delta, "total_delta")
        self._spent_epsilon = 0.0
        self._spent_delta = 0.0
        # Float-dust slack at the budget boundary. Epsilon totals are O(1)
        # so an absolute floor is safe; delta totals can be arbitrarily
        # tiny, so delta slack is strictly relative — it must stay well
        # below any genuine spend or partial spends of a tiny delta budget
        # would snap to exhausted.
        self._eps_slack = 1e-12 * max(1.0, self._total_epsilon)
        self._delta_slack = 1e-9 * self._total_delta

    # ------------------------------------------------------------------ #
    # Ledger-state hooks (scalar (spent_epsilon, spent_delta) by default;
    # subclasses with a richer ledger — e.g. an RDP curve — override all
    # of them together).
    # ------------------------------------------------------------------ #
    def _fresh_state(self):
        """The ledger state of an untouched accountant."""
        return (0.0, 0.0)

    def _ledger_state(self):
        """The current (opaque, immutable) ledger state."""
        return (self._spent_epsilon, self._spent_delta)

    def _set_ledger_state(self, state):
        self._spent_epsilon, self._spent_delta = state

    def _state_spent(self, state):
        """Report a state as a ``(spent_epsilon, spent_delta)`` pair — the
        (eps, delta)-DP guarantee the releases committed so far jointly
        satisfy under this accountant's composition rule."""
        return state

    def _fits_state(self, cost, state):
        epsilon, delta = charged_pair(cost)
        spent_epsilon, spent_delta = state
        # A fully-spent coordinate admits nothing more: the slack below only
        # forgives float dust on the *last* spend that reaches the total —
        # it must not re-arm after exhaustion (else unbounded dust-sized
        # releases would pass while the clamped ledger under-reports them).
        if epsilon > 0.0 and spent_epsilon >= self._total_epsilon:
            return False
        if delta > 0.0 and spent_delta >= self._total_delta:
            return False
        return (
            epsilon <= max(self._total_epsilon - spent_epsilon, 0.0) + self._eps_slack
            and delta <= max(self._total_delta - spent_delta, 0.0) + self._delta_slack
        )

    def _commit_state(self, cost, state):
        epsilon, delta = charged_pair(cost)
        spent_epsilon, spent_delta = state
        spent_epsilon += epsilon
        spent_delta += delta
        # Clamp float dust so exact exhaustion reads remaining == 0.0 and a
        # subsequent zero-remainder probe fails cleanly instead of fuzzily.
        # The condition is signed on purpose: _fits admits a spend up to
        # remaining + slack, so the sum can land a hair *above* the total
        # (and, through the addition's own rounding, just outside a
        # symmetric slack window) — any overshoot reaching this point is
        # dust by construction and must clamp too, or spent would read
        # above total and violate the ledger's documented invariant. A
        # coordinate only clamps when this commit actually spent on it:
        # a total smaller than its own slack (e.g. total_delta = 1e-18)
        # must not be snapped to exhausted by spends on the *other*
        # coordinate.
        if epsilon > 0.0 and self._total_epsilon - spent_epsilon <= self._eps_slack:
            spent_epsilon = self._total_epsilon
        if delta > 0.0 and self._total_delta - spent_delta <= self._delta_slack:
            spent_delta = self._total_delta
        return spent_epsilon, spent_delta

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def total_epsilon(self):
        """Total epsilon available across all releases."""
        return self._total_epsilon

    @property
    def total_delta(self):
        """Total delta available across all releases."""
        return self._total_delta

    @property
    def spent_epsilon(self):
        """Epsilon consumed so far (the eps of the realized guarantee)."""
        return self._state_spent(self._ledger_state())[0]

    @property
    def spent_delta(self):
        """Delta consumed so far (the delta of the realized guarantee)."""
        return self._state_spent(self._ledger_state())[1]

    @property
    def remaining_epsilon(self):
        """Epsilon still available."""
        return max(self._total_epsilon - self.spent_epsilon, 0.0)

    @property
    def remaining_delta(self):
        """Delta still available."""
        return max(self._total_delta - self.spent_delta, 0.0)

    # ------------------------------------------------------------------ #
    # Spending
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _validate_cost(self, epsilon, delta):
        """Validate one charged (epsilon, delta) pair; return it normalized.

        Raises :class:`PrivacyBudgetError` when the cost is malformed for
        this composition model (independent of the remaining budget).
        Typed costs are validated on their *charged pair* — the single
        δ-handling rule every accountant shares — so e.g. a Gaussian
        :class:`~repro.privacy.cost.NoiseCost` is rejected by the pure
        accountant exactly like a scalar ``delta > 0`` cost.
        """

    def _validate(self, cost):
        """Normalize/validate a cost: float pair in, float pair out;
        :class:`~repro.privacy.cost.NoiseCost` in, the same cost out."""
        if isinstance(cost, NoiseCost):
            self._validate_cost(*cost.charged_pair())
            return cost
        epsilon, delta = cost
        return self._validate_cost(epsilon, delta)

    def _fits(self, cost):
        return self._fits_state(cost, self._ledger_state())

    def can_spend(self, cost, delta=0.0):
        """True iff one release at ``cost`` fits in the budget.

        ``cost`` is a scalar epsilon (with ``delta``), an
        ``(epsilon, delta)`` pair, or a typed
        :class:`~repro.privacy.cost.NoiseCost`. A malformed cost
        (non-positive epsilon, delta out of range, delta on a pure
        accountant) answers False rather than raising — this is a
        predicate, not a spend.
        """
        try:
            cost = self._validate(as_spend_cost(cost, delta))
        except ReproError:
            return False
        return self._fits(cost)

    def spend(self, cost, delta=0.0):
        """Consume one cost; returns the validated cost.

        ``spend(epsilon, delta)`` keeps the historical scalar form and
        returns the validated ``(epsilon, delta)`` pair;
        ``spend(noise_cost)`` consumes a typed
        :class:`~repro.privacy.cost.NoiseCost` (no separate ``delta``)
        and returns it. Raises :class:`PrivacyBudgetError` (leaving the
        ledger untouched) when the cost is invalid or would exceed the
        budget.
        """
        cost = self._validate(as_spend_cost(cost, delta))
        state = self._ledger_state()
        if not self._fits_state(cost, state):
            epsilon, delta = charged_pair(cost)
            raise PrivacyBudgetError(
                f"cannot spend (eps={epsilon}, delta={delta}): remaining "
                f"(eps={self.remaining_epsilon}, delta={self.remaining_delta}) "
                f"of (eps={self._total_epsilon}, delta={self._total_delta})"
            )
        self._set_ledger_state(self._commit_state(cost, state))
        return cost

    def spend_many(self, costs, realized_out=None):
        """Atomically consume a batch of costs (pairs or NoiseCosts).

        Either the whole batch is charged (and the validated costs are
        returned — pairs for pair input, the typed cost for
        :class:`~repro.privacy.cost.NoiseCost` input) or
        :class:`PrivacyBudgetError` is raised with no state change — the
        all-or-nothing primitive behind
        ``PrivateQueryEngine.execute_many``.

        ``realized_out``, when given a list, receives one
        ``(spent_epsilon, spent_delta)`` pair per cost: the cumulative
        guarantee of the ledger *after* that cost commits — bit-identical
        to what a loop of :meth:`spend` calls would have read off the
        properties, since admission simulates exactly that loop.
        """
        # Serving batches are typically many releases at a handful of
        # distinct costs; validate each distinct cost once (validation is
        # pure in the cost). NoiseCost is frozen/hashable, so typed costs
        # memoize exactly like pair tuples.
        memo = {}
        validated = []
        for cost in costs:
            if not isinstance(cost, NoiseCost):
                cost = tuple(cost)
            checked = memo.get(cost)
            if checked is None:
                checked = memo[cost] = self._validate(cost)
            validated.append(checked)
        if not validated:
            raise PrivacyBudgetError("spend_many needs at least one cost")
        # Admission simulates the sequential ledger cost by cost — the same
        # _fits/_commit arithmetic (clamping included) a loop of spend()
        # calls would run — so a batch is admitted if and only if the
        # equivalent loop would succeed, and leaves *bit-identical* spend
        # state (float addition is not associative, and a pre-summed total
        # admits boundary dust the looped exhaustion guard refuses). The
        # simulated state is assigned only after every cost fits, keeping
        # spend_many all-or-nothing.
        state = self._ledger_state()
        realized = []
        for index, cost in enumerate(validated):
            if not self._fits_state(cost, state):
                charged = [charged_pair(entry) for entry in validated]
                total_eps = sum(eps for eps, _ in charged)
                total_delta = sum(delta for _, delta in charged)
                epsilon, delta = charged_pair(cost)
                spent_epsilon, spent_delta = self._state_spent(state)
                raise PrivacyBudgetError(
                    f"batch of {len(validated)} releases needs "
                    f"(eps={total_eps}, delta={total_delta}): release {index} "
                    f"at (eps={epsilon}, delta={delta}) exceeds what would "
                    f"remain at that point "
                    f"(eps={max(self._total_epsilon - spent_epsilon, 0.0)}, "
                    f"delta={max(self._total_delta - spent_delta, 0.0)})"
                )
            state = self._commit_state(cost, state)
            if realized_out is not None:
                realized.append(self._state_spent(state))
        self._set_ledger_state(state)
        if realized_out is not None:
            realized_out.extend(realized)
        return validated

    def snapshot(self):
        """Opaque spend state, for :meth:`restore`."""
        return self._ledger_state()

    def restore(self, state):
        """Roll the ledger back to a :meth:`snapshot`.

        Only sound when every release charged since the snapshot was
        *discarded unexposed* (the engine uses this to keep
        ``execute_many`` all-or-nothing when producing a release fails
        mid-batch); restoring past genuinely released noise would
        under-report real privacy loss.
        """
        self._set_ledger_state(state)

    def reset(self):
        """Forget all spending (useful between independent experiments)."""
        self._set_ledger_state(self._fresh_state())

    def __repr__(self):
        return (
            f"{type(self).__name__}(spent=({self.spent_epsilon:.6g}, "
            f"{self.spent_delta:.3g}), total=({self._total_epsilon:.6g}, "
            f"{self._total_delta:.3g}))"
        )


class PureDPAccountant(BudgetAccountant):
    """Sequential composition of pure eps-DP releases.

    The paper's model: each release costs some eps and the costs add up.
    Any release carrying ``delta > 0`` (a Gaussian-mechanism release) is
    rejected outright — approximate-DP releases need
    :class:`ApproxDPAccountant`.
    """

    name = "pure-dp"

    def __init__(self, total_epsilon):
        super().__init__(total_epsilon, total_delta=0.0)

    def _validate_cost(self, epsilon, delta):
        epsilon = check_positive(epsilon, "epsilon")
        delta = float(delta)
        if delta != 0.0:
            raise PrivacyBudgetError(
                f"pure eps-DP accountant cannot absorb delta={delta}; "
                "construct the engine with delta > 0 (ApproxDPAccountant) "
                "for Gaussian-mechanism releases"
            )
        return epsilon, 0.0


class ApproxDPAccountant(BudgetAccountant):
    """Basic (eps, delta) composition: epsilons add, deltas add.

    ``k`` releases at (eps_i, delta_i) jointly satisfy
    (sum eps_i, sum delta_i)-DP; this accountant enforces both sums against
    the engine's totals. Pure releases (delta = 0) are accepted and only
    consume epsilon.
    """

    name = "approx-dp"

    def __init__(self, total_epsilon, total_delta):
        total_delta = _check_delta(total_delta, "total_delta")
        if total_delta <= 0.0:
            raise PrivacyBudgetError(
                "ApproxDPAccountant needs total_delta > 0; use PureDPAccountant "
                "for a pure eps-DP budget"
            )
        super().__init__(total_epsilon, total_delta=total_delta)

    def _validate_cost(self, epsilon, delta):
        epsilon = check_positive(epsilon, "epsilon")
        return epsilon, _check_delta(delta)


#: Model aliases accepted by :func:`make_accountant` (and the engine's
#: ``accountant=`` string form).
_MODEL_ALIASES = {
    "auto": "auto",
    "pure": "pure",
    "pure-dp": "pure",
    "basic": "basic",
    "approx": "basic",
    "approx-dp": "basic",
    "rdp": "rdp",
    "zcdp": "rdp",
    "renyi": "rdp",
}


def _resolve_model(model, delta):
    """Normalize an accountant-model alias; one resolver for every entry
    point (:func:`make_accountant`, the engine's ``accountant=`` string,
    :func:`repro.privacy.rdp.releases_per_budget`)."""
    resolved = _MODEL_ALIASES.get(str(model).strip().lower())
    if resolved is None:
        raise PrivacyBudgetError(
            f"unknown accountant model {model!r}; choose from "
            f"{sorted(set(_MODEL_ALIASES))}"
        )
    if resolved == "auto":
        resolved = "pure" if delta == 0.0 else "basic"
    return resolved


def make_accountant(total_epsilon, delta=0.0, model="auto"):
    """Factory used by the engine.

    ``model="auto"`` (the historical behaviour) picks pure composition when
    ``delta == 0`` and basic (eps, delta) composition otherwise. Explicit
    models: ``"pure"``, ``"basic"`` (aliases ``"approx"``/``"approx-dp"``),
    and ``"rdp"`` (aliases ``"zcdp"``/``"renyi"``) for the concentrated-DP
    accountant of :mod:`repro.privacy.rdp` — the tight choice for many
    Gaussian releases; it needs ``delta > 0`` as its conversion target.
    """
    delta = _check_delta(delta, "delta")
    resolved = _resolve_model(model, delta)
    if resolved == "pure":
        if delta > 0.0:
            raise PrivacyBudgetError(
                f"pure accountant cannot hold a delta budget (got {delta}); "
                "use model='basic' or model='rdp'"
            )
        return PureDPAccountant(total_epsilon)
    if resolved == "basic":
        return ApproxDPAccountant(total_epsilon, delta)
    from repro.privacy.rdp import RDPAccountant

    return RDPAccountant(total_epsilon, delta)
