"""Privacy budget accounting.

The paper answers a whole batch with one privacy budget ``eps``; this module
provides the small bookkeeping layer a downstream system needs when it runs
several mechanisms (or repeated experiments) against the same dataset:
sequential composition (budgets add up) and explicit spend tracking.

:class:`PrivacyBudget` is the scalar pure-eps ledger kept for backwards
compatibility and standalone use; the query engine itself now composes
releases through the pluggable (eps, delta) accountants in
:mod:`repro.privacy.accountant`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import PrivacyBudgetError
from repro.linalg.validation import check_positive

__all__ = ["PrivacyBudget", "compose_sequential", "split_budget"]


@dataclass
class PrivacyBudget:
    """A mutable eps-differential-privacy budget with spend tracking.

    Examples
    --------
    >>> budget = PrivacyBudget(1.0)
    >>> eps = budget.spend(0.25)
    >>> budget.remaining
    0.75
    """

    total: float
    _spent: float = field(default=0.0, repr=False)

    def __post_init__(self):
        self.total = check_positive(self.total, "total budget")
        if self._spent < 0 or self._spent > self.total + 1e-12:
            raise PrivacyBudgetError(f"invalid initial spend {self._spent} for total {self.total}")

    @property
    def spent(self):
        """Budget consumed so far."""
        return self._spent

    @property
    def remaining(self):
        """Budget still available."""
        return max(self.total - self._spent, 0.0)

    def can_spend(self, epsilon):
        """True iff ``epsilon`` can be spent without exceeding the total."""
        epsilon = check_positive(epsilon, "epsilon")
        return epsilon <= self.remaining + 1e-12

    def spend(self, epsilon):
        """Consume ``epsilon`` from the budget and return it.

        Raises :class:`PrivacyBudgetError` if the budget would be exceeded —
        sequential composition means budgets of successive releases add up.
        """
        epsilon = check_positive(epsilon, "epsilon")
        if not self.can_spend(epsilon):
            raise PrivacyBudgetError(
                f"cannot spend eps={epsilon}: only {self.remaining} of {self.total} remains"
            )
        self._spent += epsilon
        return epsilon

    def spend_fraction(self, fraction):
        """Consume ``fraction`` (in (0, 1]) of the *remaining* budget."""
        if not 0.0 < fraction <= 1.0:
            raise PrivacyBudgetError(f"fraction must be in (0, 1], got {fraction}")
        epsilon = self.remaining * fraction
        if epsilon <= 0.0:
            raise PrivacyBudgetError("no budget remaining")
        self._spent += epsilon
        return epsilon

    def reset(self):
        """Forget all spending (useful between independent experiments)."""
        self._spent = 0.0


def compose_sequential(*epsilons):
    """Total budget consumed by sequential composition: the plain sum."""
    if not epsilons:
        raise PrivacyBudgetError("at least one epsilon is required")
    return float(sum(check_positive(eps, "epsilon") for eps in epsilons))


def split_budget(total, parts, weights=None):
    """Split ``total`` into ``parts`` sub-budgets, optionally weighted.

    Returns a list of per-part epsilons summing to ``total`` (sequential
    composition makes the combined release ``total``-DP).
    """
    total = check_positive(total, "total")
    if parts < 1:
        raise PrivacyBudgetError(f"parts must be >= 1, got {parts}")
    if weights is None:
        return [total / parts] * parts
    if len(weights) != parts:
        raise PrivacyBudgetError(f"need {parts} weights, got {len(weights)}")
    weights = [check_positive(weight, "weight") for weight in weights]
    weight_sum = sum(weights)
    return [total * weight / weight_sum for weight in weights]
