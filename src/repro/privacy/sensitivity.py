"""L1 sensitivity of linear query workloads (Section 3.2, Definition 2).

For a linear workload ``W`` over unit counts with per-record influence
``Delta`` (1 for counting queries), adding or removing one record changes the
exact answer vector by at most the largest column L1 norm of ``W``:

    Delta(W) = max_j sum_i |W_ij|.

The same quantity, applied to the decomposition factor ``L``, is the "query
sensitivity" ``Delta(B, L)`` of Definition 2.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.linalg.validation import as_matrix

__all__ = [
    "l1_sensitivity",
    "l2_sensitivity",
    "column_l1_norms",
    "column_l2_norms",
    "scale_to_sensitivity",
]


def _is_operator(value):
    from repro.linalg.operator import WorkloadOperator

    return isinstance(value, WorkloadOperator)


def column_l1_norms(matrix):
    """Per-column L1 norms ``sum_i |M_ij|`` as a 1-D array.

    Accepts a dense array, a scipy sparse matrix, or a
    :class:`repro.linalg.operator.WorkloadOperator` — implicit workloads
    answer through their closed-form ``column_abs_sums`` and never
    materialise.
    """
    if _is_operator(matrix):
        return np.asarray(matrix.column_abs_sums(), dtype=np.float64)
    matrix = as_matrix(matrix, "matrix", allow_sparse=True)
    if sp.issparse(matrix):
        return np.asarray(abs(matrix).sum(axis=0)).ravel()
    return np.abs(matrix).sum(axis=0)


def l1_sensitivity(matrix):
    """Maximum column L1 norm of ``matrix`` (Definition 2).

    Returns 0.0 for an all-zero matrix (noise-free degenerate workload).
    """
    return float(column_l1_norms(matrix).max())


def column_l2_norms(matrix):
    """Per-column L2 norms ``sqrt(sum_i M_ij^2)`` as a 1-D array.

    Operator inputs use their closed-form ``column_sq_sums``.
    """
    if _is_operator(matrix):
        return np.sqrt(np.asarray(matrix.column_sq_sums(), dtype=np.float64))
    matrix = as_matrix(matrix, "matrix", allow_sparse=True)
    if sp.issparse(matrix):
        return np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=0)).ravel())
    return np.sqrt(np.sum(matrix**2, axis=0))


def l2_sensitivity(matrix):
    """Maximum column L2 norm — the sensitivity relevant to the Gaussian
    mechanism / (eps, delta)-DP (the matrix mechanism's ``||A||_2``)."""
    return float(column_l2_norms(matrix).max())


def scale_to_sensitivity(b, l, target=1.0):
    """Rescale a decomposition ``(B, L)`` so ``Delta(L) == target``.

    Lemma 2 of the paper: replacing ``(B, L)`` with
    ``(alpha B, L / alpha)`` leaves the product and the error objective
    ``Phi(B, L) Delta(B, L)^2`` unchanged. This helper picks
    ``alpha = Delta(L) / target`` so the rescaled ``L`` has sensitivity
    exactly ``target``, which is how the optimality program of Theorem 1
    fixes sensitivity to 1.

    Returns the rescaled pair ``(B', L')``; raises if ``L`` is all zeros.
    """
    b = as_matrix(b, "B")
    l = as_matrix(l, "L")
    delta = l1_sensitivity(l)
    if delta <= 0.0:
        from repro.exceptions import ValidationError

        raise ValidationError("L has zero sensitivity; decomposition is degenerate")
    alpha = delta / float(target)
    return b * alpha, l / alpha
