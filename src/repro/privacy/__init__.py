"""Differential-privacy substrate: noise, sensitivity, budgets, accountants."""

from repro.privacy.accountant import (
    ApproxDPAccountant,
    BudgetAccountant,
    PureDPAccountant,
    make_accountant,
)
from repro.privacy.budget import PrivacyBudget, compose_sequential, split_budget
from repro.privacy.noise import (
    expected_squared_gaussian_noise,
    expected_squared_noise,
    gaussian_noise,
    gaussian_sigma,
    laplace_noise,
    laplace_scale,
    laplace_variance,
)
from repro.privacy.sensitivity import (
    column_l1_norms,
    column_l2_norms,
    l1_sensitivity,
    l2_sensitivity,
    scale_to_sensitivity,
)

__all__ = [
    "ApproxDPAccountant",
    "BudgetAccountant",
    "PrivacyBudget",
    "PureDPAccountant",
    "make_accountant",
    "column_l1_norms",
    "column_l2_norms",
    "expected_squared_gaussian_noise",
    "gaussian_noise",
    "gaussian_sigma",
    "l2_sensitivity",
    "compose_sequential",
    "expected_squared_noise",
    "l1_sensitivity",
    "laplace_noise",
    "laplace_scale",
    "laplace_variance",
    "scale_to_sensitivity",
    "split_budget",
]
