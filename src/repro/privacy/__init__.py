"""Differential-privacy substrate: noise, sensitivity, budgets, accountants."""

from repro.privacy.accountant import (
    ApproxDPAccountant,
    BudgetAccountant,
    PureDPAccountant,
    make_accountant,
)
from repro.privacy.budget import PrivacyBudget, compose_sequential, split_budget
from repro.privacy.ledger import (
    DurableAccountant,
    JournalStore,
    LedgerStore,
    SQLiteStore,
    inspect_ledger,
    open_ledger,
    recover_ledger,
)
from repro.privacy.noise import (
    expected_squared_gaussian_noise,
    expected_squared_noise,
    gaussian_noise,
    gaussian_profile_delta,
    gaussian_sigma,
    gaussian_sigma_batch,
    laplace_noise,
    laplace_scale,
    laplace_variance,
)
from repro.privacy.rdp import (
    DEFAULT_ALPHA_GRID,
    RDPAccountant,
    compose_rdp_curves,
    gaussian_rdp_curve,
    laplace_rdp_curve,
    rdp_to_approx_dp,
    releases_per_budget,
)
from repro.privacy.sensitivity import (
    column_l1_norms,
    column_l2_norms,
    l1_sensitivity,
    l2_sensitivity,
    scale_to_sensitivity,
)

__all__ = [
    "ApproxDPAccountant",
    "BudgetAccountant",
    "DEFAULT_ALPHA_GRID",
    "DurableAccountant",
    "JournalStore",
    "LedgerStore",
    "PrivacyBudget",
    "PureDPAccountant",
    "RDPAccountant",
    "SQLiteStore",
    "inspect_ledger",
    "make_accountant",
    "open_ledger",
    "recover_ledger",
    "column_l1_norms",
    "column_l2_norms",
    "compose_rdp_curves",
    "expected_squared_gaussian_noise",
    "gaussian_noise",
    "gaussian_profile_delta",
    "gaussian_rdp_curve",
    "gaussian_sigma",
    "gaussian_sigma_batch",
    "l2_sensitivity",
    "laplace_rdp_curve",
    "rdp_to_approx_dp",
    "releases_per_budget",
    "compose_sequential",
    "expected_squared_noise",
    "l1_sensitivity",
    "laplace_noise",
    "laplace_scale",
    "laplace_variance",
    "scale_to_sensitivity",
    "split_budget",
]
