"""Durable, crash-safe, multi-process budget ledger.

Every privacy guarantee this package makes is only as strong as its budget
accounting, yet the accountants of :mod:`repro.privacy.accountant` live in
process memory: a crash mid-batch loses the ledger, a restart silently
resets spent epsilon to zero, and two engine processes sharing a plan
directory can each spend the full budget. This module makes *any*
:class:`~repro.privacy.accountant.BudgetAccountant` durable and safe
against both failure modes:

* :class:`LedgerStore` is the storage protocol — an ordered, checksummed
  stream of records plus a cross-process exclusive transaction — with two
  backends: :class:`JournalStore` (append-only JSONL journal: every record
  is fsynced, a torn tail from a crashed writer is detected by checksum
  and repaired, compaction rotates via ``os.replace``) and
  :class:`SQLiteStore` (WAL-mode SQLite, ``BEGIN IMMEDIATE``
  transactions, ``synchronous=FULL``).
* :class:`DurableAccountant` wraps an in-memory accountant with
  **write-ahead intent/commit records**: a spend is admitted under the
  store's exclusive lock, journaled as an ``intent`` (the validated
  costs) followed by a ``commit`` marker, and only a committed intent is
  replayed on open. A crash at *any* instant therefore leaves the spend
  either fully committed or fully absent — never partial — which the
  fault-injection matrix in ``tests/test_ledger_faults.py`` asserts for
  every registered failpoint on the write path
  (:func:`repro.testing.faults.ledger_write_failpoints`).

**Bit-identical replay.** The journal stores *costs*, not states: replay
rebuilds the ledger by pushing each committed cost through the inner
accountant's ``_commit_state`` hook in commit order — exactly the
arithmetic the original ``spend`` performed. Scalar sums and RDP curves
alike reproduce the in-memory state to the last bit (float addition is not
associative, so order preservation is load-bearing), and the per-release
``realized`` audit trail of a recovered engine matches the uninterrupted
run exactly.

**Multi-process atomicity.** The spend path — sync from the store, check
admission, append intent + commit — runs under the store's exclusive
cross-process lock (``flock`` for the journal, ``BEGIN IMMEDIATE`` for
SQLite), so N processes draining one budget serialize their admissions
against the shared ledger and can never jointly overspend; exact
exhaustion (``spent == total``, float-dust clamped) behaves precisely as
it does for a single in-memory accountant. Lock acquisition is bounded:
after the retry-with-backoff policy is exhausted,
:class:`repro.exceptions.LedgerBusyError` is raised rather than blocking
forever.

``snapshot``/``restore`` (the engine's all-or-nothing ``execute_many``
rollback) stay sound: a durable restore journals a ``rollback`` record
naming the wrapper's own transactions, so replay excludes them — they are
never resurrected — while spends committed by *other* processes in the
interim survive.

**Exactly-once releases.** :meth:`DurableAccountant.spend_keyed` extends
the intent/commit protocol into a durable *result journal*: the intent
record carries the caller's idempotency ``keys`` and the commit record
stores the released ``results`` (checksummed like every record), so a
retried key — in-flight, after a SIGKILL, or after a full restart —
returns the stored release with **zero additional charge**. The dedup
check runs *inside* the exclusive spend transaction, so two processes
racing one key serialize: one charges, the other replays. A dangling
keyed intent (a writer killed between intent and commit) reconciles
definitively at recovery time: the charge never committed, so the key is
freed for retry — a keyed spend always lands on exactly
*charged-with-replayable-result* or *uncharged-with-free-key*, never a
third state.

Entry points: ``PrivateQueryEngine(..., ledger_path=...)`` wraps the
engine's accountant automatically; :func:`open_ledger` does the same for a
bare accountant; :func:`inspect_ledger` / :func:`recover_ledger` back the
CLI's ``ledger inspect`` / ``ledger recover`` targets.
"""

from __future__ import annotations

import abc
import hashlib
import json
import logging
import os
import sqlite3
import uuid
from contextlib import contextmanager
from pathlib import Path

from repro.exceptions import (
    LedgerBusyError,
    LedgerCorruptError,
    LedgerError,
    PrivacyBudgetError,
)
from repro.io.atomic import RetryPolicy, fsync_directory, retry_with_backoff
from repro.privacy.accountant import BudgetAccountant, make_accountant
from repro.privacy.cost import (
    NoiseCost,
    as_spend_cost,
    charged_pair,
    cost_from_record,
    cost_record,
)
from repro.testing.faults import failpoints, fire

try:  # POSIX cross-process file locks; Windows falls back to O_EXCL below.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

__all__ = [
    "LEDGER_FORMAT_VERSION",
    "ACCEPTED_LEDGER_FORMATS",
    "LedgerStore",
    "JournalStore",
    "SQLiteStore",
    "DurableAccountant",
    "open_store",
    "open_ledger",
    "replay_records",
    "accountant_from_meta",
    "inspect_ledger",
    "ledger_health",
    "recover_ledger",
]

logger = logging.getLogger(__name__)

# Format 2 (typed costs): an intent's "costs" array may mix the legacy
# [epsilon, delta] list encoding with NoiseCost record dicts. Format-1
# streams (scalar pairs only) are a strict subset and replay through the
# same shim (repro.privacy.cost.cost_from_record) bit-identically.
LEDGER_FORMAT_VERSION = 2

#: Meta-header formats this reader replays. Unknown *fields* in the meta
#: header only warn (forward compatibility); an unknown *format number* is
#: a genuinely incompatible stream and still refuses.
ACCEPTED_LEDGER_FORMATS = (1, 2)

#: Path suffixes routed to the SQLite backend by ``backend="auto"``.
_SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")


# ---------------------------------------------------------------------- #
# Record encoding (shared by both backends)
# ---------------------------------------------------------------------- #
def _record_crc(record):
    """SHA-1 of the canonical JSON of ``record`` minus its ``crc`` field.

    ``json.dumps`` renders floats with ``repr`` (shortest round-trip), so
    the checksum — and replay — see exactly the bits the writer spent.
    """
    body = {key: value for key, value in record.items() if key != "crc"}
    return hashlib.sha1(
        json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()


def _encode_record(record):
    record = dict(record)
    record["crc"] = _record_crc(record)
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _decode_record(text, expected_seq):
    try:
        record = json.loads(text)
    except ValueError as exc:
        raise LedgerCorruptError(f"undecodable ledger record: {exc}") from exc
    if not isinstance(record, dict) or "crc" not in record or "seq" not in record:
        raise LedgerCorruptError("ledger record missing seq/crc fields")
    if record["crc"] != _record_crc(record):
        raise LedgerCorruptError(
            f"ledger record {record.get('seq')} failed its checksum"
        )
    if expected_seq is not None and record["seq"] != expected_seq:
        raise LedgerCorruptError(
            f"ledger sequence gap: expected record {expected_seq}, "
            f"found {record['seq']}"
        )
    return record


def _txn_id():
    return f"{os.getpid()}-{uuid.uuid4().hex[:12]}"


def _committed_cost(cost):
    """Normalize a validated cost for the mirror and the journal: typed
    costs stay typed (journaled as record dicts), pairs become plain
    float tuples (journaled as the legacy [epsilon, delta] lists)."""
    if isinstance(cost, NoiseCost):
        return cost
    epsilon, delta = cost
    return (float(epsilon), float(delta))


# ---------------------------------------------------------------------- #
# Storage protocol
# ---------------------------------------------------------------------- #
class LedgerStore(abc.ABC):
    """Ordered, checksummed record stream + cross-process transactions.

    The contract :class:`DurableAccountant` relies on:

    * :meth:`scan` — read every durable record in commit order (safe
      without the lock: a concurrent writer's torn tail is tolerated and
      reported, never misparsed).
    * :meth:`scan_new` — the incremental form: return only the records
      appended since this store instance last read the stream, by
      verifying a backend-specific tail cursor against the stream before
      trusting it (``resumed=False`` signals the cursor could not be
      verified — e.g. another process compacted — and the returned
      records are the **whole** stream again). Spends are O(new records)
      because of this method; the base implementation degrades to a full
      :meth:`scan`.
    * :meth:`transact` — exclusive cross-process critical section; all
      :meth:`append` / :meth:`compact` calls happen inside one. For the
      journal this is an ``flock`` plus torn-tail repair; for SQLite a
      ``BEGIN IMMEDIATE`` transaction whose appends become durable
      atomically at commit. Raises
      :class:`~repro.exceptions.LedgerBusyError` when the bounded
      retry-with-backoff policy cannot acquire the lock.
    * :meth:`append` — add one record (``seq`` and ``crc`` are assigned
      by the store). ``point`` names the failpoint prefix fired around
      the write (``{point}.before_append`` / ``.torn`` /
      ``.after_append``) so the fault matrix can kill a writer at every
      instant of the protocol.
    * :meth:`compact` — atomically replace the whole stream with fresh
      records (recovery/rotation).
    """

    backend = "store"

    @abc.abstractmethod
    def scan(self):
        """Return ``(records, torn_tail_bytes)`` — all durable records in
        order, plus the size of any trailing torn write (journal only)."""

    def scan_new(self):
        """Return ``(new_records, torn_tail_bytes, resumed)``.

        ``resumed=True``: ``new_records`` holds only the records appended
        since this instance last read (or wrote) the stream, in order.
        ``resumed=False``: the tail position could not be verified (first
        read, or the stream was rewritten underneath us) and
        ``new_records`` is the complete stream. Backends without an
        incremental path fall back to a full scan.
        """
        records, torn = self.scan()
        return records, torn, False

    def invalidate_cursor(self):
        """Forget the incremental-scan position (if the backend keeps
        one): the next :meth:`scan_new` performs a full verification
        scan. Called after an ambiguous write failure, when the caller's
        mirror can no longer assume the cursor and the mirror agree on
        what has been applied."""
        self._tail_cursor = None

    @abc.abstractmethod
    def transact(self):
        """Context manager: exclusive cross-process critical section."""

    @abc.abstractmethod
    def append(self, payload, point=None):
        """Durably append one record (inside :meth:`transact` only)."""

    @abc.abstractmethod
    def compact(self, payloads):
        """Atomically rewrite the stream as ``payloads`` (seq renumbered,
        checksums recomputed); inside :meth:`transact` only."""

    def close(self):
        """Release any OS resources. Idempotent."""


class JournalStore(LedgerStore):
    """Append-only checksummed JSONL journal with fsync durability.

    One record per line; every append is flushed and fsynced before the
    spend is considered committed. A crashed writer can leave at most a
    *torn tail* — a final line without its newline — which the checksummed
    format detects unambiguously (our writes are single ``line + "\\n"``
    buffers, and the JSON contains no raw newline, so any partial write
    lacks the terminator). The tail is truncated on the next locked
    transaction; corruption anywhere *before* the tail (a checksum
    mismatch or sequence gap) is unrepairable tampering/rot and raises
    :class:`~repro.exceptions.LedgerCorruptError`.

    The cross-process lock is ``flock`` on a sibling ``<name>.lock`` file,
    acquired non-blocking under the store's :class:`RetryPolicy`.
    """

    backend = "journal"

    def __init__(self, path, retry=None):
        self.path = Path(path)
        self.retry = retry or RetryPolicy()
        self._last_seq = 0
        self._lock_fd = None
        # (start_offset, end_offset, seq, crc) of the last complete record
        # this instance has seen — the incremental-scan cursor. Always
        # verified against the file bytes before being trusted, so it is a
        # hint, never an assumption.
        self._tail_cursor = None

    # -- locking ------------------------------------------------------- #
    @property
    def _lock_path(self):
        return self.path.with_name(self.path.name + ".lock")

    def _try_lock(self, fd):
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        else:  # pragma: no cover - non-POSIX fallback
            probe = self.path.with_name(self.path.name + ".lockdir")
            os.mkdir(probe)
            self._fallback_probe = probe

    def _unlock(self, fd):
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - unlock best effort
                pass
        else:  # pragma: no cover - non-POSIX fallback
            probe = getattr(self, "_fallback_probe", None)
            if probe is not None:
                os.rmdir(probe)
                self._fallback_probe = None

    @contextmanager
    def transact(self):
        if self._lock_fd is not None:
            raise LedgerError("JournalStore.transact does not nest")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(str(self._lock_path), os.O_CREAT | os.O_RDWR, 0o644)
        try:
            try:
                retry_with_backoff(
                    lambda: self._try_lock(fd), self.retry, retry_on=(OSError,)
                )
            except OSError as exc:
                raise LedgerBusyError(
                    f"could not lock budget journal {self.path} after "
                    f"{self.retry.attempts} attempts; another process holds it"
                ) from exc
            self._lock_fd = fd
            self._repair_torn_tail()
            yield self
        finally:
            self._lock_fd = None
            self._unlock(fd)
            os.close(fd)

    # -- parsing ------------------------------------------------------- #
    def _parse(self, data, offset=0, first_seq=1):
        """Parse records from ``data[offset:]`` expecting sequence numbers
        from ``first_seq``; returns ``(records, valid_end_offset,
        torn_tail_bytes, last_record_start)`` (``last_record_start`` is
        ``None`` when no complete record was parsed)."""
        records = []
        expected = first_seq
        last_start = None
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline == -1:
                # Incomplete final line: the unambiguous signature of a
                # torn write (complete writes always end in the newline).
                return records, offset, len(data) - offset, last_start
            line = data[offset:newline].decode("utf-8", errors="replace")
            records.append(_decode_record(line, expected))
            expected += 1
            last_start = offset
            offset = newline + 1
        return records, offset, 0, last_start

    def _note_tail(self, records, valid_end, last_start):
        """Record the incremental-scan cursor after a successful parse."""
        if records and last_start is not None:
            self._tail_cursor = (
                last_start, valid_end, records[-1]["seq"], records[-1]["crc"]
            )
        elif last_start is None and valid_end == 0:
            self._tail_cursor = None

    def scan(self):
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            self._tail_cursor = None
            return [], 0
        records, valid_end, torn, last_start = self._parse(data)
        self._last_seq = len(records)
        self._note_tail(records, valid_end, last_start)
        return records, torn

    def scan_new(self):
        """Incremental scan: parse only the bytes appended since the
        cursor, after verifying the cursor's record still sits unchanged
        at its offsets (a compaction by another process rewrites offsets
        and/or content, failing the check and forcing a full rescan)."""
        cursor = self._tail_cursor
        if cursor is None:
            records, torn = self.scan()
            return records, torn, False
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            self._tail_cursor = None
            self._last_seq = 0
            return [], 0, False
        start, end, seq, crc = cursor
        verified = False
        if end <= len(data) and data[end - 1:end] == b"\n":
            line = data[start:end - 1].decode("utf-8", errors="replace")
            try:
                record = json.loads(line)
            except ValueError:
                record = None
            verified = (
                isinstance(record, dict)
                and record.get("seq") == seq
                and record.get("crc") == crc
            )
        if not verified:
            records, torn = self.scan()
            return records, torn, False
        records, valid_end, torn, last_start = self._parse(
            data, offset=end, first_seq=seq + 1
        )
        self._last_seq = seq + len(records)
        if records:
            self._note_tail(records, valid_end, last_start)
        return records, torn, True

    def _repair_torn_tail(self):
        """Truncate a torn final record (lock held). The lost bytes were
        never acknowledged as committed — dropping them is the *correct*
        recovery, not data loss. Only ``_last_seq`` (append numbering) is
        refreshed here — NOT the incremental-scan cursor, which tracks
        what the *caller* has consumed: records this repair parses were
        never surfaced, and advancing the cursor past them would make the
        next ``scan_new`` silently skip them."""
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            self._last_seq = 0
            self._tail_cursor = None
            return
        records, valid_end, torn, last_start = self._parse(data)
        self._last_seq = len(records)
        if torn:
            with open(self.path, "r+b") as fh:
                fh.truncate(valid_end)
                fh.flush()
                os.fsync(fh.fileno())

    # -- writing ------------------------------------------------------- #
    def append(self, payload, point=None):
        if self._lock_fd is None:
            raise LedgerError("JournalStore.append requires an open transact()")
        record = {"seq": self._last_seq + 1, **payload}
        crc = _record_crc(record)
        line = (_encode_record(record) + "\n").encode("utf-8")
        created = not self.path.exists()
        if point is not None:
            fire(f"{point}.before_append")
        with open(self.path, "ab") as fh:
            start = fh.tell()
            if point is not None:
                failpoints.guarded_write(fh, line, f"{point}.torn")
            else:
                fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        if created:
            fsync_directory(self.path.parent)
        if point is not None:
            fire(f"{point}.after_append")
        self._last_seq += 1
        self._tail_cursor = (start, start + len(line), record["seq"], crc)

    def compact(self, payloads):
        if self._lock_fd is None:
            raise LedgerError("JournalStore.compact requires an open transact()")
        lines = []
        last_crc = None
        for index, payload in enumerate(payloads):
            record = {"seq": index + 1, **payload}
            last_crc = _record_crc(record)
            lines.append(_encode_record(record) + "\n")
        staging = self.path.with_name(
            f"{self.path.name}.{os.getpid()}-{uuid.uuid4().hex[:8]}.compact.tmp"
        )
        try:
            with open(staging, "wb") as fh:
                fh.write("".join(lines).encode("utf-8"))
                fh.flush()
                os.fsync(fh.fileno())
            fire("journal.compact.before_replace")
            os.replace(staging, self.path)
            fire("journal.compact.after_replace")
            fsync_directory(self.path.parent)
        finally:
            try:
                staging.unlink(missing_ok=True)
            except OSError:
                pass
        self._last_seq = len(payloads)
        if lines:
            total = sum(len(line.encode("utf-8")) for line in lines)
            last = len(lines[-1].encode("utf-8"))
            self._tail_cursor = (total - last, total, len(payloads), last_crc)
        else:
            self._tail_cursor = None


class SQLiteStore(LedgerStore):
    """SQLite-WAL ledger backend.

    Records live in one ``ledger(seq, payload)`` table (payload = the same
    checksummed JSON the journal writes, so both backends share integrity
    checks and replay). Durability and mutual exclusion come from SQLite
    itself: the spend path runs inside ``BEGIN IMMEDIATE`` (a cross-process
    write lock) and becomes durable atomically at ``COMMIT`` under
    ``synchronous=FULL`` — a crash anywhere inside the transaction leaves
    no trace of it. Lock contention surfaces as
    :class:`~repro.exceptions.LedgerBusyError` after the bounded retry
    policy, mirroring the journal backend.
    """

    backend = "sqlite"

    def __init__(self, path, retry=None):
        self.path = Path(path)
        self.retry = retry or RetryPolicy()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # timeout=0: sqlite must not block internally — contention is
        # handled by our own bounded retry loop.
        self._conn = sqlite3.connect(str(self.path), timeout=0.0, isolation_level=None)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=FULL")
        retry_with_backoff(
            lambda: self._conn.execute(
                "CREATE TABLE IF NOT EXISTS ledger ("
                "seq INTEGER PRIMARY KEY, payload TEXT NOT NULL)"
            ),
            self.retry,
            retry_on=(sqlite3.OperationalError,),
        )
        self._in_txn = False
        self._txn_guarded = False
        # (seq, crc) of the last record this instance has seen; verified
        # by re-reading that row before an incremental scan trusts it.
        self._tail_cursor = None

    @contextmanager
    def transact(self):
        if self._in_txn:
            raise LedgerError("SQLiteStore.transact does not nest")
        try:
            retry_with_backoff(
                lambda: self._conn.execute("BEGIN IMMEDIATE"),
                self.retry,
                retry_on=(sqlite3.OperationalError,),
            )
        except sqlite3.OperationalError as exc:
            raise LedgerBusyError(
                f"could not lock budget ledger {self.path} after "
                f"{self.retry.attempts} attempts; another process holds it"
            ) from exc
        self._in_txn = True
        self._txn_guarded = False
        try:
            yield self
        except BaseException:
            self._in_txn = False
            try:
                self._conn.execute("ROLLBACK")
            except sqlite3.OperationalError:  # pragma: no cover
                pass
            raise
        else:
            self._in_txn = False
            # The txn failpoints cover the spend protocol's point of no
            # return; fire them only for transactions that wrote guarded
            # (spend-path) records, not for opens/scans, so the crash
            # matrix kills the worker mid-spend rather than mid-open.
            guarded = self._txn_guarded
            if guarded:
                fire("sqlite.txn.before_commit")
            self._conn.execute("COMMIT")
            if guarded:
                fire("sqlite.txn.after_commit")

    def scan(self):
        rows = self._conn.execute(
            "SELECT seq, payload FROM ledger ORDER BY seq"
        ).fetchall()
        records = []
        for index, (seq, payload) in enumerate(rows):
            record = _decode_record(payload, index + 1)
            if record["seq"] != seq:
                raise LedgerCorruptError(
                    f"ledger row {seq} holds a record claiming seq {record['seq']}"
                )
            records.append(record)
        self._tail_cursor = (
            (records[-1]["seq"], records[-1]["crc"]) if records else None
        )
        return records, 0

    def scan_new(self):
        """Incremental scan: fetch only rows past the cursor seq, after
        verifying the cursor row still holds the record it held (a compact
        renumbers from 1, failing the check and forcing a full rescan)."""
        cursor = self._tail_cursor
        if cursor is None:
            records, torn = self.scan()
            return records, torn, False
        seq, crc = cursor
        row = self._conn.execute(
            "SELECT payload FROM ledger WHERE seq = ?", (seq,)
        ).fetchone()
        verified = False
        if row is not None:
            try:
                record = json.loads(row[0])
            except ValueError:
                record = None
            verified = (
                isinstance(record, dict)
                and record.get("seq") == seq
                and record.get("crc") == crc
            )
        if not verified:
            records, torn = self.scan()
            return records, torn, False
        rows = self._conn.execute(
            "SELECT seq, payload FROM ledger WHERE seq > ? ORDER BY seq", (seq,)
        ).fetchall()
        records = []
        for index, (row_seq, payload) in enumerate(rows):
            record = _decode_record(payload, seq + index + 1)
            if record["seq"] != row_seq:
                raise LedgerCorruptError(
                    f"ledger row {row_seq} holds a record claiming seq {record['seq']}"
                )
            records.append(record)
        if records:
            self._tail_cursor = (records[-1]["seq"], records[-1]["crc"])
        return records, 0, True

    def _next_seq(self):
        row = self._conn.execute("SELECT COALESCE(MAX(seq), 0) FROM ledger").fetchone()
        return int(row[0]) + 1

    def append(self, payload, point=None):
        if not self._in_txn:
            raise LedgerError("SQLiteStore.append requires an open transact()")
        record = {"seq": self._next_seq(), **payload}
        if point is not None:
            self._txn_guarded = True
            fire(f"{point}.before_append")
        self._conn.execute(
            "INSERT INTO ledger (seq, payload) VALUES (?, ?)",
            (record["seq"], _encode_record(record)),
        )
        if point is not None:
            fire(f"{point}.after_append")
        self._tail_cursor = (record["seq"], _record_crc(record))

    def compact(self, payloads):
        if not self._in_txn:
            raise LedgerError("SQLiteStore.compact requires an open transact()")
        self._conn.execute("DELETE FROM ledger")
        self._tail_cursor = None
        for index, payload in enumerate(payloads):
            record = {"seq": index + 1, **payload}
            self._conn.execute(
                "INSERT INTO ledger (seq, payload) VALUES (?, ?)",
                (record["seq"], _encode_record(record)),
            )
            self._tail_cursor = (record["seq"], _record_crc(record))

    def close(self):
        try:
            self._conn.close()
        except sqlite3.Error:  # pragma: no cover
            pass


def open_store(path, backend="auto", retry=None):
    """Build the :class:`LedgerStore` for ``path``.

    ``backend="auto"`` routes ``.db``/``.sqlite``/``.sqlite3`` suffixes —
    or an existing file bearing the SQLite magic — to :class:`SQLiteStore`
    and everything else to :class:`JournalStore`.
    """
    path = Path(path)
    if backend == "auto":
        backend = "journal"
        if path.suffix.lower() in _SQLITE_SUFFIXES:
            backend = "sqlite"
        elif path.is_file():
            with open(path, "rb") as fh:
                if fh.read(16).startswith(b"SQLite format 3"):
                    backend = "sqlite"
    if backend == "journal":
        return JournalStore(path, retry=retry)
    if backend == "sqlite":
        return SQLiteStore(path, retry=retry)
    raise LedgerError(
        f"unknown ledger backend {backend!r}; choose 'auto', 'journal' or 'sqlite'"
    )


# ---------------------------------------------------------------------- #
# Replay
# ---------------------------------------------------------------------- #
def replay_records(records, accountant):
    """Rebuild ``accountant``'s ledger state from a record stream.

    Applies the committed costs **in commit order** through the
    accountant's ``_commit_state`` hook — the exact arithmetic the
    original spends performed, so the rebuilt state (scalar sums, RDP
    curves) is bit-identical to the in-memory ledger at the moment the
    last commit record was written. Intents without a commit (a crashed
    writer) are ignored; ``rollback`` records excise their transactions;
    ``reset`` clears everything before it.

    Returns a summary dict (``meta``, ``committed`` as ``(txn, costs)``
    pairs, ``dangling_intents``, ``rolled_back``, ``resets``, plus the
    result journal: ``keyed`` maps committed txn ids to their
    ``{"keys", "results"}`` and ``orphaned_keys`` lists the idempotency
    keys attached to dangling intents — charges that never committed, so
    the keys are free for retry).
    """
    meta = None
    intents = {}
    committed = []
    keyed = {}
    rolled_back = 0
    resets = 0

    def _prune_keyed(undo):
        for txn in list(keyed):
            if txn in undo:
                del keyed[txn]

    for record in records:
        op = record.get("op")
        if op == "meta":
            if meta is not None:
                raise LedgerCorruptError("duplicate ledger meta header")
            meta = record
        elif op == "intent":
            txn = record["txn"]
            if txn in intents:
                raise LedgerCorruptError(f"duplicate intent for txn {txn!r}")
            costs = [cost_from_record(entry) for entry in record["costs"]]
            keys = record.get("keys")
            if keys is not None and len(keys) != len(costs):
                raise LedgerCorruptError(
                    f"intent for txn {txn!r} carries {len(keys)} keys for "
                    f"{len(costs)} costs"
                )
            intents[txn] = (costs, keys)
        elif op == "commit":
            txn = record["txn"]
            entry = intents.pop(txn, None)
            if entry is None:
                raise LedgerCorruptError(f"commit for unknown txn {txn!r}")
            costs, keys = entry
            committed.append((txn, costs))
            results = record.get("results")
            if keys is not None and results is not None:
                if len(results) != len(keys):
                    raise LedgerCorruptError(
                        f"commit for txn {txn!r} carries {len(results)} "
                        f"results for {len(keys)} keys"
                    )
                keyed[txn] = {"keys": list(keys), "results": list(results)}
        elif op == "rollback":
            undo = set(record["txns"])
            survivors = [(txn, costs) for txn, costs in committed if txn not in undo]
            rolled_back += len(committed) - len(survivors)
            committed = survivors
            _prune_keyed(undo)
        elif op == "reset":
            resets += 1
            committed = []
            keyed = {}
        else:
            raise LedgerCorruptError(f"unknown ledger record op {op!r}")
    state = accountant._fresh_state()
    for _, costs in committed:
        for cost in costs:
            state = accountant._commit_state(cost, state)
    accountant._set_ledger_state(state)
    orphaned_keys = sorted(
        key
        for _, keys in intents.values()
        if keys is not None
        for key in keys
        if key is not None
    )
    return {
        "meta": meta,
        "committed": committed,
        "keyed": keyed,
        "dangling_intents": sorted(intents),
        "orphaned_keys": orphaned_keys,
        "rolled_back": rolled_back,
        "resets": resets,
    }


def accountant_from_meta(meta):
    """Rebuild the in-memory accountant a ledger's meta header describes —
    how ``ledger inspect``/``recover`` replay without the creating engine."""
    model = meta.get("model")
    total_epsilon = meta.get("total_epsilon")
    total_delta = meta.get("total_delta", 0.0)
    if model == "rdp":
        from repro.privacy.rdp import RDPAccountant

        alphas = meta.get("alphas")
        return RDPAccountant(total_epsilon, total_delta, alphas=alphas)
    try:
        return make_accountant(total_epsilon, total_delta, model=model)
    except PrivacyBudgetError as exc:
        raise LedgerError(
            f"ledger meta header names unknown accountant model {model!r}"
        ) from exc


# ---------------------------------------------------------------------- #
# The durable wrapper
# ---------------------------------------------------------------------- #
class DurableAccountant(BudgetAccountant):
    """Crash-safe, multi-process wrapper around any in-memory accountant.

    All accounting arithmetic (validation, admission, composition,
    reporting) delegates to the wrapped ``accountant`` — this class adds
    only durability and mutual exclusion:

    * ``spend``/``spend_many`` run under the store's exclusive
      cross-process transaction: replay any records other processes
      committed, admit against that synced state via the inner
      accountant (preserving its all-or-nothing and float-dust
      semantics exactly), then write an ``intent`` record holding the
      validated costs followed by a ``commit`` marker. Only the commit
      makes the spend real; the fault matrix kills writers at every
      instrumented instant and recovery always lands on *pre* or *post*,
      bit-identically.
    * ``snapshot``/``restore`` journal a ``rollback`` record naming this
      wrapper's own transactions, so a rolled-back charge is excised
      from replay forever (never resurrected by a later open) while
      other processes' interim spends survive the restore.
    * Read properties (``spent_epsilon`` …) serve the last synced state
      without touching the disk; ``can_spend`` and :meth:`sync` refresh
      from the store first (lock-free — committed records only).

    The first open of a path writes a ``meta`` header (model, totals,
    RDP alpha grid); every later open verifies its accountant against it,
    so one ledger can never be driven by two incompatible budgets.

    **Incremental sync.** Syncs go through the store's :meth:`scan_new`:
    the wrapper keeps the replayed bookkeeping (committed transactions,
    dangling intents) in memory and applies only the records appended
    since its last read, pushing new commits through ``_commit_state`` in
    commit order — the same arithmetic, in the same order, as a full
    replay, so the state stays bit-identical to one (the invariant
    ``tests/test_ledger_incremental.py`` pins). A rollback or reset
    record, or an unverifiable tail cursor (another process compacted),
    falls back to recomputing from scratch. Spends are therefore O(new
    records), not O(whole stream).

    ``compact_every`` (records; ``None`` = never) adds periodic
    checkpoint compaction: when the stream exceeds the threshold, the
    spend that noticed rewrites it — inside the same exclusive
    transaction — as a clean ``meta`` + intent/commit pair per surviving
    transaction (exactly :func:`recover_ledger`'s rewrite), so long-lived
    serving ledgers stay bounded by their *live* spend history instead of
    growing with every request ever served.
    """

    def __init__(self, accountant, store, compact_every=None):
        if isinstance(accountant, DurableAccountant):
            raise LedgerError("DurableAccountant cannot wrap another DurableAccountant")
        if not isinstance(accountant, BudgetAccountant):
            raise LedgerError(
                "DurableAccountant wraps a BudgetAccountant; got "
                f"{type(accountant).__name__}"
            )
        if accountant.spent_epsilon != 0.0 or accountant.spent_delta != 0.0:
            raise LedgerError(
                "DurableAccountant wraps a freshly-constructed accountant; "
                "the ledger is the single source of spend state (reopen the "
                "ledger with a fresh accountant to recover prior spending)"
            )
        super().__init__(accountant.total_epsilon, accountant.total_delta)
        #: Audit label: the *model* name of the wrapped accountant, so
        #: Release.metadata["accountant"] reads the same with or without a
        #: durable ledger underneath.
        self.name = accountant.name
        self._inner = accountant
        self._store = store
        if compact_every is not None:
            compact_every = int(compact_every)
            if compact_every <= 0:
                raise LedgerError("compact_every must be a positive record count")
        self._compact_every = compact_every
        self._own_txns = []
        self._dirty = False
        #: Keyed spends answered from the durable result journal instead
        #: of charging the budget (monotone per accountant instance).
        self.dedup_hits = 0
        self._reset_replay_state()
        with self._store.transact():
            self._sync_records()
            if self._meta is None:
                if self._records_seen:
                    raise LedgerCorruptError(
                        f"budget ledger {self._store.path} has records but "
                        "no meta header"
                    )
                # First open: write the header. The store's append advances
                # its own tail cursor past the record, so mirror it into
                # the replay bookkeeping directly instead of re-scanning.
                self._store.append(self._meta_payload())
                self._meta = self._meta_payload()
                self._records_seen = 1
                self._refresh_summary()

    # -- plumbing ------------------------------------------------------ #
    @property
    def inner(self):
        """The wrapped in-memory accountant (its state mirrors the ledger
        as of the last sync)."""
        return self._inner

    @property
    def store(self):
        """The :class:`LedgerStore` backing this accountant."""
        return self._store

    @property
    def path(self):
        return self._store.path

    def close(self):
        self._store.close()

    def _meta_payload(self):
        alphas = getattr(self._inner, "alphas", None)
        return {
            "op": "meta",
            "format": LEDGER_FORMAT_VERSION,
            "model": self._inner.name,
            "total_epsilon": float(self._inner.total_epsilon),
            "total_delta": float(self._inner.total_delta),
            "alphas": None if alphas is None else [float(a) for a in alphas],
        }

    def _check_meta(self, meta):
        expected = self._meta_payload()
        for key in ("model", "total_epsilon", "total_delta", "alphas"):
            if meta.get(key) != expected[key]:
                raise LedgerError(
                    f"budget ledger {self._store.path} was created with "
                    f"{key}={meta.get(key)!r}; this accountant has "
                    f"{key}={expected[key]!r} — one ledger cannot serve two "
                    "budget configurations"
                )
        declared = meta.get("format", 1)
        if declared not in ACCEPTED_LEDGER_FORMATS:
            raise LedgerError(
                f"budget ledger {self._store.path} declares format "
                f"{declared!r}; this reader replays formats "
                f"{ACCEPTED_LEDGER_FORMATS}"
            )
        # Forward compatibility: a newer writer may add meta fields this
        # version does not know. They cannot change what replay computes
        # (costs live in intent records, verified per record), so warn
        # instead of refusing — mixed-version deployments keep serving
        # across a schema bump.
        unknown = sorted(
            key
            for key in meta
            if key not in expected and key not in ("seq", "crc")
        )
        if unknown:
            logger.warning(
                "budget ledger %s meta header carries unknown fields %s "
                "(written by a newer version?); ignoring them",
                self._store.path,
                unknown,
            )

    # -- incremental replay bookkeeping -------------------------------- #
    def _reset_replay_state(self):
        """Forget everything replayed so far (a full rescan follows)."""
        self._meta = None
        self._committed = []
        self._intents = {}
        self._keyed = {}
        self._keys = {}
        self._rolled_back = 0
        self._resets = 0
        self._records_seen = 0
        self._inner._set_ledger_state(self._inner._fresh_state())
        self._refresh_summary()

    def _refresh_summary(self):
        self._summary = {
            "meta": self._meta,
            "committed": list(self._committed),
            "keyed": dict(self._keyed),
            "dangling_intents": sorted(self._intents),
            "rolled_back": self._rolled_back,
            "resets": self._resets,
        }

    def _register_keyed(self, txn, keys, results):
        """Index a committed result set by its idempotency keys. First
        writer wins: a key can only appear twice if an earlier holder was
        rolled back and re-spent, in which case the live txn re-indexes."""
        self._keyed[txn] = {"keys": list(keys), "results": list(results)}
        for index, key in enumerate(keys):
            if key is not None and key not in self._keys:
                self._keys[key] = (txn, index)

    def _prune_keyed(self, undo):
        """Drop the result-journal entries (and their dedup-index keys)
        for the transactions in ``undo`` — rolled back, so the keys are
        free for retry."""
        for txn in list(self._keyed):
            if txn in undo:
                del self._keyed[txn]
        self._keys = {
            key: ref for key, ref in self._keys.items() if ref[0] not in undo
        }

    def _lookup_result(self, key):
        """The stored result for ``key`` as of the last sync, or ``None``
        if the key has never committed (or was rolled back)."""
        ref = self._keys.get(key)
        if ref is None:
            return None
        txn, index = ref
        entry = self._keyed.get(txn)
        if entry is None:
            return None
        return entry["results"][index]

    def result_for(self, key):
        """Sync from the store and return the durably stored result for
        idempotency ``key``, or ``None`` if no keyed spend with that key
        has committed."""
        self.sync()
        return self._lookup_result(key)

    def _recompute_state(self):
        """Rebuild the inner state from the committed list, from scratch —
        the exact arithmetic :func:`replay_records` performs, needed after
        any record (rollback/reset) that edits history rather than
        appending to it."""
        state = self._inner._fresh_state()
        for _, costs in self._committed:
            for cost in costs:
                state = self._inner._commit_state(cost, state)
        self._inner._set_ledger_state(state)

    def _apply_records(self, records):
        """Fold new records into the replayed bookkeeping and inner state.

        Plain commits are applied *incrementally* — each cost pushed
        through ``_commit_state`` on top of the current state, which is
        exactly where a full replay's loop would be at that record, so the
        result is bit-identical to one. History-editing records
        (rollback/reset) trigger one from-scratch recompute at the end of
        the batch instead, again mirroring the full replay's arithmetic.
        """
        recompute = False
        for record in records:
            op = record.get("op")
            self._records_seen += 1
            if op == "meta":
                if self._meta is not None:
                    raise LedgerCorruptError("duplicate ledger meta header")
                self._check_meta(record)
                self._meta = record
            elif self._meta is None:
                raise LedgerCorruptError(
                    f"budget ledger {self._store.path} has records but no "
                    "meta header"
                )
            elif op == "intent":
                txn = record["txn"]
                if txn in self._intents:
                    raise LedgerCorruptError(f"duplicate intent for txn {txn!r}")
                costs = [cost_from_record(entry) for entry in record["costs"]]
                keys = record.get("keys")
                if keys is not None and len(keys) != len(costs):
                    raise LedgerCorruptError(
                        f"intent for txn {txn!r} carries {len(keys)} keys "
                        f"for {len(costs)} costs"
                    )
                self._intents[txn] = (costs, keys)
            elif op == "commit":
                txn = record["txn"]
                entry = self._intents.pop(txn, None)
                if entry is None:
                    raise LedgerCorruptError(f"commit for unknown txn {txn!r}")
                costs, keys = entry
                self._committed.append((txn, costs))
                results = record.get("results")
                if keys is not None and results is not None:
                    if len(results) != len(keys):
                        raise LedgerCorruptError(
                            f"commit for txn {txn!r} carries {len(results)} "
                            f"results for {len(keys)} keys"
                        )
                    self._register_keyed(txn, keys, results)
                if not recompute:
                    state = self._inner._ledger_state()
                    for cost in costs:
                        state = self._inner._commit_state(cost, state)
                    self._inner._set_ledger_state(state)
            elif op == "rollback":
                undo = set(record["txns"])
                survivors = [
                    (txn, costs) for txn, costs in self._committed if txn not in undo
                ]
                self._rolled_back += len(self._committed) - len(survivors)
                self._committed = survivors
                self._prune_keyed(undo)
                recompute = True
            elif op == "reset":
                self._resets += 1
                self._committed = []
                self._keyed = {}
                self._keys = {}
                recompute = True
            else:
                raise LedgerCorruptError(f"unknown ledger record op {op!r}")
        if recompute:
            self._recompute_state()
        if records:
            self._refresh_summary()

    def _sync_records(self):
        """Refresh the mirror from the store: incremental when the store's
        tail cursor verifies, full replay from scratch otherwise. After an
        ambiguous write failure (``_dirty``) the cursor itself is suspect
        — it may sit past durable records the mirror rolled back — so it
        is dropped and the stream re-verified end to end."""
        if self._dirty:
            self._store.invalidate_cursor()
            self._dirty = False
        records, _, resumed = self._store.scan_new()
        if not resumed:
            self._reset_replay_state()
        self._apply_records(records)

    def sync(self):
        """Refresh the in-memory mirror from the store (lock-free read of
        committed records; a concurrent writer's torn tail is ignored)."""
        self._sync_records()
        return self

    # -- delegation: one composition rule, the inner one --------------- #
    def _validate_cost(self, epsilon, delta):
        return self._inner._validate_cost(epsilon, delta)

    def _fresh_state(self):
        return self._inner._fresh_state()

    def _ledger_state(self):
        return self._inner._ledger_state()

    def _set_ledger_state(self, state):
        self._inner._set_ledger_state(state)

    def _state_spent(self, state):
        return self._inner._state_spent(state)

    def _fits_state(self, cost, state):
        return self._inner._fits_state(cost, state)

    def _commit_state(self, cost, state):
        return self._inner._commit_state(cost, state)

    def can_spend(self, cost, delta=0.0):
        self.sync()
        return self._inner.can_spend(cost, delta)

    # -- the durable spend path ---------------------------------------- #
    def _charge(self, costs, realized_out=None, many=False):
        staged_realized = [] if realized_out is not None else None
        snapshot = None
        txn = None
        with self._store.transact():
            try:
                self._sync_records()
                if self._meta is None:
                    raise LedgerCorruptError(
                        f"budget ledger {self._store.path} has records but "
                        "no meta header"
                    )
                snapshot = self._inner.snapshot()
                if many:
                    validated = self._inner.spend_many(
                        costs, realized_out=staged_realized
                    )
                else:
                    validated = [self._inner.spend(costs[0])]
                txn = _txn_id()
                committed_costs = [_committed_cost(cost) for cost in validated]
                self._store.append(
                    {
                        "op": "intent",
                        "txn": txn,
                        "costs": [cost_record(cost) for cost in committed_costs],
                    },
                    point="ledger.intent",
                )
                self._store.append({"op": "commit", "txn": txn}, point="ledger.commit")
                # The inner state already includes this spend (the
                # spend/spend_many call above performed it); mirror the
                # bookkeeping the two appended records represent, so the
                # next sync resumes past them instead of re-applying.
                self._committed.append((txn, committed_costs))
                self._records_seen += 2
                self._refresh_summary()
            except PrivacyBudgetError:
                # Admission failed inside the inner accountant: nothing
                # was journaled and the inner ledger is untouched (its
                # spend path raises before any state change).
                raise
            except BaseException:
                # A write failed after the inner ledger was charged. What
                # actually reached the stream is backend- and
                # instant-specific (a durable dangling intent, both
                # records, or — after a sqlite rollback — nothing), so
                # roll the mirror back to the synced pre-spend state and
                # mark it dirty: the next sync rescans from scratch
                # instead of trusting a cursor that may disagree with the
                # mirror in either direction.
                if snapshot is not None:
                    self._inner.restore(snapshot)
                    if txn is not None and self._committed and (
                        self._committed[-1][0] == txn
                    ):
                        self._committed.pop()
                        self._refresh_summary()
                    self._dirty = True
                raise
        self._own_txns.append(txn)
        if realized_out is not None:
            realized_out.extend(staged_realized)
        if (
            self._compact_every is not None
            and self._records_seen > self._compact_every
        ):
            self._maybe_checkpoint()
        return validated

    def _maybe_checkpoint(self):
        """Checkpoint compaction: rewrite the stream as ``meta`` + one
        intent/commit pair per surviving transaction (exactly the
        :func:`recover_ledger` rewrite), in its **own** exclusive
        transaction — never inside a spend's, because a sqlite compact
        shares its enclosing transaction and a mid-compact failure would
        roll the (already admitted) spend back with it. Commit order is
        preserved by the rewrite, so the replayed state is untouched by
        construction. A checkpoint failure never fails the spend that
        triggered it: the stream is left valid either way (atomic journal
        replace / sqlite rollback) and the next spend simply retries."""
        try:
            with self._store.transact():
                self._sync_records()
                if self._meta is None or self._records_seen <= self._compact_every:
                    return
                payloads = [
                    {
                        key: value
                        for key, value in self._meta.items()
                        if key not in ("seq", "crc")
                    }
                ]
                for txn, txn_costs in self._committed:
                    intent = {
                        "op": "intent",
                        "txn": txn,
                        "costs": [cost_record(cost) for cost in txn_costs],
                    }
                    commit = {"op": "commit", "txn": txn}
                    entry = self._keyed.get(txn)
                    if entry is not None:
                        # The dedup index survives compaction: keys and
                        # stored results ride along with their txn.
                        intent["keys"] = entry["keys"]
                        commit["results"] = entry["results"]
                    payloads.append(intent)
                    payloads.append(commit)
                try:
                    self._store.compact(payloads)
                except BaseException:
                    self._dirty = True
                    raise
                # Only the stream bookkeeping resets; dropped records
                # (dangling intents of crashed writers, applied rollbacks
                # and resets) are exactly those replay already ignored.
                self._intents = {}
                self._rolled_back = 0
                self._resets = 0
                self._records_seen = len(payloads)
                self._refresh_summary()
        except LedgerBusyError:
            return  # another process holds the lock; the next spend retries
        except (LedgerError, OSError) as exc:
            logger.warning(
                "budget ledger checkpoint failed on %s (stream left valid): %s",
                self._store.path,
                exc,
            )

    def spend(self, cost, delta=0.0):
        return self._charge([as_spend_cost(cost, delta)], many=False)[0]

    def spend_many(self, costs, realized_out=None):
        return self._charge(
            [cost if isinstance(cost, NoiseCost) else tuple(cost) for cost in costs],
            realized_out=realized_out,
            many=True,
        )

    def spend_keyed(self, requests, produce):
        """Exactly-once spend: charge each request at most once per key
        and journal the produced results durably.

        ``requests`` is a list of ``((epsilon, delta), key)`` pairs; a
        ``key`` of ``None`` opts that request out of deduplication. Under
        the store's exclusive transaction, every key is first checked
        against the durable result journal — a hit returns the stored
        result with **zero additional charge** (two processes racing one
        key serialize here: one charges, the other replays). The
        still-fresh requests are charged atomically through the inner
        accountant, then ``produce(positions, realized)`` is called — with
        the request indices just charged and their realized cumulative
        costs — to build the results *before* anything is journaled: one
        ``intent`` record carrying the keys, then one ``commit`` record
        carrying the results. A crash before the commit therefore leaves
        an uncharged ledger and free keys; a crash after it leaves a
        charged ledger whose results every future retry replays.

        Duplicate keys *within* one call fold: one charge, the same
        result returned at every position. Returns a list aligned with
        ``requests`` of ``(result, deduped)`` pairs.
        """
        results = [None] * len(requests)
        payloads = []
        with self._store.transact():
            self._sync_records()
            if self._meta is None:
                raise LedgerCorruptError(
                    f"budget ledger {self._store.path} has records but "
                    "no meta header"
                )
            fresh_positions = []
            fresh_costs = []
            fresh_keys = []
            batch_index = {}  # key -> index into fresh_positions
            dup_positions = []  # (position, fresh index) in-call folds
            for position, (cost, key) in enumerate(requests):
                stored = None if key is None else self._lookup_result(key)
                if stored is not None:
                    self.dedup_hits += 1
                    results[position] = (stored, True)
                elif key is not None and key in batch_index:
                    self.dedup_hits += 1
                    dup_positions.append((position, batch_index[key]))
                else:
                    if key is not None:
                        batch_index[key] = len(fresh_positions)
                    fresh_positions.append(position)
                    fresh_costs.append(
                        cost if isinstance(cost, NoiseCost) else tuple(cost)
                    )
                    fresh_keys.append(key)
            if not fresh_positions:
                return results
            snapshot = self._inner.snapshot()
            txn = None
            try:
                staged_realized = []
                if len(fresh_costs) == 1:
                    validated = [self._inner.spend(fresh_costs[0])]
                    staged_realized.append(
                        (self._inner.spent_epsilon, self._inner.spent_delta)
                    )
                else:
                    validated = self._inner.spend_many(
                        fresh_costs, realized_out=staged_realized
                    )
                payloads = list(
                    produce(list(fresh_positions), list(staged_realized))
                )
                if len(payloads) != len(fresh_positions):
                    raise LedgerError(
                        "spend_keyed produce() returned "
                        f"{len(payloads)} results for {len(fresh_positions)} "
                        "charged requests"
                    )
                txn = _txn_id()
                committed_costs = [_committed_cost(cost) for cost in validated]
                intent = {
                    "op": "intent",
                    "txn": txn,
                    "costs": [cost_record(cost) for cost in committed_costs],
                }
                commit = {"op": "commit", "txn": txn}
                stored_results = None
                if any(key is not None for key in fresh_keys):
                    intent["keys"] = list(fresh_keys)
                    stored_results = [
                        payloads[i] if fresh_keys[i] is not None else None
                        for i in range(len(fresh_keys))
                    ]
                    commit["results"] = stored_results
                self._store.append(intent, point="ledger.intent")
                self._store.append(commit, point="ledger.commit")
                self._committed.append((txn, committed_costs))
                if stored_results is not None:
                    self._register_keyed(txn, fresh_keys, stored_results)
                self._records_seen += 2
                self._refresh_summary()
            except PrivacyBudgetError:
                # Admission failed inside the inner accountant: nothing
                # was journaled and the inner ledger is untouched.
                raise
            except BaseException:
                # Charged but not durably committed (a produce() or write
                # failure): same recovery as _charge — roll the mirror
                # back and force a from-scratch rescan on the next sync.
                self._inner.restore(snapshot)
                if txn is not None:
                    if self._committed and self._committed[-1][0] == txn:
                        self._committed.pop()
                    self._prune_keyed({txn})
                    self._refresh_summary()
                self._dirty = True
                raise
            for index, position in enumerate(fresh_positions):
                results[position] = (payloads[index], False)
            for position, fresh_index in dup_positions:
                results[position] = (payloads[fresh_index], True)
        self._own_txns.append(txn)
        if (
            self._compact_every is not None
            and self._records_seen > self._compact_every
        ):
            self._maybe_checkpoint()
        return results

    # -- snapshot / restore / reset ------------------------------------ #
    def snapshot(self):
        """Opaque rollback token: the inner snapshot plus a marker for
        which of *this wrapper's* transactions existed at snapshot time."""
        return (self._inner.snapshot(), len(self._own_txns))

    def restore(self, state):
        """Roll back this wrapper's post-snapshot transactions, durably.

        A ``rollback`` record naming them is journaled, so replay — now or
        after any future crash — excises them permanently; spends
        committed by other processes since the snapshot are preserved
        (the in-memory mirror is rebuilt from the journal, not from the
        snapshot value).
        """
        try:
            _, marker = state
            marker = int(marker)
        except (TypeError, ValueError) as exc:
            raise LedgerError(
                "DurableAccountant.restore expects a DurableAccountant.snapshot()"
            ) from exc
        rolled = list(self._own_txns[marker:])
        with self._store.transact():
            try:
                self._sync_records()
                if rolled:
                    self._store.append(
                        {"op": "rollback", "txns": rolled}, point="ledger.rollback"
                    )
                    del self._own_txns[marker:]
                    # Mirror the record just appended (the cursor is past
                    # it): excise the named transactions and recompute the
                    # state from the survivors, exactly as replay would.
                    undo = set(rolled)
                    survivors = [
                        (txn, costs)
                        for txn, costs in self._committed
                        if txn not in undo
                    ]
                    self._rolled_back += len(self._committed) - len(survivors)
                    self._committed = survivors
                    self._prune_keyed(undo)
                    self._records_seen += 1
                    self._recompute_state()
                    self._refresh_summary()
            except BaseException:
                self._dirty = True
                raise

    def reset(self):
        """Durably forget all spending (journals a ``reset`` record)."""
        with self._store.transact():
            try:
                self._sync_records()
                self._store.append({"op": "reset"})
                self._resets += 1
                self._committed = []
                self._keyed = {}
                self._keys = {}
                self._records_seen += 1
                self._recompute_state()
                self._refresh_summary()
            except BaseException:
                self._dirty = True
                raise
        self._own_txns = []


def open_ledger(path, accountant, backend="auto", retry=None, compact_every=None):
    """Wrap ``accountant`` in a :class:`DurableAccountant` backed by the
    ledger at ``path`` (created on first open, replayed on every later
    one). ``retry`` is the :class:`repro.io.atomic.RetryPolicy` bounding
    lock acquisition; ``compact_every`` enables checkpoint compaction
    once the stream exceeds that many records."""
    return DurableAccountant(
        accountant,
        open_store(path, backend=backend, retry=retry),
        compact_every=compact_every,
    )


# ---------------------------------------------------------------------- #
# Inspection and recovery (the CLI's `ledger` target)
# ---------------------------------------------------------------------- #
def _cost_families(committed):
    """Per-family audit breakdown of a replayed ledger's committed costs.

    Returns ``{family: {"count", "epsilon", "delta"}}`` where epsilon /
    delta sum each release's *charged* (amplified) pair — the additive
    ε-equivalent, a legible audit figure even when the live accountant is
    RDP. Pre-typed scalar costs are grouped under ``"untyped"``.
    """
    families = {}
    for _, costs in committed:
        for cost in costs:
            family = cost.family if isinstance(cost, NoiseCost) else "untyped"
            epsilon, delta = charged_pair(cost)
            entry = families.setdefault(
                family, {"count": 0, "epsilon": 0.0, "delta": 0.0}
            )
            entry["count"] += 1
            entry["epsilon"] += epsilon
            entry["delta"] += delta
    return families


def _summarize(store, records, torn, summary, accountant):
    spent_epsilon, spent_delta = accountant._state_spent(accountant._ledger_state())
    return {
        "path": str(store.path),
        "backend": store.backend,
        "records": len(records),
        "committed": len(summary["committed"]),
        "costs": sum(len(costs) for _, costs in summary["committed"]),
        "keyed_results": sum(
            sum(1 for result in entry["results"] if result is not None)
            for entry in summary.get("keyed", {}).values()
        ),
        "dangling_intents": summary["dangling_intents"],
        "orphaned_keys": summary.get("orphaned_keys", []),
        "rolled_back": summary["rolled_back"],
        "resets": summary["resets"],
        "families": _cost_families(summary["committed"]),
        "torn_tail_bytes": torn,
        "model": summary["meta"].get("model"),
        "total_epsilon": summary["meta"].get("total_epsilon"),
        "total_delta": summary["meta"].get("total_delta"),
        "spent_epsilon": spent_epsilon,
        "spent_delta": spent_delta,
        "remaining_epsilon": max(
            summary["meta"].get("total_epsilon") - spent_epsilon, 0.0
        ),
    }


def _scan_and_replay(store):
    records, torn = store.scan()
    if not records:
        raise LedgerError(f"budget ledger {store.path} is empty or missing")
    if records[0].get("op") != "meta":
        raise LedgerCorruptError(f"budget ledger {store.path} has no meta header")
    accountant = accountant_from_meta(records[0])
    summary = replay_records(records, accountant)
    return records, torn, summary, accountant


def inspect_ledger(path, backend="auto"):
    """Read-only audit of a ledger: replays it with a fresh accountant and
    returns a summary dict (record/commit counts, dangling intents, torn
    tail, realized spend). Never modifies the ledger."""
    store = open_store(path, backend=backend)
    try:
        records, torn, summary, accountant = _scan_and_replay(store)
        return _summarize(store, records, torn, summary, accountant)
    finally:
        store.close()


def ledger_health(path, backend="auto"):
    """Cheap read-side liveness probe of one ledger: a raw scan with no
    accountant replay, no locks held for the journal read, and no
    modification. The serving tier's ``health`` op calls this per tenant;
    ``ok`` means the file exists, parses, carries a meta header, and has
    neither a torn tail nor dangling intents awaiting repair."""
    path = Path(path)
    if not path.exists():
        return {"path": str(path), "exists": False, "ok": False}
    store = open_store(path, backend=backend)
    try:
        records, torn = store.scan()
    except LedgerCorruptError as exc:
        return {
            "path": str(path), "exists": True, "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
        }
    finally:
        store.close()
    has_meta = bool(records) and records[0].get("op") == "meta"
    intents = {
        record["txn"] for record in records if record.get("op") == "intent"
    }
    closed = {
        record["txn"]
        for record in records
        if record.get("op") in ("commit", "rollback")
    }
    dangling = len(intents - closed)
    keyed_results = sum(
        1 for record in records
        if record.get("op") == "commit" and record.get("results")
    )
    return {
        "path": str(path),
        "backend": store.backend,
        "exists": True,
        "records": len(records),
        "torn_tail_bytes": torn,
        "dangling_intents": dangling,
        "keyed_results": keyed_results,
        "ok": has_meta and torn == 0 and dangling == 0,
    }


def recover_ledger(path, backend="auto", dry_run=False):
    """Repair and compact a ledger after a crash.

    Under the store's exclusive transaction: truncate any torn tail
    (journal backend), drop dangling intents left by killed writers, apply
    rollbacks/resets, and rewrite the stream as a clean ``meta`` +
    intent/commit pair per surviving transaction — keyed transactions keep
    their idempotency keys and stored results, so the exactly-once dedup
    index survives recovery. Orphan reconciliation is definitive: a
    dangling *keyed* intent never committed its charge, so recovery drops
    it and frees the key for retry (reported as ``reconciled_orphans`` /
    ``freed_keys``); a committed keyed transaction keeps its replayable
    result. The replayed spend state is unchanged by construction —
    recovery discards only records replay already ignored. Returns the
    post-recovery summary dict.

    ``dry_run=True`` reports what recovery *would* do — torn tail bytes,
    dangling intents, reconcilable orphaned keys — from a lock-free scan
    that never mutates the stream (no transaction is opened, so not even
    the journal backend's torn-tail repair runs)."""
    store = open_store(path, backend=backend)
    try:
        if dry_run:
            records, torn, summary, accountant = _scan_and_replay(store)
            report = _summarize(store, records, torn, summary, accountant)
            report["dry_run"] = True
            report["reconciled_orphans"] = len(summary["dangling_intents"])
            report["freed_keys"] = list(summary["orphaned_keys"])
            return report
        with store.transact():
            records, torn, summary, accountant = _scan_and_replay(store)
            reconciled = len(summary["dangling_intents"])
            freed_keys = list(summary["orphaned_keys"])
            meta = {
                key: value
                for key, value in summary["meta"].items()
                if key not in ("seq", "crc")
            }
            payloads = [meta]
            for txn, costs in summary["committed"]:
                intent = {
                    "op": "intent",
                    "txn": txn,
                    "costs": [cost_record(cost) for cost in costs],
                }
                commit = {"op": "commit", "txn": txn}
                entry = summary["keyed"].get(txn)
                if entry is not None:
                    intent["keys"] = entry["keys"]
                    commit["results"] = entry["results"]
                payloads.append(intent)
                payloads.append(commit)
            store.compact(payloads)
            records, torn = store.scan()
            summary = replay_records(records, accountant)
            report = _summarize(store, records, torn, summary, accountant)
            report["dry_run"] = False
            report["reconciled_orphans"] = reconciled
            report["freed_keys"] = freed_keys
            return report
    finally:
        store.close()
