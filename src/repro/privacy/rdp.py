"""Concentrated differential privacy: Rényi-DP curves and the RDP accountant.

Basic (eps, delta) composition charges ``sum eps_i`` and ``sum delta_i`` —
linear in the number of releases on *both* coordinates, which exhausts a
serving budget long before the actual privacy loss does. Rényi DP (Mironov
2017) tracks the loss as a *curve* ``eps(alpha)`` over Rényi orders
``alpha > 1``; curves **add** under composition, and the composed curve
converts back to a single (eps, delta_total) guarantee at the end. For
``k`` Gaussian releases the converted epsilon grows like ``sqrt(k)``
instead of ``k`` — the releases-per-budget win measured in
``benchmarks/test_bench_accounting_perf.py``.

Curves here are plain float arrays evaluated on a fixed order grid
(:data:`DEFAULT_ALPHA_GRID`), so composition is vector addition and the
ledger of :class:`RDPAccountant` is one array:

* :func:`gaussian_rdp_curve` — ``eps(alpha) = alpha / (2 (sigma/Delta)^2)``
  (Mironov 2017, Prop. 7; equivalently ``1/(2 (sigma/Delta)^2)``-zCDP).
* :func:`laplace_rdp_curve` — the known Laplace bound (Mironov 2017,
  Prop. 6), computed in log space.
* :func:`rdp_to_approx_dp` — the optimized conversion of Balle et al.
  (2020) / Canonne–Kamath–Steinke, minimized over the grid.

:class:`RDPAccountant` plugs into the engine through
``make_accountant(..., model="rdp")`` or
``PrivateQueryEngine(..., accountant="rdp")``. Costs arrive either as
typed :class:`repro.privacy.cost.NoiseCost` objects — the accountant
dispatches on the declared family (:func:`noise_cost_rdp_curve`) — or as
legacy (epsilon, delta) pairs, which keep the historical inference:

* ``delta == 0`` — a Laplace release at scale ``Delta/eps`` (every pure
  mechanism in this package is Laplace-noised; the Laplace curve is *not*
  a bound for arbitrary pure eps-DP mechanisms).
* ``delta > 0`` — a Gaussian release whose sigma is what the **default
  analytic calibration** (:func:`repro.privacy.noise.gaussian_sigma`)
  produces for that (eps, delta). A release that actually used a larger
  sigma (e.g. ``mode="classical"``) is accounted conservatively, never
  optimistically, since the RDP curve shrinks as sigma grows.

Typed Laplace/Gaussian costs are mapped with *exactly* the legacy
expressions (same sigma calibration, same curve arithmetic), so a typed
release composes bit-identically with its scalar twin. The typed
vocabulary additionally unlocks :func:`subsampled_gaussian_rdp_curve` —
the Sampled Gaussian Mechanism bound of Mironov, Talwar & Zhang (2019),
far tighter under composition than charging the amplified (ε, δ) pair —
and the discrete Gaussian, whose curve equals the continuous one at the
same sigma (Canonne–Kamath–Steinke 2020).
"""

from __future__ import annotations

import numpy as np

from scipy.special import gammaln, logsumexp

from repro.exceptions import PrivacyBudgetError
from repro.linalg.validation import check_positive
from repro.privacy.accountant import BudgetAccountant, _check_delta
from repro.privacy.cost import NoiseCost, amplified_pair
from repro.privacy.noise import gaussian_sigma

__all__ = [
    "DEFAULT_ALPHA_GRID",
    "gaussian_rdp_curve",
    "laplace_rdp_curve",
    "subsampled_gaussian_rdp_curve",
    "compose_rdp_curves",
    "rdp_to_approx_dp",
    "release_rdp_curve",
    "noise_cost_rdp_curve",
    "releases_per_budget",
    "RDPAccountant",
]

#: Fixed Rényi-order grid (all ``alpha > 1``): dense fractional orders near
#: 1 (they win the conversion for large cumulative loss), integer orders
#: through 32, then a geometric tail (small cumulative loss / tiny deltas).
DEFAULT_ALPHA_GRID = np.array(
    [1.0 + x / 10.0 for x in range(1, 10)]
    + list(range(2, 33))
    + [40, 48, 64, 96, 128, 192, 256, 384, 512, 1024],
    dtype=np.float64,
)
DEFAULT_ALPHA_GRID.setflags(write=False)


def _as_alphas(alphas):
    if alphas is None:
        return DEFAULT_ALPHA_GRID
    alphas = np.asarray(alphas, dtype=np.float64)
    if alphas.ndim != 1 or alphas.size == 0 or np.any(alphas <= 1.0):
        raise PrivacyBudgetError("alpha grid must be a non-empty 1-D array of orders > 1")
    return alphas


def gaussian_rdp_curve(noise_multiplier, alphas=None):
    """RDP curve of the Gaussian mechanism: ``eps(alpha) = alpha / (2 nm^2)``.

    ``noise_multiplier`` is ``sigma / Delta_2`` — the noise scale per unit
    of L2 sensitivity. The curve is exact (Mironov 2017, Prop. 7) and is
    the zCDP line ``rho * alpha`` with ``rho = 1 / (2 nm^2)``.
    """
    noise_multiplier = check_positive(noise_multiplier, "noise_multiplier")
    alphas = _as_alphas(alphas)
    return alphas / (2.0 * noise_multiplier * noise_multiplier)


def laplace_rdp_curve(scale_ratio, alphas=None):
    """RDP curve of the Laplace mechanism at scale ``lambda = b / Delta_1``.

    Mironov 2017, Prop. 6 (``alpha > 1``):

        eps(alpha) = log( alpha/(2 alpha - 1) e^{(alpha-1)/lambda}
                          + (alpha-1)/(2 alpha - 1) e^{-alpha/lambda} )
                     / (alpha - 1)

    computed with ``logaddexp`` so large ``alpha / small lambda`` (high
    per-release epsilon) cannot overflow. Increasing in ``alpha`` and
    bounded by the pure-DP epsilon ``1 / lambda``.
    """
    scale_ratio = check_positive(scale_ratio, "scale_ratio")
    alphas = _as_alphas(alphas)
    first = np.log(alphas / (2.0 * alphas - 1.0)) + (alphas - 1.0) / scale_ratio
    second = np.log((alphas - 1.0) / (2.0 * alphas - 1.0)) - alphas / scale_ratio
    return np.logaddexp(first, second) / (alphas - 1.0)


def compose_rdp_curves(*curves):
    """Composition of RDP guarantees: curves (on one grid) simply add."""
    if not curves:
        raise PrivacyBudgetError("compose_rdp_curves needs at least one curve")
    total = np.zeros_like(np.asarray(curves[0], dtype=np.float64))
    for curve in curves:
        total = total + np.asarray(curve, dtype=np.float64)
    return total


def rdp_to_approx_dp(curve, delta, alphas=None):
    """Convert an RDP curve to the smallest epsilon at target ``delta``.

    The optimized conversion (Balle et al. 2020, Thm 21; as deployed in the
    standard DP-SGD accountants): for every order,

        eps(alpha) = rdp(alpha) + log1p(-1/alpha) - (log delta + log alpha)/(alpha - 1)

    minimized over the grid and floored at 0. A finer grid can only lower
    the result, so evaluating on the fixed grid is sound (an upper bound).
    """
    delta = check_positive(delta, "delta")
    if delta >= 1.0:
        raise PrivacyBudgetError(f"delta must be < 1, got {delta}")
    alphas = _as_alphas(alphas)
    curve = np.asarray(curve, dtype=np.float64)
    if curve.shape != alphas.shape:
        raise PrivacyBudgetError(
            f"curve shape {curve.shape} does not match alpha grid {alphas.shape}"
        )
    candidates = (
        curve
        + np.log1p(-1.0 / alphas)
        - (np.log(delta) + np.log(alphas)) / (alphas - 1.0)
    )
    return max(float(np.min(candidates)), 0.0)


def release_rdp_curve(epsilon, delta, alphas=None):
    """The RDP cost curve of one engine release charged at (epsilon, delta).

    ``delta == 0`` maps to the Laplace mechanism at scale ``Delta/eps``
    (scale ratio ``1/eps``); ``delta > 0`` maps to the Gaussian mechanism
    at the sigma the default analytic calibration assigns to
    (epsilon, delta). See the module docstring for the soundness
    discussion.
    """
    epsilon = check_positive(epsilon, "epsilon")
    delta = _check_delta(delta)
    if delta == 0.0:
        return laplace_rdp_curve(1.0 / epsilon, alphas)
    return gaussian_rdp_curve(gaussian_sigma(1.0, epsilon, delta), alphas)


def subsampled_gaussian_rdp_curve(noise_multiplier, sample_rate, alphas=None):
    """RDP curve of the Sampled Gaussian Mechanism (Bernoulli rate ``q``).

    Mironov, Talwar & Zhang 2019 ("Rényi Differential Privacy of the
    Sampled Gaussian Mechanism"), integer-order bound:

        eps(alpha) = log( sum_{k=0}^{alpha} C(alpha, k)
                          (1-q)^{alpha-k} q^k e^{(k^2-k)/(2 sigma^2)} )
                     / (alpha - 1)

    evaluated in log space (``gammaln`` binomials + ``logsumexp``) so
    large orders cannot overflow. Fractional grid orders are bounded by
    the value at ``ceil(alpha)`` — Rényi divergence is non-decreasing in
    the order, so that is a sound (slightly loose) upper bound — and the
    whole curve is capped at the *unsampled* Gaussian curve, which is
    itself always a valid bound for the subsampled mechanism
    (quasi-convexity of Rényi divergence in the mixture argument). At
    ``q = 1`` this reproduces :func:`gaussian_rdp_curve` exactly.
    """
    noise_multiplier = check_positive(noise_multiplier, "noise_multiplier")
    sample_rate = float(sample_rate)
    if not 0.0 < sample_rate <= 1.0:
        raise PrivacyBudgetError(
            f"sample_rate must be in (0, 1], got {sample_rate}"
        )
    alphas = _as_alphas(alphas)
    unsampled = gaussian_rdp_curve(noise_multiplier, alphas)
    if sample_rate == 1.0:
        return unsampled
    log_q = np.log(sample_rate)
    log_1mq = np.log1p(-sample_rate)
    inv_two_sigma_sq = 1.0 / (2.0 * noise_multiplier * noise_multiplier)
    orders = np.ceil(alphas).astype(np.int64)
    bound_by_order = {}
    for order in np.unique(orders):
        k = np.arange(order + 1, dtype=np.float64)
        log_binom = gammaln(order + 1.0) - gammaln(k + 1.0) - gammaln(order - k + 1.0)
        log_terms = (
            log_binom
            + k * log_q
            + (order - k) * log_1mq
            + (k * k - k) * inv_two_sigma_sq
        )
        bound_by_order[int(order)] = float(logsumexp(log_terms)) / (order - 1.0)
    sampled = np.array(
        [bound_by_order[int(order)] for order in orders], dtype=np.float64
    )
    return np.minimum(sampled, unsampled)


def noise_cost_rdp_curve(cost, alphas=None):
    """The RDP curve a typed :class:`NoiseCost` declares.

    Unlike :func:`release_rdp_curve` (the legacy inference from a bare
    pair), the family is dispatched structurally:

    * ``laplace`` — :func:`laplace_rdp_curve` at scale ratio ``1/eps``.
    * ``gaussian`` / ``discrete_gaussian`` — :func:`gaussian_rdp_curve`
      at the analytically calibrated sigma (the discrete Gaussian
      satisfies the same concentrated-DP guarantee as the continuous one
      at equal sigma; Canonne–Kamath–Steinke 2020).
    * ``subsampled_gaussian`` — :func:`subsampled_gaussian_rdp_curve` at
      the *base* mechanism's sigma and the declared sample rate.

    The Laplace/Gaussian branches use the exact expressions of
    :func:`release_rdp_curve`, so typed and scalar releases of the same
    guarantee compose bit-identically.
    """
    if not isinstance(cost, NoiseCost):
        raise PrivacyBudgetError(
            f"noise_cost_rdp_curve needs a NoiseCost, got {cost!r}"
        )
    if cost.family == "laplace":
        return laplace_rdp_curve(1.0 / cost.epsilon, alphas)
    if cost.family in ("gaussian", "discrete_gaussian"):
        return gaussian_rdp_curve(
            gaussian_sigma(1.0, cost.epsilon, cost.delta), alphas
        )
    # subsampled_gaussian: the (epsilon, delta) on the cost describe the
    # base (unsampled) release; sigma is re-derived with the same default
    # calibration the Gaussian branch uses.
    return subsampled_gaussian_rdp_curve(
        gaussian_sigma(1.0, cost.epsilon, cost.delta),
        cost.sample_rate,
        alphas,
    )


def releases_per_budget(
    epsilon, delta, total_epsilon, total_delta, model="rdp", alphas=None,
    sample_rate=1.0,
):
    """How many identical (epsilon, delta) releases fit one budget.

    The planning-side counterpart of the accountants, used by
    ``ExecutionPlan.explain(budget=...)`` and the accounting benchmark:

    * ``model="pure"`` — sequential composition (0 when ``delta > 0``).
    * ``model="basic"`` — basic (eps, delta) composition:
      ``min(floor(E/eps), floor(D/delta))``.
    * ``model="rdp"`` — largest ``k`` whose k-fold composed curve converts
      to at most ``total_epsilon`` at ``total_delta``.

    ``sample_rate`` < 1 prices each release as a *subsampled* release of
    the same base (epsilon, delta) guarantee served from a Bernoulli
    sample at rate q: the additive models charge the amplified pair
    ``(log(1 + q(e^eps - 1)), q delta)``, the RDP model composes
    :func:`subsampled_gaussian_rdp_curve` (which requires ``delta > 0`` —
    the subsampled family is Gaussian). At the default ``sample_rate=1``
    every code path is bit-identical to the historical behaviour.

    Counts are analytic (no ledger is mutated) and include the
    accountants' boundary-dust slack, so an exactly divisible budget
    counts its full quota. For the RDP model the k-fold curve is formed as
    ``k * cost`` while a live :class:`RDPAccountant` *accumulates* the
    cost sequentially — float addition is not multiplication, so at an
    exact float boundary the prediction can differ from a ledger drain by
    one release (never more: both use the same conversion and slack).
    """
    from repro.privacy.accountant import _resolve_model

    epsilon = check_positive(epsilon, "epsilon")
    delta = _check_delta(delta)
    total_epsilon = check_positive(total_epsilon, "total_epsilon")
    total_delta = _check_delta(total_delta, "total_delta")
    sample_rate = float(sample_rate)
    if not 0.0 < sample_rate <= 1.0:
        raise PrivacyBudgetError(
            f"sample_rate must be in (0, 1], got {sample_rate}"
        )
    # One alias vocabulary for every accounting entry point: the same
    # resolver make_accountant (and the engine's accountant= string) uses.
    resolved = _resolve_model(model, total_delta)
    if resolved in ("pure", "basic"):
        # amplified_pair is the identity at sample_rate == 1 (same floats).
        epsilon, delta = amplified_pair(epsilon, delta, sample_rate)
    if resolved == "pure":
        if delta > 0.0:
            return 0
        return int(np.floor(total_epsilon / epsilon * (1.0 + 1e-12)))
    if resolved == "basic":
        count = int(np.floor(total_epsilon / epsilon * (1.0 + 1e-12)))
        if delta > 0.0:
            if total_delta <= 0.0:
                return 0
            count = min(count, int(np.floor(total_delta / delta * (1.0 + 1e-9))))
        return count
    if total_delta <= 0.0:
        raise PrivacyBudgetError("RDP accounting needs total_delta > 0")
    alphas = _as_alphas(alphas)
    if sample_rate < 1.0:
        if delta <= 0.0:
            raise PrivacyBudgetError(
                "subsampled RDP accounting needs a per-release delta > 0 "
                "(the subsampled family is Gaussian)"
            )
        cost = noise_cost_rdp_curve(
            NoiseCost(
                family="subsampled_gaussian",
                epsilon=epsilon,
                delta=delta,
                sample_rate=sample_rate,
            ),
            alphas,
        )
    else:
        cost = release_rdp_curve(epsilon, delta, alphas)
    # Mirror the ledger's admission slack so a budget sitting exactly on a
    # k-fold boundary counts the same quota the accountant would admit.
    slack = 1e-12 * max(1.0, total_epsilon)

    def fits(k):
        return rdp_to_approx_dp(k * cost, total_delta, alphas) <= total_epsilon + slack

    if not fits(1):
        return 0
    hi = 1
    while fits(hi * 2):
        hi *= 2
        if hi > 2**62:  # pragma: no cover - absurd budgets
            return hi
    lo = hi  # fits(lo) is True, fits(hi * 2) is False
    hi = hi * 2
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if fits(mid):
            lo = mid
        else:
            hi = mid
    return lo


class RDPAccountant(BudgetAccountant):
    """Concentrated-DP ledger: the accumulated RDP curve of all releases.

    The budget is still expressed as an (eps, delta) pair — the engine's
    interface does not change — but the ledger is the composed RDP curve:
    a spend is admitted iff the curve *including it* still converts to at
    most ``total_epsilon`` at target ``total_delta``. ``spent_epsilon``
    reports the converted epsilon of the current curve (the guarantee all
    committed releases jointly satisfy); ``spent_delta`` is ``0`` before
    any release and the conversion target ``total_delta`` afterwards — the
    whole point of the model is that per-release deltas calibrate noise
    but are *not* summed against the delta budget.

    Compared to the scalar accountants: the first release realizes a
    slightly larger epsilon than its nominal cost (the conversion is not
    tight for a single release), after which composition grows like
    ``sqrt(k)`` instead of ``k`` — for serving workloads the crossover is
    almost immediate (see ``benchmarks/test_bench_accounting_perf.py``).

    All :class:`BudgetAccountant` contracts carry over through the
    ledger-state hooks: ``spend`` raises before any state change,
    ``spend_many`` is all-or-nothing and bit-identical to a loop of
    ``spend`` calls (curves add in request order), and
    ``snapshot``/``restore`` round-trip the curve.
    """

    name = "rdp"

    def __init__(self, total_epsilon, total_delta, alphas=None):
        total_delta = _check_delta(total_delta, "total_delta")
        if total_delta <= 0.0:
            raise PrivacyBudgetError(
                "RDPAccountant needs total_delta > 0 (the RDP->(eps, delta) "
                "conversion target); use PureDPAccountant for a pure budget"
            )
        super().__init__(total_epsilon, total_delta=total_delta)
        self._alphas = _as_alphas(alphas)
        self._curve = self._frozen(np.zeros(self._alphas.shape))
        self._spent_any = False
        # Serving batches repeat a handful of distinct costs; the Gaussian
        # cost curve hides an analytic-calibration bisection, so memoize
        # per cost pair (pure function of the pair and the grid).
        self._cost_cache = {}

    @staticmethod
    def _frozen(curve):
        curve = np.asarray(curve, dtype=np.float64)
        curve.setflags(write=False)
        return curve

    @property
    def alphas(self):
        """The Rényi order grid curves are evaluated on."""
        return self._alphas

    @property
    def rdp_curve(self):
        """The accumulated (composed) RDP curve of all committed releases."""
        return self._curve

    def _cost_curve(self, cost):
        # ``cost`` is a validated (epsilon, delta) tuple or a NoiseCost —
        # both hashable, so both memoize; a typed cost and its scalar twin
        # get distinct entries but (for Laplace/Gaussian) identical curves.
        curve = self._cost_cache.get(cost)
        if curve is None:
            if len(self._cost_cache) >= 1024:
                self._cost_cache.clear()
            if isinstance(cost, NoiseCost):
                curve = noise_cost_rdp_curve(cost, self._alphas)
            else:
                curve = release_rdp_curve(cost[0], cost[1], self._alphas)
            curve = self._cost_cache[cost] = self._frozen(curve)
        return curve

    def _realized_epsilon(self, curve, spent_any):
        if not spent_any:
            return 0.0
        realized = rdp_to_approx_dp(curve, self._total_delta, self._alphas)
        # The RDP analogue of the scalar accountants' sign-aware commit
        # clamp: admission tolerates boundary dust (realized <= total +
        # eps_slack), so a committed ledger can convert to a hair above
        # the total — dust by construction, clamped so spent_epsilon never
        # reads above total_epsilon (the documented ledger invariant, and
        # what lands in Release.metadata["realized"]). States further out
        # (only reachable transiently while *evaluating* a candidate
        # spend, which this clamp must not admit) stay unclamped.
        overshoot = realized - self._total_epsilon
        if 0.0 < overshoot <= self._eps_slack:
            realized = self._total_epsilon
        return realized

    # ------------------------------------------------------------------ #
    # Ledger-state hooks
    # ------------------------------------------------------------------ #
    def _fresh_state(self):
        return (self._frozen(np.zeros(self._alphas.shape)), False)

    def _ledger_state(self):
        # Curves are immutable (commits allocate a new array), so sharing
        # the array between the live ledger and snapshots is safe.
        return (self._curve, self._spent_any)

    def _set_ledger_state(self, state):
        self._curve, self._spent_any = state

    def _state_spent(self, state):
        curve, spent_any = state
        return (
            self._realized_epsilon(curve, spent_any),
            self._total_delta if spent_any else 0.0,
        )

    def _fits_state(self, cost, state):
        curve, spent_any = state
        # No re-arm after exhaustion: every valid cost has epsilon > 0, so
        # once the realized guarantee reaches the total nothing more fits
        # (mirrors the scalar accountants' boundary semantics).
        if self._realized_epsilon(curve, spent_any) >= self._total_epsilon:
            return False
        composed = curve + self._cost_curve(cost)
        return (
            self._realized_epsilon(composed, True)
            <= self._total_epsilon + self._eps_slack
        )

    def _commit_state(self, cost, state):
        curve, _ = state
        return (self._frozen(curve + self._cost_curve(cost)), True)

    def _validate_cost(self, epsilon, delta):
        # Per-release delta is a *calibration* parameter under RDP (it
        # selects the Gaussian sigma), not a draw against total_delta, so
        # any delta in [0, 1) is acceptable — including values above the
        # budget's conversion target. Typed costs reach this through their
        # charged pair (BudgetAccountant._validate): the one shared rule
        # for what a release *claims*, even though the RDP ledger then
        # composes the family curve rather than summing the pair.
        epsilon = check_positive(epsilon, "epsilon")
        return epsilon, _check_delta(delta)
