"""Command-line interface: regenerate any paper figure or table, decompose
a workload, or build and explain an execution plan.

Examples::

    python -m repro.cli table1
    python -m repro.cli figure4
    python -m repro.cli figure6 --scale full --json out.json
    python -m repro.cli all
    python -m repro.cli plan --workload W.npy --epsilon 0.2 --out W.plan.npz
    python -m repro.cli ledger inspect --ledger budget.journal
    python -m repro.cli ledger recover --ledger budget.db
    python -m repro.cli serve --plans plans/ --workers 4 \\
        --ledger-root ledgers/ --data counts.npy --budget 2.0
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import PARAMETER_GRID, resolve_scale
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.reporting import ascii_chart, format_table, summarize_result

__all__ = ["main", "build_parser"]

_GROUP_KEYS = {
    "figure2": ("workload", "epsilon"),
    "figure3": ("workload", "epsilon"),
    "figure4": ("dataset",),
    "figure5": ("dataset",),
    "figure6": ("dataset",),
    "figure7": ("dataset",),
    "figure8": ("dataset",),
    "figure9": ("dataset",),
}


def build_parser():
    """Build the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lrm",
        description="Reproduce tables/figures of the Low-Rank Mechanism paper (VLDB 2012).",
    )
    targets = ["table1", "all", "decompose", "plan", "ledger", "serve"] + sorted(ALL_FIGURES)
    parser.add_argument("target", choices=targets, help="what to regenerate")
    parser.add_argument(
        "action", nargs="?", choices=["inspect", "recover"], default=None,
        help="ledger: 'inspect' (read-only audit summary) or 'recover' "
        "(repair torn tail, reconcile keyed orphans, drop dangling "
        "intents, compact)",
    )
    parser.add_argument(
        "--ledger", metavar="PATH", default=None,
        help="ledger: path to the durable budget ledger "
        "(.db/.sqlite selects the SQLite backend, else the JSONL journal)",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="ledger recover: report the torn tail, dangling intents and "
        "reconcilable keyed orphans WITHOUT mutating the journal",
    )
    parser.add_argument(
        "--workload", metavar="NPY", default=None,
        help="decompose/plan: .npy file holding the workload matrix W",
    )
    parser.add_argument(
        "--out", metavar="NPZ", default=None,
        help="decompose/plan: where to save the decomposition or plan archive",
    )
    parser.add_argument("--rank", type=int, default=None, help="decompose: decomposition rank")
    parser.add_argument(
        "--epsilon", type=float, default=0.1,
        help="plan: probe epsilon for ranking candidates (default 0.1)",
    )
    parser.add_argument(
        "--mechanism", default="auto",
        help="plan: 'auto' or a registry label (LM, WM, HM, SVDM, LRM, ...)",
    )
    parser.add_argument(
        "--candidates", default=None,
        help="plan: comma-separated candidate labels for mechanism=auto",
    )
    parser.add_argument(
        "--delta", type=float, default=None,
        help="plan: failure probability for Gaussian ((eps, delta)-DP) candidates",
    )
    parser.add_argument(
        "--budget-epsilon", type=float, default=None,
        help="plan: total epsilon budget — adds a releases-per-budget line "
        "to the explain report (basic vs Rényi/zCDP accounting)",
    )
    parser.add_argument(
        "--budget-delta", type=float, default=0.0,
        help="plan: total delta budget paired with --budget-epsilon "
        "(required > 0 for the RDP accounting column)",
    )
    parser.add_argument(
        "--gamma", type=float, default=1e-2,
        help="decompose: relative relaxation tolerance (default 1e-2)",
    )
    parser.add_argument(
        "--plans", metavar="DIR", default=None,
        help="serve: directory of *.plan.npz archives to share with workers",
    )
    parser.add_argument(
        "--ledger-root", metavar="DIR", default=None,
        help="serve: directory for the per-tenant durable budget ledgers",
    )
    parser.add_argument(
        "--data", metavar="PATH", default=None,
        help="serve: private data vector (.npy, or a text/CSV file)",
    )
    parser.add_argument(
        "--budget", type=float, default=None,
        help="serve: total per-tenant epsilon budget",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="serve: worker process count (default 2)",
    )
    parser.add_argument(
        "--accountant", default=None,
        help="serve: budget accounting model (pure/basic/rdp; default auto)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="serve: bind address")
    parser.add_argument(
        "--port", type=int, default=8777,
        help="serve: TCP port (default 8777; 0 picks a free port)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=32,
        help="serve: coalescer batch cap (1 disables micro-batching)",
    )
    parser.add_argument(
        "--max-wait", type=float, default=0.002,
        help="serve: coalescing window in seconds (default 0.002)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=1024,
        help="serve: in-flight execute cap; past it requests are shed "
        "as 'overloaded' with a retry_after hint (default 1024)",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=30.0,
        help="serve: per-request worker deadline in seconds; a worker "
        "past it is presumed hung, killed and respawned (default 30)",
    )
    parser.add_argument(
        "--watch-plans", action="store_true",
        help="serve: poll --plans for changes and hot-reload the shared "
        "plan segment without dropping in-flight requests",
    )
    parser.add_argument(
        "--watch-interval", type=float, default=2.0,
        help="serve: --watch-plans poll interval in seconds (default 2)",
    )
    parser.add_argument(
        "--scale",
        choices=["reduced", "full"],
        default=None,
        help="sweep grid size (default: reduced, or REPRO_FULL_SCALE=1)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="experiment seed (default 2012; serve: fresh entropy unless set)",
    )
    parser.add_argument("--json", metavar="PATH", default=None, help="also write results as JSON")
    parser.add_argument("--csv", metavar="PATH", default=None, help="also write results as CSV")
    parser.add_argument(
        "--chart", action="store_true", help="also render an ASCII chart of the series"
    )
    return parser


def _print_table1(out):
    out.write("Table 1: parameters used in the experiments\n")
    for key, values in PARAMETER_GRID.items():
        out.write(f"  {key:>12}: {', '.join(str(v) for v in values)}\n")


def _run_figure(name, scale, seed, out, json_path=None, csv_path=None, chart=False):
    out.write(f"Running {name} (scale={resolve_scale(scale)}) ...\n")
    result = ALL_FIGURES[name](scale=scale, seed=seed)
    out.write(format_table(result, group_keys=_GROUP_KEYS.get(name, ())))
    if chart:
        out.write(ascii_chart(result))
    out.write("geometric-mean error per mechanism: ")
    summary = summarize_result(result)
    out.write(
        ", ".join(f"{k}={v:.4g}" if v is not None else f"{k}=-" for k, v in summary.items())
    )
    out.write("\n")
    if json_path:
        result.to_json(json_path)
        out.write(f"wrote {json_path}\n")
    if csv_path:
        result.to_csv(csv_path)
        out.write(f"wrote {csv_path}\n")
    return result


def _run_decompose(args, out):
    import numpy as np

    from repro.analysis.diagnostics import format_decomposition_report
    from repro.core.alm import decompose_workload
    from repro.io.serialization import save_decomposition

    if not args.workload:
        out.write("decompose requires --workload pointing at a .npy matrix\n")
        return 2
    matrix = np.load(args.workload)
    out.write(f"decomposing workload {matrix.shape} from {args.workload} ...\n")
    decomposition = decompose_workload(
        matrix, rank=args.rank, gamma=args.gamma, seed=args.seed
    )
    out.write(format_decomposition_report(decomposition, workload=matrix))
    if args.out:
        save_decomposition(decomposition, args.out)
        out.write(f"wrote {args.out}\n")
    return 0


def _run_plan(args, out):
    import numpy as np

    from repro.engine.plan import build_plan
    from repro.engine.selection import APPROX_DP_CANDIDATES, DEFAULT_CANDIDATES
    from repro.io.serialization import save_plan

    if not args.workload:
        out.write("plan requires --workload pointing at a .npy matrix\n")
        return 2
    # Flag pairing is knowable before any (expensive) candidate fitting.
    if args.budget_delta and args.budget_epsilon is None:
        out.write("--budget-delta requires --budget-epsilon (the total epsilon)\n")
        return 2
    matrix = np.load(args.workload)
    # `is not None`, not truthiness: an explicit `--delta 0.0` must reach
    # the Gaussian candidates (whose constructors reject it with a clear
    # error) rather than being silently treated as unset — the latter left
    # them at their default delta, releasing at a failure probability the
    # caller never chose.
    if args.candidates:
        candidates = tuple(label.strip().upper() for label in args.candidates.split(","))
    elif args.delta is not None:
        candidates = DEFAULT_CANDIDATES + APPROX_DP_CANDIDATES
    else:
        candidates = DEFAULT_CANDIDATES
    mechanism_kwargs = {}
    if args.delta is not None:
        for label in APPROX_DP_CANDIDATES:
            mechanism_kwargs[label] = {"delta": args.delta}
    out.write(f"planning workload {matrix.shape} from {args.workload} ...\n")
    plan = build_plan(
        matrix,
        epsilon_hint=args.epsilon,
        mechanism=args.mechanism,
        candidates=candidates,
        mechanism_kwargs=mechanism_kwargs,
    )
    out.write(
        plan.explain(
            epsilon=args.epsilon,
            budget=args.budget_epsilon,
            budget_delta=args.budget_delta,
        )
        + "\n"
    )
    if args.out:
        # np.savez appends ".npz" to extension-less paths; normalize so the
        # reported filename is the one actually written.
        path = args.out if args.out.endswith(".npz") else args.out + ".npz"
        save_plan(plan, path)
        out.write(f"wrote {path}\n")
    return 0


def _run_ledger(args, out):
    from repro.privacy.ledger import inspect_ledger, recover_ledger

    if not args.action:
        out.write("ledger requires an action: 'inspect' or 'recover'\n")
        return 2
    if not args.ledger:
        out.write("ledger requires --ledger pointing at the ledger file\n")
        return 2
    if args.action == "recover":
        summary = recover_ledger(args.ledger, dry_run=args.dry_run)
        if args.dry_run:
            out.write(f"dry run: {summary['path']} left untouched\n")
        else:
            out.write(f"recovered {summary['path']}\n")
    else:
        summary = inspect_ledger(args.ledger)
    out.write(f"ledger {summary['path']} ({summary['backend']} backend)\n")
    out.write(
        f"  model={summary['model']} total_epsilon={summary['total_epsilon']!r} "
        f"total_delta={summary['total_delta']!r}\n"
    )
    out.write(
        f"  records={summary['records']} committed_txns={summary['committed']} "
        f"costs={summary['costs']} keyed_results={summary['keyed_results']}\n"
    )
    # Per-noise-family breakdown of the committed costs: count plus the
    # total charged (epsilon, delta) each family contributed. Pre-typed
    # (format 1) journal entries report as "untyped".
    for family in sorted(summary.get("families") or {}):
        stats = summary["families"][family]
        out.write(
            f"  cost[{family}]: count={stats['count']} "
            f"epsilon={stats['epsilon']!r} delta={stats['delta']!r}\n"
        )
    out.write(
        f"  dangling_intents={len(summary['dangling_intents'])} "
        f"rolled_back={summary['rolled_back']} resets={summary['resets']} "
        f"torn_tail_bytes={summary['torn_tail_bytes']}\n"
    )
    out.write(
        f"  spent_epsilon={summary['spent_epsilon']!r} "
        f"spent_delta={summary['spent_delta']!r} "
        f"remaining_epsilon={summary['remaining_epsilon']!r}\n"
    )
    if args.action == "recover":
        verb = "would reconcile" if args.dry_run else "reconciled"
        out.write(
            f"  {verb} {summary['reconciled_orphans']} orphaned intent(s); "
            f"freed keys: {summary['freed_keys'] or '[]'}\n"
        )
        if args.dry_run and (
            summary["reconciled_orphans"] or summary["torn_tail_bytes"]
        ):
            out.write("  (re-run without --dry-run to repair and compact)\n")
    elif summary["dangling_intents"] or summary["torn_tail_bytes"]:
        out.write("  (run 'ledger recover' to repair and compact)\n")
    return 0


def _run_serve(args, out):
    from repro.serving.server import ServiceConfig, load_data_vector, serve

    missing = [
        flag
        for flag, value in (
            ("--plans", args.plans),
            ("--ledger-root", args.ledger_root),
            ("--data", args.data),
            ("--budget", args.budget),
        )
        if value is None
    ]
    if missing:
        out.write(f"serve requires {', '.join(missing)}\n")
        return 2
    config = ServiceConfig(
        plans_dir=args.plans,
        ledger_root=args.ledger_root,
        data=load_data_vector(args.data),
        total_epsilon=args.budget,
        total_delta=args.delta if args.delta is not None else 0.0,
        workers=args.workers,
        accountant=args.accountant,
        seed=args.seed,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait=args.max_wait,
        max_queue=args.max_queue,
        request_timeout=args.request_timeout,
        watch_plans=args.watch_plans,
        watch_interval=args.watch_interval,
    )

    def ready(service, host, port):
        out.write(
            f"serving {len(service.plan_names())} plans on {host}:{port} "
            f"with {config.workers} workers (Ctrl-C drains and stops)\n"
        )
        if hasattr(out, "flush"):
            out.flush()

    serve(config, ready=ready)
    out.write("service stopped\n")
    return 0


def main(argv=None, out=None):
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.seed is None and args.target != "serve":
        # Experiments stay reproducible by default; a *service* must not
        # release with a deterministic noise stream unless explicitly asked.
        args.seed = 2012
    if args.target == "serve":
        return _run_serve(args, out)
    if args.target == "table1":
        _print_table1(out)
        return 0
    if args.target == "decompose":
        return _run_decompose(args, out)
    if args.target == "plan":
        return _run_plan(args, out)
    if args.target == "ledger":
        return _run_ledger(args, out)
    if args.target == "all":
        for name in sorted(ALL_FIGURES):
            _run_figure(name, args.scale, args.seed, out, chart=args.chart)
        return 0
    _run_figure(args.target, args.scale, args.seed, out, args.json, args.csv, chart=args.chart)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
