"""Histogram front-end: from raw records to unit counts and range queries.

The paper (and the whole matrix-mechanism literature) starts from a vector
of *unit counts*; real deployments start from raw records. This module
bridges the two:

* :func:`histogram_from_records` bins scalar records into a unit-count
  vector over explicit or equi-width bin edges;
* :func:`grid_histogram_from_records` does the same for two attributes,
  producing the flattened row-major grid that
  :func:`repro.workloads.generators.marginals_workload` queries;
* :class:`DomainMapper` converts value-space range predicates
  (``lo <= value <= hi``) into workload weight rows over the bins, so an
  analyst can phrase queries in their own units.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.validation import as_vector, check_positive_int
from repro.workloads.workload import Workload

__all__ = [
    "histogram_from_records",
    "grid_histogram_from_records",
    "DomainMapper",
]


def _resolve_edges(records, bins, value_range=None):
    if np.isscalar(bins):
        bins = check_positive_int(int(bins), "bins")
        if value_range is None:
            low, high = float(records.min()), float(records.max())
        else:
            low, high = map(float, value_range)
        if not low < high:
            raise ValidationError(f"need a non-degenerate range, got [{low}, {high}]")
        return np.linspace(low, high, bins + 1)
    edges = np.asarray(bins, dtype=np.float64)
    if edges.ndim != 1 or edges.size < 2:
        raise ValidationError("bin edges must be a 1-D array with >= 2 entries")
    if np.any(np.diff(edges) <= 0):
        raise ValidationError("bin edges must be strictly increasing")
    return edges


def histogram_from_records(records, bins, value_range=None):
    """Bin scalar records into a unit-count vector.

    Parameters
    ----------
    records:
        1-D array of raw record values (one entry per individual — the
        thing differential privacy protects).
    bins:
        Either a bin count (equi-width over ``value_range`` or the data
        range) or an explicit strictly-increasing edge array.
    value_range:
        Optional (low, high) for equi-width binning; records outside are
        clipped into the boundary bins so every record is counted once.

    Returns
    -------
    (counts, edges):
        ``counts`` has length ``len(edges) - 1``; ``sum(counts) ==
        len(records)``.
    """
    records = as_vector(records, "records")
    edges = _resolve_edges(records, bins, value_range)
    clipped = np.clip(records, edges[0], edges[-1])
    counts, _ = np.histogram(clipped, bins=edges)
    return counts.astype(np.float64), edges


def grid_histogram_from_records(records_x, records_y, bins_x, bins_y,
                                range_x=None, range_y=None):
    """Bin paired records into a flattened 2-D grid histogram.

    Returns ``(counts, edges_x, edges_y)`` where ``counts`` is the
    row-major flattening of the (bins_x, bins_y) grid — the domain layout
    of :func:`repro.workloads.generators.marginals_workload`.
    """
    records_x = as_vector(records_x, "records_x")
    records_y = as_vector(records_y, "records_y", size=records_x.size)
    edges_x = _resolve_edges(records_x, bins_x, range_x)
    edges_y = _resolve_edges(records_y, bins_y, range_y)
    clipped_x = np.clip(records_x, edges_x[0], edges_x[-1])
    clipped_y = np.clip(records_y, edges_y[0], edges_y[-1])
    grid, _, _ = np.histogram2d(clipped_x, clipped_y, bins=[edges_x, edges_y])
    return grid.ravel(), edges_x, edges_y


class DomainMapper:
    """Translate value-space predicates into workload rows over the bins.

    Parameters
    ----------
    edges:
        The bin-edge array returned by :func:`histogram_from_records`.

    Examples
    --------
    >>> counts, edges = histogram_from_records([1.0, 2.5, 7.0], bins=4,
    ...                                        value_range=(0, 8))
    >>> mapper = DomainMapper(edges)
    >>> row = mapper.range_row(0.0, 3.9)  # weight 1 on bins inside [0, 3.9]
    """

    def __init__(self, edges):
        edges = as_vector(edges, "edges")
        if edges.size < 2 or np.any(np.diff(edges) <= 0):
            raise ValidationError("edges must be strictly increasing with >= 2 entries")
        self.edges = edges

    @property
    def domain_size(self):
        """Number of bins."""
        return self.edges.size - 1

    def bin_of(self, value):
        """Index of the bin containing ``value`` (clipped to the domain)."""
        value = float(np.clip(value, self.edges[0], self.edges[-1]))
        index = int(np.searchsorted(self.edges, value, side="right") - 1)
        return min(max(index, 0), self.domain_size - 1)

    def range_row(self, low, high):
        """Weight row selecting every bin overlapping ``[low, high]``."""
        if not low <= high:
            raise ValidationError(f"need low <= high, got [{low}, {high}]")
        start = self.bin_of(low)
        end = self.bin_of(high)
        row = np.zeros(self.domain_size)
        row[start : end + 1] = 1.0
        return row

    def range_workload(self, intervals, name="ValueRanges"):
        """Workload of range queries given as ``(low, high)`` value pairs."""
        rows = [self.range_row(low, high) for low, high in intervals]
        if not rows:
            raise ValidationError("need at least one interval")
        return Workload(
            np.asarray(rows),
            name=name,
            metadata={"intervals": [tuple(map(float, pair)) for pair in intervals]},
        )
