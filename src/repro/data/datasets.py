"""Synthetic stand-ins for the paper's three evaluation datasets.

The paper evaluates on *Search Logs* (65,536 keyword-frequency counts from
Google Trends / AOL, 2004-2010), *Net Trace* (32,768 per-IP TCP packet
counts from a university intranet) and *Social Network* (11,342 degree
counts of a social graph) — all introduced by Hay et al. [15]. The raw data
is not redistributable, so this module generates seeded synthetic vectors
with the same cardinalities and the qualitative shape each source is known
for:

* ``search_logs`` — bursty temporal series: background web traffic plus a
  few hundred Gaussian-shaped keyword bursts of varying width and height.
* ``net_trace`` — heavy-tailed sparse counts: most IPs see little traffic,
  a few see enormous volumes (Zipf-like).
* ``social_network`` — power-law degree histogram: the count of users with
  degree ``d`` decays roughly as ``d^-gamma``.

Faithfulness argument (see DESIGN.md): every mechanism in this package adds
*data-independent* noise, so the error of each experiment depends on the
workload, epsilon and the strategy — not on the data values — except for the
structural term ``||(W - BL) x||^2`` of relaxed LRM (Theorem 3), which only
needs counts of realistic magnitude and shape, which these generators match.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.validation import check_positive_int, ensure_rng

__all__ = [
    "search_logs",
    "net_trace",
    "social_network",
    "load_dataset",
    "dataset_names",
    "SEARCH_LOGS_SIZE",
    "NET_TRACE_SIZE",
    "SOCIAL_NETWORK_SIZE",
]

#: Cardinalities reported in Section 6 of the paper.
SEARCH_LOGS_SIZE = 65_536
NET_TRACE_SIZE = 32_768
SOCIAL_NETWORK_SIZE = 11_342


def search_logs(size=SEARCH_LOGS_SIZE, seed=2012, bursts=400):
    """Synthetic Search Logs: bursty keyword-frequency time series.

    Parameters
    ----------
    size:
        Number of unit counts (default: the paper's 2^16).
    seed:
        Seed or generator for reproducibility.
    bursts:
        Number of keyword bursts (Gaussian bumps) superimposed on the
        background traffic.

    Returns
    -------
    numpy.ndarray
        Non-negative integer-valued float64 vector of length ``size``.
    """
    size = check_positive_int(size, "size")
    rng = ensure_rng(seed)
    positions = np.arange(size, dtype=np.float64)
    # Smooth background with a weekly-ish periodicity plus noise.
    background = 50.0 + 20.0 * np.sin(2.0 * np.pi * positions / max(size / 64.0, 2.0))
    series = background + rng.normal(0.0, 5.0, size)
    n_bursts = check_positive_int(bursts, "bursts")
    centers = rng.uniform(0, size, n_bursts)
    widths = rng.uniform(size / 4096.0 + 1.0, size / 256.0 + 2.0, n_bursts)
    heights = rng.pareto(1.5, n_bursts) * 200.0
    for center, width, height in zip(centers, widths, heights):
        lo = max(int(center - 4 * width), 0)
        hi = min(int(center + 4 * width) + 1, size)
        local = positions[lo:hi]
        series[lo:hi] += height * np.exp(-0.5 * ((local - center) / width) ** 2)
    return np.maximum(np.round(series), 0.0)


def net_trace(size=NET_TRACE_SIZE, seed=2012, zipf_exponent=1.8):
    """Synthetic Net Trace: heavy-tailed per-IP packet counts.

    Most entries are zero or tiny; a few are very large — the hallmark of
    per-host network-traffic distributions.
    """
    size = check_positive_int(size, "size")
    if zipf_exponent <= 1.0:
        raise ValidationError(f"zipf_exponent must be > 1, got {zipf_exponent}")
    rng = ensure_rng(seed)
    counts = rng.zipf(zipf_exponent, size).astype(np.float64) - 1.0
    # Sprinkle a handful of extremely hot hosts (servers / scanners).
    hot = rng.choice(size, size=max(size // 1000, 1), replace=False)
    counts[hot] += rng.pareto(1.2, hot.size) * 10_000.0
    return np.maximum(np.round(counts), 0.0)


def social_network(size=SOCIAL_NETWORK_SIZE, seed=2012, gamma=2.5, users=3_000_000):
    """Synthetic Social Network: users-per-degree histogram.

    ``x[d]`` is the number of users whose social-graph degree is ``d + 1``;
    the histogram follows a power law ``(d+1)^-gamma`` as real social graphs
    do, normalised so the total user count is roughly ``users``.
    """
    size = check_positive_int(size, "size")
    if gamma <= 1.0:
        raise ValidationError(f"gamma must be > 1, got {gamma}")
    rng = ensure_rng(seed)
    degrees = np.arange(1, size + 1, dtype=np.float64)
    expected = degrees**-gamma
    expected *= users / expected.sum()
    # Poisson fluctuation around the power-law expectation.
    counts = rng.poisson(np.minimum(expected, 1e9)).astype(np.float64)
    return counts


_REGISTRY = {
    "search_logs": search_logs,
    "net_trace": net_trace,
    "social_network": social_network,
}


def dataset_names():
    """Names accepted by :func:`load_dataset`, in paper order."""
    return list(_REGISTRY)


def load_dataset(name, size=None, seed=2012):
    """Load one of the three paper datasets by name.

    ``size`` overrides the native cardinality (useful before
    :func:`repro.data.transforms.merge_to_domain` is applied).
    """
    key = str(name).strip().lower().replace(" ", "_").replace("-", "_")
    if key not in _REGISTRY:
        raise ValidationError(f"unknown dataset {name!r}; choose from {dataset_names()}")
    factory = _REGISTRY[key]
    if size is None:
        return factory(seed=seed)
    return factory(size=size, seed=seed)
