"""Dataset substrate: synthetic paper datasets and domain transforms."""

from repro.data.datasets import (
    NET_TRACE_SIZE,
    SEARCH_LOGS_SIZE,
    SOCIAL_NETWORK_SIZE,
    dataset_names,
    load_dataset,
    net_trace,
    search_logs,
    social_network,
)
from repro.data.histogram import (
    DomainMapper,
    grid_histogram_from_records,
    histogram_from_records,
)
from repro.data.transforms import merge_to_domain, normalize_counts, pad_to_length

__all__ = [
    "DomainMapper",
    "NET_TRACE_SIZE",
    "SEARCH_LOGS_SIZE",
    "SOCIAL_NETWORK_SIZE",
    "dataset_names",
    "grid_histogram_from_records",
    "histogram_from_records",
    "load_dataset",
    "merge_to_domain",
    "net_trace",
    "normalize_counts",
    "pad_to_length",
    "search_logs",
    "social_network",
]
