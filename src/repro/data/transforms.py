"""Dataset transforms used by the experiment harness.

Section 6: "To evaluate the impact of data domain cardinality on real
datasets, we transform the original counts into a vector of fixed size n
(domain size), by merging consecutive counts in order." That operation,
plus a couple of convenience transforms, lives here.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.validation import as_vector, check_positive_int

__all__ = ["merge_to_domain", "pad_to_length", "normalize_counts"]


def merge_to_domain(x, n):
    """Merge consecutive counts of ``x`` into a vector of length ``n``.

    The first ``len(x) mod n`` buckets absorb one extra source cell each, so
    every source count lands in exactly one output bucket and the total mass
    is preserved. Requires ``n <= len(x)``.
    """
    x = as_vector(x, "x")
    n = check_positive_int(n, "n")
    size = x.size
    if n > size:
        raise ValidationError(f"cannot merge {size} counts into a larger domain of {n}")
    if n == size:
        return x.copy()
    base = size // n
    extra = size % n
    sizes = np.full(n, base, dtype=np.int64)
    sizes[:extra] += 1
    boundaries = np.concatenate(([0], np.cumsum(sizes)))
    return np.add.reduceat(x, boundaries[:-1])


def pad_to_length(x, n, value=0.0):
    """Right-pad ``x`` with ``value`` up to length ``n`` (n >= len(x))."""
    x = as_vector(x, "x")
    n = check_positive_int(n, "n")
    if n < x.size:
        raise ValidationError(f"cannot pad length {x.size} down to {n}; use merge_to_domain")
    if n == x.size:
        return x.copy()
    padded = np.full(n, float(value))
    padded[: x.size] = x
    return padded


def normalize_counts(x):
    """Scale ``x`` to sum to 1 (empirical distribution); all-zero passes through."""
    x = as_vector(x, "x")
    total = x.sum()
    if total == 0.0:
        return x.copy()
    return x / total
