"""Failpoint registry: deterministic fault injection for crash-safety tests.

Durability claims are only as good as their verification. This module gives
the ledger (and any other write path) named **failpoints** — instrumented
sites like ``"ledger.commit.before_append"`` — that tests can arm with one
of three actions:

* ``"crash"`` — die on the spot via ``os._exit(137)``, with no cleanup, no
  flushing and no atexit handlers: the closest in-process equivalent of
  ``kill -9`` landing between two instructions.
* ``"torn"`` — only meaningful at write sites routed through
  :func:`guarded_write`: write roughly *half* of the pending bytes, then
  crash. Simulates a torn write / partial fsync — the on-disk state a real
  power cut can leave when a record straddles the crash point.
* ``"error"`` — raise :class:`InjectedFault` (an ``OSError`` subclass), so
  in-process tests can exercise error-handling paths without killing the
  interpreter.
* ``"delay"`` / ``"delay:SECONDS"`` — sleep at the firing site, then
  continue. Simulates a *hung* (not dead) component: a worker armed with
  ``serving.worker.request=delay:2.5`` stalls its pipe long enough for the
  parent's per-request deadline to fire and the supervisor to kill it.

Arming is either **programmatic** (the :meth:`FailPointRegistry.active`
context manager, or helpers like :meth:`FailPoint.crash_before`) for
in-process tests, or via the ``REPRO_FAILPOINTS`` **environment variable**
(``"name=action,name=action"``) so a subprocess worker picks its faults up
at import time — the transport the crash-matrix suite in
``tests/test_ledger_faults.py`` uses to kill a worker at every registered
point and assert recovery.

Every firing site must be *registered* (at import time of the module that
embeds it); firing or arming an unknown name raises — a misspelled
failpoint must fail the test loudly, not silently never trigger.

Production overhead is one dict lookup per instrumented call when nothing
is armed.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = [
    "InjectedFault",
    "FailPoint",
    "FailPointRegistry",
    "failpoints",
    "fire",
    "guarded_write",
    "registered_failpoints",
    "ledger_write_failpoints",
    "serving_failpoints",
]

#: Environment variable read at registry construction (i.e. at import in a
#: subprocess): ``"point=action[,point=action...]"``.
ENV_VAR = "REPRO_FAILPOINTS"

#: Exit status of a ``crash``/``torn`` action — chosen to match the shell's
#: status for a SIGKILL-ed process, so test assertions read naturally.
CRASH_EXIT_CODE = 137

_ACTIONS = ("crash", "torn", "error", "delay")

#: Sleep applied by a bare ``"delay"`` arming (no ``:SECONDS`` suffix).
DEFAULT_DELAY_SECONDS = 0.05


def _parse_delay(action):
    """``"delay"`` / ``"delay:1.5"`` -> seconds, or None for other actions."""
    if action == "delay":
        return DEFAULT_DELAY_SECONDS
    if action.startswith("delay:"):
        try:
            seconds = float(action.split(":", 1)[1])
        except ValueError:
            raise ValueError(f"malformed delay action {action!r}; expected 'delay:SECONDS'")
        if seconds < 0:
            raise ValueError(f"delay action {action!r} must not be negative")
        return seconds
    return None


class InjectedFault(OSError):
    """The error raised by an ``"error"``-armed failpoint.

    Subclasses :class:`OSError` on purpose: injected faults flow through
    the same ``except OSError`` handling real disk failures do, so the
    recovery paths tests exercise are the production ones.
    """


class FailPointRegistry:
    """The set of known failpoints plus whichever are currently armed."""

    def __init__(self, environ=None):
        self._known = {}  # name -> doc
        self._armed = {}  # name -> action
        self._env_pending = self._parse_env(
            (os.environ if environ is None else environ).get(ENV_VAR, "")
        )

    @staticmethod
    def _parse_env(spec):
        pending = {}
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            name, sep, action = entry.partition("=")
            if not sep:
                raise ValueError(
                    f"malformed {ENV_VAR} entry {entry!r}; expected 'point=action'"
                )
            pending[name.strip()] = action.strip()
        return pending

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, name, doc=""):
        """Declare a failpoint (idempotent). Env-armed names attach here —
        the environment may name points whose module is not imported yet."""
        self._known.setdefault(name, doc)
        if name in self._env_pending:
            self.arm(name, self._env_pending.pop(name))
        return name

    def known(self):
        """All registered failpoint names, sorted."""
        return sorted(self._known)

    def _check_known(self, name):
        if name not in self._known:
            raise KeyError(
                f"unknown failpoint {name!r}; registered points: {self.known()}"
            )

    # ------------------------------------------------------------------ #
    # Arming
    # ------------------------------------------------------------------ #
    def arm(self, name, action):
        self._check_known(name)
        if action not in _ACTIONS and _parse_delay(action) is None:
            raise ValueError(f"unknown failpoint action {action!r}; choose from {_ACTIONS}")
        self._armed[name] = action

    def disarm(self, name=None):
        """Disarm one point (or all of them with ``name=None``)."""
        if name is None:
            self._armed.clear()
        else:
            self._armed.pop(name, None)

    def action(self, name):
        """The armed action for ``name`` (None when unarmed)."""
        self._check_known(name)
        return self._armed.get(name)

    @contextmanager
    def active(self, name, action="error"):
        """Arm ``name`` for the duration of a ``with`` block."""
        self.arm(name, action)
        try:
            yield self
        finally:
            self.disarm(name)

    # ------------------------------------------------------------------ #
    # Firing
    # ------------------------------------------------------------------ #
    def fire(self, name):
        """Trigger ``name``: no-op when unarmed, otherwise act.

        ``"torn"`` armed on a non-write site degrades to a plain crash —
        the torn half-write itself only happens inside
        :func:`guarded_write`.
        """
        action = self.action(name)
        if action is None:
            return
        if action == "error":
            raise InjectedFault(f"injected fault at failpoint {name!r}")
        delay = _parse_delay(action)
        if delay is not None:
            import time

            time.sleep(delay)
            return
        os._exit(CRASH_EXIT_CODE)

    def guarded_write(self, fh, data, point):
        """Write ``data`` to ``fh``, honouring a ``"torn"`` arming of
        ``point``: flush roughly half the bytes to disk, then crash."""
        self._check_known(point)
        if self._armed.get(point) == "torn":
            fh.write(data[: max(1, len(data) // 2)])
            fh.flush()
            try:
                os.fsync(fh.fileno())
            except OSError:
                pass
            os._exit(CRASH_EXIT_CODE)
        fh.write(data)


#: The process-wide registry every instrumented site fires against.
failpoints = FailPointRegistry()


def fire(name):
    """Module-level shorthand for :meth:`FailPointRegistry.fire`."""
    failpoints.fire(name)


def guarded_write(fh, data, point):
    """Module-level shorthand for :meth:`FailPointRegistry.guarded_write`."""
    failpoints.guarded_write(fh, data, point)


def registered_failpoints():
    """All registered failpoint names (sorted)."""
    return failpoints.known()


class FailPoint:
    """Convenience arming helpers (class-level, operate on the global
    registry): ``FailPoint.crash_before("ledger.commit")`` arms the crash
    at the commit record's ``before_append`` site."""

    @staticmethod
    def crash_before(stage):
        failpoints.arm(f"{stage}.before_append", "crash")

    @staticmethod
    def crash_after(stage):
        failpoints.arm(f"{stage}.after_append", "crash")

    @staticmethod
    def torn(stage):
        failpoints.arm(f"{stage}.torn", "torn")

    @staticmethod
    def error_at(name):
        failpoints.arm(name, "error")

    @staticmethod
    def clear():
        failpoints.disarm()


# ---------------------------------------------------------------------- #
# Ledger write-path failpoints
# ---------------------------------------------------------------------- #
# Registered here (not in ledger.py) so the crash-matrix suite can
# enumerate them without importing the ledger, and so the set of points the
# acceptance matrix must cover is an explicit, reviewable list. The ledger
# fires exactly these names.
_JOURNAL_SPEND_POINTS = tuple(
    f"ledger.{record}.{site}"
    for record in ("intent", "commit")
    for site in ("before_append", "torn", "after_append")
)
_SQLITE_SPEND_POINTS = tuple(
    f"ledger.{record}.{site}"
    for record in ("intent", "commit")
    for site in ("before_append", "after_append")
) + ("sqlite.txn.before_commit", "sqlite.txn.after_commit")

for _name in _JOURNAL_SPEND_POINTS:
    failpoints.register(_name, "durable-ledger spend write path (journal backend)")
for _name in _SQLITE_SPEND_POINTS:
    failpoints.register(_name, "durable-ledger spend write path (sqlite backend)")
failpoints.register("ledger.rollback.before_append", "durable restore write path")
failpoints.register("ledger.rollback.torn", "durable restore write path")
failpoints.register("ledger.rollback.after_append", "durable restore write path")
failpoints.register("journal.compact.before_replace", "journal compaction/rotation")
failpoints.register("journal.compact.after_replace", "journal compaction/rotation")
failpoints.register("io.atomic.before_replace", "atomic on-disk writes (serialization)")
failpoints.register("io.atomic.after_replace", "atomic on-disk writes (serialization)")


# ---------------------------------------------------------------------- #
# Serving-tier failpoints
# ---------------------------------------------------------------------- #
# Fired by the worker loop, the TCP front-end and the hot-reload path.
# ``crash`` at a worker point is the kill-worker drill; ``delay:SECONDS``
# at ``serving.worker.request`` is the hung-pipe drill the per-request
# deadline must catch; the reload points let the chaos suite crash the
# parent-side staging/swap mid-flight.
_SERVING_POINTS = (
    ("serving.worker.boot", "worker startup, before the ready handshake"),
    ("serving.worker.request", "worker loop, after recv and before dispatch"),
    ("serving.worker.before_reply", "worker loop, after dispatch and before send"),
    ("serving.conn.drop", "TCP front-end, before writing a reply line"),
    ("serving.reload.before_stage", "hot reload, before staging the new segment"),
    ("serving.reload.before_swap", "hot reload, staged but before worker swap"),
    ("serving.reload.mid_swap", "hot reload, between per-slot generation swaps"),
)
for _name, _doc in _SERVING_POINTS:
    failpoints.register(_name, _doc)


def serving_failpoints():
    """The serving-tier failpoint names (the chaos suite's drill list)."""
    return [name for name, _ in _SERVING_POINTS]


def ledger_write_failpoints(backend="journal"):
    """The failpoints on the **spend** write path of one ledger backend —
    the set the crash-recovery acceptance matrix iterates (each armed as a
    ``crash``, or as ``torn`` for the ``.torn`` sites)."""
    if backend == "journal":
        return list(_JOURNAL_SPEND_POINTS)
    if backend == "sqlite":
        return list(_SQLITE_SPEND_POINTS)
    raise ValueError(f"unknown ledger backend {backend!r}; choose 'journal' or 'sqlite'")
