"""Verification substrate: fault injection for crash-safety testing."""

from repro.testing.faults import (
    FailPoint,
    InjectedFault,
    failpoints,
    ledger_write_failpoints,
    registered_failpoints,
)

__all__ = [
    "FailPoint",
    "InjectedFault",
    "failpoints",
    "ledger_write_failpoints",
    "registered_failpoints",
]
