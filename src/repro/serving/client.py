"""Clients for the JSON-lines serving protocol.

:class:`ServiceClient` is a small blocking socket client (tests, scripts,
the quickstart example); :class:`AsyncServiceClient` the asyncio
equivalent the load-generator benchmark uses to keep hundreds of requests
in flight. Both speak the protocol of :mod:`repro.serving.server` —
one JSON object per line — and raise :class:`ServiceError` for
``{"ok": false}`` responses, with the server-reported error kind
preserved on ``.kind``.
"""

from __future__ import annotations

import asyncio
import json
import socket

from repro.exceptions import ReproError

__all__ = ["ServiceClient", "AsyncServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """The server answered ``{"ok": false, ...}``."""

    def __init__(self, kind, message):
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message


def _raise_or_return(response):
    if not response.get("ok"):
        raise ServiceError(
            response.get("error", "ServiceError"), response.get("message", "")
        )
    return response


class ServiceClient:
    """Blocking JSON-lines client over one TCP connection."""

    def __init__(self, host, port, timeout=30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def request(self, payload):
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError("ConnectionClosed", "server closed the connection")
        return _raise_or_return(json.loads(line))

    def ping(self):
        return self.request({"op": "ping"})

    def plans(self):
        return self.request({"op": "plan"})["plans"]

    def execute(self, tenant, plan, epsilon, **switches):
        payload = {"op": "execute", "tenant": tenant, "plan": plan, "epsilon": epsilon}
        payload.update(switches)
        return self.request(payload)["release"]

    def budget(self, tenant):
        return self.request({"op": "budget", "tenant": tenant})["budget"]

    def explain(self, plan, epsilon=None):
        payload = {"op": "explain", "plan": plan}
        if epsilon is not None:
            payload["epsilon"] = epsilon
        return self.request(payload)["explain"]

    def close(self):
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class AsyncServiceClient:
    """Asyncio JSON-lines client; safe for concurrent ``execute`` calls
    from many tasks over one connection (requests are correlated by
    ``id``)."""

    def __init__(self):
        self._reader = None
        self._writer = None
        self._pending = {}
        self._next_id = 0
        self._reader_task = None
        self._write_lock = None

    @classmethod
    async def connect(cls, host, port):
        client = cls()
        client._reader, client._writer = await asyncio.open_connection(host, port)
        client._write_lock = asyncio.Lock()
        client._reader_task = asyncio.ensure_future(client._read_loop())
        return client

    async def _read_loop(self):
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ServiceError("ConnectionClosed", "server closed the connection")
                    )
            self._pending.clear()

    async def request(self, payload):
        loop = asyncio.get_running_loop()
        self._next_id += 1
        request_id = self._next_id
        payload = {**payload, "id": request_id}
        future = loop.create_future()
        self._pending[request_id] = future
        async with self._write_lock:
            self._writer.write(json.dumps(payload).encode("utf-8") + b"\n")
            await self._writer.drain()
        return _raise_or_return(await future)

    async def execute(self, tenant, plan, epsilon, **switches):
        payload = {"op": "execute", "tenant": tenant, "plan": plan, "epsilon": epsilon}
        payload.update(switches)
        return (await self.request(payload))["release"]

    async def budget(self, tenant):
        return (await self.request({"op": "budget", "tenant": tenant}))["budget"]

    async def close(self):
        if self._reader_task is not None:
            self._reader_task.cancel()
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
