"""Clients for the JSON-lines serving protocol.

:class:`ServiceClient` is a small blocking socket client (tests, scripts,
the quickstart example); :class:`AsyncServiceClient` the asyncio
equivalent the load-generator benchmark uses to keep hundreds of requests
in flight. Both speak the protocol of :mod:`repro.serving.server` —
one JSON object per line — and raise :class:`ServiceError` for
``{"ok": false}`` responses, with the server-reported error kind
preserved on ``.kind`` and any ``retry_after`` hint on ``.retry_after``.

Resilience behaviour shared by both clients:

* **Backpressure retries** — a ``LedgerBusyError`` or ``overloaded``
  refusal is a *terminal* reply stating nothing was charged, so the
  client retries it transparently with jittered backoff. Each refusal's
  **own** ``retry_after`` hint is honoured (hints change as load moves),
  and the sleep is clamped to the remaining ``max_busy_wait`` window —
  one oversized hint no longer forfeits the rest of the window. Past the
  window, the refusal surfaces.
* **Idempotency keys** — both clients stamp every ``execute`` with an
  auto-generated idempotency key (pass ``key=`` to supply your own, or
  ``key=False`` to opt out). The server journals the released vector
  under the key, so replaying it returns the original noised answer with
  zero additional budget charge.
* **Socket timeout + idempotent reconnect** (blocking client) — every
  round-trip is bounded by ``timeout``; a timed-out or broken connection
  is torn down (a half-read stream can never desync later replies) and
  transparently reconnected-and-retried **once** for idempotent
  requests: ``ping``/``plan``/``explain``/``budget``/``health`` *and any
  keyed* ``execute`` — if the lost request was charged, the retry
  replays the journaled result rather than spending again. Only an
  explicitly unkeyed ``execute`` (``key=False``) still surfaces a
  ``Timeout``/``ConnectionClosed`` with the outcome unknown. The async
  client reconnects-and-retries keyed requests on ``ConnectionClosed``
  the same way.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
import uuid

from repro.exceptions import ReproError

__all__ = ["ServiceClient", "AsyncServiceClient", "ServiceError"]

#: Ops with no side effects: safe to replay after a reconnect.
_IDEMPOTENT_OPS = frozenset({"ping", "plan", "explain", "budget", "health"})

#: Terminal refusals that explicitly charged nothing: safe to retry after
#: backing off, whatever the op.
_BUSY_KINDS = frozenset({"LedgerBusyError", "overloaded"})

#: Backoff used when a busy reply carries no ``retry_after`` hint.
_DEFAULT_RETRY_AFTER = 0.05


class ServiceError(ReproError):
    """The server answered ``{"ok": false, ...}`` (or the connection
    failed client-side: kinds ``Timeout``/``ConnectionClosed``)."""

    def __init__(self, kind, message, retry_after=None):
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message
        self.retry_after = retry_after


def _raise_or_return(response):
    if not response.get("ok"):
        raise ServiceError(
            response.get("error", "ServiceError"),
            response.get("message", ""),
            retry_after=response.get("retry_after"),
        )
    return response


def _busy_delay(response):
    """Jittered backoff for a busy refusal, or None when not retryable."""
    if response.get("ok") or response.get("error") not in _BUSY_KINDS:
        return None
    hint = response.get("retry_after") or _DEFAULT_RETRY_AFTER
    return float(hint) * (1.0 + 0.5 * random.random())


def _next_busy_sleep(response, give_up):
    """How long to sleep before retrying a busy refusal, or None to stop.

    Re-reads ``retry_after`` from *this* refusal (the hint moves with
    server load, so the first reply's hint must not be reused for the
    whole window) and clamps the sleep to the time left before
    ``give_up`` — a single hint larger than the remainder used to abort
    retrying outright even though window budget remained.
    """
    delay = _busy_delay(response)
    if delay is None:
        return None
    remaining = give_up - time.monotonic()
    if remaining <= 0:
        return None
    return min(delay, remaining)


def _is_idempotent(payload):
    """Safe to replay after a reconnect: side-effect-free ops, plus any
    ``execute`` carrying an idempotency key (the ledger's result journal
    makes its replay return the original release, charged once)."""
    op = payload.get("op")
    return op in _IDEMPOTENT_OPS or (op == "execute" and bool(payload.get("key")))


def _execute_payload(tenant, plan, epsilon, deadline_ms, key, switches):
    """Build an ``execute`` request, stamping an auto-generated
    idempotency key unless the caller supplied one (``key=<str>``) or
    explicitly opted out (``key=False``)."""
    payload = {"op": "execute", "tenant": tenant, "plan": plan, "epsilon": epsilon}
    if key is None:
        payload["key"] = uuid.uuid4().hex
    elif key is not False:
        payload["key"] = key
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    payload.update(switches)
    return payload


class ServiceClient:
    """Blocking JSON-lines client over one TCP connection."""

    def __init__(self, host, port, timeout=30.0, max_busy_wait=2.0):
        self._host = host
        self._port = port
        self.timeout = None if timeout is None else float(timeout)
        self.max_busy_wait = float(max_busy_wait)
        self.reconnects = 0
        self._sock = None
        self._file = None
        self._connect()

    # -- connection management ------------------------------------------ #
    def _connect(self):
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self.timeout
        )
        self._sock.settimeout(self.timeout)
        self._file = self._sock.makefile("rwb")

    def _disconnect(self):
        for closer in (self._file, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:  # pragma: no cover - already dead
                    pass
        self._file = None
        self._sock = None

    def _roundtrip(self, payload):
        """One write-read cycle; any failure tears the connection down so
        a half-read stream can never desync the next reply."""
        if self._sock is None:
            self._connect()
            self.reconnects += 1
        try:
            self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
            self._file.flush()
            line = self._file.readline()
        except (socket.timeout, TimeoutError) as exc:
            self._disconnect()
            raise ServiceError(
                "Timeout",
                f"no reply within {self.timeout}s (request outcome unknown)",
            ) from exc
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            self._disconnect()
            raise ServiceError("ConnectionClosed", str(exc)) from exc
        if not line:
            self._disconnect()
            raise ServiceError("ConnectionClosed", "server closed the connection")
        return json.loads(line)

    # -- request surface ------------------------------------------------- #
    def request(self, payload):
        idempotent = _is_idempotent(payload)
        give_up = time.monotonic() + self.max_busy_wait
        reconnect_retried = False
        while True:
            try:
                response = self._roundtrip(payload)
            except ServiceError as exc:
                if (idempotent and not reconnect_retried
                        and exc.kind in ("Timeout", "ConnectionClosed")):
                    reconnect_retried = True
                    continue
                raise
            delay = _next_busy_sleep(response, give_up)
            if delay is not None:
                time.sleep(delay)
                continue
            return _raise_or_return(response)

    def ping(self):
        return self.request({"op": "ping"})

    def plans(self):
        return self.request({"op": "plan"})["plans"]

    def execute(self, tenant, plan, epsilon, deadline_ms=None, key=None,
                **switches):
        """One budgeted release. ``key`` is the idempotency key: ``None``
        (default) auto-generates a fresh one per call, a string reuses
        the caller's key (a repeat returns the original release, charged
        once), ``False`` opts out of exactly-once entirely."""
        payload = _execute_payload(tenant, plan, epsilon, deadline_ms, key, switches)
        return self.request(payload)["release"]

    def budget(self, tenant):
        return self.request({"op": "budget", "tenant": tenant})["budget"]

    def explain(self, plan, epsilon=None):
        payload = {"op": "explain", "plan": plan}
        if epsilon is not None:
            payload["epsilon"] = epsilon
        return self.request(payload)["explain"]

    def health(self, ledgers=False):
        payload = {"op": "health"}
        if ledgers:
            payload["ledgers"] = True
        return self.request(payload)["health"]

    def reload(self):
        return self.request({"op": "reload"})["reload"]

    def close(self):
        self._disconnect()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class AsyncServiceClient:
    """Asyncio JSON-lines client; safe for concurrent ``execute`` calls
    from many tasks over one connection (requests are correlated by
    ``id``)."""

    def __init__(self):
        self._host = None
        self._port = None
        self._reader = None
        self._writer = None
        self._pending = {}
        self._next_id = 0
        self._reader_task = None
        self._write_lock = None
        self.max_busy_wait = 2.0
        self.reconnects = 0
        #: Wire-sanity counters: replies whose id matched a future already
        #: resolved, and replies whose id matched nothing at all. Both stay
        #: zero when the exactly-one-terminal-reply invariant holds.
        self.duplicate_replies = 0
        self.unmatched_replies = 0

    @classmethod
    async def connect(cls, host, port, max_busy_wait=2.0):
        client = cls()
        client._host = host
        client._port = port
        client.max_busy_wait = float(max_busy_wait)
        await client._open()
        return client

    async def _open(self):
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.ensure_future(self._read_loop())

    async def _reconnect(self):
        """Tear down the dead connection and dial again (the read loop
        already failed every pending future when the socket closed)."""
        if self._reader_task is not None:
            self._reader_task.cancel()
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        await self._open()
        self.reconnects += 1

    async def _read_loop(self):
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                request_id = response.get("id")
                if request_id not in self._pending:
                    self.unmatched_replies += 1
                    continue
                future = self._pending.pop(request_id)
                if future.done():
                    self.duplicate_replies += 1
                else:
                    future.set_result(response)
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ServiceError("ConnectionClosed", "server closed the connection")
                    )
            self._pending.clear()

    async def _request_once(self, payload):
        loop = asyncio.get_running_loop()
        self._next_id += 1
        request_id = self._next_id
        payload = {**payload, "id": request_id}
        future = loop.create_future()
        self._pending[request_id] = future
        async with self._write_lock:
            self._writer.write(json.dumps(payload).encode("utf-8") + b"\n")
            await self._writer.drain()
        return await future

    async def request(self, payload):
        idempotent = _is_idempotent(payload)
        give_up = time.monotonic() + self.max_busy_wait
        reconnect_retried = False
        while True:
            try:
                response = await self._request_once(payload)
            except ServiceError as exc:
                if (idempotent and not reconnect_retried
                        and exc.kind == "ConnectionClosed"):
                    reconnect_retried = True
                    await self._reconnect()
                    continue
                raise
            delay = _next_busy_sleep(response, give_up)
            if delay is not None:
                await asyncio.sleep(delay)
                continue
            return _raise_or_return(response)

    async def execute(self, tenant, plan, epsilon, deadline_ms=None, key=None,
                      **switches):
        """One budgeted release; ``key`` as in :meth:`ServiceClient.execute`
        (``None`` auto-generates, a string reuses, ``False`` opts out)."""
        payload = _execute_payload(tenant, plan, epsilon, deadline_ms, key, switches)
        return (await self.request(payload))["release"]

    async def budget(self, tenant):
        return (await self.request({"op": "budget", "tenant": tenant}))["budget"]

    async def health(self, ledgers=False):
        payload = {"op": "health"}
        if ledgers:
            payload["ledgers"] = True
        return (await self.request(payload))["health"]

    async def reload(self):
        return (await self.request({"op": "reload"}))["reload"]

    async def close(self):
        if self._reader_task is not None:
            self._reader_task.cancel()
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
