"""Serving workers: one supervised process per slot, one engine per tenant.

Each worker attaches to the shared plan segment (:mod:`~repro.serving.shared_plans`),
rebuilds its plans once, and lazily constructs a
:class:`repro.engine.query_engine.PrivateQueryEngine` per tenant. Every
tenant engine

* **adopts** the shared data vector under the service-wide epoch token
  (zero-copy; all tenants in a worker share each plan's cached ``L x``),
* is backed by a per-tenant :class:`repro.privacy.ledger.DurableAccountant`
  at ``ledger_root/<tenant><suffix>`` — one ledger *path* per tenant shared
  by every worker, so N workers spending for the same tenant compose
  through the ledger's cross-process atomicity and can never jointly
  overspend.

The parent talks to workers over ``multiprocessing.Pipe`` with plain
tuples: ``("execute", tenant, plan_name, [(epsilon, switches, key), ...])``
(the idempotency ``key`` element is optional and may be ``None``),
``("budget", tenant)``, ``("explain", plan_name, epsilon)``, ``("ping",)``,
``("shutdown",)``. Replies are ``("ok", payload)`` or ``("error",
exception_class_name, message)`` — exceptions never cross the pipe raw, so
a worker bug cannot poison the parent's unpickler. A worker announces
itself with one unsolicited ``("ready", info)`` message once its engines
can serve; the parent only dispatches to workers that completed this
handshake, so a slow boot is never mistaken for a hang.

:class:`WorkerPool` is the parent-side supervisor. Each of the ``workers``
**slots** owns at most one live worker process at a time; a supervisor
thread heartbeats idle workers, executes delayed respawns, and enforces a
**restart budget with exponential backoff** per slot — a crash-looping slot
is *quarantined* (left empty, visible in :meth:`WorkerPool.health`) instead
of flapping forever. Every pipe round-trip carries a deadline: a worker
that stops answering — hung, not just dead — is killed with SIGKILL and
its slot respawned, surfacing :class:`WorkerTimeoutError` to the caller.
:meth:`WorkerPool.reload` swaps every slot to a new :class:`WorkerConfig`
generation-by-generation without dropping in-flight requests — the hot
plan-reload primitive.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import threading
import time
from pathlib import Path

from repro.exceptions import ReproError, ValidationError
from repro.io.atomic import RetryPolicy

__all__ = [
    "WorkerConfig",
    "WorkerPool",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "WorkerBusyError",
    "worker_main",
    "SERVING_LEDGER_RETRY",
]

#: Lock patience for per-tenant ledgers under serving load. The library
#: default (~0.2 s of cumulative backoff) suits occasional contention; a
#: pool of workers spending on ONE tenant's flock-serialized ledger at
#: high concurrency queues dozens of spends deep, so workers wait ~2 s
#: before surfacing LedgerBusyError as backpressure to the client.
SERVING_LEDGER_RETRY = RetryPolicy(attempts=48, base_delay=0.001, max_delay=0.05)


class WorkerCrashError(ReproError):
    """A worker died (or its pipe broke) while serving a request.

    ``delivered`` records whether the command reached the worker before it
    died: an *undelivered* command is safe to retry on another worker (no
    side effects happened); a delivered one is not — for ``execute`` the
    ledger may already hold the spend.
    """

    def __init__(self, message, delivered=True):
        super().__init__(message)
        self.delivered = delivered


class WorkerTimeoutError(WorkerCrashError):
    """A worker exceeded its per-request deadline: hung, killed, respawned."""


class WorkerBusyError(WorkerCrashError):
    """No worker became free within the checkout timeout (pool saturated)."""

    def __init__(self, message):
        super().__init__(message, delivered=False)


class WorkerConfig:
    """Picklable per-service worker parameters.

    ``total_epsilon``/``total_delta`` are the **per-tenant** budget;
    ``accountant`` the model name (``None`` for the default composition);
    ``ledger_suffix`` picks the ledger backend by file extension;
    ``seed`` the base RNG seed (worker index and tenant name are folded in
    so no two engines share a noise stream; ``None`` for OS entropy);
    ``ledger_retry`` the ledger lock patience (``None`` for
    :data:`SERVING_LEDGER_RETRY`); ``failpoints`` an optional
    ``{point: action}`` dict armed at worker startup (the crash-drill
    hook, mirroring ``REPRO_FAILPOINTS``).
    """

    def __init__(self, manifest, ledger_root, total_epsilon, total_delta=0.0,
                 accountant=None, ledger_suffix=".journal", seed=None,
                 ledger_retry=None, failpoints=None):
        self.manifest = manifest
        self.ledger_root = str(ledger_root)
        self.total_epsilon = float(total_epsilon)
        self.total_delta = float(total_delta)
        self.accountant = accountant
        self.ledger_suffix = ledger_suffix
        self.seed = seed
        self.ledger_retry = SERVING_LEDGER_RETRY if ledger_retry is None else ledger_retry
        self.failpoints = dict(failpoints or {})

    def replace(self, **overrides):
        """A copy with some fields swapped (manifest for hot reload,
        failpoints for per-slot drills)."""
        fields = {
            "manifest": self.manifest,
            "ledger_root": self.ledger_root,
            "total_epsilon": self.total_epsilon,
            "total_delta": self.total_delta,
            "accountant": self.accountant,
            "ledger_suffix": self.ledger_suffix,
            "seed": self.seed,
            "ledger_retry": self.ledger_retry,
            "failpoints": self.failpoints,
        }
        fields.update(overrides)
        return WorkerConfig(**fields)


def _tenant_seed(base, worker_index, tenant):
    if base is None:
        return None
    import hashlib

    digest = hashlib.sha1(f"{base}:{worker_index}:{tenant}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _release_payload(release):
    """JSON-able wire form of one Release (the audit log keeps the full
    object worker-side; the wire carries what a client can use).

    ``deduplicated`` is out-of-band dispatch metadata — the server pops it
    into its dedup-hit counters before the payload reaches the wire, so a
    replayed release stays byte-identical to the original reply."""
    return {
        "values": release.answers.tolist(),
        "mechanism": release.mechanism,
        "epsilon": release.epsilon,
        "delta": release.delta,
        "expected_error": release.expected_error,
        # The typed NoiseCost record charged for this release (family,
        # base (epsilon, delta), noise magnitude, sample rate, and the
        # amplified "charged" pair for subsampled releases) — what a
        # client audits against its own budget expectations.
        "cost": release.metadata.get("cost"),
        "realized": release.metadata.get("realized"),
        "deduplicated": bool(release.metadata.get("deduplicated")),
    }


class _WorkerState:
    """Everything one worker process owns."""

    def __init__(self, config, worker_index):
        from repro.serving.shared_plans import attach_plans

        self.config = config
        self.worker_index = worker_index
        self.store = attach_plans(config.manifest)
        self.data, self.data_epoch = self.store.data()
        self.engines = {}

    def engine(self, tenant):
        engine = self.engines.get(tenant)
        if engine is None:
            from repro.engine.query_engine import PrivateQueryEngine

            config = self.config
            ledger_path = Path(config.ledger_root) / f"{tenant}{config.ledger_suffix}"
            ledger_path.parent.mkdir(parents=True, exist_ok=True)
            engine = PrivateQueryEngine(
                self.data,
                total_budget=config.total_epsilon,
                delta=config.total_delta,
                seed=_tenant_seed(config.seed, self.worker_index, tenant),
                accountant=config.accountant,
                ledger_path=ledger_path,
                ledger_retry=config.ledger_retry,
            )
            engine.adopt_data(self.data, self.data_epoch)
            self.engines[tenant] = engine
        return engine

    # -- command handlers ---------------------------------------------- #
    def execute(self, tenant, plan_name, requests):
        engine = self.engine(tenant)
        plan = self.store.plan(plan_name)
        # Requests are (epsilon, switches) or (epsilon, switches, key):
        # the idempotency key rides through to the engine, whose keyed
        # path answers already-charged keys from the durable result
        # journal instead of spending again.
        normalized = [
            (request[0], request[1], request[2] if len(request) > 2 else None)
            for request in requests
        ]
        if len(normalized) == 1:
            epsilon, switches, key = normalized[0]
            releases = [engine.execute(plan, epsilon, request_key=key, **switches)]
        else:
            releases = engine.execute_many(
                [
                    (plan, epsilon, switches, key)
                    for epsilon, switches, key in normalized
                ]
            )
        return [_release_payload(release) for release in releases]

    def budget(self, tenant):
        engine = self.engine(tenant)
        accountant = engine.accountant
        sync = getattr(accountant, "sync", None)
        if sync is not None:
            sync()
        return {
            "tenant": tenant,
            "model": accountant.name,
            "total_epsilon": accountant.total_epsilon,
            "total_delta": accountant.total_delta,
            "spent_epsilon": accountant.spent_epsilon,
            "spent_delta": accountant.spent_delta,
            "remaining_epsilon": accountant.remaining_epsilon,
        }

    def explain(self, plan_name, epsilon):
        plan = self.store.plan(plan_name)
        return plan.explain(epsilon=epsilon)

    def plan_info(self, plan_name):
        metadata = self.store.metadata(plan_name)
        plan_meta = metadata.get("plan", {})
        workload_meta = metadata.get("workload", {})
        return {
            "name": plan_name,
            "mechanism": plan_meta.get("mechanism_label"),
            "workload_key": plan_meta.get("workload_key"),
            "shape": workload_meta.get("shape"),
            "solver_version": metadata.get("solver_version", 0),
            "requires_delta": metadata.get("delta") is not None,
        }


def worker_main(connection, config, worker_index):
    """Worker process entry point: blocking command loop over the pipe."""
    from repro.testing.faults import failpoints, fire

    for name, action in config.failpoints.items():
        failpoints.arm(name, action)
    fire("serving.worker.boot")
    state = _WorkerState(config, worker_index)
    connection.send(("ready", {"pid": os.getpid(), "worker": worker_index}))
    try:
        while True:
            try:
                command = connection.recv()
            except EOFError:  # parent died: nothing left to serve
                break
            op = command[0]
            if op == "shutdown":
                connection.send(("ok", "bye"))
                break
            try:
                fire("serving.worker.request")
                if op == "execute":
                    payload = state.execute(command[1], command[2], command[3])
                elif op == "budget":
                    payload = state.budget(command[1])
                elif op == "explain":
                    payload = state.explain(command[1], command[2])
                elif op == "plan_info":
                    payload = state.plan_info(command[1])
                elif op == "ping":
                    payload = {"pid": os.getpid(), "worker": worker_index}
                else:
                    raise ValidationError(f"unknown worker command {op!r}")
                fire("serving.worker.before_reply")
                connection.send(("ok", payload))
            except BaseException as exc:  # reported to the parent, never raised raw
                connection.send(("error", type(exc).__name__, str(exc)))
    finally:
        for engine in state.engines.values():
            close = getattr(engine.accountant, "close", None)
            if close is not None:
                close()
        state.store.close()
        connection.close()


class _Slot:
    """One supervised worker position: restart accounting lives here, the
    process itself lives in the (replaceable) handle."""

    def __init__(self, slot_id):
        self.slot_id = slot_id
        self.handle = None
        self.restarts = 0        # consecutive, reset once a worker stays healthy
        self.total_restarts = 0
        self.quarantined = False
        self.respawn_due = 0.0   # monotonic time a pending delayed respawn runs


class _WorkerHandle:
    def __init__(self, process, connection, index, slot, generation):
        self.process = process
        self.connection = connection
        self.index = index
        self.slot = slot
        self.generation = generation
        self.lock = threading.Lock()
        self.ready = threading.Event()
        self.dead = False       # crashed / killed: never dispatch again
        self.retired = False    # deliberately replaced: don't count as a crash
        self.spawned_at = time.monotonic()
        self.last_ok = self.spawned_at

    def request(self, command, deadline=None):
        """One synchronous round-trip (serialized per worker). ``deadline``
        is a monotonic timestamp bounding the wait for the reply; past it
        the worker is presumed hung and :class:`WorkerTimeoutError` raises
        (the pool kills and respawns it)."""
        with self.lock:
            if self.dead or self.retired:
                raise WorkerCrashError(
                    f"worker {self.index} is gone", delivered=False
                )
            try:
                self.connection.send(command)
            except (BrokenPipeError, OSError) as exc:
                raise WorkerCrashError(
                    f"worker {self.index} (pid {self.process.pid}) died before "
                    f"accepting {command[0]!r}",
                    delivered=False,
                ) from exc
            try:
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self.connection.poll(remaining):
                        raise WorkerTimeoutError(
                            f"worker {self.index} (pid {self.process.pid}) exceeded "
                            f"its deadline serving {command[0]!r}"
                        )
                reply = self.connection.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise WorkerCrashError(
                    f"worker {self.index} (pid {self.process.pid}) died "
                    f"serving {command[0]!r}"
                ) from exc
            self.last_ok = time.monotonic()
            return reply

    def heartbeat(self, timeout):
        """Ping an *idle* worker; True when healthy or busy, False when it
        is provably dead or hung (caller kills + respawns)."""
        if not self.lock.acquire(blocking=False):
            return True  # mid-request: the per-request deadline covers it
        try:
            if self.dead or self.retired:
                return True
            try:
                self.connection.send(("ping",))
                if not self.connection.poll(timeout):
                    return False
                self.connection.recv()
            except (EOFError, BrokenPipeError, OSError):
                return False
            self.last_ok = time.monotonic()
            return True
        finally:
            self.lock.release()

    def alive(self):
        return not self.dead and self.process.is_alive()

    def stop(self, timeout=5.0):
        """Graceful retire: wait out any in-flight request, ask the worker
        to exit, then join (escalating to SIGKILL if it won't)."""
        self.retired = True
        with self.lock:
            if not self.dead and self.process.is_alive():
                try:
                    self.connection.send(("shutdown",))
                    if self.connection.poll(timeout):
                        self.connection.recv()
                except (EOFError, BrokenPipeError, OSError):
                    pass
            self.dead = True
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.kill()
            self.process.join(timeout)
        try:
            self.connection.close()
        except OSError:  # pragma: no cover
            pass


class WorkerPool:
    """Parent-side supervisor: spawn, dispatch, heartbeat, replace, drain.

    ``submit`` checks a worker out of the free queue, runs one request
    under a deadline, and returns it — callers block only while all
    workers are busy (up to ``timeout``, then :class:`WorkerBusyError`).
    A crashed or hung worker is killed and its **slot** respawned by the
    supervisor thread: immediately on the first crash, then with
    exponential backoff, and after ``restart_budget`` consecutive crashes
    the slot is quarantined — the pool keeps serving on its remaining
    slots instead of flapping. ``respawn=False`` quarantines on the first
    crash (for drills that count workers). ``failpoints_by_worker`` keys
    on the monotonically increasing worker *index* (respawns never re-arm);
    ``failpoints_by_slot`` keys on the slot and re-arms every respawn —
    the crash-loop drill hook.
    """

    def __init__(self, config, workers, respawn=True, failpoints_by_worker=None,
                 failpoints_by_slot=None, request_timeout=30.0,
                 heartbeat_interval=1.0, heartbeat_timeout=5.0,
                 restart_budget=5, backoff_base=0.1, backoff_max=5.0,
                 healthy_after=30.0, boot_timeout=60.0):
        if int(workers) <= 0:
            raise ValidationError("WorkerPool needs at least one worker")
        self._config = config
        self._context = multiprocessing.get_context("spawn")
        self._respawn = respawn
        self._failpoints_by_worker = dict(failpoints_by_worker or {})
        self._failpoints_by_slot = dict(failpoints_by_slot or {})
        self.request_timeout = None if request_timeout is None else float(request_timeout)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.restart_budget = int(restart_budget)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self.healthy_after = float(healthy_after)
        self.boot_timeout = float(boot_timeout)
        self._next_index = 0
        self._generation = 0
        self._crashes = 0
        self._timeouts = 0
        self._free = queue_module.Queue()
        self._closed = False
        self._lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._wakeup = threading.Event()
        self._slots = [_Slot(slot_id) for slot_id in range(int(workers))]
        with self._lock:
            for slot in self._slots:
                self._spawn(slot, enqueue=False)
        # Boot happens in parallel, but the free queue is filled in slot
        # order so first dispatches land on worker 0, 1, ... — tests and
        # failpoint drills rely on that determinism.
        boot_handles = [slot.handle for slot in self._slots]
        deadline = time.monotonic() + self.boot_timeout
        for handle in boot_handles:
            while not (handle.ready.is_set() or handle.dead):
                if time.monotonic() > deadline:
                    break
                time.sleep(0.005)
            if handle.ready.is_set() and not handle.dead and not handle.retired:
                self._free.put(handle)
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-serve-supervisor", daemon=True
        )
        self._supervisor.start()

    # ------------------------------------------------------------------ #
    # Spawning and the ready handshake
    # ------------------------------------------------------------------ #
    def _config_for(self, index, slot_id):
        merged = {}
        merged.update(self._failpoints_by_slot.get(slot_id) or {})
        merged.update(self._failpoints_by_worker.get(index) or {})
        if merged:
            return self._config.replace(failpoints=merged)
        return self._config

    def _spawn(self, slot, enqueue=True):
        """Start a worker for ``slot`` (caller holds ``self._lock``). The
        handle only enters the free queue once its ready handshake lands;
        ``enqueue=False`` leaves that to the caller (initial boot, which
        enqueues in slot order)."""
        index = self._next_index
        self._next_index += 1
        config = self._config_for(index, slot.slot_id)
        parent_end, worker_end = self._context.Pipe()
        process = self._context.Process(
            target=worker_main,
            args=(worker_end, config, index),
            name=f"repro-serve-{index}",
            daemon=True,
        )
        process.start()
        worker_end.close()
        handle = _WorkerHandle(process, parent_end, index, slot, self._generation)
        slot.handle = handle
        slot.respawn_due = 0.0
        threading.Thread(
            target=self._await_ready,
            args=(handle, enqueue),
            name=f"repro-serve-ready-{index}",
            daemon=True,
        ).start()
        return handle

    def _await_ready(self, handle, enqueue=True):
        try:
            if not handle.connection.poll(self.boot_timeout):
                raise WorkerTimeoutError(
                    f"worker {handle.index} did not become ready within "
                    f"{self.boot_timeout}s"
                )
            message = handle.connection.recv()
            if not (isinstance(message, tuple) and message and message[0] == "ready"):
                raise WorkerCrashError(
                    f"worker {handle.index} sent {message!r} instead of the "
                    "ready handshake"
                )
        except (EOFError, BrokenPipeError, OSError, WorkerCrashError):
            self._report_crash(handle, hung=False)
            return
        handle.ready.set()
        handle.last_ok = time.monotonic()
        if not enqueue:
            return
        with self._lock:
            usable = (
                not self._closed
                and not handle.retired
                and not handle.dead
                and handle.slot.handle is handle
            )
        if usable:
            self._free.put(handle)

    # ------------------------------------------------------------------ #
    # Crash accounting, backoff, quarantine
    # ------------------------------------------------------------------ #
    def _report_crash(self, handle, hung):
        """Count one worker death exactly once and schedule its slot's
        respawn (or quarantine it)."""
        with self._lock:
            if handle.dead:
                return
            handle.dead = True
            retired = handle.retired
            if not retired:
                self._crashes += 1
                if hung:
                    self._timeouts += 1
        try:
            if handle.process.is_alive():
                handle.process.kill()
        except Exception:  # pragma: no cover - already reaped
            pass
        with self._lock:
            slot = handle.slot
            if self._closed or retired or slot.handle is not handle:
                return
            slot.handle = None
            if not self._respawn:
                slot.quarantined = True
                return
            now = time.monotonic()
            if now - handle.spawned_at >= self.healthy_after:
                slot.restarts = 0
            slot.restarts += 1
            slot.total_restarts += 1
            if slot.restarts > self.restart_budget:
                slot.quarantined = True
                return
            if slot.restarts == 1:
                self._spawn(slot)  # first crash: replace immediately
            else:
                delay = min(
                    self.backoff_max, self.backoff_base * (2 ** (slot.restarts - 2))
                )
                slot.respawn_due = now + delay
                self._wakeup.set()

    # ------------------------------------------------------------------ #
    # Supervisor thread: delayed respawns + heartbeats
    # ------------------------------------------------------------------ #
    def _supervise(self):
        while True:
            self._wakeup.wait(timeout=self._poll_interval())
            self._wakeup.clear()
            if self._closed:
                return
            self._run_due_respawns()
            self._heartbeat_sweep()

    def _poll_interval(self):
        interval = self.heartbeat_interval
        now = time.monotonic()
        with self._lock:
            for slot in self._slots:
                if slot.handle is None and not slot.quarantined and slot.respawn_due:
                    interval = min(interval, max(0.01, slot.respawn_due - now))
        return max(0.01, interval)

    def _run_due_respawns(self):
        now = time.monotonic()
        with self._lock:
            if self._closed:
                return
            for slot in self._slots:
                if (
                    slot.handle is None
                    and not slot.quarantined
                    and slot.respawn_due
                    and slot.respawn_due <= now
                ):
                    self._spawn(slot)

    def _heartbeat_sweep(self):
        now = time.monotonic()
        with self._lock:
            candidates = [
                slot.handle
                for slot in self._slots
                if slot.handle is not None
                and slot.handle.ready.is_set()
                and not slot.handle.dead
                and now - slot.handle.last_ok >= self.heartbeat_interval
            ]
        for handle in candidates:
            if self._closed:
                return
            if not handle.heartbeat(self.heartbeat_timeout):
                self._report_crash(handle, hung=handle.process.is_alive())

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    @property
    def size(self):
        with self._lock:
            return sum(
                1 for slot in self._slots
                if slot.handle is not None and slot.handle.alive()
            )

    def pids(self):
        """Live worker pids (the chaos suite's kill list)."""
        with self._lock:
            return [
                slot.handle.process.pid
                for slot in self._slots
                if slot.handle is not None and slot.handle.alive()
            ]

    def submit(self, command, timeout=None, deadline=None, retry_delivered=False):
        """Run one command on any free worker; returns the reply tuple —
        ``("ok", payload)`` or ``("error", exception_name, message)`` —
        verbatim, so callers map worker-reported failures onto their own
        error surface. Raises :class:`WorkerCrashError` if the worker dies
        mid-request (its slot is respawned per the supervision policy),
        :class:`WorkerTimeoutError` if it hangs past the deadline (killed
        and respawned), :class:`WorkerBusyError` if no worker frees up
        within ``timeout``. ``deadline`` is a monotonic timestamp for this
        request's pipe round-trip; None applies ``request_timeout``.
        A command the worker provably never received is retried once on
        another worker before the crash surfaces.

        ``retry_delivered=True`` additionally retries a crash (or hang)
        *after* delivery once — only safe for idempotent commands, i.e.
        an ``execute`` where **every** request carries an idempotency key:
        if the dead worker's spend committed, the retry replays the stored
        result from the ledger's dedup index (the dedup check runs inside
        the ledger's exclusive transaction, so even a not-quite-dead
        victim racing the retry cannot double-charge); if it never
        committed, the key is free and the retry charges it exactly once.
        """
        if self._closed:
            raise ValidationError("WorkerPool is closed")
        checkout_deadline = None if timeout is None else time.monotonic() + timeout
        retries = 0
        while True:
            remaining = (
                None if checkout_deadline is None
                else max(0.0, checkout_deadline - time.monotonic())
            )
            try:
                handle = self._free.get(timeout=remaining)
            except queue_module.Empty as exc:
                raise WorkerBusyError("no free worker within timeout") from exc
            if handle.dead or handle.retired:
                continue  # dropped: its slot is already being handled
            request_deadline = deadline
            if request_deadline is None and self.request_timeout is not None:
                request_deadline = time.monotonic() + self.request_timeout
            try:
                reply = handle.request(command, deadline=request_deadline)
            except WorkerTimeoutError:
                self._report_crash(handle, hung=True)
                if (
                    retry_delivered
                    and retries < 1
                    and (
                        request_deadline is None
                        or request_deadline - time.monotonic() > 0.05
                    )
                ):
                    retries += 1
                    continue  # keyed: the ledger dedups any committed spend
                raise
            except WorkerCrashError as exc:
                self._report_crash(handle, hung=False)
                if (not exc.delivered or retry_delivered) and retries < 1:
                    retries += 1
                    continue  # undelivered, or keyed and therefore idempotent
                raise
            self._free.put(handle)
            return reply

    # ------------------------------------------------------------------ #
    # Health, hot reload, drain
    # ------------------------------------------------------------------ #
    def health(self):
        """Supervision snapshot: per-slot liveness plus pool counters."""
        with self._lock:
            slots = []
            for slot in self._slots:
                handle = slot.handle
                slots.append({
                    "slot": slot.slot_id,
                    "alive": bool(handle is not None and handle.alive()),
                    "ready": bool(handle is not None and handle.ready.is_set()),
                    "pid": handle.process.pid if handle is not None else None,
                    "generation": handle.generation if handle is not None else None,
                    "restarts": slot.total_restarts,
                    "quarantined": slot.quarantined,
                })
            return {
                "workers": len(self._slots),
                "alive": sum(1 for entry in slots if entry["alive"]),
                "quarantined": sum(1 for entry in slots if entry["quarantined"]),
                "crashes": self._crashes,
                "timeouts": self._timeouts,
                "restarts": sum(slot.total_restarts for slot in self._slots),
                "generation": self._generation,
                "slots": slots,
            }

    def reload(self, new_config):
        """Swap every slot to ``new_config`` one generation at a time.

        Each slot spawns its new-generation worker, waits for its ready
        handshake, then gracefully retires the old worker — which first
        finishes any in-flight request, so nothing is dropped. Quarantined
        slots are given a clean restart record (the new config may well
        remove the crash cause). Returns the new generation number."""
        from repro.testing.faults import fire

        with self._reload_lock:
            with self._lock:
                if self._closed:
                    raise ValidationError("WorkerPool is closed")
                self._generation += 1
                generation = self._generation
                self._config = new_config
                slots = list(self._slots)
            for slot in slots:
                fire("serving.reload.mid_swap")
                with self._lock:
                    if self._closed:
                        break
                    slot.quarantined = False
                    slot.restarts = 0
                    old = slot.handle
                    if old is not None and old.generation >= generation:
                        continue  # a respawn already picked up the new config
                    fresh = self._spawn(slot)
                fresh.ready.wait(timeout=self.boot_timeout)
                if old is not None:
                    old.stop()
            return generation

    def shutdown(self):
        """Graceful drain: every worker finishes its in-flight request,
        receives ``shutdown``, and is joined."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = [slot.handle for slot in self._slots if slot.handle is not None]
        self._wakeup.set()
        self._supervisor.join(timeout=5.0)
        for handle in handles:
            handle.stop()
        with self._lock:
            for slot in self._slots:
                slot.handle = None
