"""Serving workers: one process per slot, one engine per tenant.

Each worker attaches to the shared plan segment (:mod:`~repro.serving.shared_plans`),
rebuilds its plans once, and lazily constructs a
:class:`repro.engine.query_engine.PrivateQueryEngine` per tenant. Every
tenant engine

* **adopts** the shared data vector under the service-wide epoch token
  (zero-copy; all tenants in a worker share each plan's cached ``L x``),
* is backed by a per-tenant :class:`repro.privacy.ledger.DurableAccountant`
  at ``ledger_root/<tenant><suffix>`` — one ledger *path* per tenant shared
  by every worker, so N workers spending for the same tenant compose
  through the ledger's cross-process atomicity and can never jointly
  overspend.

The parent talks to workers over ``multiprocessing.Pipe`` with plain
tuples: ``("execute", tenant, plan_name, [(epsilon, switches), ...])``,
``("budget", tenant)``, ``("explain", plan_name, epsilon)``, ``("ping",)``,
``("shutdown",)``. Replies are ``("ok", payload)`` or ``("error",
exception_class_name, message)`` — exceptions never cross the pipe raw, so
a worker bug cannot poison the parent's unpickler.

:class:`WorkerPool` is the parent-side handle: it spawns the workers
(spawn context — the parent runs an asyncio event loop, which ``fork``
would duplicate into the child), checks them out per request through a
free-slot queue, and detects crashed workers (EOF on the pipe) so the
caller sees :class:`WorkerCrashError` instead of a hang. Crashed workers
are replaced on the next checkout; their in-flight batch is reported
failed, and any half-written ledger record is repaired by the next spend
through the ledger's own recovery (see ``tests/test_serving_service.py``'s
crash drill).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from pathlib import Path

from repro.exceptions import ReproError, ValidationError
from repro.io.atomic import RetryPolicy

__all__ = [
    "WorkerConfig",
    "WorkerPool",
    "WorkerCrashError",
    "worker_main",
    "SERVING_LEDGER_RETRY",
]

#: Lock patience for per-tenant ledgers under serving load. The library
#: default (~0.2 s of cumulative backoff) suits occasional contention; a
#: pool of workers spending on ONE tenant's flock-serialized ledger at
#: high concurrency queues dozens of spends deep, so workers wait ~2 s
#: before surfacing LedgerBusyError as backpressure to the client.
SERVING_LEDGER_RETRY = RetryPolicy(attempts=48, base_delay=0.001, max_delay=0.05)


class WorkerCrashError(ReproError):
    """A worker died (or its pipe broke) while serving a request."""


class WorkerConfig:
    """Picklable per-service worker parameters.

    ``total_epsilon``/``total_delta`` are the **per-tenant** budget;
    ``accountant`` the model name (``None`` for the default composition);
    ``ledger_suffix`` picks the ledger backend by file extension;
    ``seed`` the base RNG seed (worker index and tenant name are folded in
    so no two engines share a noise stream; ``None`` for OS entropy);
    ``ledger_retry`` the ledger lock patience (``None`` for
    :data:`SERVING_LEDGER_RETRY`); ``failpoints`` an optional
    ``{point: action}`` dict armed at worker startup (the crash-drill
    hook, mirroring ``REPRO_FAILPOINTS``).
    """

    def __init__(self, manifest, ledger_root, total_epsilon, total_delta=0.0,
                 accountant=None, ledger_suffix=".journal", seed=None,
                 ledger_retry=None, failpoints=None):
        self.manifest = manifest
        self.ledger_root = str(ledger_root)
        self.total_epsilon = float(total_epsilon)
        self.total_delta = float(total_delta)
        self.accountant = accountant
        self.ledger_suffix = ledger_suffix
        self.seed = seed
        self.ledger_retry = SERVING_LEDGER_RETRY if ledger_retry is None else ledger_retry
        self.failpoints = dict(failpoints or {})


def _tenant_seed(base, worker_index, tenant):
    if base is None:
        return None
    import hashlib

    digest = hashlib.sha1(f"{base}:{worker_index}:{tenant}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _release_payload(release):
    """JSON-able wire form of one Release (the audit log keeps the full
    object worker-side; the wire carries what a client can use)."""
    return {
        "values": release.answers.tolist(),
        "mechanism": release.mechanism,
        "epsilon": release.epsilon,
        "delta": release.delta,
        "expected_error": release.expected_error,
        "realized": release.metadata.get("realized"),
    }


class _WorkerState:
    """Everything one worker process owns."""

    def __init__(self, config, worker_index):
        from repro.serving.shared_plans import attach_plans

        self.config = config
        self.worker_index = worker_index
        self.store = attach_plans(config.manifest)
        self.data, self.data_epoch = self.store.data()
        self.engines = {}

    def engine(self, tenant):
        engine = self.engines.get(tenant)
        if engine is None:
            from repro.engine.query_engine import PrivateQueryEngine

            config = self.config
            ledger_path = Path(config.ledger_root) / f"{tenant}{config.ledger_suffix}"
            ledger_path.parent.mkdir(parents=True, exist_ok=True)
            engine = PrivateQueryEngine(
                self.data,
                total_budget=config.total_epsilon,
                delta=config.total_delta,
                seed=_tenant_seed(config.seed, self.worker_index, tenant),
                accountant=config.accountant,
                ledger_path=ledger_path,
                ledger_retry=config.ledger_retry,
            )
            engine.adopt_data(self.data, self.data_epoch)
            self.engines[tenant] = engine
        return engine

    # -- command handlers ---------------------------------------------- #
    def execute(self, tenant, plan_name, requests):
        engine = self.engine(tenant)
        plan = self.store.plan(plan_name)
        if len(requests) == 1:
            epsilon, switches = requests[0]
            releases = [engine.execute(plan, epsilon, **switches)]
        else:
            releases = engine.execute_many(
                [(plan, epsilon, switches) for epsilon, switches in requests]
            )
        return [_release_payload(release) for release in releases]

    def budget(self, tenant):
        engine = self.engine(tenant)
        accountant = engine.accountant
        sync = getattr(accountant, "sync", None)
        if sync is not None:
            sync()
        return {
            "tenant": tenant,
            "model": accountant.name,
            "total_epsilon": accountant.total_epsilon,
            "total_delta": accountant.total_delta,
            "spent_epsilon": accountant.spent_epsilon,
            "spent_delta": accountant.spent_delta,
            "remaining_epsilon": accountant.remaining_epsilon,
        }

    def explain(self, plan_name, epsilon):
        plan = self.store.plan(plan_name)
        return plan.explain(epsilon=epsilon)

    def plan_info(self, plan_name):
        metadata = self.store.metadata(plan_name)
        plan_meta = metadata.get("plan", {})
        workload_meta = metadata.get("workload", {})
        return {
            "name": plan_name,
            "mechanism": plan_meta.get("mechanism_label"),
            "workload_key": plan_meta.get("workload_key"),
            "shape": workload_meta.get("shape"),
            "solver_version": metadata.get("solver_version", 0),
            "requires_delta": metadata.get("delta") is not None,
        }


def worker_main(connection, config, worker_index):
    """Worker process entry point: blocking command loop over the pipe."""
    if config.failpoints:
        from repro.testing.faults import failpoints

        for name, action in config.failpoints.items():
            failpoints.arm(name, action)
    state = _WorkerState(config, worker_index)
    try:
        while True:
            try:
                command = connection.recv()
            except EOFError:  # parent died: nothing left to serve
                break
            op = command[0]
            if op == "shutdown":
                connection.send(("ok", "bye"))
                break
            try:
                if op == "execute":
                    payload = state.execute(command[1], command[2], command[3])
                elif op == "budget":
                    payload = state.budget(command[1])
                elif op == "explain":
                    payload = state.explain(command[1], command[2])
                elif op == "plan_info":
                    payload = state.plan_info(command[1])
                elif op == "ping":
                    payload = {"pid": os.getpid(), "worker": worker_index}
                else:
                    raise ValidationError(f"unknown worker command {op!r}")
                connection.send(("ok", payload))
            except BaseException as exc:  # reported to the parent, never raised raw
                connection.send(("error", type(exc).__name__, str(exc)))
    finally:
        for engine in state.engines.values():
            close = getattr(engine.accountant, "close", None)
            if close is not None:
                close()
        state.store.close()
        connection.close()


class _WorkerHandle:
    def __init__(self, process, connection, index):
        self.process = process
        self.connection = connection
        self.index = index
        self.lock = threading.Lock()

    def request(self, command):
        """One synchronous round-trip (serialized per worker)."""
        with self.lock:
            try:
                self.connection.send(command)
                return self.connection.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise WorkerCrashError(
                    f"worker {self.index} (pid {self.process.pid}) died "
                    f"serving {command[0]!r}"
                ) from exc

    def alive(self):
        return self.process.is_alive()

    def stop(self, timeout=5.0):
        if self.process.is_alive():
            try:
                with self.lock:
                    self.connection.send(("shutdown",))
                    self.connection.recv()
            except (EOFError, BrokenPipeError, OSError):
                pass
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout)
        self.connection.close()


class WorkerPool:
    """Parent-side pool: spawn, dispatch, replace-on-crash, drain.

    ``submit`` checks a worker out of the free queue, runs one request,
    and returns it — callers block only when all workers are busy. A
    crashed worker is not returned to the queue; a fresh replacement is
    spawned in its place (``respawn=False`` disables this, for crash
    drills that count workers).
    """

    def __init__(self, config, workers, respawn=True, failpoints_by_worker=None):
        if int(workers) <= 0:
            raise ValidationError("WorkerPool needs at least one worker")
        self._config = config
        self._context = multiprocessing.get_context("spawn")
        self._respawn = respawn
        self._failpoints_by_worker = dict(failpoints_by_worker or {})
        self._next_index = 0
        self._handles = []
        self._free = None  # created lazily: a plain thread-safe queue
        import queue

        self._free = queue.Queue()
        self._closed = False
        self._lock = threading.Lock()
        for _ in range(int(workers)):
            self._spawn()

    def _spawn(self):
        index = self._next_index
        self._next_index += 1
        config = self._config
        failpoints = self._failpoints_by_worker.get(index)
        if failpoints:
            config = WorkerConfig(
                manifest=config.manifest,
                ledger_root=config.ledger_root,
                total_epsilon=config.total_epsilon,
                total_delta=config.total_delta,
                accountant=config.accountant,
                ledger_suffix=config.ledger_suffix,
                seed=config.seed,
                ledger_retry=config.ledger_retry,
                failpoints=failpoints,
            )
        parent_end, worker_end = self._context.Pipe()
        process = self._context.Process(
            target=worker_main,
            args=(worker_end, config, index),
            name=f"repro-serve-{index}",
            daemon=True,
        )
        process.start()
        worker_end.close()
        handle = _WorkerHandle(process, parent_end, index)
        self._handles.append(handle)
        self._free.put(handle)
        return handle

    @property
    def size(self):
        return sum(1 for handle in self._handles if handle.alive())

    def submit(self, command, timeout=None):
        """Run one command on any free worker; returns the reply tuple —
        ``("ok", payload)`` or ``("error", exception_name, message)`` —
        verbatim, so callers map worker-reported failures onto their own
        error surface. Raises :class:`WorkerCrashError` if the worker dies
        mid-request (its slot is respawned unless ``respawn=False``).
        """
        if self._closed:
            raise ValidationError("WorkerPool is closed")
        import queue as queue_module

        try:
            handle = self._free.get(timeout=timeout)
        except queue_module.Empty as exc:
            raise WorkerCrashError("no free worker within timeout") from exc
        try:
            reply = handle.request(command)
        except WorkerCrashError:
            with self._lock:
                if not self._closed and self._respawn:
                    self._spawn()
            raise
        self._free.put(handle)
        return reply

    def shutdown(self):
        """Graceful drain: every worker finishes its in-flight request,
        receives ``shutdown``, and is joined."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for handle in self._handles:
            handle.stop()
        self._handles = []
