"""Shared-memory plan store: one copy of the release factors per machine.

A serving deployment runs N worker processes, each needing every compiled
plan's arrays — the (r, n) strategy factor ``L``, the (m, r) recombination
factor ``B``, and the workload payload. Loading the ``.plan.npz`` archives
once per worker multiplies the resident set by N and pays the npz
decompression N times. :class:`SharedPlanStore` instead stages every
archive's arrays into **one** ``multiprocessing.shared_memory`` segment in
the parent; workers attach and rebuild their plans through
:func:`repro.io.serialization.plan_from_payload` with **read-only numpy
views** into the segment — zero copies, full integrity verification (the
digest checks run against the view exactly as they would against a disk
load).

The private data vector rides in the same segment under a reserved slot,
paired with a service-wide data-epoch token minted here: every worker
adopts the same (vector, token) pair, so a plan's cached strategy answers
``L x`` are computed once per worker process and shared by all tenants
(see :meth:`repro.engine.query_engine.PrivateQueryEngine.adopt_data`).

Layout: a JSON-able **manifest** (plan metadata dicts plus an array table
of ``name -> (offset, dtype, shape)``) travels to workers by pickle at
spawn; only the bulk bytes live in the segment. Offsets are 64-byte
aligned so views start on cache-line boundaries.
"""

from __future__ import annotations

import json
import uuid
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.validation import as_vector

__all__ = ["SharedPlanStore", "PlanManifest", "stage_plans", "attach_plans"]

_ALIGN = 64

#: Reserved array-table entry holding the service's data vector.
_DATA_SLOT = "__data__"


def _aligned(offset):
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


class PlanManifest:
    """Picklable description of one shared segment's contents.

    ``plans`` maps plan name (the archive's file stem) to ``{"metadata":
    <decoded plan metadata>, "arrays": {array_name: [offset, dtype_str,
    shape]}}``; ``data`` is the array-table entry of the private vector;
    ``data_epoch`` is the service-wide epoch token every worker adopts.
    """

    def __init__(self, segment_name, plans, data, data_epoch):
        self.segment_name = segment_name
        self.plans = plans
        self.data = data
        self.data_epoch = data_epoch

    def plan_names(self):
        return sorted(self.plans)


def _plan_name(path):
    name = Path(path).name
    for suffix in (".plan.npz", ".npz"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def _read_archive(path):
    """Decode one plan archive into (metadata dict, {name: array})."""
    with np.load(path, allow_pickle=False) as archive:
        try:
            metadata = json.loads(bytes(archive["metadata"].tobytes()).decode("utf-8"))
        except KeyError as exc:
            raise ValidationError(f"{path} is not a plan archive: missing {exc}") from exc
        arrays = {name: archive[name] for name in archive.files if name != "metadata"}
    return metadata, arrays


def _is_stale(metadata, ttl_seconds, min_solver_version):
    """The plan cache's eviction gates, applied at staging time: an
    archive whose top-level ``saved_at`` is older than ``ttl_seconds`` or
    whose ``solver_version`` is below ``min_solver_version`` is stale."""
    if min_solver_version is not None:
        if int(metadata.get("solver_version", 0)) < int(min_solver_version):
            return True
    if ttl_seconds is not None:
        saved_at = metadata.get("saved_at")
        if saved_at is None:
            return True
        import time

        if time.time() - float(saved_at) > float(ttl_seconds):
            return True
    return False


def stage_plans(plans_dir, data, ttl_seconds=None, min_solver_version=None):
    """Stage every ``*.plan.npz`` under ``plans_dir`` (non-recursive) plus
    the private ``data`` vector into a fresh shared-memory segment.

    ``ttl_seconds``/``min_solver_version`` apply the plan cache's staleness
    gates at staging time: stale archives are *skipped* (the hot-reload
    eviction decision); staging fails only when nothing fresh remains.

    Returns ``(store, manifest)`` where ``store`` is the parent-side
    :class:`SharedPlanStore` (owns the segment; call :meth:`~SharedPlanStore.unlink`
    on shutdown) and ``manifest`` is the :class:`PlanManifest` to ship to
    workers.
    """
    plans_dir = Path(plans_dir)
    paths = sorted(plans_dir.glob("*.plan.npz"))
    if not paths:
        raise ValidationError(f"no *.plan.npz archives found in {plans_dir}")
    data = as_vector(data, "data").astype(np.float64, copy=False)

    staged = []  # (plan_name, metadata, [(array_name, array), ...])
    names_seen = set()
    offset = 0
    table = {}  # (plan_name, array_name) -> (offset, dtype, shape)
    for path in paths:
        name = _plan_name(path)
        if name in names_seen:
            raise ValidationError(f"duplicate plan name {name!r} in {plans_dir}")
        names_seen.add(name)
        metadata, arrays = _read_archive(path)
        if _is_stale(metadata, ttl_seconds, min_solver_version):
            continue
        entries = []
        for array_name in sorted(arrays):
            array = np.ascontiguousarray(arrays[array_name])
            offset = _aligned(offset)
            table[(name, array_name)] = (offset, str(array.dtype), array.shape)
            offset += array.nbytes
            entries.append((array_name, array))
        staged.append((name, metadata, entries))
    if not staged:
        raise ValidationError(
            f"every plan archive in {plans_dir} is stale under "
            f"ttl_seconds={ttl_seconds} / min_solver_version={min_solver_version}"
        )
    offset = _aligned(offset)
    data_entry = (offset, str(data.dtype), data.shape)
    offset += data.nbytes

    segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    try:
        for name, _, entries in staged:
            for array_name, array in entries:
                start, dtype, shape = table[(name, array_name)]
                view = np.ndarray(shape, dtype=dtype, buffer=segment.buf, offset=start)
                view[...] = array
        start, dtype, shape = data_entry
        view = np.ndarray(shape, dtype=dtype, buffer=segment.buf, offset=start)
        view[...] = data
    except BaseException:
        segment.close()
        segment.unlink()
        raise

    manifest = PlanManifest(
        segment_name=segment.name,
        plans={
            name: {
                "metadata": metadata,
                "arrays": {
                    array_name: list(table[(name, array_name)])
                    for array_name, _ in entries
                },
            }
            for name, metadata, entries in staged
        },
        data=list(data_entry),
        data_epoch=f"svc-{uuid.uuid4().hex[:12]}",
    )
    return SharedPlanStore(segment, manifest, owner=True), manifest


def attach_plans(manifest):
    """Worker-side attach: open the manifest's segment read-only.

    Ownership stays with the parent-side store (the creator), which is
    the only one that unlinks. The worker's attach re-registers the name
    with the process tree's shared ``resource_tracker`` — a set-add
    no-op, since the parent registered it at create — so no unregister
    is needed here, and the tracker still unlinks the segment if the
    whole tree dies without a clean shutdown.
    """
    segment = shared_memory.SharedMemory(name=manifest.segment_name)
    return SharedPlanStore(segment, manifest, owner=False)


class SharedPlanStore:
    """A view over one staged segment: lazily rebuilt, cached plans.

    Workers call :meth:`plan` to get the :class:`repro.engine.plan.ExecutionPlan`
    for a name — rebuilt once per process through the full
    :func:`plan_from_payload` verification path, then cached, so every
    tenant engine in the worker executes the *same* plan object and shares
    its compiled ``L x`` cache. :meth:`data` returns the read-only private
    vector view plus the service-wide epoch token.
    """

    def __init__(self, segment, manifest, owner):
        self._segment = segment
        self._manifest = manifest
        self._owner = owner
        self._plans = {}

    @property
    def manifest(self):
        return self._manifest

    def plan_names(self):
        return self._manifest.plan_names()

    def _view(self, entry):
        offset, dtype, shape = entry
        view = np.ndarray(tuple(shape), dtype=dtype, buffer=self._segment.buf, offset=offset)
        view.flags.writeable = False
        return view

    def plan(self, name):
        """The (cached) ExecutionPlan for ``name``; raises
        :class:`ValidationError` for unknown names."""
        cached = self._plans.get(name)
        if cached is not None:
            return cached
        spec = self._manifest.plans.get(name)
        if spec is None:
            raise ValidationError(
                f"unknown plan {name!r}; available: {self.plan_names()}"
            )
        from repro.io.serialization import plan_from_payload

        arrays = {
            array_name: self._view(entry)
            for array_name, entry in spec["arrays"].items()
        }
        plan = plan_from_payload(spec["metadata"], arrays)
        self._plans[name] = plan
        return plan

    def metadata(self, name):
        """The archive metadata dict for ``name`` (no rebuild)."""
        spec = self._manifest.plans.get(name)
        if spec is None:
            raise ValidationError(
                f"unknown plan {name!r}; available: {self.plan_names()}"
            )
        return spec["metadata"]

    def data(self):
        """(read-only data vector view, service data-epoch token)."""
        return self._view(self._manifest.data), self._manifest.data_epoch

    # -- lifecycle ------------------------------------------------------ #
    def close(self):
        """Detach from the segment (views become invalid)."""
        self._plans = {}
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - lingering views
            pass

    def unlink(self):
        """Destroy the segment (owner only; call after workers exited)."""
        self.close()
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.unlink() if self._owner else self.close()
