"""Multi-process private-query serving tier.

The deployment shape of the plan/execute engine: N worker processes
share one read-only copy of every compiled plan's release factors
(:mod:`~repro.serving.shared_plans`, ``multiprocessing.shared_memory``),
each worker runs one :class:`~repro.engine.query_engine.PrivateQueryEngine`
per tenant backed by that tenant's durable budget ledger, supervised with
heartbeats, per-request deadlines, restart budgets and quarantine
(:mod:`~repro.serving.worker`), a stdlib-only asyncio JSON-lines front-end
accepts ``plan``/``execute``/``explain``/``budget``/``ping``/``health``/
``reload`` requests with deadline- and queue-based load shedding
(:mod:`~repro.serving.server`), and a micro-batching coalescer turns
concurrent same-``(tenant, plan)`` requests into atomic ``execute_many``
batches (:mod:`~repro.serving.coalescer`). Plans hot-reload from disk via
the ``reload`` op or ``--watch-plans``.

Start one from the CLI::

    repro serve --plans plans/ --workers 4 --ledger-root ledgers/ \\
        --data counts.npy --budget 2.0

or in-process (tests, notebooks)::

    from repro.serving import PlanService, ServiceConfig
    service = PlanService(ServiceConfig(plans_dir, ledger_root, data, 2.0))
"""

from repro.serving.client import AsyncServiceClient, ServiceClient, ServiceError
from repro.serving.coalescer import Coalescer, RemoteExecutionError
from repro.serving.server import PlanService, ServiceConfig, serve
from repro.serving.shared_plans import SharedPlanStore, attach_plans, stage_plans
from repro.serving.worker import (
    WorkerBusyError,
    WorkerConfig,
    WorkerCrashError,
    WorkerPool,
    WorkerTimeoutError,
)

__all__ = [
    "AsyncServiceClient",
    "Coalescer",
    "PlanService",
    "RemoteExecutionError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SharedPlanStore",
    "WorkerBusyError",
    "WorkerConfig",
    "WorkerCrashError",
    "WorkerPool",
    "WorkerTimeoutError",
    "attach_plans",
    "serve",
    "stage_plans",
]
