"""Micro-batching coalescer: concurrent requests become one worker batch.

The engine's batched release path (``execute_many``) amortizes the
per-release noise draw, GEMM and ledger round-trip — but only if someone
actually forms batches. Under a concurrent front-end, requests for the
same ``(tenant, plan)`` arrive interleaved across connections;
:class:`Coalescer` holds each one briefly in a per-key bucket and flushes
the bucket as a single worker command when it reaches ``max_batch``
requests or its oldest request has waited ``max_wait`` seconds, whichever
comes first.

Semantics preserved from the unbatched path:

* **Atomic accounting** — the worker charges the whole bucket through
  ``spend_many`` (all-or-nothing). If the *batch* is refused for budget
  (the sum exceeds the remaining budget) the coalescer degrades to
  **sequential admission**: each request is retried individually, so the
  requests that do fit are served and only the ones that do not are
  refused — exactly what unbatched arrival order would have produced.
* **Ordering** — results resolve onto the originating futures in request
  order within a bucket; a bucket's requests never reorder.
* **Flush on shutdown** — :meth:`drain` flushes every pending bucket and
  awaits in-flight worker calls, so a graceful shutdown serves (and
  charges) everything it accepted rather than dropping queued requests.
* **Deadlines** — a request may carry a monotonic ``deadline``; a member
  whose deadline passed while it waited in the bucket (or queued for a
  sequential retry) is shed *before* dispatch — it is never charged — and
  fails with ``deadline_exceeded``. A batch never dispatches expired work.

Exactly-once additions:

* **In-window duplicate folding** — two submissions carrying the same
  idempotency ``key`` while one bucket is open *fold*: one request is
  dispatched (one spend, one noise draw) and the single result resolves
  every folded future — two replies, byte-identical. Duplicates that miss
  the window dedup at the ledger instead (one charge either way).
* **Keyed dispatch is crash-retryable** — a batch in which every request
  carries a key is submitted with ``retry_delivered=True``: a worker
  SIGKILLed after delivery is retried once on another worker, which
  either replays the committed results from the ledger's dedup index or
  charges the still-free keys exactly once.

Fairness addition:

* **Round-robin flush order** — flushed buckets enter a ready queue and
  dispatch round-robin across ``(tenant, plan)`` keys (least recently
  dispatched key first) under a ``max_concurrent`` batch cap, so one hot
  tenant saturating ``max_batch`` cannot monopolise the worker pool while
  a quiet tenant's single request starves in the queue.
"""

from __future__ import annotations

import asyncio
import functools
import time
from collections import deque

from repro.exceptions import ReproError
from repro.serving.worker import WorkerCrashError

__all__ = ["Coalescer", "RemoteExecutionError"]


class RemoteExecutionError(ReproError):
    """A worker reported a failure for this request; ``kind`` is the
    worker-side exception class name (e.g. ``"PrivacyBudgetError"``) or a
    structured shedding kind (``"overloaded"``/``"deadline_exceeded"``).
    ``retry_after`` is an optional seconds hint for when retrying might
    succeed — it rides the wire reply so clients can back off."""

    def __init__(self, kind, message, retry_after=None):
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message
        self.retry_after = retry_after


class _Entry:
    """One dispatched request position in a bucket — possibly fanned out
    to several waiters when same-key submissions folded into it."""

    __slots__ = ("request", "futures", "deadline")

    def __init__(self, request, future, deadline):
        self.request = request  # (epsilon, switches, key)
        self.futures = [future]
        self.deadline = deadline  # monotonic timestamp or None

    def fold(self, future, deadline):
        """Attach another waiter for the same idempotency key. The entry
        keeps the *more permissive* deadline: the single dispatch serves
        every waiter, so it sheds only when all of them would."""
        self.futures.append(future)
        if self.deadline is not None:
            self.deadline = (
                None if deadline is None else max(self.deadline, deadline)
            )

    def resolve(self, payload):
        for future in self.futures:
            if not future.done():
                future.set_result(payload)

    def fail(self, exc):
        for future in self.futures:
            if not future.done():
                future.set_exception(exc)

    @property
    def done(self):
        return all(future.done() for future in self.futures)


class _Bucket:
    __slots__ = ("entries", "by_key", "timer")

    def __init__(self):
        self.entries = []
        self.by_key = {}  # idempotency key -> _Entry (in-window folding)
        self.timer = None


class Coalescer:
    """Groups ``submit`` calls by ``(tenant, plan)`` into worker batches.

    ``pool_submit`` is a callable ``(command) -> reply tuple`` executed in
    a thread (the worker pipe round-trip blocks); the coalescer is
    otherwise pure asyncio and must be used from one event loop.
    ``max_concurrent`` caps how many flushed batches run at once (``None``
    = unlimited, the pre-fairness behaviour); flushed buckets beyond the
    cap queue and dispatch round-robin across ``(tenant, plan)`` keys.
    """

    def __init__(self, pool, max_batch=32, max_wait=0.002, executor=None,
                 on_shed=None, max_concurrent=None):
        if int(max_batch) <= 0:
            raise ValueError("max_batch must be positive")
        if float(max_wait) < 0:
            raise ValueError("max_wait must be non-negative")
        if max_concurrent is not None and int(max_concurrent) <= 0:
            raise ValueError("max_concurrent must be positive (or None)")
        self._pool = pool
        #: Thread pool the blocking pipe round-trips run on. ``None`` uses
        #: the event loop's default executor, whose thread cap
        #: (``cpu_count + 4``) can sit *below* the worker count — the
        #: service passes one sized to its pool instead.
        self._executor = executor
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self._max_concurrent = (
            None if max_concurrent is None else int(max_concurrent)
        )
        self._buckets = {}
        self._ready = deque()  # flushed (key, bucket) awaiting dispatch
        self._last_dispatch = {}  # key -> seq of its most recent dispatch
        self._dispatch_seq = 0
        self._inflight = set()
        self._draining = False
        self._on_shed = on_shed  # callback(kind) for the service's counters
        #: Counters for the benchmark/ops surface.
        self.batches_flushed = 0
        self.requests_coalesced = 0
        self.sequential_retries = 0
        self.shed_expired = 0
        self.duplicates_folded = 0

    # -- submission ----------------------------------------------------- #
    async def submit(self, tenant, plan_name, epsilon, switches=None,
                     deadline=None, key=None):
        """Queue one release request; resolves to the release payload dict.
        ``deadline`` (monotonic seconds) sheds the request instead of
        dispatching it if it is still queued when the deadline passes.
        ``key`` is an optional idempotency key: a second submission with
        the same key while the bucket is still open folds onto the first —
        one dispatched spend, every waiter resolved with the same payload.
        """
        if self._draining:
            raise RemoteExecutionError("ServiceUnavailable", "server is draining")
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        bucket_key = (tenant, plan_name)
        bucket = self._buckets.get(bucket_key)
        if bucket is None:
            bucket = _Bucket()
            self._buckets[bucket_key] = bucket
        deadline = None if deadline is None else float(deadline)
        if key is not None and key in bucket.by_key:
            self.duplicates_folded += 1
            bucket.by_key[key].fold(future, deadline)
            return await future
        entry = _Entry((float(epsilon), dict(switches or {}), key), future, deadline)
        bucket.entries.append(entry)
        if key is not None:
            bucket.by_key[key] = entry
        if len(bucket.entries) >= self.max_batch:
            self._flush(bucket_key)
        elif bucket.timer is None:
            bucket.timer = loop.call_later(self.max_wait, self._flush, bucket_key)
        return await future

    def _shed_expired(self, entries):
        """Fail every expired entry pre-dispatch; returns the live ones."""
        now = time.monotonic()
        live = []
        for entry in entries:
            if entry.deadline is not None and entry.deadline <= now:
                self.shed_expired += 1
                if self._on_shed is not None:
                    self._on_shed("deadline_exceeded")
                entry.fail(RemoteExecutionError(
                    "deadline_exceeded",
                    "deadline expired while the request was queued",
                    retry_after=self.max_wait,
                ))
            else:
                live.append(entry)
        return live

    # -- flushing -------------------------------------------------------- #
    def _flush(self, key):
        bucket = self._buckets.pop(key, None)
        if bucket is None:
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        self._ready.append((key, bucket))
        self._pump()

    def _pump(self):
        """Dispatch ready buckets round-robin across keys, up to the
        concurrency cap: among everything ready, the key dispatched
        longest ago (never-dispatched first, arrival order on ties) goes
        next — a hot tenant refilling its bucket every window cannot
        starve a quiet tenant's single queued request."""
        while self._ready and (
            self._max_concurrent is None
            or len(self._inflight) < self._max_concurrent
        ):
            index = min(
                range(len(self._ready)),
                key=lambda i: self._last_dispatch.get(self._ready[i][0], -1),
            )
            key, bucket = self._ready[index]
            del self._ready[index]
            self._dispatch_seq += 1
            self._last_dispatch[key] = self._dispatch_seq
            task = asyncio.ensure_future(self._run_batch(key, bucket))
            self._inflight.add(task)
            task.add_done_callback(self._batch_done)

    def _batch_done(self, task):
        self._inflight.discard(task)
        self._pump()

    async def _execute(self, tenant, plan_name, requests):
        loop = asyncio.get_running_loop()
        # A batch in which EVERY request carries an idempotency key is
        # safe to retry even after a post-delivery worker crash: the
        # ledger's dedup index replays any committed spend.
        retryable = all(request[2] is not None for request in requests)
        return await loop.run_in_executor(
            self._executor,
            functools.partial(
                self._pool.submit, ("execute", tenant, plan_name, requests),
                retry_delivered=retryable,
            ),
        )

    async def _run_batch(self, key, bucket):
        tenant, plan_name = key
        live = self._shed_expired(bucket.entries)
        if not live:
            return  # the whole bucket expired while it waited
        requests = [entry.request for entry in live]
        self.batches_flushed += 1
        self.requests_coalesced += len(requests)
        try:
            reply = await self._execute(tenant, plan_name, requests)
        except WorkerCrashError as exc:
            for entry in live:
                entry.fail(RemoteExecutionError(type(exc).__name__, str(exc)))
            return
        except BaseException as exc:  # pragma: no cover - defensive
            for entry in live:
                entry.fail(exc)
            return
        if reply[0] == "ok":
            for entry, payload in zip(live, reply[1]):
                entry.resolve(payload)
            return
        kind, message = reply[1], reply[2]
        if kind == "PrivacyBudgetError" and len(requests) > 1:
            # The batch total did not fit, but individual requests might:
            # degrade to sequential admission, preserving request order.
            await self._sequential(key, live)
            return
        for entry in live:
            entry.fail(RemoteExecutionError(kind, message))

    async def _sequential(self, key, entries):
        tenant, plan_name = key
        for entry in entries:
            if entry.done:
                continue
            if not self._shed_expired([entry]):
                continue  # expired while earlier members of the batch retried
            self.sequential_retries += 1
            try:
                reply = await self._execute(tenant, plan_name, [entry.request])
            except WorkerCrashError as exc:
                entry.fail(RemoteExecutionError(type(exc).__name__, str(exc)))
                continue
            if reply[0] == "ok":
                entry.resolve(reply[1][0])
            else:
                entry.fail(RemoteExecutionError(reply[1], reply[2]))

    # -- shutdown -------------------------------------------------------- #
    async def drain(self):
        """Flush everything pending, dispatch the ready queue to empty,
        and await all in-flight batches."""
        self._draining = True
        for key in list(self._buckets):
            self._flush(key)
        while self._ready or self._inflight:
            self._pump()
            if self._inflight:
                await asyncio.gather(*list(self._inflight), return_exceptions=True)
