"""Micro-batching coalescer: concurrent requests become one worker batch.

The engine's batched release path (``execute_many``) amortizes the
per-release noise draw, GEMM and ledger round-trip — but only if someone
actually forms batches. Under a concurrent front-end, requests for the
same ``(tenant, plan)`` arrive interleaved across connections;
:class:`Coalescer` holds each one briefly in a per-key bucket and flushes
the bucket as a single worker command when it reaches ``max_batch``
requests or its oldest request has waited ``max_wait`` seconds, whichever
comes first.

Semantics preserved from the unbatched path:

* **Atomic accounting** — the worker charges the whole bucket through
  ``spend_many`` (all-or-nothing). If the *batch* is refused for budget
  (the sum exceeds the remaining budget) the coalescer degrades to
  **sequential admission**: each request is retried individually, so the
  requests that do fit are served and only the ones that do not are
  refused — exactly what unbatched arrival order would have produced.
* **Ordering** — results resolve onto the originating futures in request
  order within a bucket; a bucket's requests never reorder.
* **Flush on shutdown** — :meth:`drain` flushes every pending bucket and
  awaits in-flight worker calls, so a graceful shutdown serves (and
  charges) everything it accepted rather than dropping queued requests.
* **Deadlines** — a request may carry a monotonic ``deadline``; a member
  whose deadline passed while it waited in the bucket (or queued for a
  sequential retry) is shed *before* dispatch — it is never charged — and
  fails with ``deadline_exceeded``. A batch never dispatches expired work.
"""

from __future__ import annotations

import asyncio
import functools
import time

from repro.exceptions import ReproError
from repro.serving.worker import WorkerCrashError

__all__ = ["Coalescer", "RemoteExecutionError"]


class RemoteExecutionError(ReproError):
    """A worker reported a failure for this request; ``kind`` is the
    worker-side exception class name (e.g. ``"PrivacyBudgetError"``) or a
    structured shedding kind (``"overloaded"``/``"deadline_exceeded"``).
    ``retry_after`` is an optional seconds hint for when retrying might
    succeed — it rides the wire reply so clients can back off."""

    def __init__(self, kind, message, retry_after=None):
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message
        self.retry_after = retry_after


class _Bucket:
    __slots__ = ("requests", "futures", "deadlines", "timer")

    def __init__(self):
        self.requests = []  # (epsilon, switches)
        self.futures = []
        self.deadlines = []  # monotonic timestamps (or None), one per request
        self.timer = None


class Coalescer:
    """Groups ``submit`` calls by ``(tenant, plan)`` into worker batches.

    ``pool_submit`` is a callable ``(command) -> reply tuple`` executed in
    a thread (the worker pipe round-trip blocks); the coalescer is
    otherwise pure asyncio and must be used from one event loop.
    """

    def __init__(self, pool, max_batch=32, max_wait=0.002, executor=None,
                 on_shed=None):
        if int(max_batch) <= 0:
            raise ValueError("max_batch must be positive")
        if float(max_wait) < 0:
            raise ValueError("max_wait must be non-negative")
        self._pool = pool
        #: Thread pool the blocking pipe round-trips run on. ``None`` uses
        #: the event loop's default executor, whose thread cap
        #: (``cpu_count + 4``) can sit *below* the worker count — the
        #: service passes one sized to its pool instead.
        self._executor = executor
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self._buckets = {}
        self._inflight = set()
        self._draining = False
        self._on_shed = on_shed  # callback(kind) for the service's counters
        #: Counters for the benchmark/ops surface.
        self.batches_flushed = 0
        self.requests_coalesced = 0
        self.sequential_retries = 0
        self.shed_expired = 0

    # -- submission ----------------------------------------------------- #
    async def submit(self, tenant, plan_name, epsilon, switches=None,
                     deadline=None):
        """Queue one release request; resolves to the release payload dict.
        ``deadline`` (monotonic seconds) sheds the request instead of
        dispatching it if it is still queued when the deadline passes."""
        if self._draining:
            raise RemoteExecutionError("ServiceUnavailable", "server is draining")
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        key = (tenant, plan_name)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = _Bucket()
            self._buckets[key] = bucket
        bucket.requests.append((float(epsilon), dict(switches or {})))
        bucket.futures.append(future)
        bucket.deadlines.append(None if deadline is None else float(deadline))
        if len(bucket.requests) >= self.max_batch:
            self._flush(key)
        elif bucket.timer is None:
            bucket.timer = loop.call_later(self.max_wait, self._flush, key)
        return await future

    def _shed_expired(self, requests, futures, deadlines):
        """Fail every expired member pre-dispatch; returns the live ones."""
        now = time.monotonic()
        live = []
        for request, future, deadline in zip(requests, futures, deadlines):
            if deadline is not None and deadline <= now:
                self.shed_expired += 1
                if self._on_shed is not None:
                    self._on_shed("deadline_exceeded")
                if not future.done():
                    future.set_exception(RemoteExecutionError(
                        "deadline_exceeded",
                        "deadline expired while the request was queued",
                        retry_after=self.max_wait,
                    ))
            else:
                live.append((request, future, deadline))
        return live

    # -- flushing -------------------------------------------------------- #
    def _flush(self, key):
        bucket = self._buckets.pop(key, None)
        if bucket is None:
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        task = asyncio.ensure_future(self._run_batch(key, bucket))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _execute(self, tenant, plan_name, requests):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor,
            functools.partial(
                self._pool.submit, ("execute", tenant, plan_name, requests)
            ),
        )

    async def _run_batch(self, key, bucket):
        tenant, plan_name = key
        live = self._shed_expired(bucket.requests, bucket.futures, bucket.deadlines)
        if not live:
            return  # the whole bucket expired while it waited
        requests = [entry[0] for entry in live]
        futures = [entry[1] for entry in live]
        self.batches_flushed += 1
        self.requests_coalesced += len(requests)
        try:
            reply = await self._execute(tenant, plan_name, requests)
        except WorkerCrashError as exc:
            for future in futures:
                if not future.done():
                    future.set_exception(
                        RemoteExecutionError(type(exc).__name__, str(exc))
                    )
            return
        except BaseException as exc:  # pragma: no cover - defensive
            for future in futures:
                if not future.done():
                    future.set_exception(exc)
            return
        if reply[0] == "ok":
            for future, payload in zip(futures, reply[1]):
                if not future.done():
                    future.set_result(payload)
            return
        kind, message = reply[1], reply[2]
        if kind == "PrivacyBudgetError" and len(requests) > 1:
            # The batch total did not fit, but individual requests might:
            # degrade to sequential admission, preserving request order.
            await self._sequential(key, live)
            return
        for future in futures:
            if not future.done():
                future.set_exception(RemoteExecutionError(kind, message))

    async def _sequential(self, key, members):
        tenant, plan_name = key
        for (epsilon, switches), future, deadline in members:
            if future.done():
                continue
            if not self._shed_expired([(epsilon, switches)], [future], [deadline]):
                continue  # expired while earlier members of the batch retried
            self.sequential_retries += 1
            try:
                reply = await self._execute(tenant, plan_name, [(epsilon, switches)])
            except WorkerCrashError as exc:
                future.set_exception(RemoteExecutionError(type(exc).__name__, str(exc)))
                continue
            if reply[0] == "ok":
                future.set_result(reply[1][0])
            else:
                future.set_exception(RemoteExecutionError(reply[1], reply[2]))

    # -- shutdown -------------------------------------------------------- #
    async def drain(self):
        """Flush everything pending and await all in-flight batches."""
        self._draining = True
        for key in list(self._buckets):
            self._flush(key)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
