"""Asyncio JSON-lines front-end for the private-query serving tier.

Stdlib-only TCP protocol: one JSON object per line in each direction.
Requests carry an ``op`` plus op-specific fields; responses echo the
request's optional ``id`` and are ``{"ok": true, ...}`` or ``{"ok": false,
"error": <kind>, "message": ...}``. Ops:

* ``{"op": "plan"}`` — list the served plans with their metadata.
* ``{"op": "execute", "tenant": t, "plan": name, "epsilon": e,
  "non_negative"/"integral"/"consistent": bool?}`` — one budgeted release.
  Batched through the :class:`~repro.serving.coalescer.Coalescer` unless
  the service was built with ``max_batch=1``.
* ``{"op": "explain", "plan": name, "epsilon": e?}`` — the plan's
  optimizer report (no budget consumed).
* ``{"op": "budget", "tenant": t}`` — the tenant's ledger state.
* ``{"op": "ping"}`` — liveness.

Tenants name ledger files on disk, so they are restricted to
``[A-Za-z0-9_.-]``, max 64 chars, not starting with a dot — everything
else is rejected before it reaches a path join.

:class:`PlanService` owns the moving parts (shared segment, worker pool,
coalescer, TCP server) and tears them down in reverse order on
:meth:`~PlanService.shutdown`: stop accepting, drain the coalescer (every
accepted request is served and charged), stop the workers, unlink the
segment.
"""

from __future__ import annotations

import asyncio
import functools
import json
import re
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.exceptions import ValidationError
from repro.serving.coalescer import Coalescer, RemoteExecutionError
from repro.serving.shared_plans import stage_plans
from repro.serving.worker import WorkerConfig, WorkerCrashError, WorkerPool

__all__ = ["ServiceConfig", "PlanService", "serve"]

_TENANT_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.-]{0,63}$")

#: Post-processing switches accepted on the wire.
_SWITCHES = ("non_negative", "integral", "consistent")


class ServiceConfig:
    """Everything a :class:`PlanService` needs, in one picklable bag.

    ``data`` is the private unit-count vector (array-like) the service
    answers over; ``total_epsilon``/``total_delta`` the per-tenant budget;
    ``max_batch=1`` disables coalescing (every request is its own worker
    round-trip); ``max_wait`` is the coalescing window in seconds.
    """

    def __init__(self, plans_dir, ledger_root, data, total_epsilon,
                 total_delta=0.0, workers=2, accountant=None,
                 ledger_suffix=".journal", seed=None, host="127.0.0.1",
                 port=0, max_batch=32, max_wait=0.002):
        self.plans_dir = str(plans_dir)
        self.ledger_root = str(ledger_root)
        self.data = data
        self.total_epsilon = float(total_epsilon)
        self.total_delta = float(total_delta)
        self.workers = int(workers)
        self.accountant = accountant
        self.ledger_suffix = ledger_suffix
        self.seed = seed
        self.host = host
        self.port = int(port)
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)


def _check_tenant(tenant):
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise ValidationError(
            "tenant must match [A-Za-z0-9_][A-Za-z0-9_.-]{0,63} "
            f"(it names a ledger file); got {tenant!r}"
        )
    return tenant


class PlanService:
    """The serving tier: shared plans + worker pool + coalescer + TCP."""

    def __init__(self, config, respawn=True, failpoints_by_worker=None):
        self.config = config
        Path(config.ledger_root).mkdir(parents=True, exist_ok=True)
        self._store, self._manifest = stage_plans(config.plans_dir, config.data)
        worker_config = WorkerConfig(
            manifest=self._manifest,
            ledger_root=config.ledger_root,
            total_epsilon=config.total_epsilon,
            total_delta=config.total_delta,
            accountant=config.accountant,
            ledger_suffix=config.ledger_suffix,
            seed=config.seed,
        )
        self.pool = WorkerPool(
            worker_config,
            workers=config.workers,
            respawn=respawn,
            failpoints_by_worker=failpoints_by_worker,
        )
        # Blocking pipe round-trips run here, NOT on the loop's default
        # executor: its ``cpu_count + 4`` thread cap can sit below the
        # worker count, which would idle workers under load. Sized past
        # the pool so budget/explain calls never queue behind a full
        # complement of in-flight executes.
        self._executor = ThreadPoolExecutor(
            max_workers=config.workers + 4, thread_name_prefix="repro-serve"
        )
        self.coalescer = Coalescer(
            self.pool,
            max_batch=config.max_batch,
            max_wait=config.max_wait,
            executor=self._executor,
        )
        self._server = None
        self._plan_infos = None
        self._closed = False

    # -- service operations (also the in-process API the tests use) ---- #
    def plan_names(self):
        return self._store.plan_names()

    async def _in_thread(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, functools.partial(fn, *args))

    async def plan_list(self):
        if self._plan_infos is None:
            infos = []
            for name in self.plan_names():
                reply = await self._in_thread(self.pool.submit, ("plan_info", name))
                if reply[0] != "ok":
                    raise RemoteExecutionError(reply[1], reply[2])
                infos.append(reply[1])
            self._plan_infos = infos
        return self._plan_infos

    async def execute(self, tenant, plan_name, epsilon, switches=None):
        _check_tenant(tenant)
        if plan_name not in self._manifest.plans:
            raise ValidationError(
                f"unknown plan {plan_name!r}; available: {self.plan_names()}"
            )
        if self.config.max_batch > 1:
            return await self.coalescer.submit(tenant, plan_name, epsilon, switches)
        reply = await self._in_thread(
            self.pool.submit,
            ("execute", tenant, plan_name, [(float(epsilon), dict(switches or {}))]),
        )
        if reply[0] != "ok":
            raise RemoteExecutionError(reply[1], reply[2])
        return reply[1][0]

    async def budget(self, tenant):
        _check_tenant(tenant)
        reply = await self._in_thread(self.pool.submit, ("budget", tenant))
        if reply[0] != "ok":
            raise RemoteExecutionError(reply[1], reply[2])
        return reply[1]

    async def explain(self, plan_name, epsilon=None):
        if plan_name not in self._manifest.plans:
            raise ValidationError(
                f"unknown plan {plan_name!r}; available: {self.plan_names()}"
            )
        reply = await self._in_thread(self.pool.submit, ("explain", plan_name, epsilon))
        if reply[0] != "ok":
            raise RemoteExecutionError(reply[1], reply[2])
        return reply[1]

    # -- TCP protocol --------------------------------------------------- #
    async def _handle_request(self, request):
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True, "workers": self.pool.size}
        if op == "plan":
            return {"ok": True, "plans": await self.plan_list()}
        if op == "execute":
            switches = {
                name: bool(request[name]) for name in _SWITCHES if name in request
            }
            epsilon = request.get("epsilon")
            if not isinstance(epsilon, (int, float)) or isinstance(epsilon, bool):
                raise ValidationError(f"epsilon must be a number; got {epsilon!r}")
            release = await self.execute(
                request.get("tenant"), request.get("plan"), epsilon, switches
            )
            return {"ok": True, "release": release}
        if op == "budget":
            return {"ok": True, "budget": await self.budget(request.get("tenant"))}
        if op == "explain":
            epsilon = request.get("epsilon")
            return {
                "ok": True,
                "explain": await self.explain(request.get("plan"), epsilon),
            }
        raise ValidationError(
            f"unknown op {op!r}; choose plan/execute/explain/budget/ping"
        )

    async def _respond(self, line, writer, write_lock):
        """Parse, dispatch and answer one request line."""
        request_id = None
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValidationError("request must be a JSON object")
            request_id = request.get("id")
            response = await self._handle_request(request)
        except RemoteExecutionError as exc:
            response = {"ok": False, "error": exc.kind, "message": exc.message}
        except (ValidationError, ValueError) as exc:
            response = {"ok": False, "error": type(exc).__name__, "message": str(exc)}
        except WorkerCrashError as exc:
            response = {"ok": False, "error": "WorkerCrashError", "message": str(exc)}
        if request_id is not None:
            response["id"] = request_id
        async with write_lock:
            try:
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):  # client went away
                pass

    async def _handle_connection(self, reader, writer):
        # Requests on one connection are dispatched CONCURRENTLY — that is
        # what lets the coalescer see simultaneous requests and form
        # batches (a serial read-dispatch-reply loop would defeat it).
        # Responses are written as they complete, so pipelined clients
        # must correlate by "id" (AsyncServiceClient does); a strict
        # request-reply client like ServiceClient is unaffected.
        write_lock = asyncio.Lock()
        tasks = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                task = asyncio.ensure_future(self._respond(line, writer, write_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*list(tasks), return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    # -- lifecycle ------------------------------------------------------- #
    async def start(self):
        """Bind the TCP server; returns (host, port) actually bound."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        return self.address

    @property
    def address(self):
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def serve_forever(self):
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self):
        """Graceful drain: stop accepting, serve everything accepted,
        stop the workers, release the shared segment."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.coalescer.drain()
        await self._in_thread(self.pool.shutdown)
        self._executor.shutdown(wait=True)
        self._store.unlink()


async def _serve_async(config, ready=None):
    service = PlanService(config)
    host, port = await service.start()
    if ready is not None:
        ready(service, host, port)
    try:
        await service.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await service.shutdown()
    return service


def serve(config, ready=None):
    """Blocking entry point (the CLI's ``serve`` target): run the service
    until interrupted, then drain gracefully. ``ready(service, host,
    port)`` is called once the socket is bound."""
    try:
        asyncio.run(_serve_async(config, ready=ready))
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass


def load_data_vector(path):
    """Load the service's private data vector from ``.npy`` (or a
    whitespace/comma text file) — the CLI's ``--data`` loader."""
    path = Path(path)
    if path.suffix == ".npy":
        return np.load(path, allow_pickle=False)
    return np.loadtxt(path, delimiter="," if path.suffix == ".csv" else None)
