"""Asyncio JSON-lines front-end for the private-query serving tier.

Stdlib-only TCP protocol: one JSON object per line in each direction.
Requests carry an ``op`` plus op-specific fields; responses echo the
request's optional ``id`` and are ``{"ok": true, ...}`` or ``{"ok": false,
"error": <kind>, "message": ...}``. Ops:

* ``{"op": "plan"}`` — list the served plans with their metadata.
* ``{"op": "execute", "tenant": t, "plan": name, "epsilon": e,
  "key": str?, "non_negative"/"integral"/"consistent": bool?}`` — one
  budgeted release. Batched through the
  :class:`~repro.serving.coalescer.Coalescer` unless the service was
  built with ``max_batch=1``. ``key`` is an optional idempotency key:
  repeating it — on a retry, another connection, or after a full restart
  — returns the original noised release with zero additional budget
  charge (the ledger journals results by key). The dedup marker itself
  is stripped before the wire so a replayed reply is byte-identical to
  the original; dedup hits are counted in ``health`` instead.
* ``{"op": "explain", "plan": name, "epsilon": e?}`` — the plan's
  optimizer report (no budget consumed).
* ``{"op": "budget", "tenant": t}`` — the tenant's ledger state.
* ``{"op": "ping"}`` — liveness.
* ``{"op": "health", "ledgers": bool?}`` — supervision snapshot: per-slot
  worker liveness/restarts/quarantine, queue depth, shed counters,
  coalescer stats, plan generation; ``"ledgers": true`` adds a read-side
  probe of every tenant ledger (no locks taken, no budget consumed).
* ``{"op": "reload"}`` — hot plan reload: re-stage the plans directory
  into a fresh shared segment and swap the workers over
  generation-by-generation without dropping in-flight requests.

An ``execute`` may carry ``"deadline_ms"``: a per-request time budget. A
request that is still queued when its deadline passes — or that arrives
while ``max_queue`` executes are already in flight — is **shed** with a
structured ``deadline_exceeded``/``overloaded`` error carrying a
``retry_after`` hint (seconds) instead of degrading everyone's latency.
Shed requests are never charged.

Tenants name ledger files on disk, so they are restricted to
``[A-Za-z0-9_.-]``, max 64 chars, not starting with a dot — everything
else is rejected before it reaches a path join.

:class:`PlanService` owns the moving parts (shared segment, worker pool,
coalescer, TCP server) and tears them down in reverse order on
:meth:`~PlanService.shutdown`: stop accepting, drain the coalescer (every
accepted request is served and charged), stop the workers, unlink the
segment.
"""

from __future__ import annotations

import asyncio
import functools
import json
import re
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.exceptions import ValidationError
from repro.serving.coalescer import Coalescer, RemoteExecutionError
from repro.serving.shared_plans import stage_plans
from repro.serving.worker import (
    WorkerBusyError,
    WorkerConfig,
    WorkerCrashError,
    WorkerPool,
)
from repro.testing.faults import InjectedFault, fire

__all__ = ["ServiceConfig", "PlanService", "serve"]

#: ``retry_after`` hint attached to ledger-contention and overload sheds:
#: long enough for a coalescing window plus a ledger lock hold to clear.
_RETRY_AFTER_HINT = 0.05

_TENANT_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.-]{0,63}$")

#: Post-processing switches accepted on the wire.
_SWITCHES = ("non_negative", "integral", "consistent")


class ServiceConfig:
    """Everything a :class:`PlanService` needs, in one picklable bag.

    ``data`` is the private unit-count vector (array-like) the service
    answers over; ``total_epsilon``/``total_delta`` the per-tenant budget;
    ``max_batch=1`` disables coalescing (every request is its own worker
    round-trip); ``max_wait`` is the coalescing window in seconds.

    Resilience knobs: ``max_queue`` caps concurrently admitted executes
    (past it, requests shed as ``overloaded``); ``default_deadline``
    (seconds, ``None`` = none) applies to executes that carry no
    ``deadline_ms``; ``request_timeout`` bounds every worker pipe
    round-trip (a worker past it is presumed hung, killed and respawned);
    ``heartbeat_interval``/``restart_budget``/``backoff_base``/
    ``healthy_after`` tune the supervisor (see
    :class:`~repro.serving.worker.WorkerPool`); ``watch_plans`` polls
    ``plans_dir`` every ``watch_interval`` seconds and hot-reloads on
    change; ``plan_ttl_seconds``/``min_plan_solver_version`` gate which
    plan archives a (re)load accepts — stale ones are skipped, the
    eviction decision hot reload inherits from the plan cache.
    """

    def __init__(self, plans_dir, ledger_root, data, total_epsilon,
                 total_delta=0.0, workers=2, accountant=None,
                 ledger_suffix=".journal", seed=None, host="127.0.0.1",
                 port=0, max_batch=32, max_wait=0.002, max_queue=1024,
                 default_deadline=None, request_timeout=30.0,
                 heartbeat_interval=1.0, heartbeat_timeout=5.0,
                 restart_budget=5, backoff_base=0.1, healthy_after=30.0,
                 watch_plans=False, watch_interval=2.0,
                 plan_ttl_seconds=None, min_plan_solver_version=None):
        self.plans_dir = str(plans_dir)
        self.ledger_root = str(ledger_root)
        self.data = data
        self.total_epsilon = float(total_epsilon)
        self.total_delta = float(total_delta)
        self.workers = int(workers)
        self.accountant = accountant
        self.ledger_suffix = ledger_suffix
        self.seed = seed
        self.host = host
        self.port = int(port)
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.max_queue = int(max_queue)
        self.default_deadline = None if default_deadline is None else float(default_deadline)
        self.request_timeout = None if request_timeout is None else float(request_timeout)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.restart_budget = int(restart_budget)
        self.backoff_base = float(backoff_base)
        self.healthy_after = float(healthy_after)
        self.watch_plans = bool(watch_plans)
        self.watch_interval = float(watch_interval)
        self.plan_ttl_seconds = plan_ttl_seconds
        self.min_plan_solver_version = min_plan_solver_version


def _check_tenant(tenant):
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise ValidationError(
            "tenant must match [A-Za-z0-9_][A-Za-z0-9_.-]{0,63} "
            f"(it names a ledger file); got {tenant!r}"
        )
    return tenant


def _check_key(key):
    """Validate an optional idempotency key (journaled verbatim in ledger
    records, so bounded)."""
    if key is None:
        return None
    if not isinstance(key, str) or not key or len(key) > 128:
        raise ValidationError(
            f"idempotency key must be a non-empty string of at most "
            f"128 characters; got {key!r}"
        )
    return key


class PlanService:
    """The serving tier: shared plans + worker pool + coalescer + TCP."""

    def __init__(self, config, respawn=True, failpoints_by_worker=None,
                 failpoints_by_slot=None):
        self.config = config
        Path(config.ledger_root).mkdir(parents=True, exist_ok=True)
        self._store, self._manifest = stage_plans(
            config.plans_dir, config.data,
            ttl_seconds=config.plan_ttl_seconds,
            min_solver_version=config.min_plan_solver_version,
        )
        self._worker_config = WorkerConfig(
            manifest=self._manifest,
            ledger_root=config.ledger_root,
            total_epsilon=config.total_epsilon,
            total_delta=config.total_delta,
            accountant=config.accountant,
            ledger_suffix=config.ledger_suffix,
            seed=config.seed,
        )
        self.pool = WorkerPool(
            self._worker_config,
            workers=config.workers,
            respawn=respawn,
            failpoints_by_worker=failpoints_by_worker,
            failpoints_by_slot=failpoints_by_slot,
            request_timeout=config.request_timeout,
            heartbeat_interval=config.heartbeat_interval,
            heartbeat_timeout=config.heartbeat_timeout,
            restart_budget=config.restart_budget,
            backoff_base=config.backoff_base,
            healthy_after=config.healthy_after,
        )
        # Blocking pipe round-trips run here, NOT on the loop's default
        # executor: its ``cpu_count + 4`` thread cap can sit below the
        # worker count, which would idle workers under load. Sized past
        # the pool so budget/explain calls never queue behind a full
        # complement of in-flight executes.
        self._executor = ThreadPoolExecutor(
            max_workers=config.workers + 4, thread_name_prefix="repro-serve"
        )
        self.coalescer = Coalescer(
            self.pool,
            max_batch=config.max_batch,
            max_wait=config.max_wait,
            executor=self._executor,
            on_shed=self._count_shed,
            # Fairness: never more concurrent batches than workers, so the
            # round-robin ready queue — not pool contention — decides
            # which (tenant, plan) group dispatches next.
            max_concurrent=config.workers,
        )
        self._server = None
        self._plan_infos = None
        self._closed = False
        self._exec_inflight = 0
        self._reloads = 0
        self._respond_tasks = set()
        self._reload_lock = asyncio.Lock()
        self._watch_task = None
        self.shed_overloaded = 0
        self.shed_deadline = 0
        #: Ledger-level idempotency-key replays served by this process
        #: (in-window folds are counted by the coalescer separately).
        self.dedup_hits = 0

    def _count_shed(self, kind):
        if kind == "overloaded":
            self.shed_overloaded += 1
        else:
            self.shed_deadline += 1

    # -- service operations (also the in-process API the tests use) ---- #
    def plan_names(self):
        return self._store.plan_names()

    async def _in_thread(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, functools.partial(fn, *args))

    async def plan_list(self):
        if self._plan_infos is None:
            infos = []
            for name in self.plan_names():
                reply = await self._in_thread(self.pool.submit, ("plan_info", name))
                if reply[0] != "ok":
                    raise RemoteExecutionError(reply[1], reply[2])
                infos.append(reply[1])
            self._plan_infos = infos
        return self._plan_infos

    async def execute(self, tenant, plan_name, epsilon, switches=None,
                      deadline=None, key=None):
        _check_tenant(tenant)
        _check_key(key)
        if plan_name not in self._manifest.plans:
            raise ValidationError(
                f"unknown plan {plan_name!r}; available: {self.plan_names()}"
            )
        if deadline is None and self.config.default_deadline is not None:
            deadline = time.monotonic() + self.config.default_deadline
        # Admission control: shed instead of queueing unboundedly. A shed
        # request is refused *before* any worker dispatch, so it is never
        # charged.
        if deadline is not None and deadline <= time.monotonic():
            self.shed_deadline += 1
            raise RemoteExecutionError(
                "deadline_exceeded", "deadline expired before admission",
                retry_after=_RETRY_AFTER_HINT,
            )
        if self._exec_inflight >= self.config.max_queue:
            self.shed_overloaded += 1
            raise RemoteExecutionError(
                "overloaded",
                f"execute queue full ({self.config.max_queue} in flight)",
                retry_after=_RETRY_AFTER_HINT,
            )
        self._exec_inflight += 1
        try:
            if self.config.max_batch > 1:
                payload = await self.coalescer.submit(
                    tenant, plan_name, epsilon, switches, deadline=deadline,
                    key=key,
                )
            else:
                reply = await self._in_thread(
                    functools.partial(
                        self.pool.submit,
                        ("execute", tenant, plan_name,
                         [(float(epsilon), dict(switches or {}), key)]),
                        # A keyed single-request dispatch is exactly-once
                        # even if the worker dies after delivery: the
                        # retry replays or charges via the dedup index.
                        retry_delivered=key is not None,
                    )
                )
                if reply[0] != "ok":
                    raise RemoteExecutionError(reply[1], reply[2])
                payload = reply[1][0]
            # Strip the out-of-band dedup marker before the payload reaches
            # the wire: a replayed reply must be byte-identical to the
            # original. Folded waiters share one payload dict, so only the
            # first pop sees the flag — the hit is counted exactly once.
            if payload.pop("deduplicated", False):
                self.dedup_hits += 1
            return payload
        finally:
            self._exec_inflight -= 1

    async def budget(self, tenant):
        _check_tenant(tenant)
        reply = await self._in_thread(self.pool.submit, ("budget", tenant))
        if reply[0] != "ok":
            raise RemoteExecutionError(reply[1], reply[2])
        return reply[1]

    async def explain(self, plan_name, epsilon=None):
        if plan_name not in self._manifest.plans:
            raise ValidationError(
                f"unknown plan {plan_name!r}; available: {self.plan_names()}"
            )
        reply = await self._in_thread(self.pool.submit, ("explain", plan_name, epsilon))
        if reply[0] != "ok":
            raise RemoteExecutionError(reply[1], reply[2])
        return reply[1]

    async def health(self, ledgers=False):
        """Supervision snapshot (no locks on ledgers, no budget spent)."""
        snapshot = self.pool.health()
        snapshot.update({
            "queue_depth": self._exec_inflight,
            "max_queue": self.config.max_queue,
            "shed": {
                "overloaded": self.shed_overloaded,
                "deadline_exceeded": self.shed_deadline,
            },
            "coalescer": {
                "batches_flushed": self.coalescer.batches_flushed,
                "requests_coalesced": self.coalescer.requests_coalesced,
                "sequential_retries": self.coalescer.sequential_retries,
                "shed_expired": self.coalescer.shed_expired,
                "duplicates_folded": self.coalescer.duplicates_folded,
            },
            "dedup_hits": self.dedup_hits,
            "plans": self.plan_names(),
            "reloads": self._reloads,
        })
        if ledgers:
            from repro.privacy.ledger import ledger_health

            probes = {}
            root = Path(self.config.ledger_root)
            suffix = self.config.ledger_suffix
            for path in sorted(root.glob(f"*{suffix}")):
                tenant = path.name[: -len(suffix)] if suffix else path.name
                probes[tenant] = await self._in_thread(ledger_health, path)
            snapshot["ledgers"] = probes
        return snapshot

    async def reload(self):
        """Hot plan reload: stage a fresh shared segment from the plans
        directory, swap every worker slot to it generation-by-generation
        (in-flight requests finish on the old workers), then unlink the
        old segment once its last reader has detached."""
        async with self._reload_lock:
            fire("serving.reload.before_stage")
            new_store, new_manifest = await self._in_thread(
                functools.partial(
                    stage_plans, self.config.plans_dir, self.config.data,
                    ttl_seconds=self.config.plan_ttl_seconds,
                    min_solver_version=self.config.min_plan_solver_version,
                )
            )
            try:
                fire("serving.reload.before_swap")
                self._worker_config = self._worker_config.replace(
                    manifest=new_manifest
                )
                generation = await self._in_thread(
                    self.pool.reload, self._worker_config
                )
            except BaseException:
                # Swap never happened: drop the staged segment, keep serving
                # the old generation untouched.
                await self._in_thread(new_store.unlink)
                raise
            old_store = self._store
            self._store = new_store
            self._manifest = new_manifest
            self._plan_infos = None
            self._reloads += 1
            # Every old-generation worker was joined by pool.reload, so the
            # parent is the segment's last reader.
            await self._in_thread(old_store.unlink)
            return {"generation": generation, "plans": self.plan_names()}

    # -- TCP protocol --------------------------------------------------- #
    async def _handle_request(self, request):
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True, "workers": self.pool.size}
        if op == "health":
            snapshot = await self.health(ledgers=bool(request.get("ledgers")))
            return {"ok": True, "health": snapshot}
        if op == "reload":
            return {"ok": True, "reload": await self.reload()}
        if op == "plan":
            return {"ok": True, "plans": await self.plan_list()}
        if op == "execute":
            switches = {
                name: bool(request[name]) for name in _SWITCHES if name in request
            }
            epsilon = request.get("epsilon")
            if not isinstance(epsilon, (int, float)) or isinstance(epsilon, bool):
                raise ValidationError(f"epsilon must be a number; got {epsilon!r}")
            deadline_ms = request.get("deadline_ms")
            deadline = None
            if deadline_ms is not None:
                if (not isinstance(deadline_ms, (int, float))
                        or isinstance(deadline_ms, bool) or deadline_ms < 0):
                    raise ValidationError(
                        f"deadline_ms must be a non-negative number; got {deadline_ms!r}"
                    )
                deadline = time.monotonic() + float(deadline_ms) / 1000.0
            release = await self.execute(
                request.get("tenant"), request.get("plan"), epsilon, switches,
                deadline=deadline, key=request.get("key"),
            )
            return {"ok": True, "release": release}
        if op == "budget":
            return {"ok": True, "budget": await self.budget(request.get("tenant"))}
        if op == "explain":
            epsilon = request.get("epsilon")
            return {
                "ok": True,
                "explain": await self.explain(request.get("plan"), epsilon),
            }
        raise ValidationError(
            f"unknown op {op!r}; choose plan/execute/explain/budget/ping/health/reload"
        )

    async def _respond(self, line, writer, write_lock):
        """Parse, dispatch and answer one request line. Every parsed
        request gets exactly one terminal reply: unexpected bugs surface
        as a structured ``InternalError`` rather than a dropped line."""
        request_id = None
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValidationError("request must be a JSON object")
            request_id = request.get("id")
            response = await self._handle_request(request)
        except RemoteExecutionError as exc:
            response = {"ok": False, "error": exc.kind, "message": exc.message}
            retry_after = exc.retry_after
            if retry_after is None and exc.kind == "LedgerBusyError":
                retry_after = _RETRY_AFTER_HINT
            if retry_after is not None:
                response["retry_after"] = retry_after
        except (ValidationError, ValueError) as exc:
            response = {"ok": False, "error": type(exc).__name__, "message": str(exc)}
        except WorkerBusyError as exc:
            response = {
                "ok": False, "error": "overloaded", "message": str(exc),
                "retry_after": _RETRY_AFTER_HINT,
            }
        except WorkerCrashError as exc:
            response = {"ok": False, "error": type(exc).__name__, "message": str(exc)}
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # the exactly-one-terminal-reply backstop
            response = {
                "ok": False, "error": "InternalError",
                "message": f"{type(exc).__name__}: {exc}",
            }
        if request_id is not None:
            response["id"] = request_id
        async with write_lock:
            try:
                fire("serving.conn.drop")
            except InjectedFault:
                # Chaos drill: the connection dies mid-reply. Abort hard so
                # the client sees a reset, not a clean EOF.
                writer.transport.abort()
                return
            try:
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):  # client went away
                pass

    async def _handle_connection(self, reader, writer):
        # Requests on one connection are dispatched CONCURRENTLY — that is
        # what lets the coalescer see simultaneous requests and form
        # batches (a serial read-dispatch-reply loop would defeat it).
        # Responses are written as they complete, so pipelined clients
        # must correlate by "id" (AsyncServiceClient does); a strict
        # request-reply client like ServiceClient is unaffected.
        write_lock = asyncio.Lock()
        tasks = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                task = asyncio.ensure_future(self._respond(line, writer, write_lock))
                tasks.add(task)
                self._respond_tasks.add(task)
                task.add_done_callback(tasks.discard)
                task.add_done_callback(self._respond_tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*list(tasks), return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    # -- plans-dir watcher ---------------------------------------------- #
    def _plans_snapshot(self):
        return {
            path.name: (path.stat().st_mtime_ns, path.stat().st_size)
            for path in sorted(Path(self.config.plans_dir).glob("*.plan.npz"))
        }

    async def _watch_plans_loop(self):
        snapshot = self._plans_snapshot()
        while True:
            await asyncio.sleep(self.config.watch_interval)
            try:
                current = self._plans_snapshot()
            except OSError:  # directory mid-rename: retry next tick
                continue
            if current == snapshot:
                continue
            try:
                await self.reload()
            except Exception:
                # Transient (e.g. a plan file still being copied in): the
                # old generation keeps serving; retried next poll because
                # the snapshot only advances on success.
                continue
            snapshot = current

    # -- lifecycle ------------------------------------------------------- #
    async def start(self):
        """Bind the TCP server; returns (host, port) actually bound."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        if self.config.watch_plans:
            self._watch_task = asyncio.create_task(self._watch_plans_loop())
        return self.address

    @property
    def address(self):
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def serve_forever(self):
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self):
        """Graceful drain: stop accepting, serve everything accepted,
        stop the workers, release the shared segment."""
        if self._closed:
            return
        self._closed = True
        if self._watch_task is not None:
            self._watch_task.cancel()
            try:
                await self._watch_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Quiesce before draining the coalescer: requests clients already
        # wrote may still be sitting unread in socket buffers — those are
        # "accepted" and owed a real answer, not a draining refusal. Wait
        # for in-flight dispatches to settle (bounded, so a client that
        # streams forever cannot stall shutdown indefinitely).
        quiesce_deadline = asyncio.get_running_loop().time() + 10.0
        while asyncio.get_running_loop().time() < quiesce_deadline:
            pending = {t for t in self._respond_tasks if not t.done()}
            if not pending:
                await asyncio.sleep(0.02)  # let buffered lines be read
                if not self._respond_tasks:
                    break
                continue
            await asyncio.wait(pending, timeout=quiesce_deadline - asyncio.get_running_loop().time())
        await self.coalescer.drain()
        await self._in_thread(self.pool.shutdown)
        self._executor.shutdown(wait=True)
        self._store.unlink()


async def _serve_async(config, ready=None):
    service = PlanService(config)
    host, port = await service.start()
    if ready is not None:
        ready(service, host, port)
    try:
        await service.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await service.shutdown()
    return service


def serve(config, ready=None):
    """Blocking entry point (the CLI's ``serve`` target): run the service
    until interrupted, then drain gracefully. ``ready(service, host,
    port)`` is called once the socket is bound."""
    try:
        asyncio.run(_serve_async(config, ready=ready))
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass


def load_data_vector(path):
    """Load the service's private data vector from ``.npy`` (or a
    whitespace/comma text file) — the CLI's ``--data`` loader."""
    path = Path(path)
    if path.suffix == ".npy":
        return np.load(path, allow_pickle=False)
    return np.loadtxt(path, delimiter="," if path.suffix == ".csv" else None)
