"""Core package: the Low-Rank Mechanism and its optimisation machinery."""

from repro.core.alm import Decomposition, choose_rank, decompose_workload, svd_warm_start
from repro.core.bounds import (
    approximation_ratio,
    bound_summary,
    hardt_talwar_lower_bound,
    lrm_error_upper_bound,
    relaxed_error_bound,
)
from repro.core.kron import KronLowRankMechanism, kron_apply
from repro.core.lrm import GaussianLowRankMechanism, LowRankMechanism
from repro.core.nesterov import (
    NesterovResult,
    nesterov_projected_gradient,
    quadratic_l_subproblem,
)

__all__ = [
    "Decomposition",
    "GaussianLowRankMechanism",
    "KronLowRankMechanism",
    "LowRankMechanism",
    "NesterovResult",
    "approximation_ratio",
    "bound_summary",
    "choose_rank",
    "decompose_workload",
    "hardt_talwar_lower_bound",
    "kron_apply",
    "lrm_error_upper_bound",
    "nesterov_projected_gradient",
    "quadratic_l_subproblem",
    "relaxed_error_bound",
    "svd_warm_start",
]
