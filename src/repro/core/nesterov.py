"""Nesterov's accelerated projected gradient method (Algorithm 2).

The ``L``-subproblem of the ALM decomposition minimises the quadratic

    G(L) = beta/2 * tr(L^T B^T B L) - tr((beta W + pi)^T B L)       (Formula 10)

subject to the per-column L1 constraint ``sum_i |L_ij| <= 1``. Algorithm 2
of the paper applies Nesterov's first-order optimal method: an extrapolated
point, a projected gradient step whose Lipschitz estimate ``omega`` is found
by doubling (backtracking on the quadratic upper model ``J_{omega,S}``), and
the classic ``delta`` momentum recursion. The feasible-set projection
(Formula 11) decouples per column and is solved by
:func:`repro.linalg.projection.project_columns_l1`.

The solver here is written generically (objective/gradient callables) so it
is unit-testable on arbitrary constrained quadratics; :mod:`repro.core.alm`
instantiates it with the Formula-10 quantities.

Hot-path note: ``quadratic=(K, C)`` declares the objective to be exactly
``1/2 <L, K L> - <C, L>`` (the Formula-10 form) and dispatches to a
specialised loop (:func:`_nesterov_quadratic`) that runs the same
backtracking schedule with cached Hessian products: no objective
evaluations, one matmul per trial. The ALM solver always uses this path,
with ``lipschitz_init`` from warm-started power iteration
(:func:`repro.linalg.randomized.power_iteration_lmax`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.projection import project_columns_l1
from repro.linalg.validation import as_matrix, check_positive, check_positive_int

__all__ = ["NesterovResult", "nesterov_projected_gradient", "quadratic_l_subproblem"]


@dataclass
class NesterovResult:
    """Outcome of a Nesterov projected-gradient solve.

    Attributes
    ----------
    solution:
        The final feasible iterate.
    objective:
        Objective value at the solution.
    iterations:
        Number of outer iterations performed.
    converged:
        True when the iterate-change criterion fired before ``max_iters``.
    objective_history:
        Objective value at each accepted iterate.
    """

    solution: np.ndarray
    objective: float
    iterations: int
    converged: bool
    objective_history: list = field(default_factory=list)
    #: Final accepted Lipschitz estimate omega — callers solving a sequence
    #: of slowly-moving subproblems can warm-start the next solve with it
    #: instead of descending from the global lambda_max ceiling again.
    final_lipschitz: float = None


def _nesterov_quadratic(
    k_matrix,
    linear,
    initial,
    radius,
    max_iters,
    omega,
    chi,
    objective_tol,
    projection,
):
    """Specialised backtracking loop for ``G(L) = 1/2 <L, K L> - <C, L>``.

    Runs the same adaptive omega schedule as the generic loop (halve between
    iterations, double until the quadratic model majorises) but exploits the
    objective being exactly quadratic:

    * the Hessian product at the extrapolated point is the momentum
      combination ``K s = kx_t + momentum (kx_t - kx_{t-1})`` of cached
      products, so the gradient needs no matmul;
    * the majorisation test ``G(cand) <= J_omega(cand)`` reduces to
      ``<d, K d> <= omega <d, d>`` with ``d = cand - s`` — one matmul per
      trial and no objective evaluations;
    * the accepted iterate's product is ``K cand = K s + K d``, for free,
      which also makes the stopping-rule objective two dot products.
    """
    current = projection(initial, radius)
    kx_current = k_matrix @ current
    kx_previous = kx_current
    previous = current
    delta_prev, delta = 0.0, 1.0
    history = [0.5 * float(np.vdot(current, kx_current)) - float(np.vdot(linear, current))]
    converged = False
    iterations = 0
    flat_steps = 0

    for iterations in range(1, max_iters + 1):
        if current is previous:
            extrapolated = current
            ks = kx_current
            grad_s = kx_current - linear
        else:
            momentum = (delta_prev - 1.0) / delta
            extrapolated = np.subtract(current, previous)
            extrapolated *= momentum
            extrapolated += current
            ks = np.subtract(kx_current, kx_previous)
            ks *= momentum
            ks += kx_current
            grad_s = ks - linear

        # Backtracking: double omega until the quadratic model majorises G.
        accepted = None
        for _ in range(60):
            candidate = projection(extrapolated - grad_s / omega, radius)
            difference = np.subtract(candidate, extrapolated)
            k_difference = k_matrix @ difference
            curvature = float(np.vdot(difference, k_difference))
            step_sq = float(np.vdot(difference, difference))
            if curvature <= omega * step_sq + 1e-12 * max(abs(omega * step_sq), 1.0):
                accepted = candidate
                break
            omega *= 2.0
        if accepted is None:  # pragma: no cover - omega doubling always terminates
            accepted = candidate
        kx_accepted = ks + k_difference
        objective_accepted = 0.5 * float(np.vdot(accepted, kx_accepted)) - float(
            np.vdot(linear, accepted)
        )

        step_norm = float(np.sqrt(step_sq))
        previous, current = current, accepted
        kx_previous, kx_current = kx_current, kx_accepted
        history.append(objective_accepted)
        if step_norm < chi:
            converged = True
            break
        change = abs(history[-1] - history[-2])
        if change <= objective_tol * max(abs(history[-2]), 1e-30):
            flat_steps += 1
            if flat_steps >= 3:
                converged = True
                break
        else:
            flat_steps = 0
        delta_prev, delta = delta, (1.0 + np.sqrt(1.0 + 4.0 * delta * delta)) / 2.0
        # Evidence-gated shrink: the generic loop probes omega/2 blindly
        # every iteration, paying a rejected projection + Hessian product
        # almost every time. Here the accepted step's own curvature ratio
        # <d, K d>/<d, d> tells us — for free — whether the halved model
        # would have majorised this step; only then is the shrink taken.
        if curvature <= 0.5 * omega * step_sq:
            omega = max(omega * 0.5, 1e-12)

    return NesterovResult(
        solution=current,
        objective=history[-1],
        iterations=iterations,
        converged=converged,
        objective_history=history,
        final_lipschitz=omega,
    )


def nesterov_projected_gradient(
    objective,
    gradient,
    initial,
    radius=1.0,
    max_iters=200,
    lipschitz_init=1.0,
    tol=None,
    objective_tol=1e-12,
    projection=None,
    quadratic=None,
):
    """Minimise ``objective`` over per-column L1 balls (Algorithm 2).

    Parameters
    ----------
    objective, gradient:
        Callables evaluating ``G`` and ``dG/dL`` at a matrix iterate.
    initial:
        Feasible starting matrix ``L^(0)`` of shape (r, n); it is projected
        onto the feasible set first in case it is slightly outside.
    radius:
        Per-column L1 budget (1.0 fixes sensitivity to 1, per Theorem 1).
    max_iters:
        Iteration cap.
    lipschitz_init:
        Initial Lipschitz estimate ``omega^(0)`` (line 2 of Algorithm 2).
    tol:
        Stopping threshold on ``||S - L^(t)||_F``; defaults to the paper's
        ``chi = r * n * 1e-12``.
    objective_tol:
        Additional relative objective-change stop: terminate after three
        consecutive iterations whose objective moved by less than this
        relative amount (saves work when the iterate criterion is tight).
    projection:
        Feasible-set projection ``fn(matrix, radius)``; defaults to the
        per-column L1-ball projection of the paper. Pass
        :func:`repro.linalg.projection.project_columns_l2` for the
        Gaussian / (eps, delta)-DP variant.
    quadratic:
        Optional pair ``(K, C)`` declaring the objective to be exactly
        ``G(L) = 1/2 <L, K L> - <C, L>`` (the Formula-10 form); makes
        ``objective``/``gradient`` optional. A specialised loop with the
        same backtracking schedule caches the Hessian product ``K L``
        across iterations, so each trial needs one matmul and no objective
        evaluations (see :func:`_nesterov_quadratic`).

    Returns
    -------
    NesterovResult
    """
    initial = as_matrix(initial, "initial")
    radius = check_positive(radius, "radius")
    max_iters = check_positive_int(max_iters, "max_iters")
    omega = check_positive(lipschitz_init, "lipschitz_init")
    if projection is None:
        projection = project_columns_l1

    r, n = initial.shape
    chi = tol if tol is not None else r * n * 1e-12
    if chi < 0:
        raise ValidationError(f"tol must be non-negative, got {chi}")

    if quadratic is not None:
        k_matrix, linear = quadratic
        return _nesterov_quadratic(
            as_matrix(k_matrix, "K"),
            as_matrix(linear, "C"),
            initial,
            radius,
            max_iters,
            omega,
            chi,
            objective_tol,
            projection,
        )

    current = projection(initial, radius)
    previous = current
    delta_prev, delta = 0.0, 1.0
    history = [float(objective(current))]
    converged = False
    iterations = 0
    flat_steps = 0

    for iterations in range(1, max_iters + 1):
        if current is previous:
            # First iteration (or zero momentum): the extrapolated point is
            # the current iterate, whose objective is already in history —
            # no need to re-evaluate it for the backtracking model.
            extrapolated = current
            objective_s = history[-1]
            grad_s = gradient(extrapolated)
        else:
            momentum = (delta_prev - 1.0) / delta
            extrapolated = current + momentum * (current - previous)
            grad_s = gradient(extrapolated)
            objective_s = None  # evaluated lazily, only if backtracking needs it

        # Backtracking: double omega until the quadratic model majorises G.
        if objective_s is None:
            objective_s = float(objective(extrapolated))
        accepted = None
        for _ in range(60):
            candidate = projection(extrapolated - grad_s / omega, radius)
            difference = candidate - extrapolated
            model = (
                objective_s
                + float(np.vdot(grad_s, difference))
                + 0.5 * omega * float(np.vdot(difference, difference))
            )
            objective_candidate = float(objective(candidate))
            if objective_candidate <= model + 1e-12 * max(abs(model), 1.0):
                accepted = candidate
                objective_accepted = objective_candidate
                break
            omega *= 2.0
        if accepted is None:  # pragma: no cover - omega doubling always terminates
            # Backtracking exhausted: keep the last candidate but record
            # its true objective (the model was rejected, the objective
            # value itself is still exact for *this* candidate).
            accepted = candidate
            objective_accepted = float(objective(accepted))

        step = accepted - extrapolated
        step_norm = float(np.sqrt(np.vdot(step, step)))
        previous, current = current, accepted
        history.append(objective_accepted)
        if step_norm < chi:
            converged = True
            break
        change = abs(history[-1] - history[-2])
        if change <= objective_tol * max(abs(history[-2]), 1e-30):
            flat_steps += 1
            if flat_steps >= 3:
                converged = True
                break
        else:
            flat_steps = 0
        delta_prev, delta = delta, (1.0 + np.sqrt(1.0 + 4.0 * delta * delta)) / 2.0
        # Allow omega to shrink between iterations so steps stay large.
        omega = max(omega * 0.5, 1e-12)

    return NesterovResult(
        solution=current,
        objective=history[-1],
        iterations=iterations,
        converged=converged,
        objective_history=history,
        final_lipschitz=omega,
    )


def quadratic_l_subproblem(b, w, pi, beta):
    """Objective/gradient callables for the Formula-10 ``L``-subproblem.

    Given fixed ``B``, multiplier ``pi`` and penalty ``beta``:

        G(L)     = beta/2 * tr(L^T B^T B L) - tr((beta W + pi)^T B L)
        dG/dL    = beta * B^T B L - B^T (beta W + pi)

    Returns ``(objective, gradient)`` closures over precomputed products.
    (The ALM hot loop bypasses this helper and feeds its cached Gram
    products straight into the ``quadratic=(K, C)`` fast path.)
    """
    b = as_matrix(b, "B")
    w = as_matrix(w, "W")
    pi = as_matrix(pi, "pi")
    beta = check_positive(beta, "beta")
    bt_target = b.T @ (beta * w + pi)
    # Fold beta into the Hessian once: G(L) = 1/2 <L, K L> - <C, L>.
    k_matrix = beta * (b.T @ b)

    def objective(l):
        # tr(L^T K L) = <L, K L>: O(r^2 n), avoiding the m x n product.
        return 0.5 * float(np.vdot(l, k_matrix @ l)) - float(np.vdot(bt_target, l))

    def gradient(l):
        return k_matrix @ l - bt_target

    return objective, gradient
