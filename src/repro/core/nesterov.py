"""Nesterov's accelerated projected gradient method (Algorithm 2).

The ``L``-subproblem of the ALM decomposition minimises the quadratic

    G(L) = beta/2 * tr(L^T B^T B L) - tr((beta W + pi)^T B L)       (Formula 10)

subject to the per-column L1 constraint ``sum_i |L_ij| <= 1``. Algorithm 2
of the paper applies Nesterov's first-order optimal method: an extrapolated
point, a projected gradient step whose Lipschitz estimate ``omega`` is found
by doubling (backtracking on the quadratic upper model ``J_{omega,S}``), and
the classic ``delta`` momentum recursion. The feasible-set projection
(Formula 11) decouples per column and is solved by
:func:`repro.linalg.projection.project_columns_l1`.

The solver here is written generically (objective/gradient callables) so it
is unit-testable on arbitrary constrained quadratics; :mod:`repro.core.alm`
instantiates it with the Formula-10 quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.projection import project_columns_l1
from repro.linalg.validation import as_matrix, check_positive, check_positive_int

__all__ = ["NesterovResult", "nesterov_projected_gradient", "quadratic_l_subproblem"]


@dataclass
class NesterovResult:
    """Outcome of a Nesterov projected-gradient solve.

    Attributes
    ----------
    solution:
        The final feasible iterate.
    objective:
        Objective value at the solution.
    iterations:
        Number of outer iterations performed.
    converged:
        True when the iterate-change criterion fired before ``max_iters``.
    objective_history:
        Objective value at each accepted iterate.
    """

    solution: np.ndarray
    objective: float
    iterations: int
    converged: bool
    objective_history: list = field(default_factory=list)


def nesterov_projected_gradient(
    objective,
    gradient,
    initial,
    radius=1.0,
    max_iters=200,
    lipschitz_init=1.0,
    tol=None,
    objective_tol=1e-12,
    projection=None,
):
    """Minimise ``objective`` over per-column L1 balls (Algorithm 2).

    Parameters
    ----------
    objective, gradient:
        Callables evaluating ``G`` and ``dG/dL`` at a matrix iterate.
    initial:
        Feasible starting matrix ``L^(0)`` of shape (r, n); it is projected
        onto the feasible set first in case it is slightly outside.
    radius:
        Per-column L1 budget (1.0 fixes sensitivity to 1, per Theorem 1).
    max_iters:
        Iteration cap.
    lipschitz_init:
        Initial Lipschitz estimate ``omega^(0)`` (line 2 of Algorithm 2).
    tol:
        Stopping threshold on ``||S - L^(t)||_F``; defaults to the paper's
        ``chi = r * n * 1e-12``.
    objective_tol:
        Additional relative objective-change stop: terminate after three
        consecutive iterations whose objective moved by less than this
        relative amount (saves work when the iterate criterion is tight).
    projection:
        Feasible-set projection ``fn(matrix, radius)``; defaults to the
        per-column L1-ball projection of the paper. Pass
        :func:`repro.linalg.projection.project_columns_l2` for the
        Gaussian / (eps, delta)-DP variant.

    Returns
    -------
    NesterovResult
    """
    initial = as_matrix(initial, "initial")
    radius = check_positive(radius, "radius")
    max_iters = check_positive_int(max_iters, "max_iters")
    omega = check_positive(lipschitz_init, "lipschitz_init")
    if projection is None:
        projection = project_columns_l1

    r, n = initial.shape
    chi = tol if tol is not None else r * n * 1e-12
    if chi < 0:
        raise ValidationError(f"tol must be non-negative, got {chi}")

    current = projection(initial, radius)
    previous = current.copy()
    delta_prev, delta = 0.0, 1.0
    history = [float(objective(current))]
    converged = False
    iterations = 0
    flat_steps = 0

    for iterations in range(1, max_iters + 1):
        momentum = (delta_prev - 1.0) / delta
        extrapolated = current + momentum * (current - previous)
        grad_s = gradient(extrapolated)
        objective_s = float(objective(extrapolated))

        # Backtracking: double omega until the quadratic model majorises G.
        accepted = None
        for _ in range(60):
            candidate = projection(extrapolated - grad_s / omega, radius)
            difference = candidate - extrapolated
            model = (
                objective_s
                + float(np.sum(grad_s * difference))
                + 0.5 * omega * float(np.sum(difference**2))
            )
            objective_candidate = float(objective(candidate))
            if objective_candidate <= model + 1e-12 * max(abs(model), 1.0):
                accepted = candidate
                break
            omega *= 2.0
        if accepted is None:  # pragma: no cover - omega doubling always terminates
            accepted = candidate

        step_norm = float(np.linalg.norm(accepted - extrapolated))
        previous, current = current, accepted
        history.append(objective_candidate)
        if step_norm < chi:
            converged = True
            break
        change = abs(history[-1] - history[-2])
        if change <= objective_tol * max(abs(history[-2]), 1e-30):
            flat_steps += 1
            if flat_steps >= 3:
                converged = True
                break
        else:
            flat_steps = 0
        delta_prev, delta = delta, (1.0 + np.sqrt(1.0 + 4.0 * delta * delta)) / 2.0
        # Allow omega to shrink between iterations so steps stay large.
        omega = max(omega * 0.5, 1e-12)

    return NesterovResult(
        solution=current,
        objective=history[-1],
        iterations=iterations,
        converged=converged,
        objective_history=history,
    )


def quadratic_l_subproblem(b, w, pi, beta):
    """Objective/gradient callables for the Formula-10 ``L``-subproblem.

    Given fixed ``B``, multiplier ``pi`` and penalty ``beta``:

        G(L)     = beta/2 * tr(L^T B^T B L) - tr((beta W + pi)^T B L)
        dG/dL    = beta * B^T B L - B^T (beta W + pi)

    Returns ``(objective, gradient)`` closures over precomputed products.
    """
    b = as_matrix(b, "B")
    w = as_matrix(w, "W")
    pi = as_matrix(pi, "pi")
    beta = check_positive(beta, "beta")
    btb = b.T @ b
    bt_target = b.T @ (beta * w + pi)

    def objective(l):
        # tr(L^T B^T B L) = <L, (B^T B) L>: O(r^2 n), avoiding the m x n product.
        return 0.5 * beta * float(np.sum(l * (btb @ l))) - float(np.sum(bt_target * l))

    def gradient(l):
        return beta * (btb @ l) - bt_target

    return objective, gradient
