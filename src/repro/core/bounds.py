"""Theoretical error bounds for the Low-Rank Mechanism (Section 4).

Implements, with overflow-safe arithmetic:

* **Lemma 3** — upper bound on LRM's expected squared error:
  ``sum_k lambda_k^2 * r / eps^2`` for a rank-``r`` workload with singular
  values ``lambda_k`` (via the feasible SVD decomposition
  ``B = sqrt(r) U S``, ``L = V^T / sqrt(r)``).
* **Lemma 4** — Hardt-Talwar geometric lower bound for *any* eps-DP
  mechanism: ``Omega(((2^r / r!) * prod lambda_k)^{2/r} * r^3 / eps^2)``,
  evaluated in log space with ``gammaln`` so large ranks do not overflow.
* **Theorem 2** — the ``O(C^2 r)`` approximation ratio, ``C`` being the
  ratio of extreme non-zero singular values; the concrete constant from the
  proof is ``(C/4)^2 * r`` once ``r > 5``.
* **Theorem 3** — error bound for the relaxed program:
  ``2 tr(B^T B) / eps^2 + gamma * sum_i x_i^2``.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln

from repro.exceptions import ValidationError
from repro.linalg.validation import as_matrix, as_vector, check_positive

__all__ = [
    "lrm_error_upper_bound",
    "hardt_talwar_lower_bound",
    "approximation_ratio",
    "relaxed_error_bound",
    "bound_summary",
]


def _nonzero_singular_values(singular_values, tol=None):
    values = as_vector(singular_values, "singular_values")
    if np.any(values < 0):
        raise ValidationError("singular values must be non-negative")
    values = np.sort(values)[::-1]
    if tol is None:
        tol = values.size * np.finfo(np.float64).eps * (values[0] if values.size else 0.0)
    nonzero = values[values > tol]
    if nonzero.size == 0:
        raise ValidationError("workload has rank zero; bounds undefined")
    return nonzero


def lrm_error_upper_bound(singular_values, epsilon):
    """Lemma 3: ``(sum_k lambda_k^2) * r / eps^2``.

    The bound comes from the always-feasible decomposition built from the
    SVD; the optimal decomposition can only do better.
    """
    epsilon = check_positive(epsilon, "epsilon")
    values = _nonzero_singular_values(singular_values)
    r = values.size
    return float(np.sum(values**2)) * r / (epsilon * epsilon)


def hardt_talwar_lower_bound(singular_values, epsilon):
    """Lemma 4: lower bound on any eps-DP mechanism's squared error.

        ((2^r / r!) * prod_k lambda_k)^{2/r} * r^3 / eps^2

    Computed in log space: ``log term = (2/r) (r log 2 - log r! +
    sum log lambda_k)``; the constant hidden by the Omega is taken as 1.
    """
    epsilon = check_positive(epsilon, "epsilon")
    values = _nonzero_singular_values(singular_values)
    r = values.size
    log_term = (2.0 / r) * (r * np.log(2.0) - gammaln(r + 1.0) + np.sum(np.log(values)))
    return float(np.exp(log_term)) * r**3 / (epsilon * epsilon)


def approximation_ratio(singular_values, exact=False):
    """Theorem 2: approximation factor of LRM vs. the optimal mechanism.

    Returns ``(C/4)^2 * r`` where ``C = lambda_1 / lambda_r`` over the
    non-zero spectrum. Theorem 2 states this for ``r > 5`` (the step
    ``r! < (r/2)^r`` needs it); with ``exact=False`` (default) the formula
    is evaluated for any rank as an indicative value, while ``exact=True``
    raises for ``r <= 5``.
    """
    values = _nonzero_singular_values(singular_values)
    r = values.size
    if exact and r <= 5:
        raise ValidationError(f"Theorem 2 requires rank > 5, got r={r}")
    c = float(values[0] / values[-1])
    return (c / 4.0) ** 2 * r


def relaxed_error_bound(b, gamma, x, epsilon):
    """Theorem 3: expected squared error of relaxed LRM is at most

        2 tr(B^T B) / eps^2 + gamma * sum_i x_i^2.

    Note the structural term depends on the data (which is why the paper
    cannot tune gamma analytically and sweeps it in Figure 2).
    """
    b = as_matrix(b, "B")
    gamma = check_positive(gamma, "gamma")
    x = as_vector(x, "x")
    epsilon = check_positive(epsilon, "epsilon")
    noise_term = 2.0 * float(np.sum(b**2)) / (epsilon * epsilon)
    structural_term = gamma * float(np.sum(x**2))
    return noise_term + structural_term


def bound_summary(workload, epsilon):
    """Convenience report: upper/lower bounds and the Theorem-2 ratio.

    Accepts a :class:`repro.workloads.Workload` (or anything with
    ``singular_values``) and returns a dict with keys ``upper_bound``,
    ``lower_bound``, ``bound_gap`` and ``approximation_ratio``.
    """
    values = getattr(workload, "singular_values", None)
    if values is None:
        values = np.linalg.svd(as_matrix(workload, "workload"), compute_uv=False)
    upper = lrm_error_upper_bound(values, epsilon)
    lower = hardt_talwar_lower_bound(values, epsilon)
    return {
        "upper_bound": upper,
        "lower_bound": lower,
        "bound_gap": upper / lower if lower > 0 else np.inf,
        "approximation_ratio": approximation_ratio(values),
    }
