"""Workload matrix decomposition via inexact Augmented Lagrangian (Algorithm 1).

This is the optimisation engine of the Low-Rank Mechanism. Given a workload
``W (m x n)`` and a target rank ``r``, it finds ``B (m x r)`` and
``L (r x n)`` solving the relaxed program of Formula (8):

    minimise   tr(B^T B)
    subject to ||W - B L||_F <= gamma,
               sum_i |L_ij| <= 1  for every column j.

The inexact ALM scheme of Section 5 handles the coupling constraint with a
multiplier ``pi`` and penalty ``beta``, minimising at each outer step the
bi-convex Lagrangian subproblem

    J(B, L) = 1/2 tr(B^T B) + <pi, W - B L> + beta/2 ||W - B L||_F^2

by block descent: the ``B``-step has the closed form of Eq. (9),

    B = (beta W L^T + pi L^T) (beta L L^T + I)^{-1},

and the ``L``-step runs Algorithm 2 (:mod:`repro.core.nesterov`). Following
the paper, ``beta`` doubles every 10 outer iterations and the multiplier is
updated as ``pi <- pi + beta (W - B L)``. Theorem 4 guarantees
``|tr(B_k^T B_k) - tr(B*^T B*)| <= O(1/beta_{k-1})``, i.e. rapid convergence
once the doubling kicks in.

Performance notes
-----------------
The solver hot path is organised around three invariants (see also the
"Performance notes" section of ROADMAP.md):

1. **Single spectral cache.** Exactly one dense SVD of ``W`` is computed
   per :func:`decompose_workload` call (or zero when the caller passes a
   precomputed ``svd=`` triple, e.g. ``Workload.thin_svd``). Its factors
   are threaded into :func:`choose_rank`, :func:`svd_warm_start`, the
   truncated :func:`_thin_svd` cache, :func:`_exact_closure` and
   :func:`_refine_residual`. For large matrices with an explicit ``rank``,
   the factorisation is a seeded randomized range-finder SVD
   (:func:`repro.linalg.randomized.randomized_svd`). ``use_cache=False``
   restores the historical recompute-everywhere behaviour (an escape hatch
   for A/B testing; results agree to solver tolerance).
2. **Power-iteration Lipschitz + quadratic Algorithm 2.** The Nesterov
   step size needs ``lambda_max(B^T B)`` on every inner sweep. Instead of
   a dense ``eigvalsh``, it is obtained by power iteration warm-started
   from the previous sweep's eigenvector
   (:func:`repro.linalg.randomized.power_iteration_lmax`). The L-step is
   dispatched through Algorithm 2's ``quadratic=(K, C)`` fast path, whose
   backtracking tests majorisation via the curvature identity
   ``<d, K d> <= omega <d, d>`` and recycles cached Hessian products — no
   objective evaluations and one matmul per trial.
3. **Gram-trick residuals.** Inner sweeps never materialise the dense
   ``m x n`` residual: with cached ``B^T W`` (r x n) and ``B^T B`` (r x r),

       ||W - B L||_F^2 = ||W||^2 - 2 tr(L^T (B^T W)) + tr((B^T B)(L L^T)),

   and the multiplier inner product ``<pi, W - B L>`` follows from the same
   products. The ``m x n`` residual is formed only at multiplier updates
   (infeasible iterations) and at final reporting.

Per-phase wall-clock and FLOP-proxy counters are surfaced in
``Decomposition.perf`` and per-iteration ``elapsed``/``flops`` keys in
``Decomposition.history``; ``benchmarks/test_bench_solver_perf.py`` tracks
the resulting fit-time trajectory across PRs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import scipy.linalg as sla

from repro.exceptions import DecompositionError, ValidationError
from repro.linalg.projection import (
    _project_columns_l1_core,
    _project_columns_l2_core,
    project_columns_l1,
)
from repro.linalg.randomized import (
    RANDOMIZED_SVD_MIN_DIM,
    power_iteration_lmax,
    randomized_svd,
    rank_discovery_needs_dense,
)
from repro.linalg.svd import rank_tolerance
from repro.linalg.validation import as_matrix, check_positive, check_positive_int, ensure_rng
from repro.core.nesterov import nesterov_projected_gradient
from repro.privacy.sensitivity import l1_sensitivity, l2_sensitivity


def _norm_tools(norm):
    """Sensitivity and feasibility-projection functions for a norm choice.

    ``"l1"`` is the paper's program (Laplace noise, eps-DP); ``"l2"`` is
    the Gaussian / (eps, delta)-DP companion program, where the column
    constraint is an L2 ball and the sensitivity the max column L2 norm.
    """
    key = str(norm).lower()
    if key == "l1":
        # The validation-free projection cores are safe here: every matrix
        # that reaches them is produced by the solver's own arithmetic on
        # inputs already validated at the public entry points.
        return l1_sensitivity, _project_columns_l1_core
    if key == "l2":
        return l2_sensitivity, _project_columns_l2_core
    raise ValidationError(f"norm must be 'l1' or 'l2', got {norm!r}")

__all__ = [
    "SOLVER_VERSION",
    "Decomposition",
    "decompose_workload",
    "decompose_workload_operator",
    "svd_warm_start",
    "choose_rank",
]

#: Monotone revision of the fit quality this solver produces. Bump it when
#: an optimisation change improves the decompositions themselves (tighter
#: objective, better rank choice) — NOT for pure speedups that reproduce
#: the same factors. Plan archives record the version they were fitted
#: under, so a :class:`repro.engine.plan_cache.PlanCache` configured with
#: ``min_solver_version`` can expire plans fitted by an older solver and
#: re-plan on the better one instead of serving the stale fit forever.
SOLVER_VERSION = 1


@dataclass
class Decomposition:
    """Result of :func:`decompose_workload`.

    Attributes
    ----------
    b:
        Scale factor ``B`` of shape (m, r); ``Phi = tr(B^T B)`` drives noise.
    l:
        Strategy factor ``L`` of shape (r, n) with per-column L1 norm <= 1.
    residual_norm:
        ``||W - B L||_F`` at termination (the paper's ``tau``).
    objective:
        ``tr(B^T B)``.
    iterations:
        Number of outer ALM iterations performed.
    converged:
        True when a gamma-feasible decomposition was found (the returned
        pair is then the best such candidate seen).
    history:
        Per-outer-iteration dicts with ``tau``, ``objective``, ``beta``,
        ``feasible``, plus wall-clock ``elapsed`` seconds and a ``flops``
        multiply-add proxy for the iteration (and a final
        ``phase: "refine"`` entry).
    norm:
        Column-constraint norm of the program: "l1" (paper / Laplace) or
        "l2" (Gaussian companion).
    perf:
        Per-phase performance summary: ``{phase: {"seconds", "flops"}}``
        for phases ``spectral`` (the one SVD), ``init`` (rank choice +
        warm start + candidate seeding), ``phase1`` (outer ALM loop) and
        ``refine``, plus ``total``.
    """

    b: np.ndarray
    l: np.ndarray
    residual_norm: float
    objective: float
    iterations: int
    converged: bool
    history: list = field(default_factory=list)
    norm: str = "l1"
    perf: dict = field(default_factory=dict)

    @property
    def rank(self):
        """Decomposition rank ``r`` (columns of B)."""
        return self.b.shape[1]

    @property
    def sensitivity(self):
        """Query sensitivity ``Delta(B, L)`` — the max column norm of ``L``
        under the decomposition's norm (L1 per Definition 2, or L2 for the
        Gaussian variant)."""
        sensitivity_fn, _ = _norm_tools(self.norm)
        return sensitivity_fn(self.l)

    @property
    def scale(self):
        """Query scale ``Phi(B, L) = tr(B^T B)`` (Definition 1)."""
        return float(np.sum(self.b**2))

    def expected_noise_error(self, epsilon):
        """Lemma 1 (Laplace noise): expected squared noise error
        ``2 Phi(B, L) Delta(B, L)^2 / eps^2``. For an L2 decomposition used
        with the Gaussian mechanism, use
        :meth:`expected_gaussian_noise_error` instead.
        """
        epsilon = check_positive(epsilon, "epsilon")
        delta = self.sensitivity
        return 2.0 * self.scale * delta * delta / (epsilon * epsilon)

    def expected_gaussian_noise_error(self, epsilon, failure_delta):
        """Gaussian-mechanism analogue of Lemma 1:
        ``Phi(B, L) * sigma^2`` with ``sigma`` the analytic Gaussian
        calibration of :func:`repro.privacy.noise.gaussian_sigma` for
        ``(Delta_2(L), epsilon, failure_delta)`` (valid at every eps)."""
        from repro.privacy.noise import gaussian_sigma

        sigma = gaussian_sigma(max(self.sensitivity, 1e-300), epsilon, failure_delta)
        return self.scale * sigma * sigma

    def reconstruction(self):
        """The product ``B L`` (approximation of W)."""
        return self.b @ self.l


def choose_rank(workload_matrix, rank=None, rank_ratio=1.2, singular_values=None):
    """Pick the decomposition rank ``r``.

    Defaults to the paper's recommended ``r = ceil(rank_ratio * rank(W))``
    (Section 6.1 concludes ``rank(W)`` to ``1.2 rank(W)`` balances accuracy
    and speed), clamped to at most ``m`` (more columns in B than queries
    never helps) and at least 1.

    ``singular_values`` may supply precomputed singular values of ``W`` so
    the numerical rank is read off the shared spectral cache instead of a
    fresh SVD.
    """
    w = as_matrix(workload_matrix, "W")
    m = w.shape[0]
    if rank is not None:
        rank = check_positive_int(rank, "rank")
        return min(rank, m)
    rank_ratio = check_positive(rank_ratio, "rank_ratio")
    if singular_values is None:
        base = int(np.linalg.matrix_rank(w))
    else:
        sigma = np.asarray(singular_values, dtype=np.float64)
        base = int(np.sum(sigma > rank_tolerance(w.shape, sigma)))
    return max(min(int(np.ceil(rank_ratio * base)), m), 1)


def svd_warm_start(workload_matrix, rank, rng=None, norm="l1", svd=None):
    """Feasible starting point from the Lemma 3 construction.

    With thin SVD ``W = U S V^T`` truncated to ``k = min(rank, #factors)``:
    ``B0 = sqrt(k) U S`` and ``L0 = V^T / sqrt(k)``. Columns of ``V^T`` have
    L2 norm <= 1, hence L1 norm <= sqrt(k), so ``L0`` is feasible. Extra
    rows (rank > k) are filled with tiny random noise so the optimiser can
    recruit them; ``L0`` is re-projected to stay feasible.

    With ``norm="l2"`` the ``sqrt(k)`` balancing is unnecessary (columns of
    ``V^T`` are already inside the L2 ball): ``B0 = U S``, ``L0 = V^T``.

    ``svd`` may supply a precomputed thin-SVD triple ``(U, sigma, Vt)`` of
    ``W`` (the shared spectral cache) to skip the factorisation here.
    """
    w = as_matrix(workload_matrix, "W")
    rank = check_positive_int(rank, "rank")
    rng = ensure_rng(rng)
    _, projection_fn = _norm_tools(norm)
    m, n = w.shape
    if svd is None:
        u, sigma, vt = np.linalg.svd(w, full_matrices=False)
    else:
        u, sigma, vt = svd
    k = min(rank, sigma.size)
    root = np.sqrt(max(k, 1)) if str(norm).lower() == "l1" else 1.0
    b0 = np.zeros((m, rank))
    l0 = np.zeros((rank, n))
    b0[:, :k] = root * u[:, :k] * sigma[:k]
    l0[:k, :] = vt[:k, :] / root
    if rank > k:
        l0[k:, :] = rng.standard_normal((rank - k, n)) * (1e-3 / np.sqrt(n))
    return b0, projection_fn(l0, 1.0)


def _update_b(target, l, beta):
    """Closed-form B-step (Eq. 9) with precomputed ``target = beta W + pi``:
    ``B = target L^T (beta L L^T + I)^{-1}``."""
    r = l.shape[0]
    rhs = target @ l.T
    system = beta * (l @ l.T) + np.eye(r)
    try:
        cho = sla.cho_factor(system, lower=True, check_finite=False)
        return sla.cho_solve(cho, rhs.T, check_finite=False).T
    except np.linalg.LinAlgError as exc:  # pragma: no cover - system is PD by construction
        raise DecompositionError("B-step normal equations not positive definite") from exc


def _least_squares_b(w, l, ridge=1e-12):
    """Residual-minimising ``B = W L^+`` (ridge-stabilised normal equations)."""
    r = l.shape[0]
    gram = l @ l.T + ridge * np.eye(r)
    return np.linalg.solve(gram, l @ w.T).T


@dataclass
class _ThinSvd:
    """Truncated spectral cache of ``W``: the retained thin factors, the
    retained count ``k`` and the Frobenius norm of everything dropped
    (spectral tail + energy never captured by a randomized sketch)."""

    u: np.ndarray
    sigma: np.ndarray
    vt: np.ndarray
    k: int
    tail_norm: float


def _exact_closure(w, l, svd):
    """Exact residual elimination when ``rank(L-span) >= rank(W)``.

    The optimal ``L`` has rows inside the row space of ``W`` (directions
    outside it cost L1 budget without helping represent ``W``). Projecting
    the phase-1 iterate there — ``L <- (L V) V^T`` with ``W = U S V^T`` —
    keeps its optimised shape, and whenever ``G = L V`` has full column
    rank, ``B = U S G^+`` reproduces the retained spectrum: the residual is
    the cached spectral-tail norm plus the (usually negligible) numerical
    defect of the pseudo-inverse, both computable without any dense m x n
    product. Returns ``(B, L, tau)`` or ``None`` when the closure is not
    applicable (``r < rank(W)`` or a degenerate ``G``).
    """
    k = svd.k
    if k == 0 or l.shape[0] < k:
        return None
    g = l @ svd.vt.T  # (r, k)
    # One small SVD of G serves both the rank test and the pseudo-inverse.
    ug, sg, vgt = np.linalg.svd(g, full_matrices=False)
    if int(np.sum(sg > rank_tolerance(g.shape, sg))) < k:
        return None
    l_exact = g @ svd.vt
    g_pinv = (vgt.T / sg) @ ug.T
    b = (svd.u * svd.sigma) @ g_pinv
    # B L = U S (G^+ G) Vt, so beyond the spectral tail the closure misses
    # exactly ||S (I - G^+ G)||_F (U, Vt orthonormal). In exact arithmetic
    # G^+ G = I here, but for an ill-conditioned G (sigma_min barely above
    # the rank tolerance) the computed pseudo-inverse leaves an O(eps*kappa)
    # defect that can reach ||W|| itself — this O(r k^2) term is the guard
    # the historical dense ||W - B L|| check provided.
    defect = g_pinv @ g
    defect[np.diag_indices(k)] -= 1.0
    defect *= svd.sigma[:, None]
    tau = float(np.sqrt(svd.tail_norm**2 + np.vdot(defect, defect)))
    return b, l_exact, tau


def _thin_svd(w, energy_tol=0.0, svd=None):
    """Thin SVD of ``w`` truncated to its numerical rank, as a
    :class:`_ThinSvd` cache entry.

    With ``energy_tol > 0``, additionally drops the smallest singular
    directions whose cumulative energy stays within
    ``energy_tol * ||w||_F`` — the Formula-(8) relaxation in spectral form:
    representing only the retained directions leaves a residual of exactly
    the dropped tail energy, which is <= gamma. Dropping near-null
    directions is what keeps ``B = U S G^+`` from exploding on workloads
    with tiny trailing eigenvalues (the motivation the paper gives for the
    relaxed program in Section 4.2).

    ``svd`` may supply the precomputed (possibly sketch-truncated) thin
    triple ``(U, sigma, Vt)`` so no factorisation happens here.
    """
    if svd is None:
        u, sigma, vt = np.linalg.svd(w, full_matrices=False)
    else:
        u, sigma, vt = svd
    k = int(np.sum(sigma > rank_tolerance(w.shape, sigma)))
    # Energy the factorisation never saw (only non-zero for a randomized
    # sketch truncated below min(m, n)).
    if sigma.size < min(w.shape):
        unseen = max(float(np.vdot(w, w)) - float(np.sum(sigma**2)), 0.0)
    else:
        unseen = 0.0
    # tail[j] = unseen + sum_{i >= j} sigma_i^2
    tail = np.concatenate([np.cumsum((sigma**2)[::-1])[::-1], [0.0]]) + unseen
    if energy_tol > 0.0 and k > 1:
        budget = (energy_tol * float(np.linalg.norm(w))) ** 2
        while k > 1 and tail[k - 1] <= budget:
            k -= 1
    return _ThinSvd(
        u=u[:, :k],
        sigma=sigma[:k],
        vt=vt[:k, :],
        k=k,
        tail_norm=float(np.sqrt(max(tail[k], 0.0))),
    )


def _refine_residual(w, b, l, target, max_iters, nesterov_iters, svd=None, projection=None):
    """Drive ``||W - B L||_F`` toward zero while keeping the optimised shape.

    Mirrors the paper's treatment of Formula (8) "with gamma -> 0". First
    tries the exact row-space closure (:func:`_exact_closure`), retrying
    with a slight blend toward the always-valid Lemma-3 SVD factor if the
    phase-1 iterate dropped a direction; when the closure does not apply
    (decomposition rank below ``rank(W)``), falls back to alternating the
    least-squares optimum ``B = W L^+`` (an exact residual minimiser
    costing one r x r solve) with pure data-fitting Nesterov steps on
    ``L``. The scale ``tr(B^T B)`` moves only marginally because the
    subspace is already chosen.
    """
    if projection is None:
        projection = project_columns_l1
    if svd is None:
        svd = _thin_svd(w)
    closed = _exact_closure(w, l, svd)
    if closed is not None and closed[2] <= max(target, 1e-9):
        return closed
    k = svd.k
    if k > 0 and l.shape[0] >= k:
        # Blend in the feasible SVD factor to restore any dropped direction.
        l_svd = np.zeros_like(l)
        l_svd[:k, :] = svd.vt / np.sqrt(k)
        blended = projection(0.9 * l + 0.1 * l_svd, 1.0)
        closed = _exact_closure(w, blended, svd)
        if closed is not None and closed[2] <= max(target, 1e-9):
            return closed
    b = _least_squares_b(w, l)
    tau = float(np.linalg.norm(w - b @ l))
    lip_vector = None
    for _ in range(max_iters):
        if tau <= target:
            break
        btb = b.T @ b
        bt_target = b.T @ w
        lmax, lip_vector = power_iteration_lmax(btb, v0=lip_vector)
        l_candidate = nesterov_projected_gradient(
            None,
            None,
            l,
            radius=1.0,
            max_iters=nesterov_iters,
            lipschitz_init=max(lmax * (1.0 + 1e-6), 1e-12),
            projection=projection,
            quadratic=(btb, bt_target),
        ).solution
        b_candidate = _least_squares_b(w, l_candidate)
        new_tau = float(np.linalg.norm(w - b_candidate @ l_candidate))
        if new_tau >= tau * (1.0 - 1e-4):
            if new_tau < tau:
                b, l, tau = b_candidate, l_candidate, new_tau
            break
        b, l, tau = b_candidate, l_candidate, new_tau
    return b, l, tau


def _spectral_triple(w, rank, rng):
    """The single dense factorisation behind the spectral cache.

    Exact LAPACK thin SVD by default; a seeded randomized range-finder SVD
    when an explicit ``rank`` keeps the sketch far below a large small
    dimension (rank discovery for ``rank=None`` needs the full spectrum).
    """
    m, n = w.shape
    small = min(m, n)
    if rank is not None and small > RANDOMIZED_SVD_MIN_DIM:
        sketch_rank = min(int(rank), m)
        if sketch_rank + 10 < 0.8 * small:
            return randomized_svd(w, sketch_rank, oversample=10, n_iter=4, rng=rng)
    return np.linalg.svd(w, full_matrices=False)


def decompose_workload_operator(
    operator,
    rank=None,
    rank_ratio=1.2,
    gamma=1e-2,
    gamma_is_relative=True,
    oversample=10,
    n_iter=4,
    seed=0,
    svd=None,
    **solver_kwargs,
):
    """Matvec-driven Algorithm 1 for implicit (operator-backed) workloads.

    The ALM decomposition never needs the dense ``W`` — only its leading
    spectrum. With the truncated factorisation ``W ~= U S V^T`` (``U``
    orthonormal, ``k`` factors from the matvec range-finder sketch), the
    program of Formula (8) **compresses exactly**: for any ``(B_c, L)``
    decomposing the small ``k x n`` matrix ``W_c = S V^T``,

        ||W - (U B_c) L||_F^2 = ||W_c - B_c L||_F^2 + ||spectral tail||^2,
        tr((U B_c)^T (U B_c)) = tr(B_c^T B_c),

    and the column constraint on ``L`` is untouched — so running the dense
    solver on ``W_c`` (whose thin SVD ``(I_k, S, V^T)`` is free) and
    lifting ``B = U B_c`` reproduces the dense solve on the retained
    spectrum while touching only ``O((m + n) k)`` memory. The spectral tail
    the sketch dropped is accounted into the reported residual; it is the
    same tail a dense fit with the same explicit rank would leave.

    Parameters
    ----------
    operator:
        The implicit workload (:class:`repro.linalg.operator
        .WorkloadOperator`).
    rank:
        Decomposition rank ``r``. ``None`` sketches
        ``min(RANDOMIZED_SVD_MIN_DIM, min(m, n))`` directions and reads the
        numerical rank off the sketch — fine for genuinely low-rank
        workloads; if the sketch cannot certify the spectrum was captured,
        a :class:`DecompositionError` asks for an explicit rank.
    rank_ratio, gamma, gamma_is_relative, oversample, n_iter, seed:
        Rank multiplier and relaxation tolerance (as in
        :func:`decompose_workload`; gamma is named explicitly here because
        the lifted pair's feasibility verdict below is judged against it)
        and sketch parameters for
        :func:`repro.linalg.randomized.randomized_svd`.
    svd:
        Optional precomputed truncated triple ``(U, sigma, Vt)`` of the
        operator (e.g. ``Workload.implicit_svd``) — skips the sketch.
    solver_kwargs:
        Forwarded to :func:`decompose_workload` (gamma, budgets, norm, ...).
    """
    m, n = operator.shape
    small = min(m, n)
    total_t0 = time.perf_counter()

    if svd is None and rank_discovery_needs_dense((m, n), rank):
        # Rank discovery needs the full spectrum, which a capped sketch
        # cannot certify past the threshold — but at this size the dense
        # solve is materialisable, so take it instead of refusing
        # (full-rank moderate workloads like WRange keep their
        # pre-operator default-fit behaviour).
        return decompose_workload(
            operator.to_dense(),
            rank=None,
            rank_ratio=rank_ratio,
            gamma=gamma,
            gamma_is_relative=gamma_is_relative,
            seed=seed,
            **solver_kwargs,
        )

    if svd is not None:
        u, sigma, vt = svd
        sketch_seconds = 0.0
        sketch_flops = 0.0
    else:
        if rank is None:
            sketch_rank = min(RANDOMIZED_SVD_MIN_DIM, small)
        else:
            sketch_rank = min(check_positive_int(rank, "rank"), m, small)
        sketch_t0 = time.perf_counter()
        u, sigma, vt = randomized_svd(
            operator, sketch_rank, oversample=oversample, n_iter=n_iter, rng=seed
        )
        sketch_seconds = time.perf_counter() - sketch_t0
        sketch_flops = 4.0 * (m + n) * sigma.size * (1 + int(n_iter))

    if rank is None:
        detected = int(np.sum(sigma > rank_tolerance((m, n), sigma)))
        if detected >= sigma.size and sigma.size < small:
            raise DecompositionError(
                f"the {sigma.size}-direction sketch did not exhaust this "
                f"{m}x{n} implicit workload's spectrum; pass an explicit "
                "rank to decompose it"
            )
        rank_ratio = check_positive(rank_ratio, "rank_ratio")
        r = max(min(int(np.ceil(rank_ratio * max(detected, 1))), m), 1)
    else:
        r = min(check_positive_int(rank, "rank"), m)

    # Keep only the factors the decomposition can use; the rest is tail.
    keep = min(r, sigma.size)
    u, sigma, vt = u[:, :keep], sigma[:keep], vt[:keep, :]
    compressed = sigma[:, None] * vt
    if float(np.linalg.norm(compressed)) == 0.0:
        raise DecompositionError("cannot decompose an all-zero workload")
    decomposition = decompose_workload(
        compressed,
        rank=r,
        rank_ratio=rank_ratio,
        gamma=gamma,
        gamma_is_relative=gamma_is_relative,
        seed=seed,
        svd=(np.eye(keep), sigma, vt),
        **solver_kwargs,
    )

    # Lift back to the full row space: B = U B_c (orthonormal U preserves
    # the objective), and fold the unseen spectral tail into the residual.
    b = u @ decomposition.b
    tail_sq = max(operator.frobenius_squared() - float(np.sum(sigma**2)), 0.0)
    residual = float(np.sqrt(decomposition.residual_norm**2 + tail_sq))
    # Feasibility is judged against the *full* workload: the compressed
    # solve may be gamma-feasible on the retained spectrum while the
    # dropped tail (inevitable for r < rank(W)) keeps the lifted pair
    # outside gamma — report that honestly, like the dense path's
    # tail-aware _thin_svd accounting does.
    w_norm = float(np.sqrt(max(operator.frobenius_squared(), 0.0)))
    gamma_abs = gamma * w_norm if gamma_is_relative else gamma
    converged = decomposition.converged and residual <= max(gamma_abs, 1e-9 * w_norm)
    perf = dict(decomposition.perf)
    perf["sketch"] = {
        "seconds": sketch_seconds,
        "flops": sketch_flops,
    }
    total = perf.pop("total", {"seconds": 0.0, "flops": 0.0})
    perf["total"] = {
        "seconds": time.perf_counter() - total_t0,
        "flops": total["flops"] + perf["sketch"]["flops"],
    }
    return Decomposition(
        b=b,
        l=decomposition.l,
        residual_norm=residual,
        objective=float(np.sum(b**2)),
        iterations=decomposition.iterations,
        converged=converged,
        history=decomposition.history,
        norm=decomposition.norm,
        perf=perf,
    )


def decompose_workload(
    workload_matrix,
    rank=None,
    rank_ratio=1.2,
    gamma=1e-2,
    gamma_is_relative=True,
    beta0=10.0,
    beta_max=1e10,
    beta_growth=2.0,
    beta_period=10,
    beta_shrink=0.85,
    beta_floor=1.0,
    max_outer=150,
    max_inner=8,
    nesterov_iters=60,
    inner_tol=1e-7,
    stall_iters=30,
    refine=True,
    refine_iters=10,
    phase1_tol=2e-2,
    restarts=1,
    init_perturbation=0.0,
    norm="l1",
    seed=0,
    use_cache=True,
    svd=None,
):
    """Algorithm 1: ALM workload matrix decomposition.

    Three engineering refinements (documented in DESIGN.md, all preserving
    the optimisation problem exactly) are layered on the paper's Algorithm 1:

    1. **Normalisation.** The workload is internally scaled to unit
       Frobenius norm and ``B`` rescaled back at the end; by the Lemma-2
       argument the optimal ``L`` is unchanged, and the penalty schedule
       becomes workload-magnitude independent.
    2. **Lemma-2 rescaling.** After every outer iteration the pair is
       rescaled to ``(Delta L^{-1} ... )`` — concretely ``B <- Delta * B``,
       ``L <- L / Delta`` with ``Delta`` the current sensitivity — an exact
       move that keeps ``B L`` fixed, restores the constraint boundary and
       strictly reduces ``tr(B^T B)``.
    3. **Best-feasible tracking with adaptive penalty.** Feasible iterates
       (``tau`` within the phase-1 working tolerance) are recorded and the
       best (lowest ``tr(B^T B)``) kept; while feasible the penalty
       *shrinks* so the scale term regains weight, while infeasible it
       grows on the paper's double-every-10 schedule. This prevents the
       premature exit at the first (typically warm-start-like) feasible
       point.
    4. **Residual refinement.** Matching the paper's implementation of
       Formula (8) "with gamma -> 0", a cheap second phase alternates the
       exact least-squares ``B = W L^+`` with pure data-fitting ``L`` steps,
       driving the structural residual toward zero (down to ``gamma``)
       without disturbing the optimised scale. Without this phase the
       data-dependent structural error ``||(W - B L) x||^2`` dominates on
       realistic count magnitudes.

    See the module docstring's *Performance notes* for the hot-path
    organisation (single spectral cache, power-iteration Lipschitz,
    Gram-trick residual accounting).

    Parameters
    ----------
    workload_matrix:
        The (m x n) workload ``W`` (a raw array or
        :class:`repro.workloads.Workload`'s ``.matrix``).
    rank:
        Decomposition rank ``r``; ``None`` uses
        ``ceil(rank_ratio * rank(W))``.
    rank_ratio:
        Multiplier applied to ``rank(W)`` when ``rank`` is None (paper
        default 1.2, Section 6.1).
    gamma:
        Relaxation tolerance on ``||W - B L||_F`` (Formula 8). Interpreted
        relative to ``||W||_F`` when ``gamma_is_relative`` (default), else
        absolute, as in the paper's Figure 2 sweep.
    gamma_is_relative:
        See above.
    beta0, beta_max:
        Initial penalty (in normalised units) and the cap that terminates
        the outer loop.
    beta_growth, beta_period:
        While infeasible, ``beta`` is multiplied by ``beta_growth`` every
        ``beta_period`` outer iterations (the paper doubles every 10).
    beta_shrink, beta_floor:
        While feasible, ``beta`` is multiplied by ``beta_shrink`` (floored
        at ``beta_floor``) so the scale objective regains weight.
    max_outer:
        Cap on outer ALM iterations.
    max_inner:
        Block-descent sweeps (B-step + L-step) per outer iteration.
    nesterov_iters:
        Iteration budget for each Algorithm-2 call.
    inner_tol:
        Relative change threshold that ends the inner sweeps early.
    stall_iters:
        Terminate once this many consecutive outer iterations fail to
        improve the best feasible objective.
    refine, refine_iters:
        Enable the residual-refinement phase and its iteration cap.
    phase1_tol:
        Working feasibility tolerance (relative to ``||W||_F``) of the
        adaptive phase; the effective phase-1 tolerance is
        ``max(gamma, phase1_tol)`` and refinement then tightens the
        residual to ``gamma`` (or numerical zero, whichever binds first).
    restarts:
        Number of independent solves; the first uses the SVD warm start,
        later ones perturb it randomly to escape local stationary points of
        the bi-convex subproblem (the program is non-convex jointly in
        ``(B, L)``). The best result (feasible first, then lowest scale)
        is returned.
    init_perturbation:
        Relative magnitude of the random warm-start perturbation (used
        internally by restarts; 0 keeps the pure SVD start).
    seed:
        Seed for the warm start's random padding.
    use_cache:
        Share one spectral factorisation across every stage of the solve
        (default). ``False`` restores the historical behaviour where each
        stage recomputes its own SVD — results agree to solver tolerance;
        the flag exists as an escape hatch and for regression testing.
    svd:
        Optional precomputed thin-SVD triple ``(U, sigma, Vt)`` of the
        *unnormalised* workload (e.g. ``Workload.thin_svd``); when given,
        no dense SVD of ``W`` is performed here at all.

    Returns
    -------
    Decomposition
        ``converged`` is True iff a feasible iterate was found; in that
        case ``(b, l)`` is the best feasible pair seen.

    Raises
    ------
    DecompositionError
        If the solver terminates with a residual so large the decomposition
        is unusable (residual > ||W||_F).
    """
    if restarts > 1:
        if svd is None and use_cache:
            # One factorisation shared by every restart.
            w_probe = as_matrix(workload_matrix, "W")
            if float(np.linalg.norm(w_probe)) == 0.0:
                raise DecompositionError("cannot decompose an all-zero workload")
            svd = _spectral_triple(w_probe, rank, seed)
        candidates = []
        for index in range(int(restarts)):
            candidates.append(
                decompose_workload(
                    workload_matrix,
                    rank=rank,
                    rank_ratio=rank_ratio,
                    gamma=gamma,
                    gamma_is_relative=gamma_is_relative,
                    beta0=beta0,
                    beta_max=beta_max,
                    beta_growth=beta_growth,
                    beta_period=beta_period,
                    beta_shrink=beta_shrink,
                    beta_floor=beta_floor,
                    max_outer=max_outer,
                    max_inner=max_inner,
                    nesterov_iters=nesterov_iters,
                    inner_tol=inner_tol,
                    stall_iters=stall_iters,
                    refine=refine,
                    refine_iters=refine_iters,
                    phase1_tol=phase1_tol,
                    restarts=1,
                    init_perturbation=0.0 if index == 0 else 0.5,
                    norm=norm,
                    seed=seed + index,
                    use_cache=use_cache,
                    svd=svd,
                )
            )
        return min(
            candidates, key=lambda d: (not d.converged, d.objective, d.residual_norm)
        )

    total_t0 = time.perf_counter()
    w_original = as_matrix(workload_matrix, "W")
    sensitivity_fn, projection_fn = _norm_tools(norm)
    gamma = check_positive(gamma, "gamma")
    beta0 = check_positive(beta0, "beta0")
    beta_max = check_positive(beta_max, "beta_max")
    beta_growth = check_positive(beta_growth, "beta_growth")
    beta_period = check_positive_int(beta_period, "beta_period")
    beta_shrink = check_positive(beta_shrink, "beta_shrink")
    beta_floor = check_positive(beta_floor, "beta_floor")
    max_outer = check_positive_int(max_outer, "max_outer")
    max_inner = check_positive_int(max_inner, "max_inner")
    stall_iters = check_positive_int(stall_iters, "stall_iters")

    # Normalise to ||W||_F = 1 (see docstring); rescale B at the end.
    w_norm = float(np.linalg.norm(w_original))
    if w_norm == 0.0:
        raise DecompositionError("cannot decompose an all-zero workload")
    w = w_original / w_norm
    gamma_scaled = gamma if gamma_is_relative else gamma / w_norm
    # The working tolerance tracks gamma but is clamped: below phase1_tol the
    # adaptive phase cannot find feasible iterates to improve on, above
    # ~2.5x phase1_tol "feasible" stops meaning "covers W" and the penalty
    # schedule degenerates (everything looks feasible, beta only shrinks).
    phase1_tol = check_positive(phase1_tol, "phase1_tol")
    phase1_tolerance = min(max(gamma_scaled, phase1_tol), 2.5 * phase1_tol)
    refine_iters = check_positive_int(refine_iters, "refine_iters")

    m, n = w.shape
    perf = {}

    def _phase(name, seconds, flops):
        entry = perf.setdefault(name, {"seconds": 0.0, "flops": 0.0})
        entry["seconds"] += seconds
        entry["flops"] += flops

    # --- The shared spectral cache: at most ONE dense factorisation of W. ---
    phase_t0 = time.perf_counter()
    if svd is not None:
        u_cache, sigma_cache, vt_cache = svd
        cache_triple = (
            np.asarray(u_cache, dtype=np.float64),
            np.asarray(sigma_cache, dtype=np.float64) / w_norm,
            np.asarray(vt_cache, dtype=np.float64),
        )
        svd_flops = 0.0
    elif use_cache:
        cache_triple = _spectral_triple(w, rank, seed)
        svd_flops = 6.0 * m * n * min(m, n)
    else:
        cache_triple = None
        svd_flops = 3.0 * 6.0 * m * n * min(m, n)  # recomputed in three stages
    _phase("spectral", time.perf_counter() - phase_t0, svd_flops)

    phase_t0 = time.perf_counter()
    r = choose_rank(
        w,
        rank=rank,
        rank_ratio=rank_ratio,
        singular_values=cache_triple[1] if cache_triple is not None else None,
    )
    b, l = svd_warm_start(w, r, rng=seed, norm=norm, svd=cache_triple)
    if init_perturbation > 0.0:
        perturb_rng = ensure_rng(seed)
        scale = init_perturbation * max(float(np.abs(l).max()), 1e-6)
        l = projection_fn(l + scale * perturb_rng.standard_normal(l.shape), 1.0)
        b = _least_squares_b(w, l)
    delta = sensitivity_fn(l)
    if delta > 0:
        b, l = b * delta, l / delta

    pi = np.zeros_like(w)
    beta = beta0
    history = []
    tau = float(np.linalg.norm(w - b @ l))
    iterations = 0
    stall = 0
    best_pair = None
    best_objective = np.inf
    best_tau = tau
    best_raw_objective = np.inf
    # Closure tolerance: a closed candidate may leave exactly the dropped
    # spectral tail (<= gamma) as residual. The truncation itself is capped
    # at 1e-3 relative energy: the structural error it induces scales with
    # the (unknown at fit time) data magnitude, so only genuinely negligible
    # directions are dropped regardless of how loose gamma is.
    spectral = _thin_svd(w, energy_tol=min(gamma_scaled, 1e-3), svd=cache_triple)
    closure_tol = gamma_scaled + 1e-9

    def _record_candidate(candidate_b, candidate_l):
        nonlocal best_objective, best_pair
        candidate_objective = float(np.sum(candidate_b**2))
        if candidate_objective < best_objective * (1.0 - 1e-6):
            best_objective = candidate_objective
            best_pair = (candidate_b.copy(), candidate_l.copy())
            return True
        return False

    # The warm start itself is a valid candidate: guarantees the returned
    # decomposition is never worse than the scaled-SVD (Lemma 3) strategy.
    warm_closed = _exact_closure(w, l, spectral)
    if warm_closed is not None and warm_closed[2] <= closure_tol:
        warm_b, warm_l = warm_closed[0], warm_closed[1]
        warm_delta = sensitivity_fn(warm_l)
        if warm_delta > 0:
            _record_candidate(warm_b * warm_delta, warm_l / warm_delta)

    # Diagonal-SVD candidate: L = diag(d) V^T with d_k ~ sigma_k^{2/3}, the
    # optimal per-direction budget allocation for a diagonal G. Unlike the
    # uniform warm start it degrades gracefully on near-singular spectra
    # (tiny directions get tiny budget instead of forcing B to blow up).
    k_svd = spectral.k
    if 0 < k_svd <= r:
        d = spectral.sigma ** (2.0 / 3.0)
        l_diag = np.zeros((r, n))
        l_diag[:k_svd] = d[:, None] * spectral.vt
        diag_delta = sensitivity_fn(l_diag)
        if diag_delta > 0:
            l_diag /= diag_delta
            b_diag = np.zeros((m, r))
            b_diag[:, :k_svd] = spectral.u * (spectral.sigma * diag_delta / d)
            _record_candidate(b_diag, l_diag)
    _phase("init", time.perf_counter() - phase_t0, 4.0 * (m + n) * r * k_svd)

    # --- Phase 1: the outer ALM loop, with Gram-trick residual accounting
    # (the m x n residual is only materialised at multiplier updates). ---
    phase1_t0 = time.perf_counter()
    wsq = float(np.vdot(w, w))  # == 1 after normalisation, kept exact
    piw = 0.0  # <pi, W>, maintained across multiplier updates
    lip_vector = None  # warm start for the power-iteration Lipschitz
    omega_over_beta = None  # final L-step omega of the previous sweep, / beta
    sweep_flops = 2.0 * r * m * n * 2.0 + 4.0 * r * r * (m + n)
    phase1_flops = 0.0
    for k in range(1, max_outer + 1):
        if beta > beta_max:
            break
        iterations = k
        iter_t0 = time.perf_counter()
        iter_flops = 2.0 * m * n  # target = beta W + pi
        target = beta * w + pi
        # --- Approximately solve the Lagrangian subproblem (lines 4-6). ---
        previous_value = None
        res_sq = None
        for _ in range(max_inner):
            l_before = l
            b = _update_b(target, l, beta)
            btb = b.T @ b
            btw = b.T @ w
            bt_target = b.T @ target
            # Loose value tolerance: on clustered spectra the Rayleigh
            # quotient stalls inside the top cluster, where its error is
            # already negligible — and the L-step backtracking absorbs any
            # residual underestimate.
            lmax, lip_vector = power_iteration_lmax(btb, v0=lip_vector, tol=1e-6)
            lipschitz = beta * max(lmax * (1.0 + 1e-6), 1e-12)
            if omega_over_beta is not None:
                # Warm-start omega from the previous sweep's accepted value
                # (beta-normalised): skips the halving descent from the
                # lambda_max ceiling that otherwise wastes the first
                # iterations of every sweep on over-damped steps.
                lipschitz = max(min(lipschitz, omega_over_beta * beta), 1e-12)
            result = nesterov_projected_gradient(
                None,
                None,
                l,
                radius=1.0,
                max_iters=nesterov_iters,
                lipschitz_init=lipschitz,
                projection=projection_fn,
                quadratic=(beta * btb, bt_target),
                # The outer loop consumes the subproblem value only to
                # inner_tol relative accuracy; iterating the L-step one
                # order tighter than that is enough, and far cheaper than
                # the generic 1e-12 default.
                objective_tol=inner_tol * 1e-1,
            )
            l = result.solution
            omega_over_beta = result.final_lipschitz / beta
            # Gram-trick residual accounting (module docstring, note 3).
            cross_w = float(np.vdot(btw, l))
            quad = float(np.vdot(l, btb @ l))
            res_sq = wsq - 2.0 * cross_w + quad
            btpi = bt_target - beta * btw
            pi_residual = piw - float(np.vdot(btpi, l))
            subproblem_value = (
                0.5 * float(np.vdot(b, b)) + pi_residual + 0.5 * beta * res_sq
            )
            iter_flops += sweep_flops + result.iterations * (6.0 * r * r * n + 4.0 * r * n)
            if previous_value is not None:
                change = abs(previous_value - subproblem_value)
                if change <= inner_tol * max(abs(previous_value), 1.0):
                    break
            previous_value = subproblem_value
            # Fixed-point break: the B-step is a deterministic function of
            # L, so if the L-step no longer moves, further sweeps can only
            # reproduce the same pair — stop exactly where the seed solver
            # would have idled.
            l_move = float(np.linalg.norm(l - l_before))
            if l_move <= 1e-9 * max(float(np.linalg.norm(l)), 1e-30):
                break

        # --- Exact Lemma-2 rescaling onto the sensitivity boundary (an
        # exact move: B L, and hence the Gram residual, is unchanged). ---
        delta = sensitivity_fn(l)
        if delta > 0:
            b, l = b * delta, l / delta

        tau = float(np.sqrt(max(res_sq, 0.0)))
        objective = float(np.vdot(b, b))
        feasible = tau <= phase1_tolerance
        beta_used = beta  # the penalty this iteration actually ran with
        if feasible:
            # Judge the candidate by what it will actually become: the
            # exactly-closed pair (residual forced to ~0). Selecting on the
            # raw objective would favour iterates whose low tr(B^T B) is an
            # artefact of under-covering W, which the closure then pays for
            # with an exploding B. When the closure is applicable in
            # principle (r >= rank(W)) but this iterate's L has collapsed
            # below rank(W), the iterate is skipped entirely.
            closure_applicable = spectral.k > 0 and l.shape[0] >= spectral.k
            closed = _exact_closure(w, l, spectral)
            iter_flops += 2.0 * r * n * spectral.k + 16.0 * r * spectral.k**2
            candidate = None
            if closed is not None and closed[2] <= closure_tol:
                candidate_b, candidate_l = closed[0], closed[1]
                delta_c = sensitivity_fn(candidate_l)
                if delta_c > 0:
                    candidate_b, candidate_l = candidate_b * delta_c, candidate_l / delta_c
                candidate = (candidate_b, candidate_l)
            elif not closure_applicable:
                candidate = (b, l)
            recorded = candidate is not None and _record_candidate(*candidate)
            # Keep exploring while the raw trajectory still moves, even if
            # it has not yet beaten the pre-seeded SVD candidates.
            moving = (
                tau < best_tau * (1.0 - 1e-9)
                or objective < best_raw_objective * (1.0 - 1e-9)
            )
            best_tau = min(best_tau, tau)
            best_raw_objective = min(best_raw_objective, objective)
            stall = 0 if (recorded or moving) else stall + 1
            # Feasible: give the scale term more weight.
            beta = max(beta * beta_shrink, beta_floor)
        else:
            if tau < best_tau * (1.0 - 1e-9):
                stall = 0
            else:
                stall += 1
            best_tau = min(best_tau, tau)
            # Infeasible: the paper's penalty and multiplier updates. Only
            # here is the dense m x n residual materialised.
            if k % beta_period == 0:
                beta *= beta_growth
            residual = w - b @ l
            pi = pi + beta * residual
            piw = float(np.vdot(pi, w))
            iter_flops += 2.0 * m * r * n + 4.0 * m * n
        iter_elapsed = time.perf_counter() - iter_t0
        phase1_flops += iter_flops
        history.append(
            {
                "tau": tau * w_norm,
                "objective": objective * w_norm**2,
                "beta": beta_used,
                "feasible": feasible,
                "elapsed": iter_elapsed,
                "flops": iter_flops,
            }
        )
        if stall >= stall_iters:
            break
    _phase("phase1", time.perf_counter() - phase1_t0, phase1_flops)

    if best_pair is not None:
        b, l = best_pair
        tau = float(np.linalg.norm(w - b @ l))

    if refine:
        # --- Phase 2: drive the residual down to gamma (the spectral-tail
        # truncation means "down to the dropped tail energy"). ---
        phase_t0 = time.perf_counter()
        target = max(gamma_scaled, 1e-9)
        b, l, tau = _refine_residual(
            w, b, l, target, refine_iters, nesterov_iters, svd=spectral, projection=projection_fn
        )
        delta = sensitivity_fn(l)
        if delta > 0:
            b, l = b * delta, l / delta
            tau = float(np.linalg.norm(w - b @ l))
        refine_elapsed = time.perf_counter() - phase_t0
        refine_flops = 4.0 * m * r * n
        _phase("refine", refine_elapsed, refine_flops)
        history.append(
            {
                "tau": tau * w_norm,
                "objective": float(np.vdot(b, b)) * w_norm**2,
                "beta": beta,
                "feasible": tau <= gamma_scaled,
                "phase": "refine",
                "elapsed": refine_elapsed,
                "flops": refine_flops,
            }
        )

    if tau > 1.0 + 1e-9:
        raise DecompositionError(
            f"decomposition failed: residual {tau * w_norm:.3e} exceeds ||W||_F; "
            "increase rank or iterations"
        )
    perf["total"] = {
        "seconds": time.perf_counter() - total_t0,
        "flops": sum(entry["flops"] for entry in perf.values()),
    }
    return Decomposition(
        b=b * w_norm,
        l=l,
        residual_norm=tau * w_norm,
        objective=float(np.sum(b**2)) * w_norm**2,
        iterations=iterations,
        converged=best_pair is not None or tau <= gamma_scaled,
        history=history,
        norm=str(norm).lower(),
        perf=perf,
    )
