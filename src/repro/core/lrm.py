"""The Low-Rank Mechanism (LRM) — the paper's primary contribution.

Given a workload ``W``, :class:`LowRankMechanism` finds the decomposition
``W ~= B L`` of Formula (8) with the ALM solver (:mod:`repro.core.alm`) and
releases

    M_P(Q, D) = B (L x + Lap(Delta(L) / eps)^r)                     (Eq. 6)

Because the decomposition constrains every column of ``L`` to L1 norm at
most 1, the intermediate query set ``L x`` has sensitivity at most 1 and the
expected squared noise error is ``2 tr(B^T B) Delta(L)^2 / eps^2`` (Lemma 1)
— the quantity the optimisation minimises. When ``gamma > 0`` the release
additionally carries the structural error ``||(W - B L) x||^2`` bounded by
Theorem 3.

Typical usage::

    from repro import LowRankMechanism, wrelated

    workload = wrelated(m=128, n=512, s=20, seed=0)
    mechanism = LowRankMechanism(gamma=1e-2).fit(workload)
    noisy = mechanism.answer(x, epsilon=0.1, rng=7)
"""

from __future__ import annotations

import numpy as np

from repro.core.alm import decompose_workload, decompose_workload_operator
from repro.core.bounds import lrm_error_upper_bound
from repro.linalg.randomized import (
    RANDOMIZED_SVD_MIN_DIM,
    rank_discovery_needs_dense,
)
from repro.exceptions import NotFittedError
from repro.linalg.validation import as_vector, check_positive, check_positive_int
from repro.mechanisms.base import Mechanism
from repro.mechanisms.operator import ReleaseOperator
from repro.privacy.noise import laplace_noise

__all__ = ["LowRankMechanism", "GaussianLowRankMechanism", "spectral_cache_for_fit"]


def spectral_cache_for_fit(workload, rank):
    """The workload's spectral cache to hand the solver, or ``None``.

    Reuses an already-memoized ``Workload.thin_svd``; otherwise computes it
    only when an exact factorisation is the right tool anyway (automatic
    rank discovery, or a matrix small enough that LAPACK beats a sketch).
    With an explicit ``rank`` on a large matrix this returns ``None`` so
    :func:`repro.core.alm.decompose_workload` stays free to take its
    cheaper randomized range-finder path.
    """
    svd = workload.cached_thin_svd
    if svd is None and (rank is None or min(workload.shape) <= RANDOMIZED_SVD_MIN_DIM):
        svd = workload.thin_svd
    return svd


class LowRankMechanism(Mechanism):
    """Batch linear-query mechanism based on low-rank workload decomposition.

    Parameters
    ----------
    rank:
        Decomposition rank ``r``; ``None`` (default) uses
        ``ceil(rank_ratio * rank(W))``.
    rank_ratio:
        Ratio applied to ``rank(W)`` when ``rank`` is None. The paper's
        Section 6.1 recommends values in ``[1.0, 1.2]``; default 1.2.
    gamma:
        Relaxation tolerance of Formula (8); larger values converge faster
        at a small structural-error cost (Figure 2). Interpreted relative
        to ``||W||_F`` when ``gamma_is_relative`` (default), matching the
        solver's normalised internals; pass ``gamma_is_relative=False`` for
        the paper's absolute sweep values.
    gamma_is_relative:
        See above.
    max_outer, max_inner, nesterov_iters:
        Budgets forwarded to :func:`repro.core.alm.decompose_workload`.
    seed:
        Seed for the decomposition warm start (the *mechanism* randomness
        is supplied per ``answer`` call instead).
    """

    name = "LRM"
    #: Column-constraint norm of the decomposition program ("l1" pairs with
    #: Laplace noise / eps-DP; subclasses may use "l2" + Gaussian noise).
    decomposition_norm = "l1"

    def __init__(
        self,
        rank=None,
        rank_ratio=1.2,
        gamma=1e-2,
        gamma_is_relative=True,
        max_outer=150,
        max_inner=8,
        nesterov_iters=60,
        stall_iters=30,
        seed=0,
    ):
        super().__init__()
        if rank is not None:
            rank = check_positive_int(rank, "rank")
        self.rank = rank
        self.rank_ratio = check_positive(rank_ratio, "rank_ratio")
        self.gamma = check_positive(gamma, "gamma")
        self.gamma_is_relative = bool(gamma_is_relative)
        self.max_outer = check_positive_int(max_outer, "max_outer")
        self.max_inner = check_positive_int(max_inner, "max_inner")
        self.nesterov_iters = check_positive_int(nesterov_iters, "nesterov_iters")
        self.stall_iters = check_positive_int(stall_iters, "stall_iters")
        self.seed = seed
        self._decomposition = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def _fit(self, workload):
        solver_kwargs = dict(
            rank=self.rank,
            rank_ratio=self.rank_ratio,
            gamma=self.gamma,
            gamma_is_relative=self.gamma_is_relative,
            max_outer=self.max_outer,
            max_inner=self.max_inner,
            nesterov_iters=self.nesterov_iters,
            stall_iters=self.stall_iters,
            norm=self.decomposition_norm,
            seed=self.seed,
        )
        m, n = workload.shape
        small = min(m, n)
        if workload.is_implicit and not rank_discovery_needs_dense((m, n), self.rank):
            # Matvec-driven fit: the sketch, the compressed k x n solve and
            # the lift never touch a dense W — the only path that exists at
            # large domains, and a large constant-factor win below them.
            # The memoized implicit_svd plays the role of the thin-SVD
            # cache: repeated fits on one workload share one sketch. When
            # rank discovery would outrun the sketch cap on a *moderate*
            # workload, fall through to the dense path instead (the same
            # rank_discovery_needs_dense predicate routes
            # decompose_workload_operator), so default fits of e.g.
            # full-rank WRange keep their pre-operator behaviour.
            sketch_rank = min(
                self.rank if self.rank is not None else RANDOMIZED_SVD_MIN_DIM,
                m,
                small,
            )
            self._decomposition = decompose_workload_operator(
                workload.operator,
                svd=workload.implicit_svd(sketch_rank, seed=0),
                **solver_kwargs,
            )
            return
        # Share the workload's memoized spectral cache: the fit then
        # performs no dense SVD of W at all, and repeated fits on the same
        # workload (parameter sweeps, engine releases) reuse one
        # factorisation.
        self._decomposition = decompose_workload(
            workload.matrix,
            svd=spectral_cache_for_fit(workload, self.rank),
            **solver_kwargs,
        )

    @property
    def decomposition(self):
        """The fitted :class:`repro.core.alm.Decomposition`."""
        if self._decomposition is None:
            raise NotFittedError("LowRankMechanism must be fitted before use")
        return self._decomposition

    @property
    def effective_rank(self):
        """Rank ``r`` actually used by the decomposition."""
        return self.decomposition.rank

    # ------------------------------------------------------------------ #
    # Answering (Eq. 6)
    # ------------------------------------------------------------------ #
    def _answer(self, x, epsilon, rng):
        decomposition = self.decomposition
        strategy_answers = decomposition.l @ x
        sensitivity = decomposition.sensitivity
        if sensitivity <= 0.0:
            noisy = strategy_answers
        else:
            noisy = strategy_answers + laplace_noise(
                strategy_answers.size, sensitivity, epsilon, rng
            )
        return decomposition.b @ noisy

    def release_operator(self):
        """Eq. 6 as a pipeline: strategy ``L``, recombination ``B``."""
        if self._decomposition is None:
            return None
        decomposition = self._decomposition
        sensitivity = decomposition.sensitivity
        return ReleaseOperator(
            strategy=decomposition.l,
            recombination=decomposition.b,
            sensitivity=sensitivity,
            noise=self._noise_family if sensitivity > 0.0 else "none",
            delta=float(getattr(self, "delta", 0.0)),
        )

    #: Noise family paired with the decomposition norm ("laplace" for the
    #: L1 program; the Gaussian subclass overrides to "gaussian").
    _noise_family = "laplace"

    # ------------------------------------------------------------------ #
    # Error accounting
    # ------------------------------------------------------------------ #
    def expected_squared_error(self, epsilon, x=None):
        """Expected total squared error of a release.

        The noise part is Lemma 1's ``2 Phi Delta^2 / eps^2``, exact. When
        ``gamma > 0`` the decomposition may not reproduce ``W`` exactly;
        pass the data vector ``x`` to include the (deterministic)
        structural error ``||(W - B L) x||^2``, otherwise only the noise
        part is returned.
        """
        epsilon = check_positive(epsilon, "epsilon")
        decomposition = self.decomposition
        error = decomposition.expected_noise_error(epsilon)
        if x is not None:
            x = as_vector(x, "x", size=self.workload.domain_size)
            # W x through the workload's operator action and B (L x) from
            # the small factors: no m x n product, so the structural term
            # stays available on implicit large-domain workloads.
            structural = self.workload.answer(x) - decomposition.b @ (decomposition.l @ x)
            error += float(structural @ structural)
        return error

    def theoretical_upper_bound(self, epsilon):
        """Lemma 3 upper bound evaluated on the fitted workload spectrum."""
        self._check_fitted()
        return lrm_error_upper_bound(self.workload.singular_values, epsilon)

    def plan_metadata(self):
        """Base metadata plus the decomposition facts ``explain()`` reports."""
        meta = super().plan_metadata()
        meta["noise"] = self._noise_family
        if self._decomposition is not None:
            decomposition = self._decomposition
            meta["decomposition_rank"] = int(decomposition.rank)
            meta["sensitivity"] = float(decomposition.sensitivity)
            meta["decomposition_norm"] = decomposition.norm
            meta["residual_norm"] = float(decomposition.residual_norm)
            meta["converged"] = bool(decomposition.converged)
        return meta


class GaussianLowRankMechanism(LowRankMechanism):
    """(eps, delta)-DP Low-Rank Mechanism with Gaussian noise.

    The decomposition program is solved with per-column **L2** constraints
    (``sum_i L_ij^2 <= 1``), the sensitivity becomes the max column L2 norm
    of ``L``, and the release is

        B (L x + N(0, sigma^2)^r),

    with ``sigma`` the analytic Gaussian calibration of
    :func:`repro.privacy.noise.gaussian_sigma` — the smallest noise
    satisfying the exact (eps, delta) privacy profile, valid at **every**
    ``eps > 0`` (the classical ``Delta_2 sqrt(2 ln(1.25/delta)) / eps``
    formula is a looser sufficient condition that only holds for eps < 1).

    This is the natural Gaussian companion of the paper's mechanism (its
    matrix-mechanism lineage optimises exactly this L2 program); the
    expected squared error is ``tr(B^T B) sigma^2``.

    Parameters are those of :class:`LowRankMechanism` plus ``delta``, the
    (eps, delta)-DP failure probability (must be < 1).
    """

    name = "GLRM"
    decomposition_norm = "l2"
    requires_delta = True
    privacy_params = ("delta",)
    _noise_family = "gaussian"

    def __init__(self, delta=1e-6, **kwargs):
        super().__init__(**kwargs)
        delta = check_positive(delta, "delta")
        if delta >= 1.0:
            from repro.exceptions import ValidationError

            raise ValidationError(f"delta must be < 1, got {delta}")
        self.delta = delta

    def _answer(self, x, epsilon, rng):
        from repro.privacy.noise import gaussian_noise

        decomposition = self.decomposition
        strategy_answers = decomposition.l @ x
        sensitivity = decomposition.sensitivity
        if sensitivity <= 0.0:
            noisy = strategy_answers
        else:
            noisy = strategy_answers + gaussian_noise(
                strategy_answers.size, sensitivity, epsilon, self.delta, rng
            )
        return decomposition.b @ noisy

    def expected_squared_error(self, epsilon, x=None):
        """``tr(B^T B) sigma^2`` plus the optional structural term."""
        epsilon = check_positive(epsilon, "epsilon")
        decomposition = self.decomposition
        if decomposition.sensitivity <= 0.0:
            error = 0.0
        else:
            error = decomposition.expected_gaussian_noise_error(epsilon, self.delta)
        if x is not None:
            x = as_vector(x, "x", size=self.workload.domain_size)
            # W x through the workload's operator action and B (L x) from
            # the small factors: no m x n product, so the structural term
            # stays available on implicit large-domain workloads.
            structural = self.workload.answer(x) - decomposition.b @ (decomposition.l @ x)
            error += float(structural @ structural)
        return error
