"""Kronecker-factored Low-Rank Mechanism for multi-dimensional domains.

Multi-attribute workloads are naturally Kronecker products: asking "query
``a`` on attribute 1 AND query ``b`` on attribute 2" for all pairs gives
``W = W1 (x) W2`` over the product domain ``n = n1 * n2`` (row-major
layout). Decomposing the *factors* separately composes exactly:

* if ``W1 = B1 L1`` and ``W2 = B2 L2`` then
  ``W1 (x) W2 = (B1 (x) B2)(L1 (x) L2)``;
* column L1 norms multiply, so ``Delta(L1 (x) L2) = Delta(L1) Delta(L2)``;
* squared entry sums multiply, so ``Phi(B1 (x) B2) = Phi(B1) Phi(B2)``.

Hence the factored mechanism's expected squared error is
``2 Phi1 Phi2 (Delta1 Delta2)^2 / eps^2`` — computed, fitted and *applied*
without ever materialising the ``(m1 m2) x (n1 n2)`` product matrix: for
row-major ``x = vec(X)``, ``(A (x) C) x = vec(A X C^T)``. This is how the
matrix-mechanism line (HDMM) scales to multi-dimensional domains, applied
here to the paper's decomposition.
"""

from __future__ import annotations

from repro.core.alm import decompose_workload
from repro.exceptions import NotFittedError, ValidationError
from repro.linalg.validation import as_vector, check_positive, ensure_rng
from repro.mechanisms.base import as_workload
from repro.privacy.noise import laplace_noise

__all__ = ["KronLowRankMechanism", "kron_apply"]


def kron_apply(a, c, x):
    """Compute ``(A (x) C) x`` without forming the Kronecker product.

    ``x`` must have length ``a.shape[1] * c.shape[1]`` and is interpreted
    as the row-major flattening of an ``(n1, n2)`` array.
    """
    x = as_vector(x, "x", size=a.shape[1] * c.shape[1])
    grid = x.reshape(a.shape[1], c.shape[1])
    return (a @ grid @ c.T).ravel()


class KronLowRankMechanism:
    """LRM over a two-attribute product domain, fitted factor-wise.

    Mirrors the :class:`repro.mechanisms.base.Mechanism` lifecycle with a
    two-workload ``fit``:

    >>> mech = KronLowRankMechanism().fit(w_rows, w_cols)
    >>> noisy = mech.answer(x_flat, epsilon=0.1, rng=0)

    Parameters are forwarded to both factor decompositions.
    """

    name = "KLRM"

    def __init__(self, **solver_kwargs):
        self.solver_kwargs = dict(solver_kwargs)
        self._w1 = None
        self._w2 = None
        self._dec1 = None
        self._dec2 = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, workload1, workload2):
        """Decompose both factors; returns ``self``."""
        self._w1 = as_workload(workload1)
        self._w2 = as_workload(workload2)
        # Each factor workload shares its memoized spectral cache with the
        # solver (see repro.core.alm performance notes) under the same
        # gating as LowRankMechanism, so large explicit-rank factors keep
        # the randomized range-finder path; implicit factors run the
        # matvec-driven compressed fit. A caller-provided "svd" could only
        # describe one factor, so it is ignored here.
        from repro.core.alm import decompose_workload_operator
        from repro.core.lrm import spectral_cache_for_fit

        kwargs = dict(self.solver_kwargs)
        kwargs.pop("svd", None)
        rank = kwargs.get("rank")

        def _decompose(workload):
            if workload.is_implicit:
                return decompose_workload_operator(workload.operator, **kwargs)
            return decompose_workload(
                workload.matrix, svd=spectral_cache_for_fit(workload, rank), **kwargs
            )

        self._dec1 = _decompose(self._w1)
        self._dec2 = _decompose(self._w2)
        return self

    def _check_fitted(self):
        if self._dec1 is None:
            raise NotFittedError("KronLowRankMechanism must be fitted before use")

    @property
    def is_fitted(self):
        """True once ``fit`` has been called."""
        return self._dec1 is not None

    @property
    def factor_decompositions(self):
        """The two fitted :class:`Decomposition` objects."""
        self._check_fitted()
        return self._dec1, self._dec2

    # ------------------------------------------------------------------ #
    # Composite accounting
    # ------------------------------------------------------------------ #
    @property
    def domain_size(self):
        """Product-domain size ``n1 * n2``."""
        self._check_fitted()
        return self._w1.domain_size * self._w2.domain_size

    @property
    def num_queries(self):
        """Product batch size ``m1 * m2``."""
        self._check_fitted()
        return self._w1.num_queries * self._w2.num_queries

    @property
    def scale(self):
        """``Phi(B1 (x) B2) = Phi(B1) Phi(B2)``."""
        self._check_fitted()
        return self._dec1.scale * self._dec2.scale

    @property
    def sensitivity(self):
        """``Delta(L1 (x) L2) = Delta(L1) Delta(L2)``."""
        self._check_fitted()
        return self._dec1.sensitivity * self._dec2.sensitivity

    def expected_squared_error(self, epsilon):
        """Lemma 1 on the composite: ``2 Phi1 Phi2 (Delta1 Delta2)^2 / eps^2``."""
        epsilon = check_positive(epsilon, "epsilon")
        delta = self.sensitivity
        return 2.0 * self.scale * delta * delta / (epsilon * epsilon)

    def average_expected_error(self, epsilon):
        """Per-query expected error."""
        return self.expected_squared_error(epsilon) / self.num_queries

    # ------------------------------------------------------------------ #
    # Answering
    # ------------------------------------------------------------------ #
    def answer(self, x, epsilon, rng=None):
        """One eps-DP release of the product batch over ``x`` (row-major)."""
        self._check_fitted()
        epsilon = check_positive(epsilon, "epsilon")
        rng = ensure_rng(rng)
        x = as_vector(x, "x", size=self.domain_size)
        strategy_answers = kron_apply(self._dec1.l, self._dec2.l, x)
        delta = self.sensitivity
        if delta > 0.0:
            strategy_answers = strategy_answers + laplace_noise(
                strategy_answers.size, delta, epsilon, rng
            )
        return kron_apply(self._dec1.b, self._dec2.b, strategy_answers)

    def exact_answer(self, x):
        """Noise-free product-batch answers (for testing / utility checks).

        Applied factor-wise through the workloads' operators, so implicit
        factors never materialise."""
        self._check_fitted()
        x = as_vector(x, "x", size=self.domain_size)
        from repro.linalg.operator import KronOperator

        return KronOperator(self._w1.operator, self._w2.operator).matvec(x)

    # ------------------------------------------------------------------ #
    # Product workload (lazy)
    # ------------------------------------------------------------------ #
    def as_workload(self, max_entries=10_000_000):
        """The product workload, backed by a **lazy** Kronecker operator.

        No ``(m1 m2) x (n1 n2)`` array is formed here — answers apply the
        factors via the vec trick. ``max_entries`` keeps the historical
        guard as a size sanity check (it bounds what ``.matrix`` would
        materialise if a caller reaches for the dense escape hatch).
        """
        self._check_fitted()
        entries = self.num_queries * self.domain_size
        if entries > max_entries:
            raise ValidationError(
                f"materialising {entries} entries exceeds max_entries={max_entries}"
            )
        return self._w1.kron(self._w2)
