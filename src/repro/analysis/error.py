"""Empirical error measurement (the Section 6 protocol).

The paper's figures plot *Average Squared Error*: "the average squared L2
distance between the exact query answers and the noisy answers", with every
algorithm executed 20 times. These helpers implement that protocol for any
fitted mechanism and for raw answer vectors.
"""

from __future__ import annotations

import time

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.validation import as_vector, check_positive_int, ensure_rng

__all__ = [
    "squared_error",
    "average_squared_error",
    "measure_mechanism",
    "MeasuredError",
]


def squared_error(exact, noisy):
    """Total squared L2 distance ``||noisy - exact||_2^2``."""
    exact = as_vector(exact, "exact")
    noisy = as_vector(noisy, "noisy", size=exact.size)
    residual = noisy - exact
    return float(residual @ residual)


def average_squared_error(exact, noisy):
    """Per-query squared error ``||noisy - exact||_2^2 / m``."""
    exact = as_vector(exact, "exact")
    return squared_error(exact, noisy) / exact.size


class MeasuredError:
    """Monte-Carlo error measurement with timing.

    Attributes
    ----------
    mechanism_name:
        Label of the mechanism measured.
    total_squared_error:
        Mean over trials of ``||y_noisy - W x||^2``.
    average_squared_error:
        The above divided by ``m`` (the figure metric).
    trials:
        Number of independent releases.
    answer_seconds:
        Mean wall-clock seconds per release.
    """

    def __init__(self, mechanism_name, total_squared_error, num_queries, trials, answer_seconds):
        self.mechanism_name = str(mechanism_name)
        self.total_squared_error = float(total_squared_error)
        self.average_squared_error = float(total_squared_error) / num_queries
        self.trials = int(trials)
        self.answer_seconds = float(answer_seconds)

    def __repr__(self):
        return (
            f"MeasuredError({self.mechanism_name}, "
            f"avg={self.average_squared_error:.4g}, trials={self.trials})"
        )


def measure_mechanism(mechanism, x, epsilon, trials=20, rng=None):
    """Run ``trials`` independent releases and report mean squared error.

    The mechanism must already be fitted. Returns a :class:`MeasuredError`.
    """
    if not getattr(mechanism, "is_fitted", False):
        raise ValidationError("mechanism must be fitted before measurement")
    trials = check_positive_int(trials, "trials")
    rng = ensure_rng(rng)
    workload = mechanism.workload
    x = as_vector(x, "x", size=workload.domain_size)
    exact = workload.answer(x)

    total = 0.0
    started = time.perf_counter()
    for _ in range(trials):
        noisy = mechanism.answer(x, epsilon, rng)
        total += squared_error(exact, noisy)
    elapsed = time.perf_counter() - started
    return MeasuredError(
        mechanism_name=getattr(mechanism, "name", type(mechanism).__name__),
        total_squared_error=total / trials,
        num_queries=workload.num_queries,
        trials=trials,
        answer_seconds=elapsed / trials,
    )
