"""Post-processing of noisy releases.

Differential privacy is closed under post-processing: any data-independent
transformation of a private release stays private. These helpers implement
the standard accuracy-improving transforms a consumer of LRM answers
applies:

* non-negativity clamping (counts cannot be negative),
* integer rounding (counts are integers),
* least-squares *consistency*: when the batch contains linearly dependent
  queries (the whole premise of the paper — e.g. ``q1 = q2 + q3``), the
  noisy answers generally violate those identities; projecting onto the
  row-space-consistent set removes the violation and never increases the
  L2 error.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.validation import as_matrix, as_vector, check_shape_compatible

__all__ = [
    "clamp_non_negative",
    "round_counts",
    "project_consistent",
    "postprocess_answers",
]


def clamp_non_negative(answers):
    """Clamp negative answers to zero (valid for counting queries with
    non-negative weights)."""
    answers = as_vector(answers, "answers")
    return np.maximum(answers, 0.0)


def round_counts(answers):
    """Round answers to the nearest integer (counting queries)."""
    answers = as_vector(answers, "answers")
    return np.round(answers)


def project_consistent(workload_matrix, answers, rcond=1e-12):
    """Project noisy answers onto the consistent set ``{W x : x in R^n}``.

    Noisy answers to linearly dependent queries are generally inconsistent
    (``y1 != y2 + y3`` even though ``q1 = q2 + q3``). The orthogonal
    projection onto the column space of ``W`` — ``y <- W W^+ y`` — restores
    every such identity and, being a projection of the noise, can only
    shrink its L2 norm. Useful when consumers rely on the identities.
    """
    w = as_matrix(workload_matrix, "W")
    answers = as_vector(answers, "answers", size=w.shape[0])
    # Orthonormal basis of col(W) via QR of the (economy) SVD.
    u, sigma, _ = np.linalg.svd(w, full_matrices=False)
    tol = max(w.shape) * np.finfo(np.float64).eps * (sigma[0] if sigma.size else 0.0)
    basis = u[:, sigma > max(tol, rcond * (sigma[0] if sigma.size else 0.0))]
    return basis @ (basis.T @ answers)


def postprocess_answers(workload_matrix, answers, non_negative=False, integral=False,
                        consistent=True):
    """Apply the standard post-processing pipeline to a noisy release.

    Order: consistency projection (a global L2 improvement), then
    non-negativity, then rounding — the order practitioners use because
    clamping/rounding are non-linear and would break consistency if applied
    first. Returns a new array.

    Only the consistency projection reads ``workload_matrix``; callers
    applying clamping/rounding alone may pass ``None`` (how the engine
    post-processes releases of implicit workloads too large to
    materialise).
    """
    answers = as_vector(answers, "answers")
    if consistent:
        answers = project_consistent(workload_matrix, answers)
    if non_negative:
        answers = clamp_non_negative(answers)
    if integral:
        answers = round_counts(answers)
    return answers
