"""Closed-form expected errors and strategy diagnostics.

Complements :mod:`repro.analysis.error` (Monte-Carlo) with the analytic
calculus used throughout the paper:

* generic strategy-mechanism error ``2 Delta(A)^2 / eps^2 * ||W A^+||_F^2``,
* the Section-1/Section-3.2 baseline formulas,
* the Lemma-1 decomposition error ``2 Phi Delta^2 / eps^2``,
* the NOD-vs-NOR dominance test (``M_R`` beats ``M_D`` iff
  ``m * max_j sum_i W_ij^2 < sum_ij W_ij^2``).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.validation import as_matrix, check_positive
from repro.privacy.sensitivity import l1_sensitivity

__all__ = [
    "strategy_expected_error",
    "noise_on_data_error",
    "noise_on_results_error",
    "decomposition_expected_error",
    "nor_beats_nod",
]


def strategy_expected_error(workload_matrix, strategy_matrix, epsilon, rcond=1e-12):
    """Expected squared error of answering ``W`` through strategy ``A``.

    Matrix-mechanism calculus: release ``A x + Lap(Delta(A)/eps)`` and
    recombine with the pseudo-inverse, giving error

        2 * Delta(A)^2 / eps^2 * ||W A^+||_F^2.

    ``W`` must lie in the row space of ``A`` (otherwise the strategy cannot
    answer the workload and this raises).
    """
    w = as_matrix(workload_matrix, "W")
    a = as_matrix(strategy_matrix, "A")
    epsilon = check_positive(epsilon, "epsilon")
    if a.shape[1] != w.shape[1]:
        raise ValidationError(
            f"strategy has {a.shape[1]} columns but workload has {w.shape[1]}"
        )
    pinv = np.linalg.pinv(a, rcond=rcond)
    recombination = w @ pinv
    # Verify the strategy actually supports the workload.
    residual = recombination @ a - w
    if np.linalg.norm(residual) > 1e-6 * max(np.linalg.norm(w), 1.0):
        raise ValidationError("workload is not in the row space of the strategy")
    delta = l1_sensitivity(a)
    scale = delta / epsilon
    return 2.0 * scale * scale * float(np.sum(recombination**2))


def noise_on_data_error(workload_matrix, epsilon, unit_sensitivity=1.0):
    """``M_D`` expected squared error: ``2 Delta^2 ||W||_F^2 / eps^2`` (Eq. 4)."""
    w = as_matrix(workload_matrix, "W")
    epsilon = check_positive(epsilon, "epsilon")
    scale = float(unit_sensitivity) / epsilon
    return 2.0 * scale * scale * float(np.sum(w**2))


def noise_on_results_error(workload_matrix, epsilon):
    """``M_R`` expected squared error: ``2 m Delta(W)^2 / eps^2`` (Eq. 5)."""
    w = as_matrix(workload_matrix, "W")
    epsilon = check_positive(epsilon, "epsilon")
    delta = l1_sensitivity(w)
    scale = delta / epsilon
    return 2.0 * w.shape[0] * scale * scale


def decomposition_expected_error(b, l, epsilon):
    """Lemma 1: ``2 Phi(B, L) Delta(B, L)^2 / eps^2`` for a decomposition."""
    b = as_matrix(b, "B")
    l = as_matrix(l, "L")
    epsilon = check_positive(epsilon, "epsilon")
    if b.shape[1] != l.shape[0]:
        raise ValidationError(f"B has {b.shape[1]} columns but L has {l.shape[0]} rows")
    phi = float(np.sum(b**2))
    delta = l1_sensitivity(l)
    return 2.0 * phi * delta * delta / (epsilon * epsilon)


def nor_beats_nod(workload_matrix):
    """Section 3.2's dominance test: noise-on-results beats noise-on-data
    iff ``m * max_j sum_i W_ij^2 < sum_j sum_i W_ij^2`` — impossible once
    ``m >= n``. Returns a bool."""
    w = as_matrix(workload_matrix, "W")
    m = w.shape[0]
    column_squares = np.sum(w**2, axis=0)
    return bool(m * column_squares.max() < column_squares.sum())
