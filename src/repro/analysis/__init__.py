"""Analysis: empirical error measurement, analytic formulas, comparisons."""

from repro.analysis.comparison import ComparisonRow, compare_mechanisms
from repro.analysis.diagnostics import (
    decomposition_report,
    format_decomposition_report,
    sparkline,
)
from repro.analysis.postprocess import (
    clamp_non_negative,
    postprocess_answers,
    project_consistent,
    round_counts,
)
from repro.analysis.error import (
    MeasuredError,
    average_squared_error,
    measure_mechanism,
    squared_error,
)
from repro.analysis.theory import (
    decomposition_expected_error,
    noise_on_data_error,
    noise_on_results_error,
    nor_beats_nod,
    strategy_expected_error,
)

__all__ = [
    "ComparisonRow",
    "MeasuredError",
    "clamp_non_negative",
    "postprocess_answers",
    "project_consistent",
    "round_counts",
    "average_squared_error",
    "compare_mechanisms",
    "decomposition_expected_error",
    "decomposition_report",
    "format_decomposition_report",
    "sparkline",
    "measure_mechanism",
    "noise_on_data_error",
    "noise_on_results_error",
    "nor_beats_nod",
    "squared_error",
    "strategy_expected_error",
]
