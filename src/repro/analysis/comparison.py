"""Side-by-side mechanism comparison — the engine behind Figures 4-9.

:func:`compare_mechanisms` fits a list of mechanisms on one workload,
measures each one's empirical (and, where available, analytic) error on the
same data vector, and returns structured rows ready for reporting.
"""

from __future__ import annotations

import time

from repro.analysis.error import measure_mechanism
from repro.exceptions import ReproError
from repro.linalg.validation import as_vector, check_positive, check_positive_int, ensure_rng
from repro.mechanisms.base import as_workload
from repro.mechanisms.registry import make_mechanism

__all__ = ["ComparisonRow", "compare_mechanisms"]


class ComparisonRow:
    """One mechanism's outcome in a comparison.

    ``error`` is ``None`` when the mechanism failed (e.g. MM on a domain too
    large for its O(n^3) solver within the configured budget); the failure
    reason is kept in ``failure``.
    """

    def __init__(
        self,
        mechanism,
        average_squared_error=None,
        expected_average_error=None,
        fit_seconds=None,
        answer_seconds=None,
        failure=None,
    ):
        self.mechanism = mechanism
        self.average_squared_error = average_squared_error
        self.expected_average_error = expected_average_error
        self.fit_seconds = fit_seconds
        self.answer_seconds = answer_seconds
        self.failure = failure

    @property
    def ok(self):
        """True when the mechanism produced a measurement."""
        return self.failure is None

    def as_dict(self):
        """Plain-dict view for CSV/JSON reporting."""
        return {
            "mechanism": self.mechanism,
            "average_squared_error": self.average_squared_error,
            "expected_average_error": self.expected_average_error,
            "fit_seconds": self.fit_seconds,
            "answer_seconds": self.answer_seconds,
            "failure": self.failure,
        }

    def __repr__(self):
        if not self.ok:
            return f"ComparisonRow({self.mechanism}, failed: {self.failure})"
        return f"ComparisonRow({self.mechanism}, avg={self.average_squared_error:.4g})"


def compare_mechanisms(
    workload,
    x,
    epsilon,
    mechanisms=("LM", "WM", "HM", "LRM"),
    trials=20,
    rng=None,
    mechanism_kwargs=None,
    include_expected=True,
):
    """Fit and measure several mechanisms on one workload and data vector.

    Parameters
    ----------
    workload:
        A :class:`repro.workloads.Workload` or raw matrix.
    x:
        Data vector of unit counts.
    epsilon:
        Privacy budget per release.
    mechanisms:
        Iterable of registry labels and/or pre-constructed (unfitted)
        mechanism instances.
    trials:
        Independent releases per mechanism (the paper uses 20).
    rng:
        Seed or generator shared across mechanisms (each consumes from it).
    mechanism_kwargs:
        Optional dict mapping label -> constructor kwargs, e.g.
        ``{"LRM": {"gamma": 1.0}}``.
    include_expected:
        Also record the analytic expected average error where the mechanism
        provides one.

    Returns
    -------
    list[ComparisonRow]
        One row per requested mechanism, in input order. A mechanism whose
        ``fit`` or measurement raises a library error is reported as failed
        rather than aborting the whole comparison.
    """
    workload = as_workload(workload)
    x = as_vector(x, "x", size=workload.domain_size)
    epsilon = check_positive(epsilon, "epsilon")
    trials = check_positive_int(trials, "trials")
    rng = ensure_rng(rng)
    mechanism_kwargs = dict(mechanism_kwargs or {})

    rows = []
    for spec in mechanisms:
        if isinstance(spec, str):
            label = spec.strip().upper()
            try:
                mechanism = make_mechanism(label, **mechanism_kwargs.get(label, {}))
            except ReproError as exc:
                rows.append(ComparisonRow(label, failure=str(exc)))
                continue
        else:
            mechanism = spec
            label = getattr(mechanism, "name", type(mechanism).__name__)

        started = time.perf_counter()
        try:
            mechanism.fit(workload)
        except ReproError as exc:
            rows.append(ComparisonRow(label, failure=f"fit failed: {exc}"))
            continue
        fit_seconds = time.perf_counter() - started

        measured = measure_mechanism(mechanism, x, epsilon, trials=trials, rng=rng)
        expected = None
        if include_expected:
            try:
                expected = mechanism.average_expected_error(epsilon)
            except NotImplementedError:
                expected = None
        rows.append(
            ComparisonRow(
                label,
                average_squared_error=measured.average_squared_error,
                expected_average_error=expected,
                fit_seconds=fit_seconds,
                answer_seconds=measured.answer_seconds,
            )
        )
    return rows
