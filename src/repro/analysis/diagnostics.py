"""Decomposition diagnostics: understand what the ALM solver produced.

Turns a :class:`repro.core.alm.Decomposition` (plus its workload) into a
human-readable report: convergence trace, scale/sensitivity accounting,
column-budget utilisation of ``L``, and the position of the achieved error
between the Section-4 bounds. Used by the tour example and handy when
tuning solver budgets.
"""

from __future__ import annotations

import numpy as np

from repro.core.alm import Decomposition
from repro.core.bounds import hardt_talwar_lower_bound, lrm_error_upper_bound
from repro.exceptions import ValidationError
from repro.linalg.validation import as_matrix, check_positive
from repro.privacy.sensitivity import column_l1_norms, column_l2_norms

__all__ = ["decomposition_report", "format_decomposition_report", "sparkline"]

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values, width=40):
    """Log-scale text sparkline of a positive series (solver traces)."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        return ""
    if values.size > width:
        # Down-sample by taking the mean of equal chunks.
        chunks = np.array_split(values, width)
        values = np.array([chunk.mean() for chunk in chunks])
    positive = np.maximum(values, 1e-300)
    logs = np.log10(positive)
    low, high = float(logs.min()), float(logs.max())
    span = max(high - low, 1e-12)
    indices = ((logs - low) / span * (len(_SPARK_LEVELS) - 1)).astype(int)
    return "".join(_SPARK_LEVELS[i] for i in indices)


def decomposition_report(decomposition, workload=None, epsilon=1.0):
    """Structured diagnostics for a decomposition.

    Returns a dict with convergence, accounting, column-utilisation and
    (when the workload is provided) bound-comparison sections.
    """
    if not isinstance(decomposition, Decomposition):
        raise ValidationError("decomposition_report expects a Decomposition")
    epsilon = check_positive(epsilon, "epsilon")

    norms = (
        column_l1_norms(decomposition.l)
        if decomposition.norm == "l1"
        else column_l2_norms(decomposition.l)
    )
    saturated = float(np.mean(norms > 1.0 - 1e-6))
    report = {
        "rank": decomposition.rank,
        "norm": decomposition.norm,
        "converged": decomposition.converged,
        "iterations": decomposition.iterations,
        "residual_norm": decomposition.residual_norm,
        "scale": decomposition.scale,
        "sensitivity": decomposition.sensitivity,
        "expected_noise_error": decomposition.expected_noise_error(epsilon),
        "column_budget": {
            "mean": float(norms.mean()),
            "max": float(norms.max()),
            "saturated_fraction": saturated,
        },
        "trace": {
            "tau": [entry["tau"] for entry in decomposition.history],
            "objective": [entry["objective"] for entry in decomposition.history],
        },
    }
    if workload is not None:
        matrix = getattr(workload, "matrix", None)
        if matrix is None:
            matrix = as_matrix(workload, "workload")
        singular_values = np.linalg.svd(matrix, compute_uv=False)
        achieved = decomposition.expected_noise_error(epsilon)
        upper = lrm_error_upper_bound(singular_values, epsilon)
        lower = hardt_talwar_lower_bound(singular_values, epsilon)
        nod = 2.0 * float(np.sum(matrix**2)) / (epsilon * epsilon)
        report["bounds"] = {
            "lemma3_upper": upper,
            "hardt_talwar_lower": lower,
            "noise_on_data": nod,
            "achieved": achieved,
            "fraction_of_upper": achieved / upper if upper > 0 else np.inf,
            "vs_noise_on_data": nod / achieved if achieved > 0 else np.inf,
        }
    return report


def format_decomposition_report(decomposition, workload=None, epsilon=1.0):
    """Render :func:`decomposition_report` as a readable text block."""
    report = decomposition_report(decomposition, workload=workload, epsilon=epsilon)
    lines = [
        f"decomposition: rank {report['rank']} ({report['norm']}), "
        f"{'converged' if report['converged'] else 'NOT converged'} "
        f"after {report['iterations']} iterations",
        f"  residual ||W - BL||_F : {report['residual_norm']:.3e}",
        f"  scale tr(B^T B)       : {report['scale']:.6g}",
        f"  sensitivity Delta(L)  : {report['sensitivity']:.6f}",
        f"  expected noise error  : {report['expected_noise_error']:.6g}  (eps={epsilon})",
        "  column budget          : mean {mean:.3f}, max {max:.3f}, "
        "{saturated_fraction:.0%} saturated".format(**report["column_budget"]),
    ]
    taus = report["trace"]["tau"]
    if taus:
        lines.append(f"  residual trace         : {sparkline(taus)}")
        lines.append(f"  objective trace        : {sparkline(report['trace']['objective'])}")
    if "bounds" in report:
        bounds = report["bounds"]
        lines.append(
            f"  bounds: lower {bounds['hardt_talwar_lower']:.4g} <= "
            f"achieved {bounds['achieved']:.4g} <= upper {bounds['lemma3_upper']:.4g}"
        )
        lines.append(
            f"  vs noise-on-data       : {bounds['vs_noise_on_data']:.2f}x better"
        )
    return "\n".join(lines) + "\n"
