"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one base class. The subclasses
distinguish the three failure modes a user can hit:

* bad inputs (:class:`ValidationError`),
* an optimizer that was asked for something it cannot deliver
  (:class:`DecompositionError`),
* use of a mechanism before it was fitted (:class:`NotFittedError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ValidationError(ReproError, ValueError):
    """An input matrix, vector or parameter failed validation."""


class DecompositionError(ReproError, RuntimeError):
    """The workload decomposition solver could not produce a usable result."""


class NotFittedError(ReproError, RuntimeError):
    """A mechanism method requiring ``fit()`` was called before fitting."""


class PrivacyBudgetError(ReproError, ValueError):
    """A privacy-budget operation would overspend or is otherwise invalid."""


class LedgerError(ReproError, RuntimeError):
    """A durable budget-ledger operation failed (see
    :mod:`repro.privacy.ledger`)."""


class LedgerCorruptError(LedgerError):
    """A ledger's on-disk records fail their integrity checks in a way
    recovery cannot repair silently: a checksum mismatch or a gap *before*
    the tail. (A torn final record — the signature of a crashed writer —
    is repaired automatically and does not raise.)"""


class LedgerBusyError(LedgerError):
    """The cross-process ledger lock could not be acquired within the
    bounded retry-with-backoff policy; another process is holding it."""
