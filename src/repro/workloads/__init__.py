"""Workload substrate: the Workload class and Section 6 generators."""

from repro.workloads.generators import (
    WORKLOAD_KINDS,
    allrange_workload,
    identity_workload,
    marginals_workload,
    prefix_workload,
    sliding_window_workload,
    total_workload,
    wdiscrete,
    workload_by_name,
    wrange,
    wrelated,
)
from repro.workloads.workload import Workload

__all__ = [
    "WORKLOAD_KINDS",
    "Workload",
    "allrange_workload",
    "identity_workload",
    "marginals_workload",
    "prefix_workload",
    "sliding_window_workload",
    "total_workload",
    "wdiscrete",
    "workload_by_name",
    "wrange",
    "wrelated",
]
