"""Workload generators from Section 6 of the paper, plus common extras.

The three evaluation workloads:

* **WDiscrete** — each weight is ``+1`` with probability ``p = 0.02`` and
  ``-1`` otherwise (dense, high-sensitivity, essentially full rank).
* **WRange** — random range (interval) queries: endpoints ``a <= b`` drawn
  uniformly from the domain; weights 1 inside ``[a, b]``, 0 outside.
* **WRelated** — explicitly low-rank: ``W = C A`` with a base query matrix
  ``A (s x n)`` and correlation matrix ``C (m x s)``, both with i.i.d.
  standard-normal entries, so ``rank(W) = s`` almost surely.

Extras useful for examples and tests: identity (NOD's implicit strategy),
the total-sum query, and the full prefix-sum workload.

Every *structured* family (WRange, prefix, all-range, sliding windows,
marginals, total, identity) returns an **implicit, operator-backed**
:class:`repro.workloads.Workload`: answers, sensitivities and the
matvec-driven fit run in near-linear time and memory, and the dense
``m x n`` array exists only if a caller explicitly materialises it
(``.matrix`` / ``.dense()``). This is what opens domain sizes the dense
representation cannot hold (prefix at ``n = 65,536`` is a 34 GB array;
its interval operator is two length-``n`` index vectors). WDiscrete and
WRelated are unstructured by construction and stay dense.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.linalg.operator import IntervalOperator, MarginalOperator, SparseOperator
from repro.linalg.validation import (
    check_positive_int,
    check_probability,
    ensure_rng,
)
from repro.workloads.workload import Workload

__all__ = [
    "wdiscrete",
    "wrange",
    "wrelated",
    "identity_workload",
    "total_workload",
    "prefix_workload",
    "allrange_workload",
    "marginals_workload",
    "sliding_window_workload",
    "workload_by_name",
    "WORKLOAD_KINDS",
]

#: Names of the three paper workloads, accepted by :func:`workload_by_name`.
WORKLOAD_KINDS = ("WDiscrete", "WRange", "WRelated")


def wdiscrete(m, n, p=0.02, seed=None):
    """Random discrete workload: ``W_ij = +1`` w.p. ``p``, else ``-1``."""
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    p = check_probability(p, "p")
    rng = ensure_rng(seed)
    matrix = np.where(rng.random((m, n)) < p, 1.0, -1.0)
    return Workload(matrix, name="WDiscrete", metadata={"m": m, "n": n, "p": p})


def wrange(m, n, seed=None):
    """Random range-query workload: uniform interval ``[a, b]`` per query.

    Implicit (interval-operator backed): answering is two cumulative-sum
    reads per query instead of a dense row product.
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    rng = ensure_rng(seed)
    starts = rng.integers(0, n, size=m)
    ends = rng.integers(0, n, size=m)
    low = np.minimum(starts, ends)
    high = np.maximum(starts, ends)
    return Workload(
        IntervalOperator(low, high, n), name="WRange", metadata={"m": m, "n": n}
    )


def wrelated(m, n, s=None, seed=None):
    """Low-rank correlated workload ``W = C A`` with ``rank(W) = s``.

    ``s`` defaults to the paper's bold setting ``0.4 * min(m, n)`` (at least
    one base query).
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    if s is None:
        s = max(int(round(0.4 * min(m, n))), 1)
    s = check_positive_int(s, "s")
    if s > min(m, n):
        raise ValidationError(f"s={s} exceeds min(m, n)={min(m, n)}")
    rng = ensure_rng(seed)
    base = rng.standard_normal((s, n))
    correlation = rng.standard_normal((m, s))
    return Workload(correlation @ base, name="WRelated", metadata={"m": m, "n": n, "s": s})


def identity_workload(n):
    """The identity workload: one query per unit count (NOD's strategy).

    Implicit (sparse-operator backed); ``.matrix`` materialises the dense
    identity on demand.
    """
    n = check_positive_int(n, "n")
    return Workload(
        SparseOperator(sp.identity(n, format="csr")), name="Identity", metadata={"n": n}
    )


def total_workload(n):
    """Single query summing every unit count (implicit: the interval
    ``[0, n - 1]``)."""
    n = check_positive_int(n, "n")
    return Workload(
        IntervalOperator([0], [n - 1], n), name="Total", metadata={"n": n}
    )


def prefix_workload(n):
    """All prefix sums ``x_1 + ... + x_k`` for ``k = 1..n`` (lower triangular
    all-ones matrix); the classic continual-counting workload.

    Implicit: one cumulative sum answers all ``n`` prefixes, so the
    workload scales to domains whose dense ``n x n`` matrix could not be
    allocated.
    """
    n = check_positive_int(n, "n")
    return Workload(
        IntervalOperator(np.zeros(n, dtype=np.int64), np.arange(n), n),
        name="Prefix",
        metadata={"n": n},
    )


def allrange_workload(n):
    """All ``n (n + 1) / 2`` contiguous range queries over the domain.

    The canonical benchmark workload of the matrix-mechanism literature.
    Implicit (interval-operator backed), so memory is ``O(n^2)`` index
    entries for the quadratic query count rather than ``O(n^3)`` dense
    weights — keep ``n`` moderate, the *query* count still grows
    quadratically.
    """
    n = check_positive_int(n, "n")
    # Row order matches the historical nested loop: (0,0), (0,1), ...,
    # (0,n-1), (1,1), ..., (n-1,n-1).
    counts = np.arange(n, 0, -1)
    lows = np.repeat(np.arange(n), counts)
    highs = np.concatenate([np.arange(start, n) for start in range(n)])
    return Workload(
        IntervalOperator(lows, highs, n), name="AllRange", metadata={"n": n}
    )


def marginals_workload(rows, cols):
    """Row and column marginals of a ``rows x cols`` grid domain.

    The domain vector is the grid flattened row-major (``n = rows * cols``);
    the batch asks every row sum followed by every column sum — a strongly
    correlated (rank ``rows + cols - 1``) workload where LRM shines.
    Implicit: answered by two reshaped sums.
    """
    rows = check_positive_int(rows, "rows")
    cols = check_positive_int(cols, "cols")
    return Workload(
        MarginalOperator(rows, cols),
        name="Marginals",
        metadata={"rows": rows, "cols": cols},
    )


def sliding_window_workload(n, window):
    """All length-``window`` moving sums over the domain (``n - window + 1``
    queries); the moving-average workload of streaming analytics.
    Implicit (interval-operator backed)."""
    n = check_positive_int(n, "n")
    window = check_positive_int(window, "window")
    if window > n:
        raise ValidationError(f"window {window} exceeds domain size {n}")
    m = n - window + 1
    starts = np.arange(m)
    return Workload(
        IntervalOperator(starts, starts + window - 1, n),
        name="SlidingWindow",
        metadata={"n": n, "window": window},
    )


def workload_by_name(kind, m, n, s=None, p=0.02, seed=None):
    """Construct one of the paper's three workloads by name.

    ``kind`` is matched case-insensitively against
    ``{"WDiscrete", "WRange", "WRelated"}``.
    """
    key = str(kind).strip().lower()
    if key == "wdiscrete":
        return wdiscrete(m, n, p=p, seed=seed)
    if key == "wrange":
        return wrange(m, n, seed=seed)
    if key == "wrelated":
        return wrelated(m, n, s=s, seed=seed)
    raise ValidationError(f"unknown workload kind {kind!r}; choose from {WORKLOAD_KINDS}")
