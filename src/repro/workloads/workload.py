"""The :class:`Workload` abstraction: a batch of linear counting queries.

Section 3.2 of the paper represents a batch of ``m`` linear queries over
``n`` unit counts as a workload matrix ``W`` (m x n); the exact batch answer
is ``W x``. This class wraps that matrix together with cached spectral
quantities the Low-Rank Mechanism and its analysis need repeatedly (rank,
singular values, sensitivity), plus provenance metadata so experiment output
is self-describing.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.svd import eigenvalue_ratio, rank_tolerance, singular_values
from repro.linalg.validation import as_matrix, as_vector, check_shape_compatible
from repro.privacy.sensitivity import l1_sensitivity

__all__ = ["Workload"]


class Workload:
    """An immutable batch of ``m`` linear queries over ``n`` unit counts.

    Parameters
    ----------
    matrix:
        The (m x n) workload matrix ``W``.
    name:
        Human-readable label (e.g. ``"WRange"``); used in reports.
    metadata:
        Optional dict of generation parameters, stored as provenance.

    Examples
    --------
    >>> w = Workload([[1.0, 1.0], [1.0, 0.0]], name="demo")
    >>> w.answer([3.0, 4.0])
    array([7., 3.])
    """

    def __init__(self, matrix, name="workload", metadata=None):
        self._matrix = as_matrix(matrix, "workload matrix")
        self._matrix.setflags(write=False)
        self.name = str(name)
        self.metadata = dict(metadata or {})
        self._rank = None
        self._singular_values = None
        self._sensitivity = None
        self._thin_svd = None
        self._content_digest = None

    # ------------------------------------------------------------------ #
    # Basic shape / access
    # ------------------------------------------------------------------ #
    @property
    def matrix(self):
        """The underlying read-only (m x n) array."""
        return self._matrix

    @property
    def num_queries(self):
        """Number of queries ``m`` (rows)."""
        return self._matrix.shape[0]

    @property
    def domain_size(self):
        """Number of unit counts ``n`` (columns)."""
        return self._matrix.shape[1]

    @property
    def shape(self):
        """``(m, n)``."""
        return self._matrix.shape

    def __repr__(self):
        return f"Workload(name={self.name!r}, shape={self.shape})"

    def __eq__(self, other):
        if not isinstance(other, Workload):
            return NotImplemented
        return self.shape == other.shape and np.array_equal(self._matrix, other._matrix)

    def __hash__(self):
        # Content-only, like __eq__: the name is provenance, not identity —
        # equal workloads must hash equal (Python's hash contract).
        return hash((self.shape, self.content_digest))

    @property
    def content_digest(self):
        """Memoized SHA-1 hex digest of the matrix bytes (plus shape).

        Unlike the builtin ``hash``, this is stable across processes (no
        per-run salting), so cache keys and audit logs built from it can be
        compared between runs; memoization means the matrix is serialized
        once, not on every cache lookup.
        """
        if self._content_digest is None:
            digest = hashlib.sha1()
            digest.update(repr(self.shape).encode())
            digest.update(np.ascontiguousarray(self._matrix).tobytes())
            self._content_digest = digest.hexdigest()
        return self._content_digest

    # ------------------------------------------------------------------ #
    # Query answering
    # ------------------------------------------------------------------ #
    def answer(self, x):
        """Exact batch answer ``W x`` for the data vector ``x``."""
        x = as_vector(x, "x")
        check_shape_compatible(self._matrix, x, "W", "x")
        return self._matrix @ x

    def row(self, index):
        """Weight vector of query ``index`` (a copy)."""
        if not 0 <= index < self.num_queries:
            raise ValidationError(f"query index {index} out of range [0, {self.num_queries})")
        return self._matrix[index].copy()

    # ------------------------------------------------------------------ #
    # Cached spectral quantities
    # ------------------------------------------------------------------ #
    @property
    def thin_svd(self):
        """Memoized thin SVD ``(U, sigma, Vt)`` of ``W`` — the shared
        spectral cache. Every spectral property below derives from this one
        factorisation, and :class:`repro.core.lrm.LowRankMechanism` threads
        it into :func:`repro.core.alm.decompose_workload` so a fit performs
        no dense SVD of ``W`` at all."""
        if self._thin_svd is None:
            u, sigma, vt = np.linalg.svd(self._matrix, full_matrices=False)
            for factor in (u, sigma, vt):
                factor.setflags(write=False)
            self._thin_svd = (u, sigma, vt)
            if self._singular_values is None:
                self._singular_values = sigma
        return self._thin_svd

    @property
    def cached_thin_svd(self):
        """The memoized thin-SVD triple if already computed, else ``None``.

        Lets callers (e.g. the Low-Rank Mechanism) reuse an existing cache
        without forcing a full factorisation when a cheaper randomized one
        would do on a large matrix."""
        return self._thin_svd

    @property
    def rank(self):
        """Numerical rank of ``W`` (Section 3.3) — derived from the cached
        singular values with numpy's standard tolerance."""
        if self._rank is None:
            sigma = self.singular_values
            self._rank = int(np.sum(sigma > rank_tolerance(self.shape, sigma)))
        return self._rank

    @property
    def singular_values(self):
        """Singular values of ``W`` in non-ascending order (the paper's
        "eigenvalues" ``lambda_1 >= ... >= lambda_s``)."""
        if self._singular_values is None:
            values = singular_values(self._matrix)
            values.setflags(write=False)
            self._singular_values = values
        return self._singular_values

    @property
    def sensitivity(self):
        """L1 sensitivity ``max_j sum_i |W_ij|`` of the batch."""
        if self._sensitivity is None:
            self._sensitivity = l1_sensitivity(self._matrix)
        return self._sensitivity

    @property
    def frobenius_squared(self):
        """``||W||_F^2``, the squared sum of all entries."""
        return float(np.sum(self._matrix**2))

    @property
    def eigenvalue_ratio(self):
        """Conditioning constant ``C = lambda_1 / lambda_r`` of Theorem 2."""
        return eigenvalue_ratio(self._matrix)

    def is_low_rank(self):
        """True iff ``rank(W) < min(m, n)``, i.e. rows or columns are
        linearly dependent and LRM has structure to exploit."""
        return self.rank < min(self.shape)

    # ------------------------------------------------------------------ #
    # Derived workloads
    # ------------------------------------------------------------------ #
    def subset(self, indices):
        """New workload restricted to the given query rows."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            raise ValidationError("subset needs at least one query index")
        if indices.min() < 0 or indices.max() >= self.num_queries:
            raise ValidationError("subset indices out of range")
        return Workload(
            self._matrix[indices],
            name=f"{self.name}[subset]",
            metadata={**self.metadata, "parent": self.name},
        )

    def stack(self, other):
        """Concatenate two workloads over the same domain (rows stacked)."""
        if not isinstance(other, Workload):
            raise ValidationError("stack expects another Workload")
        if other.domain_size != self.domain_size:
            raise ValidationError(
                f"domain mismatch: {self.domain_size} vs {other.domain_size}"
            )
        return Workload(
            np.vstack([self._matrix, other._matrix]),
            name=f"{self.name}+{other.name}",
            metadata={"parents": [self.name, other.name]},
        )

    def scaled(self, factor):
        """Workload with every weight multiplied by ``factor`` (e.g. to turn
        counts into weighted averages)."""
        factor = float(factor)
        if factor == 0.0:
            raise ValidationError("scaling by zero produces a degenerate workload")
        return Workload(
            self._matrix * factor,
            name=f"{factor}*{self.name}",
            metadata={**self.metadata, "scaled_by": factor},
        )

    def kron(self, other):
        """Kronecker-product workload over the product domain.

        For a multi-attribute domain laid out row-major as
        ``x[(i, j)] = x_flat[i * n2 + j]``, the batch asking "query ``a``
        on attribute 1 AND query ``b`` on attribute 2" for every pair
        ``(a, b)`` is exactly ``W1 (x) W2`` — the construction behind
        marginal and hierarchical multi-dimensional workloads (HDMM-style).
        The resulting rank is ``rank(W1) * rank(W2)``, so products of
        low-rank pieces stay low-rank for LRM.
        """
        if not isinstance(other, Workload):
            raise ValidationError("kron expects another Workload")
        return Workload(
            np.kron(self._matrix, other._matrix),
            name=f"{self.name}(x){other.name}",
            metadata={"parents": [self.name, other.name], "kron": True},
        )
