"""The :class:`Workload` abstraction: a batch of linear counting queries.

Section 3.2 of the paper represents a batch of ``m`` linear queries over
``n`` unit counts as a workload matrix ``W`` (m x n); the exact batch answer
is ``W x``. This class wraps that matrix together with cached spectral
quantities the Low-Rank Mechanism and its analysis need repeatedly (rank,
singular values, sensitivity), plus provenance metadata so experiment output
is self-describing.

A workload may be backed by a dense array **or** by an implicit
:class:`repro.linalg.operator.WorkloadOperator` — structured families
(prefix, all-range, sliding windows, marginals, Kronecker products) answer,
report sensitivity and feed the matvec-driven fit path without ever
materialising the ``m x n`` array, which is what lets domains of
``n = 65,536`` and beyond exist at all. ``.matrix`` remains available as an
explicit escape hatch, guarded by :data:`Workload.MAX_DENSE_ENTRIES` so an
accidental dense read of a huge implicit workload fails loudly instead of
exhausting memory.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.operator import (
    DenseOperator,
    KronOperator,
    ScaledOperator,
    WorkloadOperator,
)
from repro.linalg.randomized import randomized_svd
from repro.linalg.svd import eigenvalue_ratio, rank_tolerance, singular_values
from repro.linalg.validation import as_matrix, as_vector, check_shape_compatible
from repro.privacy.sensitivity import l1_sensitivity

__all__ = ["Workload"]


class Workload:
    """An immutable batch of ``m`` linear queries over ``n`` unit counts.

    Parameters
    ----------
    matrix:
        The (m x n) workload ``W`` — a dense array, or an implicit
        :class:`repro.linalg.operator.WorkloadOperator`.
    name:
        Human-readable label (e.g. ``"WRange"``); used in reports.
    metadata:
        Optional dict of generation parameters, stored as provenance.

    Examples
    --------
    >>> w = Workload([[1.0, 1.0], [1.0, 0.0]], name="demo")
    >>> w.answer([3.0, 4.0])
    array([7., 3.])
    """

    #: Guard on materialising an implicit workload through ``.matrix`` /
    #: spectral properties (50M float64 entries = 400 MB). Use
    #: :meth:`dense` with an explicit cap to override deliberately.
    MAX_DENSE_ENTRIES = 50_000_000

    def __init__(self, matrix, name="workload", metadata=None):
        if isinstance(matrix, WorkloadOperator):
            self._operator = matrix
            self._matrix = None
            self._implicit = True
        else:
            self._matrix = as_matrix(matrix, "workload matrix")
            self._matrix.setflags(write=False)
            self._operator = None
            self._implicit = False
        self.name = str(name)
        self.metadata = dict(metadata or {})
        self._rank = None
        self._singular_values = None
        self._sensitivity = None
        self._thin_svd = None
        self._content_digest = None
        self._implicit_svd_cache = {}

    # ------------------------------------------------------------------ #
    # Basic shape / access
    # ------------------------------------------------------------------ #
    @property
    def is_implicit(self):
        """True when the workload is operator-backed (no dense array was
        ever supplied; ``.matrix`` would have to materialise one)."""
        return self._implicit

    @property
    def operator(self):
        """The workload as a :class:`WorkloadOperator` action — the
        preferred access path for answering and fitting. Dense workloads
        return a cached :class:`DenseOperator` wrapper."""
        if self._operator is None:
            self._operator = DenseOperator(self._matrix)
        return self._operator

    @property
    def matrix(self):
        """The underlying read-only (m x n) array.

        For implicit workloads this **materialises** the operator — the
        explicit escape hatch — and refuses beyond
        :data:`MAX_DENSE_ENTRIES` entries; prefer :attr:`operator` /
        :meth:`answer`, or :meth:`dense` with an explicit cap.
        """
        if self._matrix is None:
            m, n = self._operator.shape
            if m * n > self.MAX_DENSE_ENTRIES:
                raise ValidationError(
                    f"materialising this implicit {m}x{n} workload would "
                    f"create {m * n} entries (> MAX_DENSE_ENTRIES="
                    f"{self.MAX_DENSE_ENTRIES}); use .operator for "
                    "matvec access or .dense(max_entries=...) to override"
                )
            dense = np.ascontiguousarray(self._operator.to_dense(), dtype=np.float64)
            dense.setflags(write=False)
            self._matrix = dense
        return self._matrix

    def dense(self, max_entries=None):
        """A dense-backed twin of this workload (explicit escape hatch).

        ``max_entries`` overrides :data:`MAX_DENSE_ENTRIES`; ``None`` keeps
        the default guard. The twin shares name/metadata but has a dense
        content digest.
        """
        if not self._implicit:
            return self
        m, n = self.shape
        cap = self.MAX_DENSE_ENTRIES if max_entries is None else int(max_entries)
        if m * n > cap:
            raise ValidationError(
                f"materialising {m * n} entries exceeds max_entries={cap}"
            )
        return Workload(
            self._operator.to_dense(), name=self.name, metadata=self.metadata
        )

    @property
    def num_queries(self):
        """Number of queries ``m`` (rows)."""
        return self.shape[0]

    @property
    def domain_size(self):
        """Number of unit counts ``n`` (columns)."""
        return self.shape[1]

    @property
    def shape(self):
        """``(m, n)``."""
        if self._matrix is not None:
            return self._matrix.shape
        return self._operator.shape

    def __repr__(self):
        backing = ", implicit" if self._implicit else ""
        return f"Workload(name={self.name!r}, shape={self.shape}{backing})"

    def __eq__(self, other):
        if not isinstance(other, Workload):
            return NotImplemented
        # Content identity == digest identity. Dense digests hash the exact
        # matrix bytes, implicit digests the canonical operator descriptor;
        # a dense and an implicit workload therefore never compare equal
        # even with identical entries — the representation is part of the
        # identity (matching the hash contract, and what cache keys need).
        return self.shape == other.shape and self.content_digest == other.content_digest

    def __hash__(self):
        # Content-only, like __eq__: the name is provenance, not identity —
        # equal workloads must hash equal (Python's hash contract).
        return hash((self.shape, self.content_digest))

    @property
    def content_digest(self):
        """Memoized SHA-1 hex digest of the workload content (plus shape).

        Unlike the builtin ``hash``, this is stable across processes (no
        per-run salting), so cache keys and audit logs built from it can be
        compared between runs; memoization means the content is serialized
        once, not on every cache lookup. Dense workloads hash the matrix
        bytes; implicit workloads hash the operator's canonical descriptor
        — nothing is materialised.
        """
        if self._content_digest is None:
            if self._implicit:
                digest = hashlib.sha1()
                digest.update(b"operator:")
                digest.update(self._operator.content_digest().encode())
                self._content_digest = digest.hexdigest()
            else:
                digest = hashlib.sha1()
                digest.update(repr(self.shape).encode())
                digest.update(np.ascontiguousarray(self._matrix).tobytes())
                self._content_digest = digest.hexdigest()
        return self._content_digest

    # ------------------------------------------------------------------ #
    # Query answering
    # ------------------------------------------------------------------ #
    def answer(self, x):
        """Exact batch answer ``W x`` for the data vector ``x``."""
        x = as_vector(x, "x")
        if self._implicit:
            if x.size != self.domain_size:
                raise ValidationError(
                    f"W has {self.domain_size} columns but x has length {x.size}"
                )
            return self._operator.matvec(x)
        check_shape_compatible(self._matrix, x, "W", "x")
        return self._matrix @ x

    def row(self, index):
        """Weight vector of query ``index`` (a copy).

        Implicit workloads extract it as ``W^T e_index`` — one ``rmatvec``
        — so a single row never materialises the matrix."""
        if not 0 <= index < self.num_queries:
            raise ValidationError(f"query index {index} out of range [0, {self.num_queries})")
        if self._implicit and self._matrix is None:
            basis = np.zeros(self.num_queries)
            basis[index] = 1.0
            return self._operator.rmatvec(basis)
        return self._matrix[index].copy()

    # ------------------------------------------------------------------ #
    # Cached spectral quantities
    # ------------------------------------------------------------------ #
    @property
    def thin_svd(self):
        """Memoized thin SVD ``(U, sigma, Vt)`` of ``W`` — the shared
        spectral cache. Every spectral property below derives from this one
        factorisation, and :class:`repro.core.lrm.LowRankMechanism` threads
        it into :func:`repro.core.alm.decompose_workload` so a fit performs
        no dense SVD of ``W`` at all. Implicit workloads materialise
        (guarded) — their fit path uses :meth:`implicit_svd` instead."""
        if self._thin_svd is None:
            u, sigma, vt = np.linalg.svd(self.matrix, full_matrices=False)
            for factor in (u, sigma, vt):
                factor.setflags(write=False)
            self._thin_svd = (u, sigma, vt)
            if self._singular_values is None:
                self._singular_values = sigma
        return self._thin_svd

    @property
    def cached_thin_svd(self):
        """The memoized thin-SVD triple if already computed, else ``None``.

        Lets callers (e.g. the Low-Rank Mechanism) reuse an existing cache
        without forcing a full factorisation when a cheaper randomized one
        would do on a large matrix."""
        return self._thin_svd

    def implicit_svd(self, rank, oversample=10, n_iter=4, seed=0):
        """Truncated spectral cache from matvec actions alone.

        A seeded range-finder SVD (:func:`repro.linalg.randomized
        .randomized_svd`) of the workload operator, memoized per
        ``(rank, oversample, n_iter, seed)`` so repeated fits on the same
        implicit workload share one sketch — the implicit analogue of the
        :attr:`thin_svd` cache.
        """
        key = (int(rank), int(oversample), int(n_iter), int(seed))
        triple = self._implicit_svd_cache.get(key)
        if triple is None:
            triple = randomized_svd(
                self.operator, rank, oversample=oversample, n_iter=n_iter, rng=seed
            )
            for factor in triple:
                factor.setflags(write=False)
            self._implicit_svd_cache[key] = triple
        return triple

    @property
    def rank(self):
        """Numerical rank of ``W`` (Section 3.3) — derived from the cached
        singular values with numpy's standard tolerance."""
        if self._rank is None:
            sigma = self.singular_values
            self._rank = int(np.sum(sigma > rank_tolerance(self.shape, sigma)))
        return self._rank

    @property
    def singular_values(self):
        """Singular values of ``W`` in non-ascending order (the paper's
        "eigenvalues" ``lambda_1 >= ... >= lambda_s``)."""
        if self._singular_values is None:
            values = singular_values(self.matrix)
            values.setflags(write=False)
            self._singular_values = values
        return self._singular_values

    @property
    def sensitivity(self):
        """L1 sensitivity ``max_j sum_i |W_ij|`` of the batch — computed
        from the operator's closed-form column sums for implicit
        workloads."""
        if self._sensitivity is None:
            self._sensitivity = l1_sensitivity(
                self._operator if self._implicit else self._matrix
            )
        return self._sensitivity

    @property
    def frobenius_squared(self):
        """``||W||_F^2``, the squared sum of all entries."""
        if self._implicit:
            return self._operator.frobenius_squared()
        return float(np.sum(self._matrix**2))

    @property
    def eigenvalue_ratio(self):
        """Conditioning constant ``C = lambda_1 / lambda_r`` of Theorem 2."""
        return eigenvalue_ratio(self.matrix)

    def is_low_rank(self):
        """True iff ``rank(W) < min(m, n)``, i.e. rows or columns are
        linearly dependent and LRM has structure to exploit."""
        return self.rank < min(self.shape)

    # ------------------------------------------------------------------ #
    # Derived workloads
    # ------------------------------------------------------------------ #
    def subset(self, indices):
        """New workload restricted to the given query rows."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            raise ValidationError("subset needs at least one query index")
        if indices.min() < 0 or indices.max() >= self.num_queries:
            raise ValidationError("subset indices out of range")
        return Workload(
            self.matrix[indices],
            name=f"{self.name}[subset]",
            metadata={**self.metadata, "parent": self.name},
        )

    def stack(self, other):
        """Concatenate two workloads over the same domain (rows stacked)."""
        if not isinstance(other, Workload):
            raise ValidationError("stack expects another Workload")
        if other.domain_size != self.domain_size:
            raise ValidationError(
                f"domain mismatch: {self.domain_size} vs {other.domain_size}"
            )
        return Workload(
            np.vstack([self.matrix, other.matrix]),
            name=f"{self.name}+{other.name}",
            metadata={"parents": [self.name, other.name]},
        )

    def scaled(self, factor):
        """Workload with every weight multiplied by ``factor`` (e.g. to turn
        counts into weighted averages). Implicit workloads stay implicit
        through a :class:`ScaledOperator`."""
        factor = float(factor)
        if factor == 0.0:
            raise ValidationError("scaling by zero produces a degenerate workload")
        if self._implicit:
            backing = ScaledOperator(self._operator, factor)
        else:
            backing = self._matrix * factor
        return Workload(
            backing,
            name=f"{factor}*{self.name}",
            metadata={**self.metadata, "scaled_by": factor},
        )

    def kron(self, other):
        """Kronecker-product workload over the product domain.

        For a multi-attribute domain laid out row-major as
        ``x[(i, j)] = x_flat[i * n2 + j]``, the batch asking "query ``a``
        on attribute 1 AND query ``b`` on attribute 2" for every pair
        ``(a, b)`` is exactly ``W1 (x) W2`` — the construction behind
        marginal and hierarchical multi-dimensional workloads (HDMM-style).
        The resulting rank is ``rank(W1) * rank(W2)``, so products of
        low-rank pieces stay low-rank for LRM.

        The product is **lazy**: it is backed by a
        :class:`repro.linalg.operator.KronOperator` applying the factors
        via ``(A (x) C) x = vec(A X C^T)``, so the ``(m1 m2) x (n1 n2)``
        array is never formed (``.matrix`` still materialises on demand,
        under the usual guard).
        """
        if not isinstance(other, Workload):
            raise ValidationError("kron expects another Workload")
        return Workload(
            KronOperator(self.operator, other.operator),
            name=f"{self.name}(x){other.name}",
            metadata={"parents": [self.name, other.name], "kron": True},
        )
