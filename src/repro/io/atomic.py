"""Crash-safe filesystem primitives: atomic writes and bounded retries.

Every durable artifact this package writes — plan archives, fitted-LRM
archives, the budget journal's compacted form — goes through the same
discipline: write the full content to a uniquely-named staging file in the
*same directory*, flush and ``fsync`` it, ``os.replace`` it over the final
name (atomic on POSIX), then ``fsync`` the directory so the rename itself
is durable. A crash at any instant leaves either the old file or the new
file, never a half-written hybrid.

:func:`retry_with_backoff` is the shared bounded/jittered retry loop used
around the ledger's cross-process lock acquisition and the plan cache's
disk I/O; callers map exhaustion onto their own error type (the ledger
raises :class:`repro.exceptions.LedgerBusyError`).
"""

from __future__ import annotations

import os
import random
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.testing.faults import fire

__all__ = [
    "RetryPolicy",
    "atomic_writer",
    "fsync_directory",
    "retry_with_backoff",
]

#: Jitter source for backoff sleeps. Module-level so tests can seed it;
#: never used for anything privacy-relevant.
_JITTER = random.Random()


def fsync_directory(path):
    """fsync a directory so a just-completed rename/create in it survives a
    crash. Best-effort on filesystems that refuse directory fds."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_writer(path, binary=True):
    """Yield a file handle whose contents land at ``path`` atomically.

    The handle writes to a per-writer staging file (pid + random suffix,
    same directory — ``os.replace`` must not cross filesystems). On clean
    exit the staging file is flushed, fsynced and renamed over ``path``,
    and the directory is fsynced; on error the staging file is removed and
    ``path`` is untouched. Concurrent writers to the same ``path`` cannot
    observe (or clobber) each other's staging files; last rename wins.
    """
    path = Path(path)
    staging = path.with_name(f"{path.name}.{os.getpid()}-{uuid.uuid4().hex[:8]}.tmp")
    mode = "wb" if binary else "w"
    try:
        with open(staging, mode) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        fire("io.atomic.before_replace")
        os.replace(staging, path)
        fire("io.atomic.after_replace")
        fsync_directory(path.parent)
    finally:
        try:
            staging.unlink(missing_ok=True)
        except OSError:
            pass


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, jittered exponential backoff.

    ``attempts`` total tries; sleep before retry ``i`` (1-based) is
    ``min(base_delay * 2**(i-1), max_delay)`` scaled by a uniform jitter in
    ``[0.5, 1.0]`` — jitter *reduces* the wait so contending processes
    de-synchronize without inflating the worst-case total.
    """

    attempts: int = 12
    base_delay: float = 0.001
    max_delay: float = 0.05

    def delay(self, attempt):
        raw = min(self.base_delay * (2.0 ** attempt), self.max_delay)
        return raw * (0.5 + 0.5 * _JITTER.random())


def retry_with_backoff(fn, policy=None, retry_on=(OSError,), sleep=time.sleep):
    """Call ``fn()`` until it succeeds or the policy is exhausted.

    Only exceptions in ``retry_on`` are retried; anything else propagates
    immediately. After the final failed attempt the last exception is
    re-raised — callers wanting a domain-specific error (e.g.
    :class:`repro.exceptions.LedgerBusyError`) catch it and translate.
    """
    policy = policy or RetryPolicy()
    if policy.attempts < 1:
        raise ValueError("RetryPolicy.attempts must be >= 1")
    for attempt in range(policy.attempts):
        try:
            return fn()
        except retry_on:
            if attempt == policy.attempts - 1:
                raise
            sleep(policy.delay(attempt))
