"""Persistence: save/load decompositions and fitted mechanisms."""

from repro.io.serialization import (
    load_decomposition,
    load_fitted_lrm,
    save_decomposition,
    save_fitted_lrm,
)

__all__ = [
    "load_decomposition",
    "load_fitted_lrm",
    "save_decomposition",
    "save_fitted_lrm",
]
