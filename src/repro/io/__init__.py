"""Persistence: save/load decompositions, fitted mechanisms and plans.

Serialization names are re-exported lazily (PEP 562): ``repro.io.atomic``
holds dependency-free filesystem primitives that the privacy ledger imports
while ``repro.core`` is still initialising, so eagerly importing
``repro.io.serialization`` (which needs ``repro.core.alm``) here would
create an import cycle.
"""

from repro.io.atomic import RetryPolicy, atomic_writer, fsync_directory, retry_with_backoff

_SERIALIZATION_NAMES = (
    "load_decomposition",
    "load_fitted_lrm",
    "load_plan",
    "save_decomposition",
    "save_fitted_lrm",
    "save_plan",
)

__all__ = [
    "RetryPolicy",
    "atomic_writer",
    "fsync_directory",
    "retry_with_backoff",
    *_SERIALIZATION_NAMES,
]


def __getattr__(name):
    if name in _SERIALIZATION_NAMES:
        from repro.io import serialization

        return getattr(serialization, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
