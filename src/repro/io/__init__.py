"""Persistence: save/load decompositions, fitted mechanisms and plans."""

from repro.io.serialization import (
    load_decomposition,
    load_fitted_lrm,
    load_plan,
    save_decomposition,
    save_fitted_lrm,
    save_plan,
)

__all__ = [
    "load_decomposition",
    "load_fitted_lrm",
    "load_plan",
    "save_decomposition",
    "save_fitted_lrm",
    "save_plan",
]
