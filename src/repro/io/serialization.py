"""Persistence for decompositions, fitted mechanisms and execution plans.

The ALM decomposition is the expensive part of LRM (seconds to minutes);
production deployments fit once per workload and answer many times. These
helpers save a :class:`repro.core.alm.Decomposition` (or a fitted
:class:`repro.core.lrm.LowRankMechanism`) to a single ``.npz`` file and
restore it without re-optimising.

:func:`save_plan` / :func:`load_plan` persist a whole
:class:`repro.engine.plan.ExecutionPlan` — the fitted mechanism plus the
candidate-comparison table ``explain()`` renders — which is what the
persistent :class:`repro.engine.plan_cache.PlanCache` writes to its
directory backend. Low-rank mechanisms store their decomposition arrays and
restore without re-optimising; cheap registry mechanisms are refit
deterministically from the stored workload on load. Archive integrity is
anchored on :attr:`repro.workloads.workload.Workload.content_digest`: the
loaded matrix must hash back to the digest the plan was keyed under.
"""

from __future__ import annotations

import hashlib
import json
import os
import time

import numpy as np

from repro.core.alm import SOLVER_VERSION, Decomposition
from repro.exceptions import ValidationError
from repro.io.atomic import atomic_writer
from repro.workloads.workload import Workload

__all__ = [
    "PlanFormatError",
    "save_decomposition",
    "load_decomposition",
    "save_fitted_lrm",
    "load_fitted_lrm",
    "save_plan",
    "load_plan",
    "plan_from_payload",
    "plan_archive_info",
]


class PlanFormatError(ValidationError):
    """A plan archive is unreadable for *benign* reasons — wrong/old format
    version, missing keys, an unknown stored class. Distinct from a plain
    :class:`ValidationError` so :class:`repro.engine.plan_cache.PlanCache`
    can treat staleness as a cache miss (replan and overwrite) while digest
    and key mismatches still raise as integrity failures."""

# Decomposition archives store no digest; their format is unchanged.
_FORMAT_VERSION = 1
# Fitted-LRM / plan version 2: _array_digest now covers dtype (a
# dtype-swapped archive used to pass — or, for fitted-LRM archives, whose
# stored digest went unverified, bypass — the integrity check), and
# load_fitted_lrm now enforces its digest. Version-1 archives of these two
# formats are stale, not tampered.
# Version 3 additionally stores *implicit* workloads as their operator spec
# (family + index arrays) instead of a materialised matrix — a prefix plan
# at n = 65,536 archives two index vectors, not 34 GB. Version-2 (dense)
# archives remain readable.
_FITTED_LRM_FORMAT_VERSIONS = (2, 3)
_FITTED_LRM_FORMAT_VERSION = 3
# Plan version 4 = version 3 plus an optional ``mechanism_archive`` member:
# mechanisms the registry cannot rebuild (wrappers like SubsampledMechanism,
# arbitrary custom classes) persist through the Mechanism.to_spec/from_spec
# protocol instead. Only archives that actually need it are written as
# version 4, so registry/low-rank plans stay readable by older releases;
# an older reader hitting a version-4 archive gets PlanFormatError — a
# graceful plan-cache miss, not an integrity failure.
_PLAN_FORMAT_VERSIONS = (2, 3, 4)
_PLAN_FORMAT_VERSION = 3
_PLAN_SPEC_FORMAT_VERSION = 4


def _atomic_savez(path, **arrays):
    """``np.savez_compressed`` through :func:`repro.io.atomic.atomic_writer`.

    The archive is assembled in a same-directory staging file, fsynced and
    renamed over ``path`` — a crash mid-save leaves the previous archive (or
    nothing), never a truncated ``.npz`` a later load would choke on.
    Mirrors numpy's convention of appending ``.npz`` to extension-less
    paths, which passing a file handle would otherwise bypass.
    """
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path += ".npz"
    with atomic_writer(path) as fh:
        np.savez_compressed(fh, **arrays)


def _workload_payload(workload):
    """Archive form of a workload: ``(meta, arrays)``.

    Dense workloads store the matrix under ``"workload"`` (the historical
    v2 layout); implicit ones store their operator spec + arrays and never
    materialise. The stored digest is the workload's own
    ``content_digest`` either way, so reload integrity checks compare
    like with like.
    """
    from repro.linalg.operator import operator_spec

    meta = {"name": workload.name, "digest": workload.content_digest}
    arrays = {}
    if workload.is_implicit:
        meta["operator"] = operator_spec(workload.operator, arrays)
    else:
        arrays["workload"] = workload.matrix
    return meta, arrays


def _restore_workload(meta, archive, missing_exc):
    """Inverse of :func:`_workload_payload` against a loaded npz archive
    (or any plain ``{name: ndarray}`` mapping, e.g. shared-memory views)."""
    from repro.linalg.operator import operator_from_spec

    name = meta.get("name", "restored")
    if "operator" in meta:
        backing = operator_from_spec(meta["operator"], archive)
    else:
        names = getattr(archive, "files", archive)
        if "workload" not in names:
            raise missing_exc("not a valid archive: missing 'workload'")
        backing = archive["workload"]
    return Workload(backing, name=name)


def _array_digest(*arrays):
    """SHA-1 over the dtypes, shapes and bytes of the given arrays.

    The dtype must be part of the digest: the raw bytes of a float64 array
    reinterpreted as another 8-byte dtype are identical, so a digest over
    bytes alone would accept a dtype-swapped archive whose reinterpreted
    values mis-calibrate the noise."""
    digest = hashlib.sha1()
    for array in arrays:
        digest.update(array.dtype.str.encode())
        digest.update(repr(array.shape).encode())
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def _decomposition_payload(decomposition):
    """JSON form of a Decomposition's scalar fields (shared by the fitted-LRM
    and plan archive formats)."""
    return {
        "residual_norm": decomposition.residual_norm,
        "objective": decomposition.objective,
        "iterations": decomposition.iterations,
        "converged": decomposition.converged,
        "norm": decomposition.norm,
        # Integrity anchor for the strategy arrays: a tampered L would
        # change the sensitivity the noise is calibrated to.
        "digest": _array_digest(decomposition.b, decomposition.l),
    }


def _restore_decomposition(b, l, details):
    """Inverse of :func:`_decomposition_payload` plus the stored arrays."""
    return Decomposition(
        b=b,
        l=l,
        residual_norm=float(details["residual_norm"]),
        objective=float(details["objective"]),
        iterations=int(details["iterations"]),
        converged=bool(details["converged"]),
        history=[],
        norm=str(details.get("norm", "l1")),
    )


def save_decomposition(decomposition, path):
    """Write a :class:`Decomposition` to ``path`` (``.npz``)."""
    if not isinstance(decomposition, Decomposition):
        raise ValidationError("save_decomposition expects a Decomposition")
    metadata = {
        "format_version": _FORMAT_VERSION,
        "residual_norm": decomposition.residual_norm,
        "objective": decomposition.objective,
        "iterations": decomposition.iterations,
        "converged": decomposition.converged,
        "norm": decomposition.norm,
        "history": decomposition.history,
        "perf": decomposition.perf,
    }
    _atomic_savez(
        path,
        b=decomposition.b,
        l=decomposition.l,
        metadata=np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8),
    )


def load_decomposition(path):
    """Read a :class:`Decomposition` previously written by
    :func:`save_decomposition`."""
    with np.load(path, allow_pickle=False) as archive:
        try:
            b = archive["b"]
            l = archive["l"]
            metadata = json.loads(bytes(archive["metadata"].tobytes()).decode("utf-8"))
        except KeyError as exc:
            raise ValidationError(f"not a decomposition archive: missing {exc}") from exc
    version = metadata.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValidationError(f"unsupported decomposition format version {version}")
    return Decomposition(
        b=b,
        l=l,
        residual_norm=float(metadata["residual_norm"]),
        objective=float(metadata["objective"]),
        iterations=int(metadata["iterations"]),
        converged=bool(metadata["converged"]),
        history=list(metadata.get("history", [])),
        norm=str(metadata.get("norm", "l1")),
        perf=dict(metadata.get("perf", {})),
    )


def save_fitted_lrm(mechanism, path):
    """Persist a fitted :class:`LowRankMechanism` (workload + decomposition).

    The saved archive restores a mechanism that answers identically; the
    solver configuration is not needed again and is not stored.
    """
    from repro.core.lrm import GaussianLowRankMechanism, LowRankMechanism

    if not isinstance(mechanism, LowRankMechanism):
        raise ValidationError("save_fitted_lrm expects a LowRankMechanism")
    if not mechanism.is_fitted:
        raise ValidationError("mechanism must be fitted before saving")
    decomposition = mechanism.decomposition
    workload_meta, workload_arrays = _workload_payload(mechanism.workload)
    metadata = {
        "format_version": _FITTED_LRM_FORMAT_VERSION,
        "class": type(mechanism).__name__,
        "delta": getattr(mechanism, "delta", None),
        "workload_name": mechanism.workload.name,
        "workload_meta": workload_meta,
        "decomposition": _decomposition_payload(decomposition),
    }
    _atomic_savez(
        path,
        b=decomposition.b,
        l=decomposition.l,
        metadata=np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8),
        **workload_arrays,
    )


def load_fitted_lrm(path):
    """Restore a fitted LRM saved by :func:`save_fitted_lrm`."""
    from repro.core.lrm import GaussianLowRankMechanism, LowRankMechanism

    with np.load(path, allow_pickle=False) as archive:
        try:
            b = archive["b"]
            l = archive["l"]
            metadata = json.loads(bytes(archive["metadata"].tobytes()).decode("utf-8"))
        except KeyError as exc:
            raise ValidationError(f"not a fitted-LRM archive: missing {exc}") from exc
        version = metadata.get("format_version")
        if version not in _FITTED_LRM_FORMAT_VERSIONS:
            raise ValidationError(
                f"unsupported fitted-LRM format version {version} (this release "
                f"reads versions {_FITTED_LRM_FORMAT_VERSIONS}); the archive is "
                "from another release, not tampered — refit the mechanism and "
                "re-save it with save_fitted_lrm"
            )
        workload_meta = metadata.get(
            "workload_meta", {"name": metadata.get("workload_name", "restored")}
        )
        workload = _restore_workload(workload_meta, archive, ValidationError)
    stored = metadata.get("decomposition", {}).get("digest")
    if _array_digest(b, l) != stored:
        raise ValidationError(
            "fitted-LRM archive integrity failure: decomposition arrays do "
            f"not hash to the stored digest {stored!r}"
        )
    stored_workload_digest = workload_meta.get("digest")
    if stored_workload_digest is not None and workload.content_digest != stored_workload_digest:
        raise ValidationError(
            "fitted-LRM archive integrity failure: workload does not hash to "
            f"the stored digest {stored_workload_digest!r}"
        )

    class_name = metadata.get("class", "LowRankMechanism")
    if class_name == "GaussianLowRankMechanism":
        mechanism = GaussianLowRankMechanism(delta=metadata.get("delta") or 1e-6)
    else:
        mechanism = LowRankMechanism()
    # Install the restored state without re-running the solver.
    workload.name = metadata.get("workload_name", workload.name)
    mechanism._workload = workload
    mechanism._decomposition = _restore_decomposition(b, l, metadata["decomposition"])
    return mechanism


# ---------------------------------------------------------------------- #
# Execution plans
# ---------------------------------------------------------------------- #
def _rebuild_lowrank(class_name, delta, fit_kwargs):
    """Reconstruct an (unfitted) low-rank mechanism from plan metadata —
    the single rebuild path shared by the save-time gate and load_plan."""
    from repro.core.lrm import GaussianLowRankMechanism, LowRankMechanism

    kwargs = dict(fit_kwargs)
    if class_name == "GaussianLowRankMechanism":
        # fit_kwargs may carry the delta too; the stored one wins.
        kwargs.pop("delta", None)
        return GaussianLowRankMechanism(delta=delta if delta is not None else 1e-6, **kwargs)
    return LowRankMechanism(**kwargs)


def _spec_payload(mechanism):
    """The ``mechanism_archive`` member of a version-4 plan archive, or
    ``None`` when the mechanism does not (usably) implement the spec
    protocol.

    The spec must be JSON-serializable and must round-trip:
    ``type(m).from_spec(m.to_spec()).to_spec() == m.to_spec()`` — the
    load-time rebuild is gated on producing a mechanism that describes
    itself identically, so a lossy ``to_spec`` is refused at save time
    rather than restoring a differently-configured mechanism later.
    """
    cls = type(mechanism)
    try:
        spec = mechanism.to_spec()
        json.dumps(spec)
        rebuilt = cls.from_spec(spec)
        if type(rebuilt) is not cls or rebuilt.to_spec() != spec:
            return None
    except Exception:
        return None
    return {"class": cls.__name__, "module": cls.__module__, "spec": spec}


def _mechanism_from_spec_payload(payload):
    """Rebuild the mechanism of a version-4 archive's ``mechanism_archive``.

    Unimportable modules, unknown classes, non-Mechanism classes and
    ``from_spec`` failures all raise :class:`PlanFormatError` — the
    archive was written by an environment this one cannot reproduce, which
    the plan cache treats as a miss (replan), not as tampering.
    """
    import importlib

    from repro.mechanisms.base import Mechanism

    try:
        module = importlib.import_module(str(payload["module"]))
        cls = getattr(module, str(payload["class"]))
    except Exception as exc:
        raise PlanFormatError(
            f"plan archive references an unimportable mechanism class "
            f"{payload.get('module')!r}.{payload.get('class')!r}: {exc}"
        ) from exc
    if not (isinstance(cls, type) and issubclass(cls, Mechanism)):
        raise PlanFormatError(
            f"plan archive's mechanism class {payload.get('class')!r} is "
            "not a Mechanism subclass"
        )
    try:
        return cls.from_spec(payload.get("spec", {}))
    except Exception as exc:
        raise PlanFormatError(
            f"plan archive's mechanism spec could not rebuild "
            f"{payload.get('class')!r}: {exc}"
        ) from exc


def _refit_reproduces(mechanism, label, fit_kwargs):
    """True iff ``make_mechanism(label, **fit_kwargs)`` rebuilds a mechanism
    with the same constructor state as ``mechanism``.

    This is the safety gate of the plan refit-on-load path: a mechanism
    whose public state (e.g. a customized ``unit_sensitivity``) is not
    captured by the stored kwargs must NOT be persisted, or the restored
    plan would silently release with differently-calibrated noise.
    """
    from repro.engine.plan import mechanism_state, mechanism_states_equal
    from repro.mechanisms.registry import make_mechanism

    try:
        fresh = make_mechanism(label, **fit_kwargs)
    except Exception:
        # Unknown label, rejected kwargs (TypeError), validation failure:
        # all mean a refit cannot rebuild this mechanism.
        return False
    if type(fresh) is not type(mechanism):
        return False
    try:
        return mechanism_states_equal(mechanism_state(fresh), mechanism_state(mechanism))
    except Exception:
        return False


def save_plan(plan, path):
    """Persist an :class:`repro.engine.plan.ExecutionPlan` to ``path`` (npz).

    Low-rank mechanisms (LRM/GLRM, including instance-built ones) store
    their decomposition arrays and restore without re-optimising. Other
    mechanisms store only the workload plus their constructor kwargs and
    are refit deterministically on load (their fits are cheap and
    data-independent) — allowed only when the kwargs provably rebuild the
    same constructor state. Mechanisms the registry cannot rebuild but
    that implement the :meth:`repro.mechanisms.base.Mechanism.to_spec`
    protocol (wrappers like
    :class:`repro.mechanisms.subsampled.SubsampledMechanism`, custom
    classes) are written as version-4 archives carrying their spec and are
    rebuilt + refit on load. A plan fitting none of these paths raises
    :class:`ValidationError` instead of silently restoring with
    differently-calibrated noise.
    """
    from repro.core.lrm import LowRankMechanism
    from repro.engine.plan import ExecutionPlan

    if not isinstance(plan, ExecutionPlan):
        raise ValidationError("save_plan expects an ExecutionPlan")
    mechanism = plan.mechanism
    if not mechanism.is_fitted:
        raise ValidationError("plan mechanism must be fitted before saving")
    workload = plan.workload
    requires_delta = bool(getattr(mechanism, "requires_delta", False))
    workload_meta, arrays = _workload_payload(workload)
    metadata = {
        "plan_format_version": _PLAN_FORMAT_VERSION,
        # Provenance, not format: which solver revision fitted this plan
        # and when it was archived. Old readers ignore unknown JSON keys,
        # so adding these does not bump the format version; archives
        # without them read back as solver_version 0 / saved_at None (the
        # plan cache falls back to file mtime for TTL purposes).
        "solver_version": SOLVER_VERSION,
        "saved_at": time.time(),
        "plan": plan.to_metadata(),
        "workload": workload_meta,
        "mechanism_class": type(mechanism).__name__,
        "delta": float(mechanism.delta) if requires_delta else None,
    }
    from repro.core.lrm import GaussianLowRankMechanism

    # Exact types only: an unknown LowRankMechanism subclass (custom norm,
    # custom noise) must not round-trip into a base-class mechanism with
    # differently-calibrated noise — it falls through to the refit gate,
    # which rejects classes the registry cannot rebuild.
    if type(mechanism) in (LowRankMechanism, GaussianLowRankMechanism):
        # Gate the rebuild exactly as load_plan will perform it: foreign
        # public attributes (not constructor parameters) would otherwise
        # persist an archive load_plan can never restore, turning the disk
        # cache into a permanent miss-and-refit loop.
        from repro.engine.plan import mechanism_state, mechanism_states_equal

        try:
            probe = _rebuild_lowrank(
                type(mechanism).__name__, metadata["delta"], plan.fit_kwargs
            )
            rebuilds = mechanism_states_equal(
                mechanism_state(probe), mechanism_state(mechanism)
            )
        except Exception:
            rebuilds = False
        if not rebuilds:
            raise ValidationError(
                f"plan with mechanism {type(mechanism).__name__!r} is not serializable: "
                "its constructor state is not captured by the stored fit kwargs"
            )
        decomposition = mechanism.decomposition
        arrays["b"] = decomposition.b
        arrays["l"] = decomposition.l
        metadata["decomposition"] = _decomposition_payload(decomposition)
    else:
        # Mirror load_plan's reconstruction (stored delta folded in) and
        # persist via registry refit when the kwargs provably reproduce
        # this mechanism. Otherwise fall back to the spec protocol
        # (version 4): wrappers and custom classes whose constructor state
        # is not plain JSON kwargs archive their to_spec() instead.
        effective_kwargs = dict(plan.fit_kwargs)
        if requires_delta:
            effective_kwargs.setdefault("delta", mechanism.delta)
        try:
            kwargs_serializable = bool(json.dumps(effective_kwargs)) or True
        except TypeError:
            kwargs_serializable = False
        if not (
            kwargs_serializable
            and _refit_reproduces(mechanism, plan.mechanism_label, effective_kwargs)
        ):
            spec_payload = _spec_payload(mechanism)
            if spec_payload is None:
                raise ValidationError(
                    f"plan with mechanism {type(mechanism).__name__!r} is not serializable: "
                    "its constructor state is not captured by the stored fit kwargs "
                    "and it does not implement the to_spec/from_spec protocol "
                    "(low-rank mechanisms persist their decomposition instead)"
                )
            metadata["plan_format_version"] = _PLAN_SPEC_FORMAT_VERSION
            metadata["mechanism_archive"] = spec_payload
            # The spec supersedes the kwargs, which may not be
            # JSON-serializable (e.g. a wrapped mechanism instance).
            metadata["plan"]["fit_kwargs"] = {}
    try:
        payload = json.dumps(metadata)
    except TypeError as exc:
        raise ValidationError(f"plan metadata is not JSON-serializable: {exc}") from exc
    _atomic_savez(
        path, metadata=np.frombuffer(payload.encode("utf-8"), dtype=np.uint8), **arrays
    )


def load_plan(path):
    """Restore an :class:`repro.engine.plan.ExecutionPlan` saved by
    :func:`save_plan`.

    The workload matrix is re-hashed and checked against the stored
    :attr:`~repro.workloads.workload.Workload.content_digest`, so a corrupt
    or tampered archive is rejected instead of silently releasing against
    the wrong queries.
    """
    with np.load(path, allow_pickle=False) as archive:
        try:
            metadata = json.loads(bytes(archive["metadata"].tobytes()).decode("utf-8"))
        except KeyError as exc:
            raise PlanFormatError(f"not a plan archive: missing {exc}") from exc
        arrays = {name: archive[name] for name in archive.files if name != "metadata"}
    return plan_from_payload(metadata, arrays)


def plan_from_payload(metadata, arrays):
    """Rebuild an :class:`~repro.engine.plan.ExecutionPlan` from a plan
    archive's decoded metadata dict plus its arrays as a plain mapping.

    This is :func:`load_plan` minus the npz container, with every
    format/digest/workload-key integrity check intact — it exists so the
    serving tier's shared-plan store can reconstruct plans whose arrays
    live in ``multiprocessing.shared_memory`` (zero-copy, read-only views)
    through the exact verification path a disk load takes.
    """
    from repro.engine.plan import ExecutionPlan, PlanCandidate
    from repro.mechanisms.registry import make_mechanism

    if metadata.get("plan_format_version") not in _PLAN_FORMAT_VERSIONS:
        raise PlanFormatError(
            f"unsupported plan format version {metadata.get('plan_format_version')}"
        )
    workload = _restore_workload(metadata["workload"], arrays, PlanFormatError)
    b = arrays.get("b")
    l = arrays.get("l")
    plan_meta = metadata["plan"]
    stored_digest = metadata["workload"].get("digest")
    if workload.content_digest != stored_digest:
        raise ValidationError(
            "plan archive integrity failure: workload content does not hash to "
            f"the stored digest {stored_digest!r}"
        )
    from repro.engine.plan import workload_key as compute_workload_key

    if str(plan_meta["workload_key"]) != compute_workload_key(workload):
        raise ValidationError(
            "plan archive integrity failure: stored workload_key "
            f"{plan_meta['workload_key']!r} does not match the loaded matrix"
        )

    fit_kwargs = dict(plan_meta.get("fit_kwargs", {}))
    class_name = metadata.get("mechanism_class", "")
    delta = metadata.get("delta")
    if class_name in ("LowRankMechanism", "GaussianLowRankMechanism") and (
        b is None or l is None
    ):
        # A low-rank archive without its decomposition arrays must not fall
        # through to the refit branch: that would silently re-run the
        # expensive ALM optimisation the cache exists to avoid.
        raise ValidationError(
            "plan archive integrity failure: low-rank plan is missing its "
            "decomposition arrays"
        )
    if b is not None and l is not None:
        details = metadata["decomposition"]
        stored = details.get("digest")
        if stored is not None and _array_digest(b, l) != stored:
            raise ValidationError(
                "plan archive integrity failure: decomposition arrays do not "
                f"hash to the stored digest {stored!r}"
            )
        if class_name not in ("LowRankMechanism", "GaussianLowRankMechanism"):
            raise PlanFormatError(
                f"plan archive holds an unsupported low-rank class {class_name!r}"
            )
        mechanism = _rebuild_lowrank(class_name, delta, fit_kwargs)
        mechanism._workload = workload
        mechanism._decomposition = _restore_decomposition(b, l, details)
    elif metadata.get("mechanism_archive") is not None:
        # Version-4 spec archive: rebuild through the spec protocol, then
        # refit deterministically against the verified workload.
        mechanism = _mechanism_from_spec_payload(metadata["mechanism_archive"])
        mechanism.fit(workload)
    else:
        if delta is not None:
            fit_kwargs.setdefault("delta", delta)
        mechanism = make_mechanism(plan_meta["mechanism_label"], **fit_kwargs)
        mechanism.fit(workload)

    return ExecutionPlan(
        mechanism=mechanism,
        mechanism_label=str(plan_meta["mechanism_label"]),
        mechanism_spec=str(plan_meta["mechanism_spec"]),
        workload_key=str(plan_meta["workload_key"]),
        epsilon_hint=float(plan_meta["epsilon_hint"]),
        candidates=[PlanCandidate.from_dict(c) for c in plan_meta.get("candidates", [])],
        fit_kwargs=dict(plan_meta.get("fit_kwargs", {})),
    )


def plan_archive_info(path):
    """Cheap provenance read of a plan archive (metadata member only — no
    array decompression, no mechanism rebuild, no integrity re-hash).

    Returns a dict with ``plan_format_version``, ``solver_version`` (0 for
    pre-provenance archives), ``saved_at`` (POSIX seconds, or the archive
    file's mtime for pre-provenance archives), ``mechanism_class``,
    ``mechanism_label`` and ``workload_key``. This is what the plan
    cache's TTL / ``min_solver_version`` staleness gate reads before
    deciding whether a disk archive is worth loading at all.
    """
    with np.load(path, allow_pickle=False) as archive:
        try:
            metadata = json.loads(bytes(archive["metadata"].tobytes()).decode("utf-8"))
        except KeyError as exc:
            raise PlanFormatError(f"not a plan archive: missing {exc}") from exc
    if "plan_format_version" not in metadata:
        raise PlanFormatError("not a plan archive: missing plan_format_version")
    saved_at = metadata.get("saved_at")
    if saved_at is None:
        try:
            saved_at = os.path.getmtime(path)
        except OSError:
            saved_at = None
    plan_meta = metadata.get("plan", {})
    return {
        "plan_format_version": metadata.get("plan_format_version"),
        "solver_version": int(metadata.get("solver_version", 0)),
        "saved_at": None if saved_at is None else float(saved_at),
        "mechanism_class": metadata.get("mechanism_class", ""),
        "mechanism_label": plan_meta.get("mechanism_label"),
        "workload_key": plan_meta.get("workload_key"),
    }
