"""Persistence for decompositions and fitted mechanisms.

The ALM decomposition is the expensive part of LRM (seconds to minutes);
production deployments fit once per workload and answer many times. These
helpers save a :class:`repro.core.alm.Decomposition` (or a fitted
:class:`repro.core.lrm.LowRankMechanism`) to a single ``.npz`` file and
restore it without re-optimising.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.alm import Decomposition
from repro.exceptions import ValidationError
from repro.workloads.workload import Workload

__all__ = [
    "save_decomposition",
    "load_decomposition",
    "save_fitted_lrm",
    "load_fitted_lrm",
]

_FORMAT_VERSION = 1


def save_decomposition(decomposition, path):
    """Write a :class:`Decomposition` to ``path`` (``.npz``)."""
    if not isinstance(decomposition, Decomposition):
        raise ValidationError("save_decomposition expects a Decomposition")
    metadata = {
        "format_version": _FORMAT_VERSION,
        "residual_norm": decomposition.residual_norm,
        "objective": decomposition.objective,
        "iterations": decomposition.iterations,
        "converged": decomposition.converged,
        "norm": decomposition.norm,
        "history": decomposition.history,
        "perf": decomposition.perf,
    }
    np.savez_compressed(
        path,
        b=decomposition.b,
        l=decomposition.l,
        metadata=np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8),
    )


def load_decomposition(path):
    """Read a :class:`Decomposition` previously written by
    :func:`save_decomposition`."""
    with np.load(path, allow_pickle=False) as archive:
        try:
            b = archive["b"]
            l = archive["l"]
            metadata = json.loads(bytes(archive["metadata"].tobytes()).decode("utf-8"))
        except KeyError as exc:
            raise ValidationError(f"not a decomposition archive: missing {exc}") from exc
    version = metadata.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValidationError(f"unsupported decomposition format version {version}")
    return Decomposition(
        b=b,
        l=l,
        residual_norm=float(metadata["residual_norm"]),
        objective=float(metadata["objective"]),
        iterations=int(metadata["iterations"]),
        converged=bool(metadata["converged"]),
        history=list(metadata.get("history", [])),
        norm=str(metadata.get("norm", "l1")),
        perf=dict(metadata.get("perf", {})),
    )


def save_fitted_lrm(mechanism, path):
    """Persist a fitted :class:`LowRankMechanism` (workload + decomposition).

    The saved archive restores a mechanism that answers identically; the
    solver configuration is not needed again and is not stored.
    """
    from repro.core.lrm import GaussianLowRankMechanism, LowRankMechanism

    if not isinstance(mechanism, LowRankMechanism):
        raise ValidationError("save_fitted_lrm expects a LowRankMechanism")
    if not mechanism.is_fitted:
        raise ValidationError("mechanism must be fitted before saving")
    decomposition = mechanism.decomposition
    metadata = {
        "format_version": _FORMAT_VERSION,
        "class": type(mechanism).__name__,
        "delta": getattr(mechanism, "delta", None),
        "workload_name": mechanism.workload.name,
        "decomposition": {
            "residual_norm": decomposition.residual_norm,
            "objective": decomposition.objective,
            "iterations": decomposition.iterations,
            "converged": decomposition.converged,
            "norm": decomposition.norm,
        },
    }
    np.savez_compressed(
        path,
        workload=mechanism.workload.matrix,
        b=decomposition.b,
        l=decomposition.l,
        metadata=np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8),
    )


def load_fitted_lrm(path):
    """Restore a fitted LRM saved by :func:`save_fitted_lrm`."""
    from repro.core.lrm import GaussianLowRankMechanism, LowRankMechanism

    with np.load(path, allow_pickle=False) as archive:
        try:
            workload_matrix = archive["workload"]
            b = archive["b"]
            l = archive["l"]
            metadata = json.loads(bytes(archive["metadata"].tobytes()).decode("utf-8"))
        except KeyError as exc:
            raise ValidationError(f"not a fitted-LRM archive: missing {exc}") from exc
    if metadata.get("format_version") != _FORMAT_VERSION:
        raise ValidationError("unsupported fitted-LRM format version")

    class_name = metadata.get("class", "LowRankMechanism")
    if class_name == "GaussianLowRankMechanism":
        mechanism = GaussianLowRankMechanism(delta=metadata.get("delta") or 1e-6)
    else:
        mechanism = LowRankMechanism()
    details = metadata["decomposition"]
    decomposition = Decomposition(
        b=b,
        l=l,
        residual_norm=float(details["residual_norm"]),
        objective=float(details["objective"]),
        iterations=int(details["iterations"]),
        converged=bool(details["converged"]),
        history=[],
        norm=str(details.get("norm", "l1")),
    )
    # Install the restored state without re-running the solver.
    mechanism._workload = Workload(workload_matrix, name=metadata.get("workload_name", "restored"))
    mechanism._decomposition = decomposition
    return mechanism
