"""The planner half of the plan/execute split: :class:`ExecutionPlan`.

The paper treats batch query answering as a query-optimization problem:
choose a strategy (mechanism + decomposition) once, then release against it
many times. Mirroring a DBMS optimizer/executor split, planning here is the
data-independent, budget-free phase — candidate mechanisms are fitted and
ranked by analytic expected error — and its output is a first-class
:class:`ExecutionPlan` artifact that can be inspected (:meth:`~ExecutionPlan.explain`),
cached across processes (:class:`repro.engine.plan_cache.PlanCache`), and
executed repeatedly at different epsilons by
:meth:`repro.engine.query_engine.PrivateQueryEngine.execute`.

Plans carry everything an audit needs: the workload digest they were built
for, the full per-candidate comparison table (expected error, fit time,
failures), the chosen mechanism's fitted state, and the constructor kwargs
required to rebuild it from a serialized archive.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.engine.selection import DEFAULT_CANDIDATES, rank_mechanisms
from repro.exceptions import ReproError, ValidationError
from repro.linalg.validation import check_positive
from repro.mechanisms.base import Mechanism, as_workload
from repro.mechanisms.registry import make_mechanism

__all__ = [
    "PlanCandidate",
    "ExecutionPlan",
    "build_plan",
    "workload_key",
    "mechanism_spec",
    "plan_key",
]


def workload_key(workload):
    """Stable cross-process identity of a workload: shape + content digest."""
    workload = as_workload(workload)
    return f"{workload.shape[0]}x{workload.shape[1]}:{workload.content_digest}"


def mechanism_state(mechanism):
    """Public (constructor-level) state of a mechanism: every non-underscore
    attribute. Fitted state lives in underscore attributes by convention, so
    two instances with equal public state fit identically — the comparison
    behind both the plan cache's same-configuration check and the
    serialization layer's refit-reproduces gate."""
    return {key: value for key, value in vars(mechanism).items() if not key.startswith("_")}


#: Sentinel distinguishing "attribute absent" from any real value when
#: comparing privacy states (absent == absent, absent != anything else).
_MISSING = object()


def privacy_state(mechanism):
    """Privacy-critical constructor state of a mechanism.

    The subset of :func:`mechanism_state` named by the class's
    ``privacy_params`` declaration (e.g. an assumed ``unit_sensitivity``, a
    Gaussian ``delta``) — the parameters that scale noise independently of
    the fitted strategy. Two same-class mechanisms with equal privacy state
    release equally-calibrated noise even when their solver tuning (and
    hence their fit) differs, which is what lets the plan cache share
    expensive fits across differently-tuned engines while refusing to serve
    a plan calibrated for another privacy configuration.
    """
    return {
        name: getattr(mechanism, name, _MISSING)
        for name in getattr(mechanism, "privacy_params", ())
    }


def mechanism_states_equal(state_a, state_b):
    """Compare two :func:`mechanism_state` dicts, array-aware.

    Plain dict equality raises on ndarray-valued attributes (e.g. a
    strategy matrix), which would wrongly read as a configuration mismatch;
    arrays compare by content instead."""
    import numpy as np

    if state_a.keys() != state_b.keys():
        return False
    for key, value_a in state_a.items():
        value_b = state_b[key]
        if isinstance(value_a, np.ndarray) or isinstance(value_b, np.ndarray):
            if not np.array_equal(value_a, value_b):
                return False
        elif value_a != value_b:
            return False
    return True


def mechanism_spec(mechanism, candidates=DEFAULT_CANDIDATES):
    """Normalize a ``mechanism=`` argument into a stable cache-key component.

    ``"auto"`` embeds the candidate set (different candidate pools are
    different plans); a registry label normalizes to upper case; a mechanism
    *instance* is keyed by its class name — deliberately independent of the
    instance's fitted/unfitted ``repr`` so the same object maps to the same
    key before and after fitting. (The engine additionally compares
    constructor state on a cache hit, so a differently-configured instance
    of the same class gets a fresh one-off plan rather than another
    configuration's noise calibration.)

    Mechanism configuration (constructor parameters, ``mechanism_kwargs``)
    is deliberately *not* part of the key: a plan is a shareable fit
    artifact for (workload, mechanism), and whoever plans a key first wins —
    that is what lets a restarted or differently-tuned engine reuse an
    expensive on-disk fit instead of redoing it. This is safe because the
    engine guards every cache hit: a cached plan is only served when its
    *privacy-critical* constructor state (:func:`privacy_state` — e.g.
    ``unit_sensitivity``, ``delta``) matches what the serving engine would
    build; on a mismatch the engine builds a one-off plan instead, so
    solver-tuning differences share the fit but a plan calibrated for
    another privacy configuration is never released. When
    differently-configured plans must coexist as cached artifacts, give
    them separate :class:`PlanCache` instances or directories, or plan with
    ``use_cache=False``.
    """
    if isinstance(mechanism, Mechanism):
        return f"instance:{type(mechanism).__name__}"
    spec = str(mechanism).strip().upper()
    if spec == "AUTO":
        labels = []
        for candidate in candidates:
            if isinstance(candidate, str):
                labels.append(candidate.strip().upper())
            else:
                labels.append(type(candidate).__name__)
        return "auto[" + ",".join(labels) + "]"
    return spec


def plan_key(workload, mechanism, candidates=DEFAULT_CANDIDATES):
    """Cache key of the plan for ``workload`` under a mechanism spec."""
    return f"{workload_key(workload)}|{mechanism_spec(mechanism, candidates)}"


@dataclass
class PlanCandidate:
    """One candidate's outcome in a planning round (serializable).

    The planner's analogue of :class:`repro.engine.selection.MechanismChoice`
    without the live mechanism instance: what was tried, what it would cost,
    how long the fit took, and why it failed if it did.
    """

    label: str
    expected_error: Optional[float] = None
    fit_seconds: Optional[float] = None
    failure: Optional[str] = None
    chosen: bool = False

    @property
    def ok(self):
        """True when the candidate produced a comparable expected error."""
        return self.failure is None and self.expected_error is not None

    def to_dict(self):
        """Plain-dict form for JSON serialization."""
        return {
            "label": self.label,
            "expected_error": self.expected_error,
            "fit_seconds": self.fit_seconds,
            "failure": self.failure,
            "chosen": self.chosen,
        }

    @classmethod
    def from_dict(cls, payload):
        """Inverse of :meth:`to_dict`."""
        return cls(
            label=str(payload["label"]),
            expected_error=payload.get("expected_error"),
            fit_seconds=payload.get("fit_seconds"),
            failure=payload.get("failure"),
            chosen=bool(payload.get("chosen", False)),
        )


@dataclass
class ExecutionPlan:
    """A fitted, inspectable strategy for answering one workload.

    Produced by :meth:`PrivateQueryEngine.plan` (or :func:`build_plan`);
    consumed by :meth:`PrivateQueryEngine.execute`. Building a plan spends
    *no* privacy budget — everything here is data-independent.

    Attributes
    ----------
    mechanism:
        The fitted mechanism that will produce releases.
    mechanism_label:
        Registry label (or class name) of the chosen mechanism.
    mechanism_spec:
        Normalized form of the ``mechanism=`` argument the plan was built
        with (part of the cache key).
    workload_key:
        ``"mxn:sha1"`` identity of the planned workload.
    epsilon_hint:
        The probe epsilon candidates were ranked at.
    candidates:
        Per-candidate comparison table (:class:`PlanCandidate`), ranking
        order, chosen first among the successes.
    fit_kwargs:
        Full constructor state of the chosen mechanism (public attributes,
        which for registry mechanisms are exactly the constructor
        parameters) — what :func:`repro.io.serialization.load_plan` needs
        to rebuild the mechanism faithfully on restore.
    """

    mechanism: Mechanism
    mechanism_label: str
    mechanism_spec: str
    workload_key: str
    epsilon_hint: float
    candidates: list = field(default_factory=list)
    fit_kwargs: dict = field(default_factory=dict)
    #: Memoized CompiledPlan (serving state; rebuilt on demand, never
    #: serialized or compared).
    _compiled: object = field(default=None, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    @property
    def workload(self):
        """The fitted workload (shared with the mechanism)."""
        return self.mechanism.workload

    @property
    def shape(self):
        """``(m, n)`` of the planned workload."""
        return tuple(self.workload.shape)

    @property
    def domain_size(self):
        """Number of unit counts the plan expects."""
        return self.workload.domain_size

    @property
    def workload_digest(self):
        """SHA-1 content digest portion of :attr:`workload_key`."""
        return self.workload_key.rsplit(":", 1)[-1]

    @property
    def plan_key(self):
        """Cache identity: workload key + mechanism spec."""
        return f"{self.workload_key}|{self.mechanism_spec}"

    @property
    def requires_delta(self):
        """True when execution is an (eps, delta) release (Gaussian noise)."""
        return bool(getattr(self.mechanism, "requires_delta", False))

    @property
    def delta(self):
        """Per-release delta charged by this plan (0.0 for pure eps-DP)."""
        return float(getattr(self.mechanism, "delta", 0.0)) if self.requires_delta else 0.0

    def release_cost(self, epsilon):
        """The typed :class:`~repro.privacy.cost.NoiseCost` one execution
        of this plan at ``epsilon`` charges (see
        :meth:`repro.mechanisms.base.Mechanism.release_cost`). This is
        exactly what the engine hands the accountant and journals in
        ``Release.metadata["cost"]``."""
        return self.mechanism.release_cost(epsilon)

    def compile(self):
        """Memoized :class:`repro.engine.compiled.CompiledPlan` for serving.

        Precomputes the data-independent release state (strategy matrix,
        recombination, sensitivity, noise family) and provides the
        epoch-keyed ``L x`` cache plus the vectorised ``answer_many`` path
        the engine's executor runs releases through. Compiling never
        changes release semantics — mechanisms without a linear release
        operator compile to a transparent ``mechanism.answer`` forwarder.
        """
        if self._compiled is None:
            from repro.engine.compiled import CompiledPlan

            self._compiled = CompiledPlan(self)
        return self._compiled

    def predicted_error(self, epsilon):
        """Analytic expected total squared error of one release at
        ``epsilon`` (None when the mechanism has no closed form)."""
        epsilon = check_positive(epsilon, "epsilon")
        try:
            return float(self.mechanism.expected_squared_error(epsilon))
        except (NotImplementedError, ReproError):
            return None

    # ------------------------------------------------------------------ #
    # Explain
    # ------------------------------------------------------------------ #
    def explain(self, epsilon=None, budget=None, budget_delta=0.0):
        """Human-readable plan report (an ``EXPLAIN`` for private releases).

        Lists the chosen mechanism with its decomposition facts (rank,
        sensitivity), the privacy model, the predicted error at the plan's
        probe epsilon (and at ``epsilon`` when given), and the full
        candidate ranking — including failed candidates and why.

        ``budget`` (a total epsilon, with ``budget_delta`` the total delta)
        adds a capacity line: how many releases of this plan at the probe
        epsilon fit that budget under each accountant model — sequential /
        basic composition versus the Rényi accountant
        (:func:`repro.privacy.rdp.releases_per_budget`) — the number a
        serving deployment sizes its traffic against.
        """
        meta = self.mechanism.plan_metadata()
        lines = [
            f"ExecutionPlan for workload {self.shape[0]}x{self.shape[1]} "
            f"(digest {self.workload_digest[:12]})"
        ]
        chosen = f"  chosen mechanism : {self.mechanism_label} ({meta['class']})"
        facts = []
        if "decomposition_rank" in meta:
            facts.append(f"decomposition rank {meta['decomposition_rank']}")
        if "sensitivity" in meta:
            facts.append(f"sensitivity {meta['sensitivity']:.6g}")
        if facts:
            chosen += " — " + ", ".join(facts)
        lines.append(chosen)
        if self.requires_delta:
            lines.append(f"  privacy model    : (eps, delta)-DP, delta={self.delta:g} per release")
        else:
            lines.append("  privacy model    : pure eps-DP")
        probes = [self.epsilon_hint]
        if epsilon is not None and epsilon != self.epsilon_hint:
            probes.append(check_positive(epsilon, "epsilon"))
        try:
            cost = self.release_cost(probes[-1])
        except ReproError:
            cost = None
        if cost is not None:
            rendered = f"{cost.family} (eps={cost.epsilon:g}"
            if cost.delta > 0.0:
                rendered += f", delta={cost.delta:g}"
            if cost.sigma_or_scale is not None:
                rendered += f", noise scale {cost.sigma_or_scale:.6g}"
            if cost.sample_rate < 1.0:
                charged_eps, charged_delta = cost.charged_pair()
                rendered += (
                    f", q={cost.sample_rate:g} -> charged eps={charged_eps:.6g}"
                    f", delta={charged_delta:g}"
                )
            rendered += ")"
            lines.append(f"  release cost     : {rendered}")
        for probe in probes:
            predicted = self.predicted_error(probe)
            rendered = f"{predicted:.6g}" if predicted is not None else "no closed form"
            lines.append(f"  predicted error  : {rendered} (total squared, at eps={probe:g})")
        if budget is not None:
            lines.append(self._budget_line(probes[-1], budget, budget_delta))
        elif float(budget_delta) != 0.0:
            raise ValidationError(
                "budget_delta was given without budget (the total epsilon); "
                "pass both to get the releases-per-budget line"
            )
        lines.append("  candidate ranking:")
        rank = 0
        for candidate in self.candidates:
            if candidate.failure is not None:
                lines.append(f"    x. {candidate.label:<6} failed: {candidate.failure}")
                continue
            rank += 1
            error = (
                f"{candidate.expected_error:>12.6g}"
                if candidate.expected_error is not None
                else "no closed form"
            )
            fit = f"fit {candidate.fit_seconds:.3f}s" if candidate.fit_seconds is not None else ""
            marker = "  <- chosen" if candidate.chosen else ""
            lines.append(f"    {rank}. {candidate.label:<6} expected error {error}  {fit}{marker}")
        return "\n".join(lines)

    def _budget_line(self, probe, budget, budget_delta):
        """The releases-per-budget capacity line of :meth:`explain`."""
        from repro.exceptions import PrivacyBudgetError
        from repro.privacy.accountant import _check_delta
        from repro.privacy.rdp import releases_per_budget

        budget = check_positive(budget, "budget")
        # Validate up front: a malformed budget_delta must raise like every
        # other explain parameter, not be swallowed into an "n/a" column by
        # the not-applicable handler below.
        budget_delta = _check_delta(budget_delta, "budget_delta")
        cost_delta = self.delta
        sample_rate = 1.0
        try:
            sample_rate = float(self.release_cost(probe).sample_rate)
        except ReproError:
            pass
        counts = []
        base_model = "basic" if (cost_delta > 0.0 or budget_delta > 0.0) else "pure"
        for model in (base_model, "rdp"):
            try:
                count = releases_per_budget(
                    probe, cost_delta, budget, budget_delta, model=model,
                    sample_rate=sample_rate,
                )
            except PrivacyBudgetError:
                # e.g. RDP without a delta budget: not applicable.
                counts.append(f"{model} n/a")
                continue
            counts.append(f"{model} x{count}")
        per_release = f"eps={probe:g}, delta={cost_delta:g}"
        if sample_rate < 1.0:
            per_release += f", q={sample_rate:g}"
        return (
            f"  releases/budget  : {' | '.join(counts)} "
            f"({per_release} per release against "
            f"budget eps={budget:g}, delta={budget_delta:g})"
        )

    def to_metadata(self):
        """JSON-serializable description (everything but the fitted arrays)."""
        return {
            "mechanism_label": self.mechanism_label,
            "mechanism_spec": self.mechanism_spec,
            "workload_key": self.workload_key,
            "epsilon_hint": self.epsilon_hint,
            "candidates": [candidate.to_dict() for candidate in self.candidates],
            "fit_kwargs": dict(self.fit_kwargs),
            "mechanism": self.mechanism.plan_metadata(),
        }

    def __repr__(self):
        return (
            f"ExecutionPlan({self.mechanism_label}, workload={self.shape[0]}x{self.shape[1]}, "
            f"candidates={len(self.candidates)})"
        )


def _fit_single(mechanism, label, workload, epsilon_hint):
    """Fit one concrete mechanism and wrap the outcome as a PlanCandidate."""
    started = time.perf_counter()
    mechanism.fit(workload)
    fit_seconds = time.perf_counter() - started
    try:
        expected = float(mechanism.expected_squared_error(epsilon_hint))
    except (NotImplementedError, ReproError):
        expected = None
    return PlanCandidate(
        label=label, expected_error=expected, fit_seconds=fit_seconds, chosen=True
    )


def build_plan(
    workload,
    epsilon_hint=0.1,
    mechanism="auto",
    candidates=DEFAULT_CANDIDATES,
    mechanism_kwargs=None,
    parallel=False,
):
    """Run mechanism selection/fitting and return an :class:`ExecutionPlan`.

    This is the engine-independent planner (the engine adds domain checks
    and caching on top). ``mechanism`` may be ``"auto"`` (rank every
    candidate by analytic expected error at ``epsilon_hint``), a registry
    label, or an unfitted mechanism instance — instances are deep-copied
    before fitting, so the caller's object is never mutated. ``parallel``
    fans the candidate fits of an ``"auto"`` spec out across a process pool
    (see :func:`repro.engine.selection.rank_mechanisms`).
    """
    workload = as_workload(workload)
    epsilon_hint = check_positive(epsilon_hint, "epsilon_hint")
    mechanism_kwargs = dict(mechanism_kwargs or {})
    spec = mechanism_spec(mechanism, candidates)
    key = workload_key(workload)

    if spec.startswith("auto["):
        choices = rank_mechanisms(
            workload, epsilon_hint, candidates=candidates,
            mechanism_kwargs=mechanism_kwargs, parallel=parallel,
        )
        winner = next((choice for choice in choices if choice.ok), None)
        if winner is None:
            failures = "; ".join(f"{c.label}: {c.failure}" for c in choices)
            raise ValidationError(f"no usable mechanism among candidates ({failures})")
        plan_candidates = []
        for choice in choices:
            plan_candidates.append(
                PlanCandidate(
                    label=choice.label,
                    expected_error=choice.expected_error,
                    fit_seconds=choice.fit_seconds,
                    failure=choice.failure,
                    chosen=choice is winner,
                )
            )
        return ExecutionPlan(
            mechanism=winner.mechanism,
            mechanism_label=winner.label,
            mechanism_spec=spec,
            workload_key=key,
            epsilon_hint=epsilon_hint,
            candidates=plan_candidates,
            fit_kwargs=mechanism_state(winner.mechanism),
        )

    if isinstance(mechanism, Mechanism):
        label = getattr(mechanism, "name", type(mechanism).__name__)
        fitted = copy.deepcopy(mechanism)
    else:
        label = spec
        fitted = make_mechanism(label, **mechanism_kwargs.get(label, {}))
    candidate = _fit_single(fitted, label, workload, epsilon_hint)
    return ExecutionPlan(
        mechanism=fitted,
        mechanism_label=label,
        mechanism_spec=spec,
        workload_key=key,
        epsilon_hint=epsilon_hint,
        candidates=[candidate],
        fit_kwargs=mechanism_state(fitted),
    )
