"""Compiled release operators: the serving hot path of an ExecutionPlan.

``ExecutionPlan.compile()`` returns a :class:`CompiledPlan` that strips a
repeated ``execute`` down to its irreducible work:

* the **data-independent** release state (strategy ``L``, recombination
  ``B``, sensitivity, noise family) is pulled out of the mechanism once,
  via :meth:`repro.mechanisms.base.Mechanism.release_operator`;
* the **data-dependent** strategy answers ``L x`` are cached per *data
  epoch* — an opaque token the engine stamps whenever its data vector is
  (re)set — so a repeated release is one noise draw plus one ``B @ (.)``
  and nothing else: no input re-validation, no GEMV against the domain-sized
  ``x``.

Batched serving goes through :meth:`CompiledPlan.answer_many`: one
``(k, r)`` RNG draw and one GEMM for all ``k`` releases of a batch.

Mechanisms without a linear release operator (the fast-transform WM/HM)
compile to a transparent fallback that forwards to ``mechanism.answer`` —
``compile()`` never changes semantics, only cost.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.validation import as_epsilon_batch

__all__ = ["CompiledPlan"]

#: Strategy-answer cache entries kept per compiled plan. One engine serving
#: a plan needs exactly one; a handful tolerates a few engines (or epochs)
#: sharing a plan object without thrashing.
_MAX_EPOCH_ENTRIES = 4


class CompiledPlan:
    """Precomputed release state of one :class:`ExecutionPlan`.

    Attributes
    ----------
    operator:
        The mechanism's :class:`repro.mechanisms.operator.ReleaseOperator`,
        or ``None`` when the mechanism has no linear pipeline (releases
        then forward to ``mechanism.answer``).
    strategy_evaluations:
        How many times ``L x`` was actually computed (cache misses) — the
        observable the epoch-invalidation tests pin down.
    releases, batches:
        Served release / batch-call counters.
    """

    def __init__(self, plan):
        self.plan = plan
        self.mechanism = plan.mechanism
        self.operator = self.mechanism.release_operator()
        # epoch token -> precomputed strategy answers (L x).
        self._strategy_cache = {}
        self.strategy_evaluations = 0
        self.releases = 0
        self.batches = 0

    # ------------------------------------------------------------------ #
    # Strategy-answer (L x) epoch cache
    # ------------------------------------------------------------------ #
    def strategy_answers(self, x, epoch=None):
        """``L x`` for the current data, cached per epoch token.

        ``epoch=None`` (direct, engine-less use) always recomputes: without
        a token there is no way to know the data did not change in place.
        """
        if epoch is None:
            self.strategy_evaluations += 1
            return self.operator.strategy_answers(x)
        cached = self._strategy_cache.get(epoch)
        if cached is None:
            cached = self.operator.strategy_answers(x)
            self.strategy_evaluations += 1
            self._strategy_cache[epoch] = cached
            while len(self._strategy_cache) > _MAX_EPOCH_ENTRIES:
                self._strategy_cache.pop(next(iter(self._strategy_cache)))
        return cached

    # ------------------------------------------------------------------ #
    # Releasing
    # ------------------------------------------------------------------ #
    def answer(self, x, epsilon, rng, epoch=None):
        """One release; the noise-draw-plus-``B @ (.)`` fast path.

        ``x`` must be pre-validated (the engine validates its data vector
        once, when set). The RNG call shape matches the mechanism's own
        ``_answer``, so compiling does not move a seeded engine's stream.
        """
        self.releases += 1
        if self.operator is None:
            return self.mechanism.answer(x, epsilon, rng)
        return self.operator.answer(self.strategy_answers(x, epoch), epsilon, rng)

    def answer_many(self, x, epsilons, rng, epoch=None):
        """``k`` releases as a ``(k, m)`` array: one RNG draw, one GEMM.

        Operator-less mechanisms route through their own
        ``Mechanism.answer_many`` — since the fast-transform mechanisms
        (WM/HM) batch their noise block and synthesis there, every
        mechanism's batch is now one draw plus one transform/GEMM.
        """
        epsilons = as_epsilon_batch(epsilons)
        self.batches += 1
        self.releases += int(epsilons.size)
        if self.operator is None:
            return self.mechanism.answer_many(x, epsilons, rng)
        return self.operator.answer_many(self.strategy_answers(x, epoch), epsilons, rng)

    def invalidate(self):
        """Drop every cached strategy answer (all epochs)."""
        self._strategy_cache.clear()

    def __repr__(self):
        kind = "operator" if self.operator is not None else "fallback"
        return (
            f"CompiledPlan({self.plan.mechanism_label}, {kind}, "
            f"releases={self.releases}, strategy_evaluations={self.strategy_evaluations})"
        )
