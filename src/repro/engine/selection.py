"""Automatic mechanism selection.

Given a workload and a privacy budget, every mechanism in this package
exposes an *analytic* expected squared error — a data-independent quantity
that can be compared before any budget is spent. This module ranks
candidate mechanisms by that quantity and returns the winner, which is how
the query engine implements ``mechanism="auto"``.

Selection is data-independent (it looks only at the workload and epsilon),
so it consumes no privacy budget.

For large candidate pools (or expensive candidates like MM) the fits can be
fanned out across a process pool with ``rank_mechanisms(..., parallel=True)``
— the workload's memoised thin SVD is computed once in the parent and
shipped to every worker, candidate order (and therefore tie-breaking) is
identical to the serial path, and any pool failure (unpicklable candidate,
broken pool) falls back to the serial path transparently.
"""

from __future__ import annotations

import copy
import os
import time

from repro.exceptions import ReproError, ValidationError
from repro.linalg.validation import check_positive
from repro.mechanisms.base import Mechanism, as_workload
from repro.mechanisms.registry import make_mechanism

__all__ = [
    "MechanismChoice",
    "rank_mechanisms",
    "select_mechanism",
    "DEFAULT_CANDIDATES",
    "APPROX_DP_CANDIDATES",
]

#: Default candidate set for pure eps-DP: the paper's contenders. MM is
#: excluded by default for its O(n^3) fit cost; add it explicitly if wanted.
DEFAULT_CANDIDATES = ("LM", "NOR", "WM", "HM", "SVDM", "LRM")

#: Gaussian (eps, delta)-DP candidates, appended to the pool when the engine
#: is constructed with ``delta > 0``.
APPROX_DP_CANDIDATES = ("GLM", "GNOR", "GLRM")


class MechanismChoice:
    """One candidate's outcome in a selection round.

    Attributes
    ----------
    label:
        Registry label of the mechanism.
    mechanism:
        The *fitted* mechanism instance (None when fitting failed).
    expected_error:
        Analytic expected total squared error at the probe epsilon
        (None when unavailable).
    fit_seconds:
        Wall-clock cost of fitting.
    failure:
        Error message when the candidate could not be evaluated.
    """

    def __init__(self, label, mechanism=None, expected_error=None, fit_seconds=None, failure=None):
        self.label = label
        self.mechanism = mechanism
        self.expected_error = expected_error
        self.fit_seconds = fit_seconds
        self.failure = failure

    @property
    def ok(self):
        """True when the candidate produced a comparable expected error."""
        return self.failure is None and self.expected_error is not None

    def __repr__(self):
        if not self.ok:
            return f"MechanismChoice({self.label}, failed: {self.failure})"
        return f"MechanismChoice({self.label}, expected={self.expected_error:.4g})"


def _evaluate_candidate(spec, workload, epsilon, mechanism_kwargs):
    """Fit one candidate spec; always returns a :class:`MechanismChoice`.

    Top-level (picklable) so the same code path serves both the serial loop
    and the process-pool fan-out. The spec is materialised defensively:
    instance candidates are deep-copied *before* any attribute (label)
    lookup, and per-label kwargs are deep-copied before being handed to the
    constructor — ranking must never mutate (or alias) the caller's
    candidates or the engine's ``mechanism_kwargs``. Failures keep their
    ``fit_seconds`` so the plan's candidate table reports what the failed
    fit actually cost.
    """
    if isinstance(spec, str):
        label = spec.strip().upper()
        try:
            mechanism = make_mechanism(label, **copy.deepcopy(mechanism_kwargs.get(label, {})))
        except ReproError as exc:
            return MechanismChoice(label, failure=str(exc))
    else:
        # Fit a copy: ranking must not mutate the caller's instance
        # (candidates may be reused across selection rounds). Copy before
        # reading the label, so a name property that mutates state (or a
        # shared instance raced by a parallel round) cannot leak back.
        mechanism = copy.deepcopy(spec) if isinstance(spec, Mechanism) else spec
        label = getattr(mechanism, "name", type(mechanism).__name__)
    started = time.perf_counter()
    try:
        mechanism.fit(workload)
        expected = mechanism.expected_squared_error(epsilon)
    except (ReproError, NotImplementedError) as exc:
        return MechanismChoice(
            label, failure=str(exc), fit_seconds=time.perf_counter() - started
        )
    return MechanismChoice(
        label,
        mechanism=mechanism,
        expected_error=float(expected),
        fit_seconds=time.perf_counter() - started,
    )


#: Candidate labels/classes whose fit consumes the workload's thin SVD; the
#: parent memoises it once before fanning fits out so every worker inherits
#: the factorisation instead of recomputing it.
_SVD_HUNGRY_LABELS = frozenset({"LRM", "GLRM"})


def _precompute_shared_svd(workload, candidates):
    if workload.is_implicit:
        # Implicit workloads fit through the matvec sketch (memoised per
        # workload by Workload.implicit_svd); forcing the dense thin SVD
        # here would materialise the matrix the operator exists to avoid.
        return
    for spec in candidates:
        label = (
            spec.strip().upper()
            if isinstance(spec, str)
            else getattr(spec, "name", type(spec).__name__)
        )
        if label in _SVD_HUNGRY_LABELS:
            workload.thin_svd  # noqa: B018 — memoises on the workload
            return


#: Per-worker ranking context set by the pool initializer (workload,
#: epsilon, mechanism_kwargs) — the workload (with its memoised thin SVD,
#: an n-scale payload) ships once per worker instead of once per candidate.
_WORKER_CONTEXT = None


def _init_ranking_worker(workload, epsilon, mechanism_kwargs):
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = (workload, epsilon, mechanism_kwargs)


def _evaluate_candidate_in_worker(spec):
    return _evaluate_candidate(spec, *_WORKER_CONTEXT)


def _rank_parallel(workload, epsilon, candidates, mechanism_kwargs, max_workers):
    """Process-pool fan-out of the candidate fits, in submission order."""
    from concurrent.futures import ProcessPoolExecutor

    _precompute_shared_svd(workload, candidates)
    workers = min(max_workers, len(candidates))
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_ranking_worker,
        initargs=(workload, epsilon, mechanism_kwargs),
    ) as pool:
        futures = [pool.submit(_evaluate_candidate_in_worker, spec) for spec in candidates]
        return [future.result() for future in futures]


def rank_mechanisms(
    workload,
    epsilon,
    candidates=DEFAULT_CANDIDATES,
    mechanism_kwargs=None,
    parallel=False,
    max_workers=None,
):
    """Fit each candidate and rank by analytic expected error (ascending).

    Returns a list of :class:`MechanismChoice`, best first; failed
    candidates sort last. Candidates may be registry labels or unfitted
    mechanism instances.

    Parameters
    ----------
    parallel:
        ``False`` (default) fits candidates sequentially. ``True`` fans the
        fits out over a :class:`concurrent.futures.ProcessPoolExecutor`;
        an int is shorthand for ``parallel=True, max_workers=<int>``. The
        parent memoises the workload's thin SVD first so every worker
        shares one factorisation, and results are gathered in submission
        order — the returned ranking is identical to the serial path. Any
        pool failure (unpicklable candidates, spawn limits) falls back to
        the serial path.
    max_workers:
        Pool size cap (default: ``min(len(candidates), cpu_count)``).
    """
    workload = as_workload(workload)
    epsilon = check_positive(epsilon, "epsilon")
    mechanism_kwargs = dict(mechanism_kwargs or {})
    candidates = list(candidates)

    if isinstance(parallel, bool):
        use_parallel = parallel
    else:
        max_workers = int(parallel) if max_workers is None else max_workers
        use_parallel = int(parallel) > 1
    if max_workers is None:
        max_workers = min(len(candidates), os.cpu_count() or 1)
    use_parallel = use_parallel and max_workers > 1 and len(candidates) > 1

    choices = None
    if use_parallel:
        try:
            choices = _rank_parallel(
                workload, epsilon, candidates, mechanism_kwargs, max_workers
            )
        except Exception:
            # Unpicklable candidate, broken/forbidden process pool, ...:
            # parallelism is an optimisation, never a new failure mode.
            choices = None
    if choices is None:
        choices = [
            _evaluate_candidate(spec, workload, epsilon, mechanism_kwargs)
            for spec in candidates
        ]
    choices.sort(key=lambda c: (not c.ok, c.expected_error if c.ok else float("inf")))
    return choices


def select_mechanism(workload, epsilon, candidates=DEFAULT_CANDIDATES, mechanism_kwargs=None):
    """Return the fitted mechanism with the lowest analytic expected error.

    Raises :class:`ValidationError` if no candidate could be evaluated.
    """
    choices = rank_mechanisms(
        workload, epsilon, candidates=candidates, mechanism_kwargs=mechanism_kwargs
    )
    for choice in choices:
        if choice.ok:
            return choice.mechanism
    failures = "; ".join(f"{c.label}: {c.failure}" for c in choices)
    raise ValidationError(f"no usable mechanism among candidates ({failures})")
