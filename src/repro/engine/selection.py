"""Automatic mechanism selection.

Given a workload and a privacy budget, every mechanism in this package
exposes an *analytic* expected squared error — a data-independent quantity
that can be compared before any budget is spent. This module ranks
candidate mechanisms by that quantity and returns the winner, which is how
the query engine implements ``mechanism="auto"``.

Selection is data-independent (it looks only at the workload and epsilon),
so it consumes no privacy budget.
"""

from __future__ import annotations

import copy
import time

from repro.exceptions import ReproError, ValidationError
from repro.linalg.validation import check_positive
from repro.mechanisms.base import Mechanism, as_workload
from repro.mechanisms.registry import make_mechanism

__all__ = [
    "MechanismChoice",
    "rank_mechanisms",
    "select_mechanism",
    "DEFAULT_CANDIDATES",
    "APPROX_DP_CANDIDATES",
]

#: Default candidate set for pure eps-DP: the paper's contenders. MM is
#: excluded by default for its O(n^3) fit cost; add it explicitly if wanted.
DEFAULT_CANDIDATES = ("LM", "NOR", "WM", "HM", "SVDM", "LRM")

#: Gaussian (eps, delta)-DP candidates, appended to the pool when the engine
#: is constructed with ``delta > 0``.
APPROX_DP_CANDIDATES = ("GLM", "GNOR", "GLRM")


class MechanismChoice:
    """One candidate's outcome in a selection round.

    Attributes
    ----------
    label:
        Registry label of the mechanism.
    mechanism:
        The *fitted* mechanism instance (None when fitting failed).
    expected_error:
        Analytic expected total squared error at the probe epsilon
        (None when unavailable).
    fit_seconds:
        Wall-clock cost of fitting.
    failure:
        Error message when the candidate could not be evaluated.
    """

    def __init__(self, label, mechanism=None, expected_error=None, fit_seconds=None, failure=None):
        self.label = label
        self.mechanism = mechanism
        self.expected_error = expected_error
        self.fit_seconds = fit_seconds
        self.failure = failure

    @property
    def ok(self):
        """True when the candidate produced a comparable expected error."""
        return self.failure is None and self.expected_error is not None

    def __repr__(self):
        if not self.ok:
            return f"MechanismChoice({self.label}, failed: {self.failure})"
        return f"MechanismChoice({self.label}, expected={self.expected_error:.4g})"


def rank_mechanisms(workload, epsilon, candidates=DEFAULT_CANDIDATES, mechanism_kwargs=None):
    """Fit each candidate and rank by analytic expected error (ascending).

    Returns a list of :class:`MechanismChoice`, best first; failed
    candidates sort last. Candidates may be registry labels or unfitted
    mechanism instances.
    """
    workload = as_workload(workload)
    epsilon = check_positive(epsilon, "epsilon")
    mechanism_kwargs = dict(mechanism_kwargs or {})

    choices = []
    for spec in candidates:
        if isinstance(spec, str):
            label = spec.strip().upper()
            try:
                mechanism = make_mechanism(label, **mechanism_kwargs.get(label, {}))
            except ReproError as exc:
                choices.append(MechanismChoice(label, failure=str(exc)))
                continue
        else:
            # Fit a copy: ranking must not mutate the caller's instance
            # (candidates may be reused across selection rounds).
            mechanism = copy.deepcopy(spec) if isinstance(spec, Mechanism) else spec
            label = getattr(mechanism, "name", type(mechanism).__name__)
        started = time.perf_counter()
        try:
            mechanism.fit(workload)
            expected = mechanism.expected_squared_error(epsilon)
        except (ReproError, NotImplementedError) as exc:
            choices.append(MechanismChoice(label, failure=str(exc)))
            continue
        choices.append(
            MechanismChoice(
                label,
                mechanism=mechanism,
                expected_error=float(expected),
                fit_seconds=time.perf_counter() - started,
            )
        )
    choices.sort(key=lambda c: (not c.ok, c.expected_error if c.ok else float("inf")))
    return choices


def select_mechanism(workload, epsilon, candidates=DEFAULT_CANDIDATES, mechanism_kwargs=None):
    """Return the fitted mechanism with the lowest analytic expected error.

    Raises :class:`ValidationError` if no candidate could be evaluated.
    """
    choices = rank_mechanisms(
        workload, epsilon, candidates=candidates, mechanism_kwargs=mechanism_kwargs
    )
    for choice in choices:
        if choice.ok:
            return choice.mechanism
    failures = "; ".join(f"{c.label}: {c.failure}" for c in choices)
    raise ValidationError(f"no usable mechanism among candidates ({failures})")
