"""Persistent plan cache: expensive fits survive process restarts.

The costly part of planning is the mechanism fit (seconds to minutes for
LRM's ALM decomposition, cubic for MM's SDP); the plan that wraps it is the
natural cache unit. :class:`PlanCache` is a two-tier store:

* an **in-memory dict** (always on) giving same-process reuse, and
* an optional **on-disk directory** backend: every cacheable plan is written
  as a ``.plan.npz`` archive via :func:`repro.io.serialization.save_plan`,
  so a plan fitted in one process (or on one machine) can be loaded and
  executed in another. Integrity is anchored on
  :attr:`repro.workloads.workload.Workload.content_digest` — a loaded
  archive whose matrix does not hash back to the key it was stored under is
  rejected.

Keys are the :func:`repro.engine.plan.plan_key` strings (workload digest +
mechanism spec); file names are the SHA-1 of the key, so arbitrary
candidate-set specs stay filesystem-safe.

Plans whose mechanism cannot be serialized (custom mechanism instances
outside the registry) degrade gracefully to memory-only entries.
"""

from __future__ import annotations

import hashlib
import logging
import os
import time
from pathlib import Path

from repro.engine.plan import ExecutionPlan
from repro.exceptions import ValidationError
from repro.io.atomic import RetryPolicy, retry_with_backoff

__all__ = ["PlanCache"]

logger = logging.getLogger(__name__)

#: Disk-tier I/O retry: transient ``OSError`` (NFS hiccup, EINTR, a
#: concurrent writer's rename racing the open) is retried a few times with
#: jittered backoff before the cache degrades (miss on read, memory-only on
#: write). Kept short — each attempt may redo real work.
_DISK_RETRY = RetryPolicy(attempts=3, base_delay=0.005, max_delay=0.05)


class PlanCache:
    """Two-tier (memory + optional directory) store of :class:`ExecutionPlan`.

    Parameters
    ----------
    directory:
        ``None`` for a purely in-memory cache; otherwise a directory path
        (created on first write) holding one ``.plan.npz`` file per plan.
    max_entries:
        ``None`` (default) for an unbounded in-memory tier; otherwise the
        maximum number of plans held in memory. Past the cap the
        least-recently-used entry is evicted (lookup hits and stores both
        refresh recency). Eviction is memory-tier only: on-disk archives
        are left intact, so an evicted plan with a directory backend
        reloads from disk on its next lookup instead of refitting.
    ttl_seconds:
        ``None`` (default) for no expiry; otherwise the maximum age of a
        cached plan. Age is measured from the archive's ``saved_at``
        provenance stamp (file mtime for pre-provenance archives); memory
        entries carry the same stamp, so a promoted disk hit expires on
        schedule rather than living forever in memory. An expired entry
        reads as a **miss** — the subsequent ``put`` refits and overwrites
        the stale archive.
    min_solver_version:
        ``None`` (default) to accept any archive; otherwise the lowest
        acceptable :data:`repro.core.alm.SOLVER_VERSION` a disk archive
        may have been fitted under. Archives from older solvers (including
        pre-provenance ones, which read as version 0) miss instead of
        serving a fit the current solver would beat.

    Attributes
    ----------
    hits, misses, disk_hits:
        Lookup counters; ``disk_hits`` counts entries restored from the
        directory backend (a subset of ``hits``).
    evictions:
        In-memory entries dropped by the ``max_entries`` LRU policy.
    expirations:
        Lookups answered as misses because the entry was past
        ``ttl_seconds`` or below ``min_solver_version``.
    """

    def __init__(self, directory=None, max_entries=None, ttl_seconds=None,
                 min_solver_version=None):
        self.directory = Path(directory) if directory is not None else None
        if max_entries is not None:
            from repro.linalg.validation import check_positive_int

            max_entries = check_positive_int(max_entries, "max_entries")
        self.max_entries = max_entries
        if ttl_seconds is not None:
            from repro.linalg.validation import check_positive

            ttl_seconds = check_positive(ttl_seconds, "ttl_seconds")
        self.ttl_seconds = ttl_seconds
        self.min_solver_version = (
            None if min_solver_version is None else int(min_solver_version)
        )
        self._memory = {}  # insertion order doubles as LRU order (oldest first)
        self._saved_at = {}  # key -> provenance stamp of the memory entry
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0
        self.expirations = 0

    # ------------------------------------------------------------------ #
    # Key / path plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _filename(key):
        return hashlib.sha1(str(key).encode("utf-8")).hexdigest() + ".plan.npz"

    def path_for(self, key):
        """On-disk path a plan under ``key`` is (or would be) stored at."""
        if self.directory is None:
            return None
        return self.directory / self._filename(key)

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    # ------------------------------------------------------------------ #
    # Staleness (TTL + solver-version provenance)
    # ------------------------------------------------------------------ #
    def _memory_entry_fresh(self, key):
        if self.ttl_seconds is None:
            return True
        stamp = self._saved_at.get(key)
        return stamp is None or time.time() - stamp <= self.ttl_seconds

    def _archive_staleness(self, path):
        """``(stale, info)`` for a disk archive; ``info`` is its provenance
        dict when the gate is configured (``None`` otherwise, or when the
        metadata is unreadable — the load path classifies that failure)."""
        if self.ttl_seconds is None and self.min_solver_version is None:
            return False, None
        from repro.io.serialization import plan_archive_info

        try:
            info = plan_archive_info(path)
        except Exception:
            return False, None
        if (
            self.min_solver_version is not None
            and info["solver_version"] < self.min_solver_version
        ):
            return True, info
        if self.ttl_seconds is not None and info["saved_at"] is not None:
            if time.time() - info["saved_at"] > self.ttl_seconds:
                return True, info
        return False, info

    def get(self, key):
        """Return the cached plan for ``key``, or ``None``.

        Memory first; on a memory miss with a directory backend, the disk
        archive is loaded, verified against ``key``, promoted into memory
        and returned. Corrupt or mismatched archives raise
        :class:`repro.exceptions.ValidationError`. Entries past
        ``ttl_seconds`` — or disk archives fitted below
        ``min_solver_version`` — answer as misses, so the caller refits
        and the subsequent ``put`` overwrites the stale archive.
        """
        plan = self._memory.get(key)
        if plan is not None:
            if self._memory_entry_fresh(key):
                self.hits += 1
                self._touch(key)
                return plan
            # Expired in memory: drop the entry and fall through to the
            # disk tier, whose archive gets its own staleness check (it
            # may have been rewritten by another process since).
            del self._memory[key]
            self._saved_at.pop(key, None)
            self.expirations += 1
        path = self.path_for(key)
        if path is not None and path.exists():
            from repro.io.serialization import PlanFormatError, load_plan

            stale, info = self._archive_staleness(path)
            if stale:
                self.expirations += 1
                self.misses += 1
                return None
            try:
                plan = retry_with_backoff(
                    lambda: load_plan(path), policy=_DISK_RETRY, retry_on=(OSError,)
                )
            except PlanFormatError:
                # Unreadable-but-benign format: an archive from an older
                # library version, or a *newer* one (e.g. a version-4 spec
                # archive written by a release whose mechanism class this
                # environment cannot import). A miss — the subsequent
                # put() overwrites it.
                self.misses += 1
                return None
            except ValidationError:
                raise  # integrity/tamper failures must surface, not replan
            except Exception:
                # Truncated/corrupt archive (e.g. a torn write from a
                # crashed writer): quarantine it for post-mortem instead of
                # deleting the evidence, warn, and treat as a miss — the
                # subsequent put() refits and writes a fresh archive.
                quarantine = path.with_name(path.name + ".corrupt")
                try:
                    os.replace(path, quarantine)
                    where = f"quarantined to {quarantine.name}"
                except OSError:
                    where = "quarantine rename failed; leaving in place"
                logger.warning(
                    "plan cache: unreadable archive %s (%s); replanning",
                    path.name,
                    where,
                )
                self.misses += 1
                return None
            if plan.plan_key != key:
                raise ValidationError(
                    f"plan cache integrity failure: archive {path.name} holds key "
                    f"{plan.plan_key!r}, expected {key!r}"
                )
            self._memory[key] = plan
            # The promoted entry inherits the archive's provenance stamp
            # (not "now"), so it expires on the archive's schedule.
            if info is not None and info["saved_at"] is not None:
                self._saved_at[key] = info["saved_at"]
            else:
                self._saved_at[key] = time.time()
            self._evict_over_cap()
            self.hits += 1
            self.disk_hits += 1
            return plan
        self.misses += 1
        return None

    def _touch(self, key):
        """Mark ``key`` most-recently-used (re-append in dict order)."""
        if self.max_entries is not None:
            self._memory[key] = self._memory.pop(key)

    def _evict_over_cap(self):
        """Drop least-recently-used memory entries past ``max_entries``.

        Disk archives are never touched: eviction trades memory for a
        (cheap) disk reload, not for a refit.
        """
        if self.max_entries is None:
            return
        while len(self._memory) > self.max_entries:
            oldest = next(iter(self._memory))
            del self._memory[oldest]
            self._saved_at.pop(oldest, None)
            self.evictions += 1

    def put(self, key, plan):
        """Store ``plan`` under ``key`` in memory and (if configured) on disk.

        Plans that cannot be serialized (mechanisms outside the registry)
        — and disk-tier write failures (read-only or full filesystem) —
        degrade to memory-only entries rather than failing the planning
        call: the caller already paid for the fit and must receive it.
        """
        if not isinstance(plan, ExecutionPlan):
            raise ValidationError("PlanCache stores ExecutionPlan objects")
        if key in self._memory:
            self._memory.pop(key)  # re-append: a store refreshes recency
        self._memory[key] = plan
        self._saved_at[key] = time.time()
        self._evict_over_cap()
        path = self.path_for(key)
        if path is None:
            return
        from repro.io.serialization import save_plan

        # save_plan writes through repro.io.atomic.atomic_writer (unique
        # per-writer staging file, fsync, rename-over) so a crash mid-save —
        # or concurrent engines sharing the directory — never exposes a
        # half-written archive. Transient OSErrors are retried briefly.
        def _write():
            self.directory.mkdir(parents=True, exist_ok=True)
            save_plan(plan, path)

        try:
            retry_with_backoff(_write, policy=_DISK_RETRY, retry_on=(OSError,))
        except (ValidationError, OSError):
            # Unsupported mechanism state or unwritable disk tier
            # (including a rename refused because a concurrent reader
            # holds the target open): keep the memory entry only.
            return

    def __contains__(self, key):
        """Existence check only (memory entry or disk archive file): a True
        here does not guarantee :meth:`get` can load the archive — a corrupt
        file still answers ``None`` from ``get``."""
        if key in self._memory:
            return True
        path = self.path_for(key)
        return path is not None and path.exists()

    def __len__(self):
        """Number of in-memory entries (disk archives load lazily)."""
        return len(self._memory)

    def keys(self):
        """Keys of the in-memory entries."""
        return list(self._memory)

    def clear(self, disk=False):
        """Drop the in-memory tier; with ``disk=True`` also delete archives
        (including staging files a crashed writer may have leaked and
        ``*.corrupt`` quarantine files)."""
        self._memory.clear()
        self._saved_at.clear()
        if disk and self.directory is not None and self.directory.exists():
            for pattern in ("*.plan.npz", "*.tmp.npz", "*.tmp", "*.corrupt"):
                for archive in self.directory.glob(pattern):
                    archive.unlink()

    def __repr__(self):
        backend = f"dir={self.directory}" if self.directory else "memory-only"
        return (
            f"PlanCache({backend}, entries={len(self._memory)}, "
            f"hits={self.hits}, disk_hits={self.disk_hits}, misses={self.misses})"
        )
