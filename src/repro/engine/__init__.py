"""Deployment layer: planner/executor query engine and mechanism selection.

The public surface follows a DBMS-style split: ``engine.plan(workload)``
returns an inspectable, cacheable :class:`ExecutionPlan`;
``engine.execute(plan, epsilon)`` performs the budget-audited noisy
release. ``answer_workload`` remains as a deprecated one-shot shim.
"""

from repro.engine.compiled import CompiledPlan
from repro.engine.plan import ExecutionPlan, PlanCandidate, build_plan, plan_key
from repro.engine.plan_cache import PlanCache
from repro.engine.query_engine import PrivateQueryEngine, Release
from repro.engine.selection import (
    APPROX_DP_CANDIDATES,
    DEFAULT_CANDIDATES,
    MechanismChoice,
    rank_mechanisms,
    select_mechanism,
)

__all__ = [
    "APPROX_DP_CANDIDATES",
    "CompiledPlan",
    "DEFAULT_CANDIDATES",
    "ExecutionPlan",
    "MechanismChoice",
    "PlanCache",
    "PlanCandidate",
    "PrivateQueryEngine",
    "Release",
    "build_plan",
    "plan_key",
    "rank_mechanisms",
    "select_mechanism",
]
