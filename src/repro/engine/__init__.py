"""Deployment layer: budget-managed query engine and mechanism selection."""

from repro.engine.query_engine import PrivateQueryEngine, Release
from repro.engine.selection import (
    DEFAULT_CANDIDATES,
    MechanismChoice,
    rank_mechanisms,
    select_mechanism,
)

__all__ = [
    "DEFAULT_CANDIDATES",
    "MechanismChoice",
    "PrivateQueryEngine",
    "Release",
    "rank_mechanisms",
    "select_mechanism",
]
