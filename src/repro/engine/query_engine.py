"""A plan/execute differentially private query engine.

:class:`PrivateQueryEngine` is the deployment wrapper a downstream system
would actually adopt, structured like a DBMS optimizer/executor pair:

* :meth:`~PrivateQueryEngine.plan` is the **planner** — it runs mechanism
  selection and fitting (data-independent, budget-free) and returns an
  :class:`repro.engine.plan.ExecutionPlan` that can be inspected with
  ``plan.explain()``, cached across processes in a
  :class:`repro.engine.plan_cache.PlanCache`, and shipped between machines
  via :func:`repro.io.serialization.save_plan`.
* :meth:`~PrivateQueryEngine.execute` is the **executor** — a thin,
  budget-audited noisy release of a plan at a chosen epsilon, with
  :meth:`~PrivateQueryEngine.execute_many` as its atomic batch form.

Privacy accounting is pluggable (:mod:`repro.privacy.accountant`): the
default is pure eps-DP sequential composition; constructing the engine with
``delta > 0`` switches to (eps, delta) basic composition and routes
Gaussian-mechanism releases through it, with both coordinates tracked per
release in the audit log.

``answer_workload`` (the pre-plan-API entry point) remains as a deprecated
plan-then-execute shim.

Example
-------
>>> import numpy as np
>>> from repro.engine import PrivateQueryEngine
>>> from repro.workloads import wrelated
>>> engine = PrivateQueryEngine(np.arange(64.0), total_budget=1.0, seed=0)
>>> plan = engine.plan(wrelated(8, 64, s=2, seed=1))
>>> release = engine.execute(plan, epsilon=0.25)
>>> engine.remaining_budget
0.75
"""

from __future__ import annotations

import itertools
import os
import uuid
import warnings
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.postprocess import postprocess_answers
from repro.engine.plan import (
    ExecutionPlan,
    build_plan,
    mechanism_state,
    mechanism_states_equal,
    plan_key,
    privacy_state,
    workload_key,
)
from repro.engine.plan_cache import PlanCache
from repro.engine.selection import APPROX_DP_CANDIDATES, DEFAULT_CANDIDATES
from repro.exceptions import ReproError, ValidationError
from repro.linalg.validation import as_vector, check_positive, ensure_rng
from repro.mechanisms.base import Mechanism, as_workload
from repro.mechanisms.registry import make_mechanism
from repro.privacy.accountant import BudgetAccountant, make_accountant
from repro.privacy.cost import NoiseCost

__all__ = ["PrivateQueryEngine", "Release"]

#: Data-epoch token state. Each engine stamps a fresh token whenever its
#: data vector is (re)set; compiled plans key their cached strategy answers
#: (L x) on the token, so tokens must never collide across engines sharing
#: a plan — including engines in *different processes*: a fork duplicates a
#: bare module-level counter, so a forked worker could re-mint a token its
#: parent already cached against different data and serve a stale ``L x``.
#: Tokens are therefore ``"{pid}-{salt}-{n}"`` where the salt is a fresh
#: uuid minted per process: the pid check below re-salts lazily after a
#: fork, and the uuid keeps tokens unique even when the OS reuses pids.
_EPOCH_STATE = {"pid": None, "salt": None, "counter": None}


def _next_data_epoch():
    pid = os.getpid()
    if _EPOCH_STATE["pid"] != pid:
        _EPOCH_STATE["pid"] = pid
        _EPOCH_STATE["salt"] = uuid.uuid4().hex[:12]
        _EPOCH_STATE["counter"] = itertools.count(1)
    return f"{pid}-{_EPOCH_STATE['salt']}-{next(_EPOCH_STATE['counter'])}"


@dataclass
class Release:
    """One differentially private release produced by the engine.

    Attributes
    ----------
    answers:
        The (possibly post-processed) noisy answer vector.
    mechanism:
        Label of the mechanism that produced it.
    epsilon:
        Epsilon consumed by this release.
    delta:
        Delta consumed by this release (0.0 for pure eps-DP mechanisms).
    expected_error:
        Analytic expected total squared error at release time (None when
        the mechanism has no closed form).
    workload_key:
        Cache key of the workload (for auditing).
    metadata:
        Audit trail: workload shape, the post-processing switches actually
        applied, the plan key, the accountant model, ``cost`` — the full
        typed :class:`repro.privacy.cost.NoiseCost` record charged for
        this release (family, base (epsilon, delta), calibrated noise
        magnitude, sensitivity, sample rate, and for subsampled releases
        the amplified ``charged`` pair) — and ``realized`` — the
        cumulative (epsilon, delta) guarantee the accountant's ledger
        promised right after this release's charge committed (identical
        between looped and batched execution).
    """

    # Field order preserves positional compatibility with the pre-plan-API
    # Release (delta is appended after the original fields).
    answers: np.ndarray
    mechanism: str
    epsilon: float
    expected_error: Optional[float] = None
    workload_key: str = ""
    metadata: dict = field(default_factory=dict)
    delta: float = 0.0


class PrivateQueryEngine:
    """Answer batches of linear queries over one dataset under a global
    privacy budget, via explicit plan -> execute.

    Parameters
    ----------
    data:
        The sensitive unit-count vector (length ``n``).
    total_budget:
        Total epsilon available across all releases.
    delta:
        Total delta available (default 0.0 = pure eps-DP). A positive value
        switches accounting to (eps, delta) basic composition
        (:class:`repro.privacy.accountant.ApproxDPAccountant`), appends the
        Gaussian candidates to a default candidate pool, and becomes the
        default ``delta`` of Gaussian mechanisms built by the planner — so
        by default *one* Gaussian release exhausts the delta pool (deltas
        add up, like epsilons). To fit several, give the mechanisms a
        smaller per-release delta via ``mechanism_kwargs``, e.g.
        ``{"GLRM": {"delta": total_delta / k}}``.
    candidates:
        Mechanism labels tried by ``mechanism="auto"``.
    mechanism_kwargs:
        Per-label constructor overrides, e.g. ``{"LRM": {"max_outer": 60}}``.
    seed:
        Seed for the engine's noise generator (each release consumes from
        one stream, so repeated runs of the same script are reproducible).
    plan_cache:
        ``None`` for a fresh in-memory :class:`PlanCache`, a directory path
        for a persistent one, or a ready-made :class:`PlanCache` instance
        (shareable between engines).
    accountant:
        A pre-built :class:`repro.privacy.accountant.BudgetAccountant`
        (overrides ``total_budget``/``delta``), or an accountant *model*
        name forwarded to :func:`repro.privacy.accountant.make_accountant`:
        ``"pure"``, ``"basic"``, or ``"rdp"`` (the concentrated-DP
        accountant of :mod:`repro.privacy.rdp`, which admits far more
        Gaussian releases per (eps, delta) budget than basic composition;
        it requires ``delta > 0``).
    ledger_path:
        Path to a durable budget ledger (see :mod:`repro.privacy.ledger`).
        When given, the engine's accountant is wrapped in a
        :class:`repro.privacy.ledger.DurableAccountant`: every spend is
        journaled with write-ahead intent/commit records before it takes
        effect, so a crash at any instant leaves the spend fully committed
        or fully absent, reopening the same path replays the audit trail
        bit-identically, and multiple processes sharing the path cannot
        jointly overspend. A ``.db``/``.sqlite``/``.sqlite3`` suffix
        selects the SQLite-WAL backend; anything else the append-only
        checksummed journal.
    ledger_retry:
        Optional :class:`repro.io.atomic.RetryPolicy` governing how long a
        spend waits on the ledger's cross-process lock before
        :class:`~repro.exceptions.LedgerBusyError`. The default suits
        occasional contention (a CLI and a notebook sharing one ledger);
        a serving deployment with many workers spending on one tenant
        needs a more patient policy (see ``repro.serving.worker``).
    """

    # delta and the other plan-API parameters come after the pre-PR-2
    # signature (data, total_budget, candidates, mechanism_kwargs, seed) so
    # positional callers keep working.
    def __init__(self, data, total_budget, candidates=DEFAULT_CANDIDATES,
                 mechanism_kwargs=None, seed=None, delta=0.0, plan_cache=None,
                 accountant=None, ledger_path=None, ledger_retry=None):
        self._set_data(data)
        if isinstance(accountant, BudgetAccountant):
            self._accountant = accountant
        elif isinstance(accountant, str):
            self._accountant = make_accountant(
                check_positive(total_budget, "total_budget"), delta,
                model=accountant,
            )
        elif accountant is None:
            self._accountant = make_accountant(
                check_positive(total_budget, "total_budget"), delta
            )
        else:
            raise ValidationError(
                "accountant must be a BudgetAccountant instance or a model "
                "name ('pure', 'basic', 'rdp')"
            )
        if ledger_path is not None:
            from repro.privacy.ledger import open_ledger

            self._accountant = open_ledger(
                ledger_path, self._accountant, retry=ledger_retry
            )
        if self.delta > 0.0 and candidates is DEFAULT_CANDIDATES:
            candidates = DEFAULT_CANDIDATES + APPROX_DP_CANDIDATES
        self.candidates = tuple(candidates)
        self.mechanism_kwargs = {
            label: dict(kwargs) for label, kwargs in (mechanism_kwargs or {}).items()
        }
        if self.delta > 0.0:
            # The engine's delta is the default failure probability of any
            # Gaussian mechanism the planner constructs.
            for label in APPROX_DP_CANDIDATES:
                self.mechanism_kwargs.setdefault(label, {}).setdefault("delta", self.delta)
        self._rng = ensure_rng(seed)
        if isinstance(plan_cache, PlanCache):
            self.plan_cache = plan_cache
        else:
            self.plan_cache = PlanCache(directory=plan_cache)
        # One-off plans built when a shared-cache entry mismatched this
        # engine's privacy configuration (the entry keeps the key; these
        # stay engine-local, one list per key with one plan per distinct
        # configuration, so the expensive fit is paid once per
        # configuration rather than once per call).
        self._local_plans = {}
        self._releases = []
        # Idempotency fallback for plain in-memory accountants: key ->
        # journal payload of the release it charged. A DurableAccountant
        # keeps this index in the ledger itself (spend_keyed); this dict
        # gives keyed execution the same exactly-once semantics within one
        # engine lifetime when no ledger is attached.
        self._keyed_results = {}

    # ------------------------------------------------------------------ #
    # Data epochs
    # ------------------------------------------------------------------ #
    def _set_data(self, data):
        # The engine owns its copy (read-only) so cached strategy answers
        # keyed on the epoch token cannot go stale through an in-place
        # mutation of the caller's array; set_data is the mutation API.
        data = as_vector(data, "data").copy()
        data.setflags(write=False)
        self._data = data
        self._data_epoch = _next_data_epoch()

    def set_data(self, data):
        """Replace the engine's unit counts and stamp a new data epoch.

        The domain size must not change (plans are domain-checked). Every
        compiled plan's cached strategy answers ``L x`` are keyed on the
        epoch token, so after ``set_data`` the next release recomputes them
        against the new data — stale answers can never be served. Swapping
        data does *not* reset the privacy accountant: the budget protects
        the individuals in every dataset this engine has released about.
        """
        data = as_vector(data, "data")
        if data.size != self.domain_size:
            raise ValidationError(
                f"new data has domain {data.size}, engine expects {self.domain_size}"
            )
        self._set_data(data)

    def adopt_data(self, data, epoch):
        """Share another engine's (already validated) data vector and epoch.

        The serving tier runs one engine per tenant inside each worker;
        every tenant answers over the *same* dataset. Giving each engine
        its own copy via :meth:`set_data` would mint one epoch token per
        tenant and thrash the compiled plans' bounded per-epoch ``L x``
        cache, recomputing the strategy answers once per tenant instead of
        once per dataset. ``adopt_data`` installs a shared read-only vector
        under a caller-supplied token instead: every adopting engine serves
        from the same cached ``L x``.

        The caller owns the invariant that makes this sound: one token maps
        to one immutable vector, forever. ``data`` must already be
        read-only (pass the ``_data`` of the engine the token was minted
        by, or freeze your own array); a writable array is rejected rather
        than defensively copied, since a copy under a shared token would
        let the copies drift apart behind one cache key.
        """
        data = as_vector(data, "data")
        if data.flags.writeable:
            raise ValidationError(
                "adopt_data requires a read-only array: the epoch token "
                "promises this exact data forever (use set_data to copy "
                "and stamp a fresh token instead)"
            )
        if not isinstance(epoch, str) or not epoch:
            raise ValidationError("adopt_data epoch must be a non-empty token string")
        self._data = data
        self._data_epoch = epoch

    @property
    def data_epoch(self):
        """Opaque token identifying the current data vector (changes on
        every :meth:`set_data`); compiled plans key their ``L x`` cache on
        it."""
        return self._data_epoch

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def domain_size(self):
        """Number of unit counts held by the engine."""
        return self._data.size

    @property
    def accountant(self):
        """The (eps, delta) ledger enforcing the global budget."""
        return self._accountant

    @property
    def delta(self):
        """Total delta of the engine's budget (0.0 for pure eps-DP)."""
        return self._accountant.total_delta

    @property
    def remaining_budget(self):
        """Unspent epsilon."""
        return self._accountant.remaining_epsilon

    @property
    def spent_budget(self):
        """Epsilon consumed so far."""
        return self._accountant.spent_epsilon

    @property
    def remaining_delta(self):
        """Unspent delta."""
        return self._accountant.remaining_delta

    @property
    def spent_delta(self):
        """Delta consumed so far."""
        return self._accountant.spent_delta

    @property
    def releases(self):
        """Audit log: every release made so far (most recent last)."""
        return list(self._releases)

    def can_answer(self, epsilon, delta=0.0):
        """True iff a release at (``epsilon``, ``delta``) fits the budget.

        When guarding an :meth:`execute` call, prefer :meth:`can_execute`:
        a Gaussian plan charges its own per-release delta, which this
        raw-cost predicate does not know about.
        """
        return self._accountant.can_spend(epsilon, delta)

    def can_execute(self, plan, epsilon):
        """True iff :meth:`execute` of ``plan`` at ``epsilon`` would fit.

        The plan-aware guard pairing with :meth:`execute`: it charges
        exactly what execute would — (``epsilon``, the plan's per-release
        delta) — so guard-then-execute cannot pass the guard and then fail
        the charge. Anything execute would reject up front (not a plan,
        wrong domain, bad epsilon) answers False; this is a predicate, not
        a validator.
        """
        try:
            cost = self._check_executable(plan, epsilon)
        except ValidationError:
            return False
        return self._accountant.can_spend(cost)

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def _workload_key(self, workload):
        """Stable cross-process workload identity (see
        :func:`repro.engine.plan.workload_key`); kept as a method for
        audit-log consumers and backwards compatibility."""
        return workload_key(workload)

    def _check_domain(self, domain_size):
        if domain_size != self.domain_size:
            raise ValidationError(
                f"workload domain {domain_size} != engine domain {self.domain_size}"
            )

    def plan(self, workload, mechanism="auto", epsilon_hint=0.1, use_cache=True,
             parallel=False):
        """Run selection/fitting and return an :class:`ExecutionPlan`.

        ``parallel`` fans the candidate fits of an ``"auto"`` spec out over
        a process pool (``True``, or an int worker cap; see
        :func:`repro.engine.selection.rank_mechanisms`) — the ranking is
        identical to the serial path and any pool failure falls back to it.
        It does not affect the cache key: a cached plan is served the same
        way either way.

        Consumes no privacy budget (planning is data-independent). The plan
        is cached under ``(workload digest, mechanism spec)`` — mechanism
        *instances* are keyed by class name, independent of their
        fitted/unfitted state, and are deep-copied before fitting so the
        caller's object is never mutated. Neither ``epsilon_hint`` nor
        ``mechanism_kwargs`` is part of the key: the first plan built for a
        key wins (that is what lets a restarted engine reuse an expensive
        on-disk fit). Every cache hit is guarded, though: a cached plan is
        served only when its mechanism configuration is compatible with
        this engine's — full constructor state for instance specs,
        privacy-critical state (``unit_sensitivity``, ``delta``; see
        :func:`repro.engine.plan.privacy_state`) for label/auto specs — and
        on a mismatch a one-off plan (memoized per engine, so the fit is
        still paid only once) is built instead, so a shared cache can
        never serve noise calibrated for another engine's privacy
        configuration. Pass ``use_cache=False``, or use a separate
        ``plan_cache``, to force a replan under different settings.
        """
        workload = as_workload(workload)
        self._check_domain(workload.domain_size)
        epsilon_hint = check_positive(epsilon_hint, "epsilon_hint")
        key = plan_key(workload, mechanism, self.candidates)
        store = use_cache
        if use_cache:
            cached = self.plan_cache.get(key)
            if cached is not None:
                if self._compatible_with_cache_hit(mechanism, cached):
                    return cached
                # Same key, different privacy-relevant configuration:
                # serving the cached plan would release with noise
                # calibrated for the *other* configuration. Use (or build)
                # an engine-local one-off plan instead and leave the shared
                # entry alone (first plan wins the key); the local memo is
                # re-guarded like any hit, so the expensive fit is paid
                # once per configuration, not once per call.
                store = False
            for local in self._local_plans.get(key, ()):
                if self._compatible_with_cache_hit(mechanism, local):
                    if store:
                        # The shared entry that forced this one-off is gone
                        # (evicted/cleared): promote the memoized fit to
                        # the now-free key instead of refitting.
                        self.plan_cache.put(key, local)
                    return local
        plan = build_plan(
            workload,
            epsilon_hint=epsilon_hint,
            mechanism=mechanism,
            candidates=self.candidates,
            mechanism_kwargs=self.mechanism_kwargs,
            parallel=parallel,
        )
        if store:
            self.plan_cache.put(key, plan)
        elif use_cache:
            self._local_plans.setdefault(key, []).append(plan)
        return plan

    def _compatible_with_cache_hit(self, mechanism, cached):
        """May the cached plan stand in for what this engine would build?

        Instance specs must match the requested instance's full constructor
        state (the caller configured that exact object). Label/auto specs
        compare only the *privacy-critical* constructor parameters
        (``Mechanism.privacy_params``) of the cached mechanism against the
        mechanism(s) this engine's configuration would construct for the
        same label — for an auto spec that is every same-labelled entry of
        the candidate pool (instance candidates count as their own
        configuration), since any of them could legitimately have won the
        ranking. Solver tuning may differ — sharing another engine's
        expensive fit is the cache's purpose, and such noise is calibrated
        to the fitted strategy — but a plan calibrated for a
        ``unit_sensitivity`` or ``delta`` this engine would not configure
        must never be served. Anything uncomparable (unknown label,
        constructor failure) counts as a mismatch, so the guard fails safe
        to a one-off replan.
        """
        if isinstance(mechanism, Mechanism):
            return self._same_configuration(mechanism, cached.mechanism)
        label = cached.mechanism_label
        try:
            if cached.mechanism_spec.startswith("auto["):
                references = self._auto_references(label)
            else:
                references = [make_mechanism(label, **self.mechanism_kwargs.get(label, {}))]
            cached_state = privacy_state(cached.mechanism)
            return any(
                mechanism_states_equal(privacy_state(reference), cached_state)
                for reference in references
            )
        except Exception:
            return False

    def _auto_references(self, label):
        """Every mechanism configuration the engine's auto pool could build
        under ``label``: each same-named *instance* candidate as-is, plus
        the registry construction when the pool names the label (or as the
        fallback when nothing in the pool matches)."""
        references = []
        saw_label = False
        for candidate in self.candidates:
            if isinstance(candidate, Mechanism):
                if getattr(candidate, "name", type(candidate).__name__) == label:
                    references.append(candidate)
            elif str(candidate).strip().upper() == label:
                saw_label = True
        if saw_label or not references:
            references.append(make_mechanism(label, **self.mechanism_kwargs.get(label, {})))
        return references

    @staticmethod
    def _same_configuration(requested, cached):
        """True iff the requested instance's constructor state matches the
        cached plan's mechanism (uncomparable state counts as a mismatch)."""
        try:
            return mechanism_states_equal(mechanism_state(requested), mechanism_state(cached))
        except Exception:
            return False

    def prepare(self, workload, epsilon_hint=0.1, mechanism="auto"):
        """Fit (and cache) the mechanism for a workload without answering.

        Compatibility wrapper over :meth:`plan`: pays the decomposition cost
        up front, consumes no budget, returns the fitted mechanism.
        """
        return self.plan(workload, mechanism=mechanism, epsilon_hint=epsilon_hint).mechanism

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _check_executable(self, plan, epsilon):
        """Validate one (plan, epsilon) request; returns its typed
        :class:`~repro.privacy.cost.NoiseCost`.

        The cost's (epsilon, delta) are exactly the floats the scalar
        engine charged — ``check_positive(epsilon)`` and ``plan.delta`` —
        with the noise family, calibrated magnitude and (for subsampled
        plans) the sample rate riding along for the accountant and the
        audit trail.
        """
        if not isinstance(plan, ExecutionPlan):
            raise ValidationError(
                f"execute expects an ExecutionPlan, got {type(plan).__name__}; "
                "build one with engine.plan(workload)"
            )
        self._check_domain(plan.domain_size)
        return plan.release_cost(check_positive(epsilon, "epsilon"))

    def _predicted_error(self, plan, epsilon, memo=None):
        """Analytic expected error of one release (None without a closed
        form), memoized per (plan, epsilon) within a batch."""
        if memo is not None:
            key = (id(plan), epsilon)
            if key in memo:
                return memo[key]
        try:
            expected = float(plan.mechanism.expected_squared_error(epsilon))
        except (NotImplementedError, ReproError):
            expected = None
        if memo is not None:
            memo[key] = expected
        return expected

    def _metadata_base(self, plan):
        """The release-invariant audit metadata of one plan (shape, plan
        key, accountant model) — computed once per plan per batch instead
        of once per release on the serving hot path."""
        return {
            "shape": plan.shape,
            "plan_key": plan.plan_key,
            "accountant": self._accountant.name,
        }

    def _finalize_release(
        self, plan, cost, answers, non_negative, integral, consistent,
        expected_memo=None, metadata_base=None, realized=None,
    ):
        """Post-process raw noisy answers and wrap them as a Release; the
        budget must already be charged.

        ``cost`` is the typed :class:`NoiseCost` the accountant was
        charged; its (epsilon, delta) populate the Release fields exactly
        as the scalar pair used to, and its full record is journaled under
        ``metadata["cost"]``. ``realized`` is the cumulative
        (spent_epsilon, spent_delta) guarantee of the accountant *after*
        this release's charge committed — the audit trail of what the
        whole ledger promises at that point, which under non-additive
        accounting (RDP) is the only faithful per-release privacy figure.
        """
        if non_negative or integral or consistent:
            # Only the consistency projection reads W; clamping/rounding
            # must not force an implicit large-domain workload dense.
            answers = postprocess_answers(
                plan.workload.matrix if consistent else None,
                answers,
                non_negative=non_negative,
                integral=integral,
                consistent=consistent,
            )
        metadata = dict(metadata_base if metadata_base is not None else self._metadata_base(plan))
        if realized is not None:
            metadata["realized"] = {"epsilon": realized[0], "delta": realized[1]}
        metadata["cost"] = cost.to_record()
        metadata["postprocess"] = {
            "non_negative": bool(non_negative),
            "integral": bool(integral),
            "consistent": bool(consistent),
        }
        return Release(
            answers=answers,
            mechanism=plan.mechanism_label,
            epsilon=cost.epsilon,
            delta=cost.delta,
            expected_error=self._predicted_error(plan, cost.epsilon, expected_memo),
            workload_key=plan.workload_key,
            metadata=metadata,
        )

    def _build_release(self, plan, cost, non_negative, integral,
                       consistent, realized=None):
        """Produce one release without logging it; the budget must already
        be charged. Runs through the plan's compiled release operator —
        noise draw plus recombination, with the strategy answers ``L x``
        cached per data epoch."""
        answers = plan.compile().answer(
            self._data, cost.epsilon, self._rng, epoch=self._data_epoch
        )
        return self._finalize_release(
            plan, cost, answers, non_negative, integral, consistent,
            realized=realized,
        )

    @staticmethod
    def _check_request_key(key):
        if key is None:
            return None
        if not isinstance(key, str) or not key or len(key) > 128:
            raise ValidationError(
                "request_key must be a non-empty string of at most 128 "
                f"characters; got {key!r}"
            )
        return key

    @staticmethod
    def _journal_payload(release):
        """The JSON-able durable form of a release — everything needed to
        replay it bit-identically (JSON floats round-trip via ``repr``, so
        the stored vector is the released vector to the last bit)."""
        metadata = {}
        for name, value in release.metadata.items():
            if name == "shape" and value is not None:
                value = list(value)
            metadata[name] = value
        return {
            "values": release.answers.tolist(),
            "mechanism": release.mechanism,
            "epsilon": float(release.epsilon),
            "delta": float(release.delta),
            "expected_error": release.expected_error,
            "workload_key": release.workload_key,
            "metadata": metadata,
        }

    @staticmethod
    def _release_from_payload(payload):
        """Rebuild a :class:`Release` from its journal payload. The
        rebuilt release is flagged ``metadata["deduplicated"] = True`` —
        it re-exposes an already-charged release, never a new one."""
        metadata = dict(payload.get("metadata") or {})
        shape = metadata.get("shape")
        if shape is not None:
            metadata["shape"] = tuple(shape)
        metadata["deduplicated"] = True
        expected = payload.get("expected_error")
        return Release(
            answers=np.asarray(payload["values"], dtype=np.float64),
            mechanism=payload["mechanism"],
            epsilon=float(payload["epsilon"]),
            delta=float(payload.get("delta", 0.0)),
            expected_error=None if expected is None else float(expected),
            workload_key=payload.get("workload_key", ""),
            metadata=metadata,
        )

    def _spend_keyed_local(self, entries, produce):
        """In-memory mirror of ``DurableAccountant.spend_keyed`` for plain
        accountants: same dedup/fold semantics, same (result, deduped)
        return shape, with the result journal held in ``_keyed_results``
        instead of on disk."""
        results = [None] * len(entries)
        fresh_positions = []
        fresh_costs = []
        fresh_keys = []
        batch_index = {}
        dup_positions = []
        for position, (cost, key) in enumerate(entries):
            stored = None if key is None else self._keyed_results.get(key)
            if stored is not None:
                results[position] = (stored, True)
            elif key is not None and key in batch_index:
                dup_positions.append((position, batch_index[key]))
            else:
                if key is not None:
                    batch_index[key] = len(fresh_positions)
                fresh_positions.append(position)
                fresh_costs.append(cost)
                fresh_keys.append(key)
        if not fresh_positions:
            return results
        ledger_state = self._accountant.snapshot()
        realized = []
        if len(fresh_costs) == 1:
            self._accountant.spend(fresh_costs[0])
            realized.append(
                (self._accountant.spent_epsilon, self._accountant.spent_delta)
            )
        else:
            self._accountant.spend_many(fresh_costs, realized_out=realized)
        try:
            payloads = list(produce(list(fresh_positions), realized))
        except BaseException:
            self._accountant.restore(ledger_state)
            raise
        for index, position in enumerate(fresh_positions):
            if fresh_keys[index] is not None:
                self._keyed_results[fresh_keys[index]] = payloads[index]
            results[position] = (payloads[index], False)
        for position, fresh_index in dup_positions:
            results[position] = (payloads[fresh_index], True)
        return results

    def _execute_keyed(self, prepared):
        """Exactly-once execution of a validated batch whose entries are
        ``(plan, cost, switches, key)`` with ``cost`` a typed
        :class:`NoiseCost`.

        Dedup, charging and the result journal live in the accountant
        (``DurableAccountant.spend_keyed`` when a ledger is attached — the
        dedup check runs inside the ledger's exclusive transaction, so a
        key retried from another process replays instead of re-charging).
        Fresh releases are built *before* the intent/commit pair is
        journaled and are logged in the audit trail; deduplicated
        positions return the stored release rebuilt from its journal
        payload (``metadata["deduplicated"] = True``) and are **not**
        re-logged — no new privacy event happened.
        """
        entries = [(cost, key) for _, cost, _, key in prepared]
        produced = {}

        def produce(positions, realized):
            subset = [prepared[position][:3] for position in positions]
            staged = self._produce_batch(subset, realized)
            for position, release in zip(positions, staged):
                produced[position] = release
            return [self._journal_payload(release) for release in staged]

        spend_keyed = getattr(self._accountant, "spend_keyed", None)
        if spend_keyed is not None:
            outcomes = spend_keyed(entries, produce)
        else:
            outcomes = self._spend_keyed_local(entries, produce)
        releases = []
        for position, (payload, deduped) in enumerate(outcomes):
            if deduped:
                releases.append(self._release_from_payload(payload))
            else:
                release = produced[position]
                self._releases.append(release)
                releases.append(release)
        return releases

    def execute(self, plan, epsilon, non_negative=False, integral=False,
                consistent=False, request_key=None):
        """One budgeted release of a plan's answers at ``epsilon``.

        Charges (``epsilon``, plan's per-release ``delta``) to the
        accountant *before* releasing; an over-budget request raises
        :class:`repro.exceptions.PrivacyBudgetError` and leaves the audit
        log untouched. The post-processing switches are privacy-free (see
        :mod:`repro.analysis.postprocess`) and are recorded in
        ``Release.metadata``.

        ``request_key`` (an idempotency key, any non-empty string up to
        128 characters) makes the release **exactly-once**: the first
        execution charges the budget and durably journals the released
        vector alongside the charge's commit record (when the engine is
        ledger-backed), and every later call with the same key — after a
        crash, a timeout, or from another process sharing the ledger —
        returns the *same* release bit-identically with zero additional
        charge, flagged ``metadata["deduplicated"] = True``.
        """
        request_key = self._check_request_key(request_key)
        cost = self._check_executable(plan, epsilon)
        if request_key is not None:
            switches = {
                "non_negative": non_negative,
                "integral": integral,
                "consistent": consistent,
            }
            return self._execute_keyed(
                [(plan, cost, switches, request_key)]
            )[0]
        ledger_state = self._accountant.snapshot()
        self._accountant.spend(cost)
        realized = (self._accountant.spent_epsilon, self._accountant.spent_delta)
        try:
            release = self._build_release(
                plan, cost, non_negative, integral, consistent,
                realized=realized,
            )
        except BaseException:
            # Build failed (e.g. a post-processing projection error): the
            # partially generated noise is discarded unexposed, so the
            # charge is rolled back rather than burned without an audit
            # entry to account for it.
            self._accountant.restore(ledger_state)
            raise
        self._releases.append(release)
        return release

    def execute_many(self, requests, non_negative=False, integral=False, consistent=False):
        """Atomically release a batch of requests through the vectorised
        multi-release path.

        Each request is ``(plan, epsilon)``, ``(plan, epsilon, switches)``
        or ``(plan, epsilon, switches, key)`` where ``switches`` is a dict
        overriding the batch-default post-processing flags for that
        release (e.g. ``{"integral": True}`` for a count workload next to
        a ``{"consistent": True}`` one) and ``key`` is an optional
        idempotency key giving that request exactly-once semantics (see
        :meth:`execute`): an already-charged key is answered from the
        durable result journal with zero additional charge, duplicate
        keys within one batch fold into a single charge, and only the
        still-fresh requests are charged (atomically). A batch with no
        keys takes the unkeyed all-or-nothing path below, unchanged.

        Requests are grouped by plan: each group's noise is drawn in **one**
        ``(k, r)`` RNG call and recombined with one GEMM through the plan's
        compiled release operator (per-release post-processing switches are
        applied afterwards), so batch throughput does not pay the
        per-release GEMV/draw/validation overhead of looped
        :meth:`execute`. Each release is distributed exactly as the
        equivalent ``execute`` call; the RNG *stream* advances in plan-group
        order rather than request order (intentional — a documented
        serving-path property, not a privacy-relevant one).

        The whole batch is all-or-nothing: the accountant is charged in one
        step, and if producing any release then fails (e.g. a
        post-processing projection error) the charge is rolled back — the
        partially generated noise is discarded unexposed — and the audit
        log is left untouched. On success every :class:`Release` is logged
        and returned in request order.
        """
        defaults = {
            "non_negative": non_negative, "integral": integral, "consistent": consistent,
        }
        # Per-batch memo: a 256-request batch typically holds a handful of
        # plans and epsilons, so validation plus typed-cost construction
        # runs once per distinct (plan, epsilon), not once per request —
        # several microseconds per request (the ABC isinstance inside
        # check_positive plus the plan property chain), which is on the
        # order of the whole batched per-release cost. Memoizing also makes
        # equal requests share one NoiseCost *object*, which the
        # accountants' own spend_many memo keys on. Memo validity requires
        # _check_executable to stay pure in (plan identity, epsilon value);
        # a future check depending on anything else must bypass this memo.
        cost_memo = {}
        prepared = []
        for request in requests:
            try:
                plan, epsilon = request[0], request[1]
                overrides = request[2] if len(request) > 2 else {}
                key = request[3] if len(request) > 3 else None
            except (TypeError, IndexError, KeyError) as exc:
                raise ValidationError(
                    "each execute_many request must be (plan, epsilon), "
                    "(plan, epsilon, switches) or (plan, epsilon, switches, "
                    f"key); got {request!r}"
                ) from exc
            key = self._check_request_key(key)
            if not isinstance(overrides, dict):
                raise ValidationError(
                    "execute_many switches must be a dict of post-processing "
                    f"flags; got {overrides!r}"
                )
            unknown = set(overrides) - set(defaults)
            if unknown:
                raise ValidationError(
                    f"unknown post-processing switches {sorted(unknown)}; "
                    f"choose from {sorted(defaults)}"
                )
            eps_key = (
                epsilon
                if isinstance(epsilon, (int, float)) and not isinstance(epsilon, bool)
                else None
            )
            memo_key = (id(plan), eps_key) if eps_key is not None else None
            cost = cost_memo.get(memo_key) if memo_key is not None else None
            if cost is None:
                cost = self._check_executable(plan, epsilon)
                if memo_key is not None:
                    cost_memo[memo_key] = cost
            prepared.append((plan, cost, {**defaults, **overrides}, key))
        if not prepared:
            raise ValidationError("execute_many needs at least one (plan, epsilon) request")
        if any(entry[3] is not None for entry in prepared):
            return self._execute_keyed(prepared)
        prepared = [entry[:3] for entry in prepared]
        ledger_state = self._accountant.snapshot()
        # Per-cost realized ledger states, in request order: bit-identical
        # to what a loop of execute() calls would have recorded (spend_many
        # simulates exactly that sequential ledger).
        realized = []
        self._accountant.spend_many(
            [cost for _, cost, _ in prepared], realized_out=realized
        )
        try:
            staged = self._produce_batch(prepared, realized)
        except BaseException:
            self._accountant.restore(ledger_state)
            raise
        self._releases.extend(staged)
        return staged

    def _produce_batch(self, prepared, realized):
        """Produce every release of a charged batch, plan-grouped.

        Same-plan requests share one batched noise draw + GEMM; the
        returned list is in the original request order. ``realized`` holds
        the per-request post-charge ledger states, also in request order.
        """
        groups = {}  # id(plan) -> [request index, ...] in request order
        for index, (plan, _, _) in enumerate(prepared):
            groups.setdefault(id(plan), []).append(index)
        staged = [None] * len(prepared)
        expected_memo = {}
        for indices in groups.values():
            plan = prepared[indices[0]][0]
            metadata_base = self._metadata_base(plan)
            if len(indices) == 1:
                index = indices[0]
                _, cost, switches = prepared[index]
                answers = plan.compile().answer(
                    self._data, cost.epsilon, self._rng, epoch=self._data_epoch
                )
                staged[index] = self._finalize_release(
                    plan, cost, answers,
                    expected_memo=expected_memo, metadata_base=metadata_base,
                    realized=realized[index],
                    **switches,
                )
                continue
            epsilons = [prepared[index][1].epsilon for index in indices]
            batch = plan.compile().answer_many(
                self._data, epsilons, self._rng, epoch=self._data_epoch
            )
            # Each release takes a row view of the freshly-allocated (k, m)
            # batch buffer — rows never overlap, so releases cannot alias
            # each other's answers.
            for row, index in zip(batch, indices):
                _, cost, switches = prepared[index]
                staged[index] = self._finalize_release(
                    plan, cost, row,
                    expected_memo=expected_memo, metadata_base=metadata_base,
                    realized=realized[index],
                    **switches,
                )
        return staged

    # ------------------------------------------------------------------ #
    # Compatibility shims (pre-plan-API surface)
    # ------------------------------------------------------------------ #
    def answer_workload(
        self,
        workload,
        epsilon,
        mechanism="auto",
        non_negative=False,
        integral=False,
        consistent=False,
    ):
        """Deprecated: one-shot plan + execute (the pre-plan-API entry point).

        Equivalent to ``engine.execute(engine.plan(workload, mechanism,
        epsilon_hint=epsilon), epsilon, ...)`` and kept working for existing
        callers; new code should plan once and execute many times.

        Caveat (utility, not privacy): because the plan cache keys on
        ``(workload, mechanism spec)`` and not on epsilon, the *first*
        call's epsilon fixes the auto-selection ranking for every later
        call on the same workload — a later call at a very different
        epsilon may execute a mechanism that is no longer the predicted
        winner at that epsilon (the release itself is still correctly
        calibrated to the epsilon actually charged). Call
        ``plan(..., use_cache=False)`` + ``execute`` to re-rank at a
        specific epsilon.
        """
        warnings.warn(
            "PrivateQueryEngine.answer_workload is deprecated; use "
            "engine.plan(workload) then engine.execute(plan, epsilon)",
            DeprecationWarning,
            stacklevel=2,
        )
        epsilon = check_positive(epsilon, "epsilon")
        plan = self.plan(workload, mechanism=mechanism, epsilon_hint=epsilon)
        return self.execute(
            plan,
            epsilon,
            non_negative=non_negative,
            integral=integral,
            consistent=consistent,
        )

    def answer_queries(self, weight_rows, epsilon, mechanism="auto", **postprocess):
        """Convenience: answer a list of weight vectors as one batch."""
        matrix = np.asarray(weight_rows, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        epsilon = check_positive(epsilon, "epsilon")
        plan = self.plan(matrix, mechanism=mechanism, epsilon_hint=epsilon)
        return self.execute(plan, epsilon, **postprocess)
