"""A budget-managed differentially private query engine.

:class:`PrivateQueryEngine` is the deployment wrapper a downstream system
would actually adopt: it holds the sensitive unit counts, enforces a total
privacy budget across releases (sequential composition), caches the
expensive per-workload mechanism fits, picks the best mechanism
automatically, and applies standard post-processing.

Example
-------
>>> import numpy as np
>>> from repro.engine import PrivateQueryEngine
>>> from repro.workloads import wrelated
>>> engine = PrivateQueryEngine(np.arange(64.0), total_budget=1.0, seed=0)
>>> release = engine.answer_workload(wrelated(8, 64, s=2, seed=1), epsilon=0.25)
>>> engine.remaining_budget
0.75
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.postprocess import postprocess_answers
from repro.engine.selection import DEFAULT_CANDIDATES, select_mechanism
from repro.exceptions import ReproError, ValidationError
from repro.linalg.validation import as_vector, check_positive, ensure_rng
from repro.mechanisms.base import Mechanism, as_workload
from repro.mechanisms.registry import make_mechanism
from repro.privacy.budget import PrivacyBudget

__all__ = ["PrivateQueryEngine", "Release"]


@dataclass
class Release:
    """One differentially private release produced by the engine.

    Attributes
    ----------
    answers:
        The (possibly post-processed) noisy answer vector.
    mechanism:
        Label of the mechanism that produced it.
    epsilon:
        Budget consumed by this release.
    expected_error:
        Analytic expected total squared error at release time (None when
        the mechanism has no closed form).
    workload_key:
        Cache key of the workload (for auditing).
    """

    answers: np.ndarray
    mechanism: str
    epsilon: float
    expected_error: float = None
    workload_key: str = ""
    metadata: dict = field(default_factory=dict)


class PrivateQueryEngine:
    """Answer batches of linear queries over one dataset under a global
    eps-DP budget.

    Parameters
    ----------
    data:
        The sensitive unit-count vector (length ``n``).
    total_budget:
        Total eps available across all releases (sequential composition).
    candidates:
        Mechanism labels tried by ``mechanism="auto"``.
    mechanism_kwargs:
        Per-label constructor overrides, e.g. ``{"LRM": {"max_outer": 60}}``.
    seed:
        Seed for the engine's noise generator (each release consumes from
        one stream, so repeated runs of the same script are reproducible).
    """

    def __init__(self, data, total_budget, candidates=DEFAULT_CANDIDATES,
                 mechanism_kwargs=None, seed=None):
        self._data = as_vector(data, "data")
        self._budget = PrivacyBudget(check_positive(total_budget, "total_budget"))
        self.candidates = tuple(candidates)
        self.mechanism_kwargs = dict(mechanism_kwargs or {})
        self._rng = ensure_rng(seed)
        self._mechanism_cache = {}
        self._releases = []

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def domain_size(self):
        """Number of unit counts held by the engine."""
        return self._data.size

    @property
    def remaining_budget(self):
        """Unspent privacy budget."""
        return self._budget.remaining

    @property
    def spent_budget(self):
        """Budget consumed so far."""
        return self._budget.spent

    @property
    def releases(self):
        """Audit log: every release made so far (most recent last)."""
        return list(self._releases)

    def can_answer(self, epsilon):
        """True iff a release at ``epsilon`` would fit in the budget."""
        return self._budget.can_spend(epsilon)

    # ------------------------------------------------------------------ #
    # Fitting / cache
    # ------------------------------------------------------------------ #
    def _workload_key(self, workload):
        # SHA-1 content digest memoized on the Workload: stable across
        # processes (the builtin hash is salted per run, which broke
        # cross-run audit-log comparison) and computed once per workload
        # instead of re-serializing the matrix on every prepare/answer call.
        return f"{workload.shape[0]}x{workload.shape[1]}:{workload.content_digest}"

    def prepare(self, workload, epsilon_hint=0.1, mechanism="auto"):
        """Fit (and cache) the mechanism for a workload without answering.

        Useful to pay the decomposition cost up front; consumes no budget.
        Returns the fitted mechanism.
        """
        workload = as_workload(workload)
        if workload.domain_size != self.domain_size:
            raise ValidationError(
                f"workload domain {workload.domain_size} != engine domain {self.domain_size}"
            )
        key = (self._workload_key(workload), str(mechanism).upper())
        if key in self._mechanism_cache:
            return self._mechanism_cache[key]

        if isinstance(mechanism, Mechanism):
            fitted = mechanism.fit(workload)
        elif str(mechanism).lower() == "auto":
            fitted = select_mechanism(
                workload,
                check_positive(epsilon_hint, "epsilon_hint"),
                candidates=self.candidates,
                mechanism_kwargs=self.mechanism_kwargs,
            )
        else:
            label = str(mechanism).upper()
            fitted = make_mechanism(label, **self.mechanism_kwargs.get(label, {}))
            fitted.fit(workload)
        self._mechanism_cache[key] = fitted
        return fitted

    # ------------------------------------------------------------------ #
    # Answering
    # ------------------------------------------------------------------ #
    def answer_workload(
        self,
        workload,
        epsilon,
        mechanism="auto",
        non_negative=False,
        integral=False,
        consistent=False,
    ):
        """One eps-DP release of the workload's answers.

        Parameters
        ----------
        workload:
            Batch of linear queries (a Workload or raw matrix).
        epsilon:
            Budget for this release; deducted from the engine total.
        mechanism:
            ``"auto"`` (analytic selection), a registry label, or an
            unfitted mechanism instance.
        non_negative, integral, consistent:
            Post-processing switches (privacy-free, see
            :mod:`repro.analysis.postprocess`).

        Returns
        -------
        Release
        """
        workload = as_workload(workload)
        epsilon = check_positive(epsilon, "epsilon")
        fitted = self.prepare(workload, epsilon_hint=epsilon, mechanism=mechanism)
        # Spend only after the fit succeeded (fits are data-independent).
        self._budget.spend(epsilon)
        answers = fitted.answer(self._data, epsilon, self._rng)
        if non_negative or integral or consistent:
            answers = postprocess_answers(
                workload.matrix,
                answers,
                non_negative=non_negative,
                integral=integral,
                consistent=consistent,
            )
        try:
            expected = float(fitted.expected_squared_error(epsilon))
        except (NotImplementedError, ReproError):
            expected = None
        release = Release(
            answers=answers,
            mechanism=getattr(fitted, "name", type(fitted).__name__),
            epsilon=epsilon,
            expected_error=expected,
            workload_key=self._workload_key(workload),
            metadata={"shape": workload.shape},
        )
        self._releases.append(release)
        return release

    def answer_queries(self, weight_rows, epsilon, **kwargs):
        """Convenience: answer a list of weight vectors as one batch."""
        matrix = np.asarray(weight_rows, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        return self.answer_workload(matrix, epsilon, **kwargs)
