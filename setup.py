"""Setup shim for environments with old setuptools (editable installs)."""
from setuptools import setup

setup()
