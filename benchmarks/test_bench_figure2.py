"""Figure 2: LRM error and decomposition time vs the relaxation gamma.

Paper shapes: error roughly flat in gamma over five orders of magnitude;
error scales as 1/eps^2; decomposition time does not explode as gamma
shrinks (the paper reports *larger* gamma running faster).
"""

import numpy as np

from benchmarks.conftest import print_result, run_figure
from repro.experiments.figures import figure2_gamma


def test_figure2_gamma(benchmark):
    result = run_figure(benchmark, figure2_gamma, workload_kinds=("WRange", "WRelated"))
    print_result(result, group_keys=("workload", "epsilon"))

    for kind in ("WRange", "WRelated"):
        # Error scales quadratically in 1/eps (decomposition is shared).
        _, high_eps = result.series("LRM", workload=kind, epsilon=1.0)
        _, low_eps = result.series("LRM", workload=kind, epsilon=0.1)
        assert np.all(low_eps > high_eps), f"{kind}: eps=0.1 must be noisier than eps=1"

        # Flat in gamma: max/min within two orders (paper: visually flat).
        assert high_eps.max() <= 100 * high_eps.min() + 1e-12, f"{kind}: error not flat in gamma"

    # Decomposition time recorded for every gamma.
    assert all(row["fit_seconds"] >= 0 for row in result.rows)
