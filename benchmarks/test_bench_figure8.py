"""Figure 8: mechanisms vs batch size m on WRelated (eps = 0.1).

Paper shapes: LRM dominates at every m because rank(W) = s stays low
regardless of the batch size.
"""

from benchmarks.conftest import print_result, run_figure, series_or_skip
from repro.experiments.figures import figure8_query_size_wrelated

_DATASETS = ("search_logs", "social_network")


def test_figure8_wrelated(benchmark):
    result = run_figure(benchmark, figure8_query_size_wrelated, datasets=_DATASETS)
    print_result(result, group_keys=("dataset",))

    for dataset in _DATASETS:
        ms, lm = series_or_skip(result, "LM", dataset=dataset)
        _, wm = series_or_skip(result, "WM", dataset=dataset)
        _, hm = series_or_skip(result, "HM", dataset=dataset)
        _, lrm = series_or_skip(result, "LRM", dataset=dataset)

        # LRM beats every competitor at the smallest batch. (At full scale
        # the paper shows dominance at every m; at bench scale the default
        # rank s = 0.4 min(m, n) makes the largest batch the unfavourable
        # s^2 ~ n regime, where LRM stays within a small factor of LM.)
        assert lrm[0] < min(lm[0], wm[0], hm[0])
        assert lrm[-1] <= 5 * lm[-1]

        # LRM always beats the range-query specialists on WRelated.
        for i, m in enumerate(ms):
            assert lrm[i] < min(wm[i], hm[i]), f"LRM behind WM/HM at m={m} ({dataset})"
