"""Figure 3: LRM error and time vs decomposition rank r = ratio * rank(W).

Paper shapes: error far worse for ratio < 1 (W cannot be represented, a
structural residual remains); stable for ratio >= 1.2.
"""

import numpy as np

from benchmarks.conftest import print_result, run_figure
from repro.experiments.figures import figure3_rank_ratio


def test_figure3_rank_ratio(benchmark):
    result = run_figure(benchmark, figure3_rank_ratio, workload_kinds=("WRelated",))
    print_result(result, group_keys=("workload", "epsilon"))

    ratios, errors = result.series(
        "LRM", value_key="average_squared_error", workload="WRelated", epsilon=0.1
    )
    by_ratio = dict(zip(ratios, errors))
    # ratio 0.8 cannot represent W -> structural error dominates.
    assert by_ratio[0.8] > by_ratio[1.2], "rank below rank(W) must hurt accuracy"

    # Structural residual is zero once ratio >= 1 (exact closure applies).
    for row in result.rows:
        if row["mechanism"] == "LRM" and row["rank_ratio"] >= 1.0:
            assert row["structural_error"] <= 1e-6 * max(row["rank"], 1)

    # Stability region: ratios >= 1.2 within a factor ~30 of each other.
    stable = np.array([v for r, v in by_ratio.items() if r >= 1.2])
    assert stable.max() <= 30 * stable.min()
