"""Shared helpers for the benchmark suite.

Every paper figure has one benchmark module. Each benchmark runs the
corresponding harness once (``benchmark.pedantic(rounds=1)`` — these are
end-to-end experiment regenerations, not micro-benchmarks), prints the
regenerated table, and asserts the *qualitative shape* the paper reports
(who wins, what grows, where crossovers fall). Shape assertions use the
analytic ``expected_average_error`` where available because it is
noise-free; the empirical errors are printed alongside.

Scale: ``bench`` grids (see ``repro.experiments.config.BENCH_GRID``). Set
``REPRO_FULL_SCALE=1`` to regenerate the paper-sized grids instead (slow).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.reporting import format_table

BENCH_SCALE = "bench"


def run_figure(benchmark, figure_fn, **kwargs):
    """Run one figure harness exactly once under pytest-benchmark timing."""
    result = benchmark.pedantic(
        lambda: figure_fn(scale=BENCH_SCALE, **kwargs), rounds=1, iterations=1
    )
    return result


def print_result(result, group_keys=()):
    """Print both the empirical and the analytic tables for the figure."""
    print()
    print(format_table(result, group_keys=group_keys))
    print(format_table(result, value_key="expected_average_error", group_keys=group_keys))


def series_or_skip(result, mechanism, value_key="expected_average_error", **filters):
    """Fetch a series and skip the assertion when it is empty (mechanism
    disabled at this scale)."""
    xs, ys = result.series(mechanism, value_key=value_key, **filters)
    if ys.size == 0:
        pytest.skip(f"{mechanism} produced no data points at bench scale")
    return np.asarray(xs, dtype=float), ys


def geometric_mean(values):
    values = np.asarray(values, dtype=float)
    values = values[values > 0]
    return float(np.exp(np.mean(np.log(values)))) if values.size else float("nan")
