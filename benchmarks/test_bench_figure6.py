"""Figure 6: all mechanisms vs domain size n on WRelated (eps = 0.1).

Paper shapes: LRM wins with growing margins as n increases because
rank(W) = s is fixed while every other mechanism's error scales with n;
MM worst.
"""

from benchmarks.conftest import geometric_mean, print_result, run_figure, series_or_skip
from repro.experiments.figures import figure6_domain_size_wrelated

_DATASETS = ("search_logs", "net_trace")


def test_figure6_wrelated(benchmark):
    result = run_figure(benchmark, figure6_domain_size_wrelated, datasets=_DATASETS)
    print_result(result, group_keys=("dataset",))

    for dataset in _DATASETS:
        ns, lm = series_or_skip(result, "LM", dataset=dataset)
        _, lrm = series_or_skip(result, "LRM", dataset=dataset)

        # LM scales linearly with n; LRM flattens (rank fixed at s).
        assert lm[-1] / lm[0] > 1.5
        assert lrm[-1] / lrm[0] < lm[-1] / lm[0]

        # LRM/LM ratio improves with n (the growing-margin shape).
        assert lrm[-1] / lm[-1] < lrm[0] / lm[0]

        # LRM beats WM and HM everywhere on this workload.
        _, wm = series_or_skip(result, "WM", dataset=dataset)
        _, hm = series_or_skip(result, "HM", dataset=dataset)
        assert geometric_mean(lrm) < geometric_mean(wm)
        assert geometric_mean(lrm) < geometric_mean(hm)

        # MM worst wherever it runs.
        _, mm = series_or_skip(result, "MM", dataset=dataset)
        assert geometric_mean(mm) > geometric_mean(lrm[: mm.size])
