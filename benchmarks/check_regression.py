#!/usr/bin/env python
"""Diff two benchmark reports and fail on a median per-cell regression.

Usage::

    python benchmarks/check_regression.py BASELINE.json CANDIDATE.json \
        [--threshold 0.20] [--time-field fit_seconds_best]

Cells are matched on ``(workload, m, n, s[, mechanism, epsilon])`` and
compared on ``--time-field`` (default ``fit_seconds_best``, the
``BENCH_solver.json`` metric; serving reports use
``--time-field seconds_per_release``). The check exits non-zero when the
**median** per-cell slowdown of the candidate exceeds the threshold
(default 20%), so future PRs can keep the perf trajectories honest::

    PYTHONPATH=src pytest benchmarks/test_bench_solver_perf.py -m perf   # old tree
    cp benchmarks/BENCH_solver.json /tmp/before.json
    ... apply changes, rerun the benchmark ...
    python benchmarks/check_regression.py /tmp/before.json benchmarks/BENCH_solver.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys


def _cell_key(cell):
    # mechanism/epsilon are absent from solver cells and disambiguate
    # serving cells that share one workload shape.
    return (
        cell["workload"], cell["m"], cell["n"], cell.get("s"),
        cell.get("mechanism"), cell.get("epsilon"),
    )


def _load_cells(path):
    with open(path) as handle:
        report = json.load(handle)
    return {_cell_key(cell): cell for cell in report["cells"]}


def compare(baseline_path, candidate_path, threshold, time_field="fit_seconds_best"):
    """Return (exit_code, lines) comparing candidate against baseline."""
    baseline = _load_cells(baseline_path)
    candidate = _load_cells(candidate_path)
    shared = sorted(set(baseline) & set(candidate), key=str)
    if not shared:
        return 2, ["no matching cells between the two reports"]

    lines = [f"{'cell':<28} {'base':>9} {'cand':>9} {'slowdown':>9}"]
    slowdowns = []
    for key in shared:
        base_t = float(baseline[key][time_field])
        cand_t = float(candidate[key][time_field])
        slowdown = cand_t / base_t - 1.0
        slowdowns.append(slowdown)
        name = f"{key[0]} {key[1]}x{key[2]}"
        if key[4] is not None:
            name += f" {key[4]}"
        lines.append(f"{name:<28} {base_t:>8.4g}s {cand_t:>8.4g}s {slowdown:>+8.1%}")

    median_slowdown = statistics.median(slowdowns)
    lines.append(f"median slowdown: {median_slowdown:+.1%} (threshold {threshold:.0%})")
    missing = sorted(set(baseline) ^ set(candidate), key=str)
    if missing:
        lines.append(f"note: {len(missing)} cell(s) present in only one report")
    if median_slowdown > threshold:
        lines.append("REGRESSION: candidate is slower than the baseline allows")
        return 1, lines
    lines.append("ok: within the regression budget")
    return 0, lines


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline report (BENCH_solver/serving.json)")
    parser.add_argument("candidate", help="candidate report (BENCH_solver/serving.json)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximum tolerated median slowdown (fraction, default 0.20)",
    )
    parser.add_argument(
        "--time-field",
        default="fit_seconds_best",
        help="per-cell seconds field to compare (fit_seconds_best for solver "
        "reports, seconds_per_release for serving reports)",
    )
    args = parser.parse_args(argv)
    code, lines = compare(args.baseline, args.candidate, args.threshold, args.time_field)
    print("\n".join(lines))
    return code


if __name__ == "__main__":
    sys.exit(main())
