#!/usr/bin/env python
"""Diff two benchmark reports and fail on a median per-cell regression.

Usage::

    python benchmarks/check_regression.py BASELINE.json CANDIDATE.json \
        [--threshold 0.20] [--time-field fit_seconds_best] \
        [--memory-field peak_bytes] [--memory-threshold 0.25]

Cells are matched on ``(workload, m, n, s[, mechanism, epsilon])`` — a
cell's ``path`` (operator vs dense in the scaling reports) is deliberately
**not** part of the key, so the dense seed baseline matches the operator
candidate cells — and compared on ``--time-field`` (default
``fit_seconds_best``, the
``BENCH_solver.json`` metric; serving reports use
``--time-field seconds_per_release``, scaling reports
``--time-field fit_seconds``). The check exits non-zero when the
**median** per-cell slowdown of the candidate exceeds the threshold
(default 20%), so future PRs can keep the perf trajectories honest::

    PYTHONPATH=src pytest benchmarks/test_bench_solver_perf.py -m perf   # old tree
    cp benchmarks/BENCH_solver.json /tmp/before.json
    ... apply changes, rerun the benchmark ...
    python benchmarks/check_regression.py /tmp/before.json benchmarks/BENCH_solver.json

With ``--memory-field`` (e.g. ``peak_bytes``, the scaling benchmark's
tracemalloc high-water mark) the same median gate additionally runs on a
per-cell memory metric with its own ``--memory-threshold`` — a fit that
got faster by materialising what it used to stream still fails.

With ``--availability-field`` (e.g. ``availability``, recorded per cell
by the service load benchmark) an **absolute floor** gate runs over every
*candidate* cell carrying the field: any cell below
``--availability-floor`` (default 0.99) fails, regardless of what the
baseline measured — availability is a contract, not a trajectory.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys


def _cell_key(cell):
    # mechanism/epsilon are absent from solver cells and disambiguate
    # serving cells that share one workload shape; workers/mode do the
    # same for the service load-benchmark cells (one report holds every
    # worker-count x batched/unbatched combination). The scaling reports'
    # "path" (operator vs dense) is deliberately NOT part of the key, so
    # the dense seed baseline matches the operator candidate cells — the
    # cross-representation comparison is the point of that diff.
    return (
        cell["workload"], cell["m"], cell["n"], cell.get("s"),
        cell.get("mechanism"), cell.get("epsilon"),
        cell.get("workers"), cell.get("mode"),
    )


def _load_cells(path):
    with open(path) as handle:
        report = json.load(handle)
    return {_cell_key(cell): cell for cell in report["cells"]}


def _median_gate(baseline, candidate, shared, field, threshold, unit_scale, unit):
    """Per-cell ratios on ``field`` plus the median verdict lines."""
    lines = [f"{'cell':<34} {'base':>10} {'cand':>10} {'change':>9}"]
    changes = []
    for key in shared:
        base_value = float(baseline[key][field])
        cand_value = float(candidate[key][field])
        change = cand_value / base_value - 1.0
        changes.append(change)
        name = _cell_name(key)
        lines.append(
            f"{name:<34} {base_value * unit_scale:>9.4g}{unit} "
            f"{cand_value * unit_scale:>9.4g}{unit} {change:>+8.1%}"
        )
    median_change = statistics.median(changes)
    lines.append(
        f"median {field} regression: {median_change:+.1%} (threshold {threshold:.0%})"
    )
    return median_change, lines


def _cell_name(key):
    name = f"{key[0]} {key[1]}x{key[2]}"
    if key[4] is not None:
        name += f" {key[4]}"
    if key[6] is not None:
        name += f" w{key[6]}"
    if key[7] is not None:
        name += f" {key[7]}"
    return name


def _availability_gate(candidate, field, floor):
    """Absolute floor over every candidate cell carrying ``field``."""
    cells = sorted(
        (key for key in candidate if field in candidate[key]), key=str
    )
    if not cells:
        return 0.0, False, [f"no candidate cells carry {field!r}; availability gate skipped"]
    lines = []
    worst = 1.0
    for key in cells:
        value = float(candidate[key][field])
        worst = min(worst, value)
        lines.append(f"{_cell_name(key):<34} {field} {value:>8.4f}")
    lines.append(f"minimum {field}: {worst:.4f} (floor {floor:.4f})")
    return worst, worst < floor, lines


def compare(
    baseline_path,
    candidate_path,
    threshold,
    time_field="fit_seconds_best",
    memory_field=None,
    memory_threshold=0.25,
    availability_field=None,
    availability_floor=0.99,
):
    """Return (exit_code, lines) comparing candidate against baseline."""
    baseline = _load_cells(baseline_path)
    candidate = _load_cells(candidate_path)
    shared = sorted(set(baseline) & set(candidate), key=str)
    if not shared:
        return 2, ["no matching cells between the two reports"]

    median_slowdown, lines = _median_gate(
        baseline, candidate, shared, time_field, threshold, 1.0, "s"
    )
    code = 0
    if median_slowdown > threshold:
        lines.append("REGRESSION: candidate is slower than the baseline allows")
        code = 1

    if memory_field is not None:
        memory_cells = [
            key
            for key in shared
            if memory_field in baseline[key] and memory_field in candidate[key]
        ]
        if not memory_cells:
            lines.append(f"no cells carry {memory_field!r}; memory gate skipped")
        else:
            median_growth, memory_lines = _median_gate(
                baseline, candidate, memory_cells, memory_field,
                memory_threshold, 1e-6, "M",
            )
            lines.extend(memory_lines)
            if median_growth > memory_threshold:
                lines.append(
                    "REGRESSION: candidate peak memory grew past the baseline allowance"
                )
                code = 1

    if availability_field is not None:
        _, below, availability_lines = _availability_gate(
            candidate, availability_field, availability_floor
        )
        lines.extend(availability_lines)
        if below:
            lines.append(
                "REGRESSION: availability fell below the absolute floor"
            )
            code = 1

    missing = sorted(set(baseline) ^ set(candidate), key=str)
    if missing:
        lines.append(f"note: {len(missing)} cell(s) present in only one report")
    if code == 0:
        lines.append("ok: within the regression budget")
    return code, lines


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline report (BENCH_*.json)")
    parser.add_argument("candidate", help="candidate report (BENCH_*.json)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximum tolerated median slowdown (fraction, default 0.20)",
    )
    parser.add_argument(
        "--time-field",
        default="fit_seconds_best",
        help="per-cell seconds field to compare (fit_seconds_best for solver "
        "reports, seconds_per_release for serving reports, fit_seconds for "
        "scaling reports)",
    )
    parser.add_argument(
        "--memory-field",
        default=None,
        help="optional per-cell peak-bytes field (e.g. peak_bytes) to gate "
        "alongside the time field",
    )
    parser.add_argument(
        "--memory-threshold",
        type=float,
        default=0.25,
        help="maximum tolerated median memory growth (fraction, default 0.25)",
    )
    parser.add_argument(
        "--availability-field",
        default=None,
        help="optional per-cell availability field (e.g. availability) held "
        "to an absolute floor over every candidate cell carrying it",
    )
    parser.add_argument(
        "--availability-floor",
        type=float,
        default=0.99,
        help="minimum tolerated availability (absolute, default 0.99)",
    )
    args = parser.parse_args(argv)
    code, lines = compare(
        args.baseline,
        args.candidate,
        args.threshold,
        args.time_field,
        memory_field=args.memory_field,
        memory_threshold=args.memory_threshold,
        availability_field=args.availability_field,
        availability_floor=args.availability_floor,
    )
    print("\n".join(lines))
    return code


if __name__ == "__main__":
    sys.exit(main())
