"""Figure 7: mechanisms vs batch size m on WRange (eps = 0.1).

Paper shapes: LRM best when m << n; the gap narrows as m approaches n
(random range batches lose the low-rank property).
"""

from benchmarks.conftest import print_result, run_figure, series_or_skip
from repro.experiments.figures import figure7_query_size_wrange

_DATASETS = ("search_logs", "net_trace")


def test_figure7_wrange(benchmark):
    result = run_figure(benchmark, figure7_query_size_wrange, datasets=_DATASETS)
    print_result(result, group_keys=("dataset",))

    for dataset in _DATASETS:
        ms, lm = series_or_skip(result, "LM", dataset=dataset)
        _, lrm = series_or_skip(result, "LRM", dataset=dataset)

        # LRM beats every competitor at the smallest batch (m << n regime).
        _, wm = series_or_skip(result, "WM", dataset=dataset)
        _, hm = series_or_skip(result, "HM", dataset=dataset)
        assert lrm[0] < min(lm[0], wm[0], hm[0])

        # The advantage shrinks as m grows toward n (random ranges lose the
        # low-rank property): LRM/LM ratio degrades monotonically in spirit.
        assert lrm[-1] / lm[-1] > lrm[0] / lm[0]

        # WM/HM present at every m.
        assert wm.size == ms.size and hm.size == ms.size
