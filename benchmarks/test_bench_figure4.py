"""Figure 4: all mechanisms vs domain size n on WDiscrete (eps = 0.1).

Paper shapes: MM worst; LM's error grows linearly with n; LRM's error
stops growing once n exceeds the rank cap min(m, n) and wins at large n.
"""

from benchmarks.conftest import geometric_mean, print_result, run_figure, series_or_skip
from repro.experiments.figures import figure4_domain_size_wdiscrete

_DATASETS = ("search_logs", "net_trace")


def test_figure4_wdiscrete(benchmark):
    result = run_figure(benchmark, figure4_domain_size_wdiscrete, datasets=_DATASETS)
    print_result(result, group_keys=("dataset",))

    for dataset in _DATASETS:
        _, mm = series_or_skip(result, "MM", dataset=dataset)
        _, lrm = series_or_skip(result, "LRM", dataset=dataset)
        # MM is the worst performer wherever it runs (paper Section 6.2).
        assert geometric_mean(mm) > geometric_mean(lrm[: mm.size])

        # LM grows linearly with n; LRM's rank-capped error grows slower.
        ns, lm = series_or_skip(result, "LM", dataset=dataset)
        growth_lm = lm[-1] / lm[0]
        growth_lrm = lrm[-1] / lrm[0]
        assert growth_lm > 1.5, "LM error must grow with the domain"
        assert growth_lrm < growth_lm * 1.05, "LRM must not grow faster than LM"

        # At the largest domain LRM is the most accurate mechanism.
        last_n = ns[-1]
        errors_at_last = {
            row["mechanism"]: row["expected_average_error"]
            for row in result.rows
            if row.get("dataset") == dataset
            and row.get("n") == last_n
            and row.get("expected_average_error") is not None
        }
        assert errors_at_last["LRM"] == min(errors_at_last.values())
