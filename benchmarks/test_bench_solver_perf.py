"""Opt-in solver perf benchmark: ``LowRankMechanism.fit`` across a grid.

Runs the ALM decomposition end-to-end on a fixed grid of workloads with the
bench LRM budget, emits ``benchmarks/BENCH_solver.json`` (so future PRs have
a fit-time trajectory to regress against — see
``benchmarks/check_regression.py``), and compares against the committed seed
baseline ``benchmarks/baselines/BENCH_solver_seed.json``:

* **speed** — the median per-cell speedup vs the seed solver must be >= 3x
  (the solver hot-path overhaul's target);
* **quality** — each cell's decomposition objective ``tr(B^T B)`` must stay
  within its baseline ``objective_rtol`` (default 2%; the near-full-rank
  ``wrange``/``wdiscrete`` cells carry 25% because the bi-convex ALM is
  basin-chaotic there — see the baseline file's notes), and the
  geometric-mean objective ratio across the grid must not regress (net
  quality is preserved even when individual chaotic cells wander).

Timing uses best-of-``REPRO_BENCH_REPS`` (default 5) wall-clock after one
untimed warm-up fit per cell — the robust statistic on shared machines.
Baselines are machine-specific: regenerate the seed file on new hardware per
its embedded description before trusting the speedup assertion there.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_solver_perf.py -m perf -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.lrm import LowRankMechanism
from repro.workloads.generators import workload_by_name

pytestmark = pytest.mark.perf

_HERE = Path(__file__).resolve().parent
SEED_BASELINE_PATH = _HERE / "baselines" / "BENCH_solver_seed.json"
OUTPUT_PATH = _HERE / "BENCH_solver.json"

#: Minimum acceptable median fit-time speedup vs the seed baseline.
TARGET_MEDIAN_SPEEDUP = 3.0
#: Default per-cell objective regression tolerance (cells may override via
#: "objective_rtol" in the baseline file).
DEFAULT_OBJECTIVE_RTOL = 0.02
#: The grid-wide geometric-mean objective ratio must stay below this.
MAX_NET_OBJECTIVE_RATIO = 1.0


def _run_grid(budget, reps):
    baseline = json.loads(SEED_BASELINE_PATH.read_text())
    cells = []
    for seed_cell in baseline["cells"]:
        workload = workload_by_name(
            seed_cell["workload"],
            seed_cell["m"],
            seed_cell["n"],
            s=seed_cell["s"],
            seed=2012,
        )
        LowRankMechanism(seed=0, **budget).fit(workload)  # untimed warm-up
        times = []
        mechanism = None
        for _ in range(reps):
            mechanism = LowRankMechanism(seed=0, **budget)
            start = time.perf_counter()
            mechanism.fit(workload)
            times.append(time.perf_counter() - start)
        decomposition = mechanism.decomposition
        cells.append(
            {
                "workload": seed_cell["workload"],
                "m": seed_cell["m"],
                "n": seed_cell["n"],
                "s": seed_cell["s"],
                "fit_seconds_all": times,
                "fit_seconds_best": min(times),
                "objective": decomposition.objective,
                "residual_norm": decomposition.residual_norm,
                "iterations": decomposition.iterations,
                "perf_phases": {
                    phase: dict(entry) for phase, entry in decomposition.perf.items()
                },
                "seed_fit_seconds_best": seed_cell["fit_seconds_best"],
                "seed_objective": seed_cell["objective"],
                "speedup_vs_seed": seed_cell["fit_seconds_best"] / min(times),
                "objective_vs_seed": decomposition.objective / seed_cell["objective"],
                "objective_rtol": seed_cell.get("objective_rtol", DEFAULT_OBJECTIVE_RTOL),
            }
        )
    return baseline, cells


def test_solver_fit_speed_vs_seed():
    baseline = json.loads(SEED_BASELINE_PATH.read_text())
    reps = int(os.environ.get("REPRO_BENCH_REPS", "5"))
    _, cells = _run_grid(dict(baseline["budget"]), reps)

    speedups = [cell["speedup_vs_seed"] for cell in cells]
    median_speedup = float(np.median(speedups))
    report = {
        "label": os.environ.get("REPRO_BENCH_LABEL", "current"),
        "budget": baseline["budget"],
        "reps": reps,
        "cells": cells,
        "median_speedup_vs_seed": median_speedup,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2))

    print()
    print(f"{'workload':<12} {'shape':>9} {'seed':>8} {'now':>8} {'speedup':>8} {'obj ratio':>10}")
    for cell in cells:
        shape = f"{cell['m']}x{cell['n']}"
        print(
            f"{cell['workload']:<12} {shape:>9} "
            f"{cell['seed_fit_seconds_best']:>7.2f}s {cell['fit_seconds_best']:>7.2f}s "
            f"{cell['speedup_vs_seed']:>7.2f}x {cell['objective_vs_seed']:>10.4f}"
        )
    print(f"median speedup vs seed: {median_speedup:.2f}x  (report: {OUTPUT_PATH})")

    for cell in cells:
        assert cell["objective_vs_seed"] <= 1.0 + cell["objective_rtol"], (
            f"{cell['workload']} {cell['m']}x{cell['n']}: objective regressed "
            f"{(cell['objective_vs_seed'] - 1) * 100:.2f}% vs seed "
            f"(tolerance {cell['objective_rtol']:.0%})"
        )
    net_ratio = float(
        np.exp(np.mean(np.log([cell["objective_vs_seed"] for cell in cells])))
    )
    assert net_ratio <= MAX_NET_OBJECTIVE_RATIO + 1e-9, (
        f"grid-wide geometric-mean objective ratio {net_ratio:.4f} regressed vs seed"
    )
    assert median_speedup >= TARGET_MEDIAN_SPEEDUP, (
        f"median fit speedup {median_speedup:.2f}x below the "
        f"{TARGET_MEDIAN_SPEEDUP}x target; see {OUTPUT_PATH} for per-cell data"
    )
