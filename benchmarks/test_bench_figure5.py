"""Figure 5: all mechanisms vs domain size n on WRange (eps = 0.1).

Paper shapes: WM and HM close the gap to LM as n grows (their log-n
strategies suit ranges); LRM best overall; MM worst.
"""

from benchmarks.conftest import geometric_mean, print_result, run_figure, series_or_skip
from repro.experiments.figures import figure5_domain_size_wrange

_DATASETS = ("search_logs", "social_network")


def test_figure5_wrange(benchmark):
    result = run_figure(benchmark, figure5_domain_size_wrange, datasets=_DATASETS)
    print_result(result, group_keys=("dataset",))

    for dataset in _DATASETS:
        ns, lm = series_or_skip(result, "LM", dataset=dataset)
        _, wm = series_or_skip(result, "WM", dataset=dataset)
        _, hm = series_or_skip(result, "HM", dataset=dataset)
        _, lrm = series_or_skip(result, "LRM", dataset=dataset)

        # WM/HM error grows polylogarithmically, LM linearly: their ratio
        # to LM must shrink as n grows (crossover at n ~ 512 in the paper,
        # beyond the bench grid; the trend is the testable shape here).
        assert wm[-1] / lm[-1] < wm[0] / lm[0]
        assert hm[-1] / lm[-1] < hm[0] / lm[0]

        # LRM's error is roughly flat in n while LM grows linearly, so the
        # LRM/LM ratio improves with n and LRM wins at the largest domain.
        assert lrm[-1] / lrm[0] < lm[-1] / lm[0]
        assert lrm[-1] < min(lm[-1], wm[-1], hm[-1])

        # MM is the worst wherever it runs.
        _, mm = series_or_skip(result, "MM", dataset=dataset)
        assert geometric_mean(mm) > geometric_mean(lrm[: mm.size])
