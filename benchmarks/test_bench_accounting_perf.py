"""Opt-in accounting benchmark: RDP vs basic composition releases-per-budget.

The Rényi/zCDP accountant (PR 5) claims that a fixed (eps, delta) budget
sustains **at least 5x** more identically-calibrated Gaussian releases under
RDP composition (:class:`repro.privacy.rdp.RDPAccountant`) than under basic
(eps, delta) composition (:class:`repro.privacy.accountant.ApproxDPAccountant`)
across a committed grid of per-release costs and budgets. This benchmark
measures both accountants by *actually spending them to exhaustion* — not by
formula — and additionally pins the batch-path contract:

* ``spend_many`` of the full admitted load is all-or-nothing and leaves a
  ledger **bit-identical** to the equivalent loop of ``spend`` calls;
* one release past the admitted count is refused atomically;
* the analytic :func:`repro.privacy.rdp.releases_per_budget` predictor
  agrees exactly with the spend loop (it is what ``explain(budget=...)``
  reports to capacity planners).

Unlike the solver/serving/scaling benchmarks, release counts are pure float
arithmetic — **deterministic across machines** — so the committed baselines
are exact, not hardware-specific:

* ``baselines/BENCH_accounting_basic_pr5.json`` — the basic-composition
  capacity (the "before" of this PR),
* ``baselines/BENCH_accounting_pr5.json`` — the RDP capacity,

and ``check_regression.py --time-field epsilon_per_release`` (budget epsilon
divided by admitted releases — lower is better) keeps the win honest in CI.
Wall-clock spend-loop timings are recorded per cell for reference but not
gated.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_accounting_perf.py -m perf -s
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import PrivacyBudgetError
from repro.privacy.accountant import ApproxDPAccountant
from repro.privacy.cost import NoiseCost
from repro.privacy.rdp import RDPAccountant, releases_per_budget

pytestmark = pytest.mark.perf

_HERE = Path(__file__).resolve().parent
OUTPUT_PATH = _HERE / "BENCH_accounting.json"
SUBSAMPLED_OUTPUT_PATH = _HERE / "BENCH_accounting_subsampled.json"
BASIC_BASELINE_PATH = _HERE / "baselines" / "BENCH_accounting_basic_pr5.json"
RDP_BASELINE_PATH = _HERE / "baselines" / "BENCH_accounting_pr5.json"
SUBSAMPLED_BASELINE_PATH = (
    _HERE / "baselines" / "BENCH_accounting_subsampled_pr10.json"
)

#: Minimum acceptable per-cell RDP/basic release-count ratio (the PR's
#: acceptance criterion) and the grid median it typically lands at.
TARGET_MIN_RATIO = 5.0
TARGET_MEDIAN_RATIO = 10.0

#: The committed grid: per-release Gaussian cost (epsilon, delta) against a
#: budget (budget_epsilon, budget_delta). Spans the serving regime (many
#: small releases) through the eps >= 1 territory the analytic calibration
#: just opened.
GRID = [
    {"epsilon": 0.01, "delta": 1e-9, "budget_epsilon": 1.0, "budget_delta": 1e-6},
    {"epsilon": 0.05, "delta": 1e-8, "budget_epsilon": 2.0, "budget_delta": 1e-5},
    {"epsilon": 0.1, "delta": 1e-8, "budget_epsilon": 4.0, "budget_delta": 1e-5},
    {"epsilon": 0.5, "delta": 1e-8, "budget_epsilon": 8.0, "budget_delta": 1e-5},
    {"epsilon": 1.0, "delta": 1e-8, "budget_epsilon": 16.0, "budget_delta": 1e-5},
    {"epsilon": 2.0, "delta": 1e-8, "budget_epsilon": 32.0, "budget_delta": 1e-5},
]


def _drain(accountant, epsilon, delta):
    """Spend (epsilon, delta) releases until refused; returns (count, secs)."""
    count = 0
    started = time.perf_counter()
    while accountant.can_spend(epsilon, delta):
        accountant.spend(epsilon, delta)
        count += 1
    return count, time.perf_counter() - started


def _cell_key(cell):
    """Cell identity shared by both baselines (check_regression key fields;
    the accountant is deliberately *not* part of it, mirroring the scaling
    baselines' dense-vs-operator diff)."""
    return {
        "workload": f"gauss-E{cell['budget_epsilon']:g}-D{cell['budget_delta']:g}",
        "m": 1,
        "n": 1,
        "s": None,
        "mechanism": "GAUSS",
        "epsilon": cell["epsilon"],
    }


def _write_report(path, description, cells):
    path.write_text(
        json.dumps({"description": description, "cells": cells}, indent=2) + "\n"
    )


def test_rdp_releases_per_budget_win():
    basic_cells = []
    rdp_cells = []
    ratios = []
    for cell in GRID:
        eps, delta = cell["epsilon"], cell["delta"]
        budget_eps, budget_delta = cell["budget_epsilon"], cell["budget_delta"]

        basic = ApproxDPAccountant(budget_eps, budget_delta)
        basic_count, basic_seconds = _drain(basic, eps, delta)
        rdp = RDPAccountant(budget_eps, budget_delta)
        rdp_count, rdp_seconds = _drain(rdp, eps, delta)

        # The analytic predictor (explain's capacity line) must agree with
        # the ledgers it predicts — exactly for the scalar model, within
        # one release for RDP (k*cost vs the ledger's sequential curve
        # accumulation can differ at an exact float boundary).
        assert basic_count == releases_per_budget(
            eps, delta, budget_eps, budget_delta, model="basic"
        )
        predicted = releases_per_budget(eps, delta, budget_eps, budget_delta, model="rdp")
        assert abs(rdp_count - predicted) <= 1, (rdp_count, predicted, cell)

        # Batch-path contract at the exhaustion boundary: the full admitted
        # load charges atomically and bit-identically to the loop; one more
        # release is refused with no state change.
        batch = RDPAccountant(budget_eps, budget_delta)
        batch.spend_many([(eps, delta)] * rdp_count)
        assert np.array_equal(batch.rdp_curve, rdp.rdp_curve)
        assert batch.spent_epsilon == rdp.spent_epsilon
        overfull = RDPAccountant(budget_eps, budget_delta)
        with pytest.raises(PrivacyBudgetError):
            overfull.spend_many([(eps, delta)] * (rdp_count + 1))
        assert overfull.spent_epsilon == 0.0

        ratio = rdp_count / basic_count
        ratios.append(ratio)
        print(
            f"eps={eps:<5g} delta={delta:g} budget=({budget_eps:g}, {budget_delta:g}): "
            f"basic {basic_count:>4} vs rdp {rdp_count:>6} releases "
            f"({ratio:.1f}x, drain {rdp_seconds * 1e3:.1f} ms)"
        )

        key = _cell_key(cell)
        basic_cells.append({
            **key, "accountant": "approx-dp", "releases": basic_count,
            "epsilon_per_release": budget_eps / basic_count,
            "drain_seconds": basic_seconds,
        })
        rdp_cells.append({
            **key, "accountant": "rdp", "releases": rdp_count,
            "epsilon_per_release": budget_eps / rdp_count,
            "drain_seconds": rdp_seconds,
        })

        assert ratio >= TARGET_MIN_RATIO, (
            f"RDP admitted only {ratio:.1f}x the basic-composition releases "
            f"at cell {cell} (acceptance floor {TARGET_MIN_RATIO}x)"
        )

    median_ratio = statistics.median(ratios)
    print(f"median RDP/basic releases ratio: {median_ratio:.1f}x")
    assert median_ratio >= TARGET_MEDIAN_RATIO

    _write_report(
        OUTPUT_PATH,
        "Accounting capacity report (machine-independent: counts are exact "
        "float arithmetic). Cells hold both accountants; committed "
        "baselines split them into BENCH_accounting_basic_pr5.json (basic) "
        "and BENCH_accounting_pr5.json (rdp) for check_regression "
        "--time-field epsilon_per_release.",
        basic_cells + rdp_cells,
    )
    print(f"wrote {OUTPUT_PATH}")


#: Subsampling-amplification grid (typed-cost PR): each cell drains the RDP
#: accountant twice with identically-calibrated Gaussian releases — once
#: unsampled, once wrapped at sample rate q — and gates on the amplified
#: capacity win. Counts are pure float arithmetic, so the committed baseline
#: ``baselines/BENCH_accounting_subsampled_pr10.json`` is exact.
SUBSAMPLED_GRID = [
    {"epsilon": 0.5, "delta": 1e-7, "budget_epsilon": 4.0,
     "budget_delta": 1e-5, "sample_rate": 0.1},
    {"epsilon": 0.5, "delta": 1e-7, "budget_epsilon": 4.0,
     "budget_delta": 1e-5, "sample_rate": 0.5},
    {"epsilon": 1.0, "delta": 1e-8, "budget_epsilon": 8.0,
     "budget_delta": 1e-5, "sample_rate": 0.2},
]


def _drain_cost(accountant, cost):
    """Spend a typed cost until refused; returns (count, secs)."""
    count = 0
    started = time.perf_counter()
    while accountant.can_spend(cost):
        accountant.spend(cost)
        count += 1
    return count, time.perf_counter() - started


def _subsampled_cell_key(cell, sample_rate):
    return {
        "workload": (
            f"subgauss-q{sample_rate:g}-E{cell['budget_epsilon']:g}"
            f"-D{cell['budget_delta']:g}"
        ),
        "m": 1,
        "n": 1,
        "s": None,
        "mechanism": "SUBGAUSS",
        "epsilon": cell["epsilon"],
    }


def test_subsampled_capacity_win():
    """Subsampling at q<1 admits strictly more releases than the unsampled
    twin under the same RDP ledger, and the analytic predictor agrees with
    the drained count."""
    cells = []
    for cell in SUBSAMPLED_GRID:
        eps, delta = cell["epsilon"], cell["delta"]
        budget_eps, budget_delta = cell["budget_epsilon"], cell["budget_delta"]
        q = cell["sample_rate"]

        plain_cost = NoiseCost(family="gaussian", epsilon=eps, delta=delta)
        sub_cost = NoiseCost(
            family="subsampled_gaussian", epsilon=eps, delta=delta, sample_rate=q
        )
        plain = RDPAccountant(budget_eps, budget_delta)
        plain_count, _ = _drain_cost(plain, plain_cost)
        sub = RDPAccountant(budget_eps, budget_delta)
        sub_count, sub_seconds = _drain_cost(sub, sub_cost)

        assert sub_count > plain_count, (
            f"subsampling at q={q} admitted {sub_count} releases vs "
            f"{plain_count} unsampled — amplification must win strictly"
        )
        predicted = releases_per_budget(
            eps, delta, budget_eps, budget_delta, model="rdp", sample_rate=q
        )
        assert abs(sub_count - predicted) <= 1, (sub_count, predicted, cell)

        print(
            f"eps={eps:g} delta={delta:g} q={q:g} budget=({budget_eps:g}, "
            f"{budget_delta:g}): unsampled {plain_count:>5} vs subsampled "
            f"{sub_count:>6} releases ({sub_count / plain_count:.1f}x, "
            f"drain {sub_seconds * 1e3:.1f} ms)"
        )
        cells.append({
            **_subsampled_cell_key(cell, q),
            "sample_rate": q,
            "releases": sub_count,
            "unsampled_releases": plain_count,
            "amplification_ratio": sub_count / plain_count,
            "epsilon_per_release": budget_eps / sub_count,
            "drain_seconds": sub_seconds,
        })

    _write_report(
        SUBSAMPLED_OUTPUT_PATH,
        "Subsampled-Gaussian capacity report (machine-independent: counts "
        "are exact float arithmetic). Committed baseline is "
        "BENCH_accounting_subsampled_pr10.json; diff with check_regression "
        "--time-field epsilon_per_release.",
        cells,
    )
    print(f"wrote {SUBSAMPLED_OUTPUT_PATH}")


def test_subsampled_baseline_matches_current_arithmetic():
    """The committed subsampled baseline is exact; the current amplified
    RDP arithmetic must reproduce its release counts identically."""
    if not SUBSAMPLED_BASELINE_PATH.exists():
        pytest.skip(f"baseline {SUBSAMPLED_BASELINE_PATH.name} not committed yet")
    cells = json.loads(SUBSAMPLED_BASELINE_PATH.read_text())["cells"]
    assert len(cells) == len(SUBSAMPLED_GRID)
    for cell, spec in zip(cells, SUBSAMPLED_GRID):
        expected = releases_per_budget(
            spec["epsilon"], spec["delta"],
            spec["budget_epsilon"], spec["budget_delta"],
            model="rdp", sample_rate=spec["sample_rate"],
        )
        assert abs(cell["releases"] - expected) <= 1, (cell, expected)
        assert cell["releases"] > cell["unsampled_releases"]


def test_committed_baselines_match_current_arithmetic():
    """The committed baselines are exact (no hardware variance), so the
    current code must reproduce their release counts identically — a
    regression here means the accounting arithmetic itself changed."""
    for path, model in ((BASIC_BASELINE_PATH, "basic"), (RDP_BASELINE_PATH, "rdp")):
        if not path.exists():
            pytest.skip(f"baseline {path.name} not committed yet")
        cells = json.loads(path.read_text())["cells"]
        assert len(cells) == len(GRID)
        for cell, spec in zip(cells, GRID):
            expected = releases_per_budget(
                spec["epsilon"], spec["delta"],
                spec["budget_epsilon"], spec["budget_delta"], model=model,
            )
            # Committed counts come from ledger drains; the predictor may
            # sit one release off at an exact float boundary (documented).
            assert abs(cell["releases"] - expected) <= 1, (path.name, cell, expected)
