"""Opt-in serving perf benchmark: looped ``execute`` vs batched ``execute_many``.

The serving hot path (PR 3) claims that releasing a batch of ``k`` requests
through the vectorised multi-release path — one ``(k, r)`` RNG draw, one
GEMM, per-plan memoized audit metadata — beats ``k`` looped ``execute``
calls by at least :data:`TARGET_MEDIAN_SPEEDUP` on releases/sec. This
benchmark measures both sides over a fixed plan/epsilon grid, emits
``benchmarks/BENCH_serving.json`` (regressable via
``benchmarks/check_regression.py --time-field seconds_per_release``), and
asserts, per the acceptance criteria:

* **throughput** — median per-cell ``batch releases/sec / loop
  releases/sec`` >= 5x at the committed batch size (256);
* **accounting identity** — the looped and batched engines end with
  byte-identical privacy accounting: same total (eps, delta) spend and
  pairwise-identical audit-log contents (mechanism, epsilon, delta,
  expected error, workload key, metadata);
* **unchanged analytic error** — every release reports the same
  ``expected_error`` on both sides (the batch path memoizes, never alters,
  the analytic formula).

The noisy *answers* differ between the two sides only as independent draws
of the same distribution (the batch path advances the RNG stream in one
``(k, r)`` block instead of ``k`` ``(r,)`` blocks — an intentional,
documented stream change).

Timing is best-of-``REPRO_BENCH_REPS`` (default 5) wall-clock after one
untimed warm-up per side. The committed seed baseline
(``benchmarks/baselines/BENCH_serving_seed.json``) stores the *looped*
per-release seconds — what ``execute_many`` effectively cost before the
vectorised path existed — so ``check_regression`` comparisons track the
batch path against the pre-overhaul cost. Baselines are machine-specific;
regenerate on new hardware per the file's embedded description.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_serving_perf.py -m perf -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import PrivateQueryEngine
from repro.workloads.generators import workload_by_name

pytestmark = pytest.mark.perf

_HERE = Path(__file__).resolve().parent
SEED_BASELINE_PATH = _HERE / "baselines" / "BENCH_serving_seed.json"
OUTPUT_PATH = _HERE / "BENCH_serving.json"

#: Minimum acceptable median batch-vs-loop throughput ratio.
TARGET_MEDIAN_SPEEDUP = 5.0
#: Releases per batch (the committed acceptance batch size).
BATCH_SIZE = 256
#: Total budget large enough that no grid cell exhausts it.
TOTAL_BUDGET = 1e9

#: The committed grid: (workload generator, m, n, s, mechanism, epsilon).
#: LRM cells are the paper's product; SVDM isolates the decomposition
#: pipeline without the ALM fit; LM stresses the identity-strategy path
#: (domain-sized noise, the hardest cell to speed up by batching).
GRID = [
    {"workload": "wrelated", "m": 128, "n": 512, "s": 8, "mechanism": "LRM", "epsilon": 0.1},
    {"workload": "wrelated", "m": 256, "n": 1024, "s": 8, "mechanism": "LRM", "epsilon": 0.5},
    {"workload": "wrange", "m": 64, "n": 256, "s": None, "mechanism": "LRM", "epsilon": 0.1},
    {"workload": "wrelated", "m": 32, "n": 128, "s": 4, "mechanism": "SVDM", "epsilon": 0.1},
    {"workload": "wrange", "m": 64, "n": 256, "s": None, "mechanism": "LM", "epsilon": 0.1},
]

#: Bench LRM fit budget (fits are untimed here; keep planning fast).
LRM_BUDGET = {
    "LRM": {"max_outer": 40, "max_inner": 4, "nesterov_iters": 30, "stall_iters": 15}
}


def _make_workload(cell):
    kwargs = {"seed": 2012}
    if cell["s"] is not None:
        kwargs["s"] = cell["s"]
    return workload_by_name(cell["workload"], cell["m"], cell["n"], **kwargs)


def _fresh_engine(workload, seed=7):
    data = np.arange(float(workload.domain_size))
    return PrivateQueryEngine(
        data, total_budget=TOTAL_BUDGET, mechanism_kwargs=LRM_BUDGET, seed=seed
    )


def _audit_tuple(release):
    return (
        release.mechanism,
        release.epsilon,
        release.delta,
        release.expected_error,
        release.workload_key,
        release.metadata,
    )


def _run_cell(cell, reps):
    workload = _make_workload(cell)
    epsilon = cell["epsilon"]

    loop_engine = _fresh_engine(workload)
    loop_plan = loop_engine.plan(workload, mechanism=cell["mechanism"])
    loop_engine.execute(loop_plan, epsilon)  # untimed warm-up
    loop_times = []
    for _ in range(reps):
        start = time.perf_counter()
        for _ in range(BATCH_SIZE):
            loop_engine.execute(loop_plan, epsilon)
        loop_times.append(time.perf_counter() - start)

    batch_engine = _fresh_engine(workload)
    batch_plan = batch_engine.plan(workload, mechanism=cell["mechanism"])
    requests = [(batch_plan, epsilon)] * BATCH_SIZE
    batch_engine.execute(batch_plan, epsilon)  # untimed warm-up
    batch_times = []
    for _ in range(reps):
        start = time.perf_counter()
        batch_engine.execute_many(requests)
        batch_times.append(time.perf_counter() - start)

    # --- accounting identity: compare the first k timed releases pairwise
    # (the warm-up release plus reps * k releases exist on both sides, in
    # the same order).
    assert loop_engine.spent_budget == batch_engine.spent_budget
    assert loop_engine.spent_delta == batch_engine.spent_delta
    loop_log = loop_engine.releases
    batch_log = batch_engine.releases
    assert len(loop_log) == len(batch_log)
    for loop_release, batch_release in zip(loop_log, batch_log):
        assert _audit_tuple(loop_release) == _audit_tuple(batch_release)
        assert loop_release.answers.shape == batch_release.answers.shape

    loop_best = min(loop_times)
    batch_best = min(batch_times)
    return {
        **cell,
        "batch_size": BATCH_SIZE,
        "loop_seconds_all": loop_times,
        "batch_seconds_all": batch_times,
        "loop_seconds_per_release": loop_best / BATCH_SIZE,
        "batch_seconds_per_release": batch_best / BATCH_SIZE,
        # The regressable metric (check_regression --time-field): batch-path
        # cost per release.
        "seconds_per_release": batch_best / BATCH_SIZE,
        "loop_releases_per_second": BATCH_SIZE / loop_best,
        "batch_releases_per_second": BATCH_SIZE / batch_best,
        "speedup_batch_vs_loop": loop_best / batch_best,
    }


def test_serving_batch_throughput_vs_loop():
    reps = int(os.environ.get("REPRO_BENCH_REPS", "5"))
    cells = [_run_cell(cell, reps) for cell in GRID]

    speedups = [cell["speedup_batch_vs_loop"] for cell in cells]
    median_speedup = float(np.median(speedups))
    report = {
        "label": os.environ.get("REPRO_BENCH_LABEL", "current"),
        "batch_size": BATCH_SIZE,
        "reps": reps,
        "lrm_budget": LRM_BUDGET["LRM"],
        "cells": cells,
        "median_speedup_batch_vs_loop": median_speedup,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2))

    print()
    header = (
        f"{'workload':<10} {'shape':>10} {'mech':>5} {'eps':>5} "
        f"{'loop rps':>10} {'batch rps':>11} {'speedup':>8}"
    )
    print(header)
    for cell in cells:
        shape = f"{cell['m']}x{cell['n']}"
        print(
            f"{cell['workload']:<10} {shape:>10} {cell['mechanism']:>5} "
            f"{cell['epsilon']:>5g} {cell['loop_releases_per_second']:>10,.0f} "
            f"{cell['batch_releases_per_second']:>11,.0f} "
            f"{cell['speedup_batch_vs_loop']:>7.2f}x"
        )
    print(f"median batch speedup vs looped execute: {median_speedup:.2f}x "
          f"(report: {OUTPUT_PATH})")

    assert median_speedup >= TARGET_MEDIAN_SPEEDUP, (
        f"median batch throughput {median_speedup:.2f}x below the "
        f"{TARGET_MEDIAN_SPEEDUP}x target; see {OUTPUT_PATH} for per-cell data"
    )
