"""Opt-in large-domain scaling benchmark: implicit-operator vs dense fits.

The large-domain overhaul (PR 4) claims two things, both asserted here per
the acceptance criteria:

* **speedup** — at ``n = 8192``, fitting LRM through the implicit workload
  operator (matvec sketch + compressed ``k x n`` ALM) beats the dense fit
  by a median >= :data:`TARGET_MEDIAN_SPEEDUP` across the committed cells,
  at matching solver budgets, with the fitted objectives within
  :data:`OBJECTIVE_RTOL` of each other and the exact answers of the two
  representations agreeing to 1e-8;
* **a new regime** — at ``n = 65,536`` (prefix: a 34 GB dense matrix that
  cannot reasonably be allocated) the operator-only fit completes with a
  **bounded peak memory** footprint (:data:`LARGE_N_PEAK_BYTES_BOUND`,
  tracked with :mod:`tracemalloc`, which traces numpy buffers) and its
  exact answers match the closed form (``cumsum``) to 1e-8.

Each fit is timed best-of-``REPRO_BENCH_REPS`` (default 1 — the dense side
is minutes) and its tracemalloc peak recorded as ``peak_bytes``. The report
``benchmarks/BENCH_scaling.json`` is gitignored; curated snapshots live in
``benchmarks/baselines/``:

* ``BENCH_scaling_dense_seed.json`` — the dense-path fit cost (what the
  operator cells would cost without the overhaul; the n = 65,536 cell is
  absent because the dense path cannot represent it), and
* ``BENCH_scaling_pr4.json`` — the operator-path cost.

Regress future changes with::

    python benchmarks/check_regression.py \
        benchmarks/baselines/BENCH_scaling_pr4.json benchmarks/BENCH_scaling.json \
        --time-field fit_seconds --memory-field peak_bytes

Baselines are machine-specific; regenerate on new hardware by running this
benchmark and copying the report. Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_scaling_perf.py -m perf -s
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.core.lrm import LowRankMechanism
from repro.workloads import prefix_workload, sliding_window_workload

pytestmark = pytest.mark.perf

_HERE = Path(__file__).resolve().parent
OUTPUT_PATH = _HERE / "BENCH_scaling.json"

#: Minimum acceptable median operator-vs-dense fit speedup at n = 8192.
TARGET_MEDIAN_SPEEDUP = 5.0
#: Fitted-objective agreement between the two representations. The two
#: paths optimise the same program from the same warm start; residual
#: differences are basin noise, bounded well inside this.
OBJECTIVE_RTOL = 0.25
#: Peak traced allocation allowed for the operator-only n = 65,536 fit.
#: The dense matrix alone would be ~34 GB; staying two orders of magnitude
#: below it is the point.
LARGE_N_PEAK_BYTES_BOUND = 1_500_000_000
#: Exact-answer agreement between representations.
ANSWER_ATOL = 1e-8

#: Matching solver budget for both sides of every speedup cell.
SOLVER_BUDGET = {
    "rank": 32,
    "max_outer": 15,
    "max_inner": 2,
    "nesterov_iters": 12,
    "stall_iters": 6,
}
#: Leaner budget for the large operator-only cell (the point is the regime,
#: not squeezing the objective).
LARGE_SOLVER_BUDGET = {
    "rank": 32,
    "max_outer": 8,
    "max_inner": 2,
    "nesterov_iters": 12,
    "stall_iters": 5,
}

#: Speedup cells: dense-representable sizes where both paths run.
SPEEDUP_GRID = [
    {"workload": "prefix", "n": 8192, "make": lambda: prefix_workload(8192)},
    {
        "workload": "sliding_window",
        "n": 8192,
        "make": lambda: sliding_window_workload(8192, 256),
    },
]
#: The operator-only regime: prefix at n = 65,536.
LARGE_N = 65_536


def _timed_fit(workload, budget, reps):
    """Best-of-``reps`` fit seconds plus the tracemalloc peak of one fit."""
    times = []
    peak = 0
    for _ in range(reps):
        mechanism = LowRankMechanism(**budget)
        tracemalloc.start()
        start = time.perf_counter()
        mechanism.fit(workload)
        times.append(time.perf_counter() - start)
        _, rep_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peak = max(peak, rep_peak)
    return mechanism, min(times), peak


def _speedup_cell(cell, reps):
    implicit = cell["make"]()
    dense = implicit.dense(max_entries=implicit.num_queries * implicit.domain_size)

    x = np.arange(float(implicit.domain_size))
    assert np.allclose(implicit.answer(x), dense.answer(x), atol=ANSWER_ATOL), (
        "operator and dense answers disagree beyond 1e-8"
    )

    op_mech, op_seconds, op_peak = _timed_fit(implicit, SOLVER_BUDGET, reps)
    dense_mech, dense_seconds, dense_peak = _timed_fit(dense, SOLVER_BUDGET, reps)

    op_objective = op_mech.decomposition.objective
    dense_objective = dense_mech.decomposition.objective
    assert op_objective <= dense_objective * (1.0 + OBJECTIVE_RTOL), (
        f"operator-path objective {op_objective:.6g} regressed past "
        f"{OBJECTIVE_RTOL:.0%} of the dense objective {dense_objective:.6g}"
    )

    base = {
        "workload": cell["workload"],
        "m": implicit.num_queries,
        "n": implicit.domain_size,
        "s": None,
        "mechanism": "LRM",
        "epsilon": None,
        "rank": SOLVER_BUDGET["rank"],
    }
    return (
        {**base, "path": "operator", "fit_seconds": op_seconds,
         "peak_bytes": op_peak, "objective": op_objective},
        {**base, "path": "dense", "fit_seconds": dense_seconds,
         "peak_bytes": dense_peak, "objective": dense_objective},
        dense_seconds / op_seconds,
    )


def test_operator_fit_speedup_and_large_domain():
    reps = int(os.environ.get("REPRO_BENCH_REPS", "1"))

    operator_cells, dense_cells, speedups = [], [], []
    for cell in SPEEDUP_GRID:
        op_cell, dense_cell, speedup = _speedup_cell(cell, reps)
        operator_cells.append(op_cell)
        dense_cells.append(dense_cell)
        speedups.append(speedup)

    # --- The operator-only regime: n = 65,536 prefix, bounded memory. ---
    large = prefix_workload(LARGE_N)
    x = np.arange(float(LARGE_N))
    assert np.allclose(large.answer(x), np.cumsum(x), atol=ANSWER_ATOL)
    large_mech, large_seconds, large_peak = _timed_fit(
        large, LARGE_SOLVER_BUDGET, reps
    )
    assert large_peak <= LARGE_N_PEAK_BYTES_BOUND, (
        f"operator-only fit peaked at {large_peak / 1e6:.0f} MB, above the "
        f"{LARGE_N_PEAK_BYTES_BOUND / 1e6:.0f} MB bound"
    )
    # The fitted pipeline releases: B (r-dim noise) recombines to m answers.
    release = large_mech.answer(x, epsilon=1.0, rng=0)
    assert release.shape == (LARGE_N,)
    assert np.all(np.isfinite(release))
    operator_cells.append(
        {
            "workload": "prefix", "m": LARGE_N, "n": LARGE_N, "s": None,
            "mechanism": "LRM", "epsilon": None,
            "rank": LARGE_SOLVER_BUDGET["rank"], "path": "operator",
            "fit_seconds": large_seconds, "peak_bytes": large_peak,
            "objective": large_mech.decomposition.objective,
        }
    )

    median_speedup = float(np.median(speedups))
    report = {
        "label": os.environ.get("REPRO_BENCH_LABEL", "current"),
        "reps": reps,
        "solver_budget": SOLVER_BUDGET,
        "large_solver_budget": LARGE_SOLVER_BUDGET,
        "cells": operator_cells,
        "dense_cells": dense_cells,
        "median_speedup_operator_vs_dense": median_speedup,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2))

    print()
    print(f"{'workload':<16} {'shape':>14} {'path':>9} {'fit':>9} {'peak MB':>9}")
    for row in operator_cells + dense_cells:
        shape = f"{row['m']}x{row['n']}"
        print(
            f"{row['workload']:<16} {shape:>14} {row['path']:>9} "
            f"{row['fit_seconds']:>8.2f}s {row['peak_bytes'] / 1e6:>9.0f}"
        )
    print(
        f"median operator-vs-dense fit speedup at n=8192: {median_speedup:.1f}x "
        f"(report: {OUTPUT_PATH})"
    )

    assert median_speedup >= TARGET_MEDIAN_SPEEDUP, (
        f"median operator fit speedup {median_speedup:.2f}x below the "
        f"{TARGET_MEDIAN_SPEEDUP}x target; see {OUTPUT_PATH} for per-cell data"
    )


def test_small_n_scaling_smoke():
    """Fast CI smoke: the operator fit path works end to end at small n.

    Dense-vs-operator answers agree to 1e-8, the operator fit's objective is
    sane, and a release comes back finite — seconds, not minutes, so CI can
    run it on every push (``-m perf -k small``).
    """
    implicit = prefix_workload(512)
    dense = implicit.dense()
    x = np.arange(512.0)
    assert np.allclose(implicit.answer(x), dense.answer(x), atol=ANSWER_ATOL)

    budget = dict(SOLVER_BUDGET, rank=16, max_outer=8)
    op_mech = LowRankMechanism(**budget).fit(implicit)
    dense_mech = LowRankMechanism(**budget).fit(dense)
    assert op_mech.decomposition.objective <= dense_mech.decomposition.objective * (
        1.0 + OBJECTIVE_RTOL
    )
    release = op_mech.answer(x, epsilon=1.0, rng=0)
    assert release.shape == (512,)
    assert np.all(np.isfinite(release))
