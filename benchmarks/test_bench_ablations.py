"""Ablation micro-benchmarks for the design choices DESIGN.md calls out.

These complement the figure regenerations with timing of the individual
moving parts: the ALM decomposition (with and without the Lemma-2
rescaling / restarts), the Nesterov inner solver, the fast Haar and tree
operators, and per-release answer latency of each mechanism.
"""

import numpy as np
import pytest

from repro.core.alm import decompose_workload
from repro.core.lrm import LowRankMechanism
from repro.core.nesterov import nesterov_projected_gradient, quadratic_l_subproblem
from repro.linalg.haar import haar_analysis, haar_synthesis
from repro.linalg.trees import tree_apply, tree_consistency
from repro.mechanisms.hierarchical import HierarchicalMechanism
from repro.mechanisms.wavelet import WaveletMechanism
from repro.mechanisms.baselines import NoiseOnDataMechanism
from repro.workloads import wrelated

_FAST = {"max_outer": 20, "max_inner": 4, "nesterov_iters": 25, "stall_iters": 6}


class TestDecompositionAblation:
    def test_decomposition_small(self, benchmark):
        w = wrelated(16, 64, s=3, seed=0).matrix
        dec = benchmark.pedantic(
            lambda: decompose_workload(w, **_FAST), rounds=1, iterations=1
        )
        assert dec.residual_norm <= 1e-6 * np.linalg.norm(w)

    def test_decomposition_medium(self, benchmark):
        w = wrelated(32, 128, s=6, seed=0).matrix
        dec = benchmark.pedantic(
            lambda: decompose_workload(w, **_FAST), rounds=1, iterations=1
        )
        assert dec.converged

    def test_restarts_overhead(self, benchmark):
        w = wrelated(12, 32, s=3, seed=0).matrix
        dec = benchmark.pedantic(
            lambda: decompose_workload(w, restarts=3, **_FAST), rounds=1, iterations=1
        )
        assert dec.sensitivity <= 1 + 1e-8

    def test_no_refine_leaves_residual(self, benchmark):
        # Ablation: without the refinement phase the residual stays at the
        # phase-1 working tolerance instead of numerical zero.
        w = wrelated(16, 64, s=3, seed=1).matrix
        dec = benchmark.pedantic(
            lambda: decompose_workload(w, refine=False, **_FAST), rounds=1, iterations=1
        )
        refined = decompose_workload(w, refine=True, **_FAST)
        assert refined.residual_norm <= dec.residual_norm + 1e-12


class TestNormAblation:
    def test_l1_vs_l2_decomposition(self, benchmark):
        # The L2 program is geometrically easier (radial projection, no
        # sorting) — this ablation records the cost difference and checks
        # both branches produce exact, boundary-tight decompositions.
        w = wrelated(24, 96, s=4, seed=0).matrix

        def solve_both():
            l1 = decompose_workload(w, norm="l1", **_FAST)
            l2 = decompose_workload(w, norm="l2", **_FAST)
            return l1, l2

        l1, l2 = benchmark.pedantic(solve_both, rounds=1, iterations=1)
        for dec in (l1, l2):
            assert dec.residual_norm <= 1e-6 * np.linalg.norm(w)
            assert abs(dec.sensitivity - 1.0) < 1e-6


class TestInnerSolverAblation:
    def test_nesterov_inner_solve(self, benchmark):
        rng = np.random.default_rng(0)
        b = rng.standard_normal((32, 8))
        w = rng.standard_normal((32, 128))
        objective, gradient = quadratic_l_subproblem(b, w, np.zeros_like(w), 10.0)
        lipschitz = 10.0 * float(np.linalg.eigvalsh(b.T @ b)[-1])

        def solve():
            return nesterov_projected_gradient(
                objective,
                gradient,
                np.zeros((8, 128)),
                max_iters=50,
                lipschitz_init=lipschitz,
            )

        result = benchmark(solve)
        assert np.all(np.abs(result.solution).sum(axis=0) <= 1 + 1e-8)


class TestKronAblation:
    def test_factored_vs_materialised_fit(self, benchmark):
        # Fitting the two factors is far cheaper than decomposing the
        # materialised product workload; both must agree on the composite
        # expected-error formula.
        from repro.core.kron import KronLowRankMechanism

        w1 = wrelated(8, 24, s=2, seed=0)
        w2 = wrelated(6, 16, s=2, seed=1)

        mech = benchmark.pedantic(
            lambda: KronLowRankMechanism(**_FAST).fit(w1, w2), rounds=1, iterations=1
        )
        dec1, dec2 = mech.factor_decompositions
        composite = 2 * dec1.scale * dec2.scale * (dec1.sensitivity * dec2.sensitivity) ** 2
        assert mech.expected_squared_error(1.0) == pytest.approx(composite)
        # Product reconstruction stays exact.
        import numpy as np

        dense = mech.as_workload()
        x = np.arange(mech.domain_size, dtype=float)
        assert np.allclose(mech.exact_answer(x), dense.answer(x))


class TestFastOperators:
    def test_haar_round_trip_large(self, benchmark):
        x = np.random.default_rng(0).standard_normal(8192)
        out = benchmark(lambda: haar_synthesis(haar_analysis(x)))
        assert np.allclose(out, x)

    def test_tree_consistency_large(self, benchmark):
        n = 4096
        noisy = np.random.default_rng(1).standard_normal(2 * n - 1)
        out = benchmark(lambda: tree_consistency(noisy))
        assert out.shape == (n,)

    def test_tree_apply_large(self, benchmark):
        x = np.random.default_rng(2).standard_normal(8192)
        out = benchmark(lambda: tree_apply(x))
        assert out.shape == (2 * 8192 - 1,)


class TestAnswerLatency:
    @pytest.fixture(scope="class")
    def setup(self):
        wl = wrelated(32, 256, s=5, seed=0)
        x = np.random.default_rng(0).integers(0, 1000, 256).astype(float)
        return wl, x

    def test_lm_answer(self, benchmark, setup):
        wl, x = setup
        mech = NoiseOnDataMechanism().fit(wl)
        out = benchmark(lambda: mech.answer(x, 0.1, rng=1))
        assert out.shape == (32,)

    def test_wm_answer(self, benchmark, setup):
        wl, x = setup
        mech = WaveletMechanism().fit(wl)
        out = benchmark(lambda: mech.answer(x, 0.1, rng=1))
        assert out.shape == (32,)

    def test_hm_answer(self, benchmark, setup):
        wl, x = setup
        mech = HierarchicalMechanism().fit(wl)
        out = benchmark(lambda: mech.answer(x, 0.1, rng=1))
        assert out.shape == (32,)

    def test_lrm_answer(self, benchmark, setup):
        wl, x = setup
        mech = LowRankMechanism(**_FAST).fit(wl)
        out = benchmark(lambda: mech.answer(x, 0.1, rng=1))
        assert out.shape == (32,)
