"""Figure 9: mechanisms vs workload rank s = ratio * min(m, n) (WRelated).

Paper shapes: LRM's advantage is largest at small s and decays rapidly as
s approaches min(m, n); the other mechanisms are insensitive to s.
"""

from benchmarks.conftest import print_result, run_figure, series_or_skip
from repro.experiments.figures import figure9_rank_s

_DATASETS = ("search_logs", "net_trace")


def test_figure9_rank_s(benchmark):
    result = run_figure(benchmark, figure9_rank_s, datasets=_DATASETS)
    print_result(result, group_keys=("dataset",))

    for dataset in _DATASETS:
        ratios, lrm = series_or_skip(result, "LRM", dataset=dataset)
        _, lm = series_or_skip(result, "LM", dataset=dataset)

        # LRM error grows steeply with the workload rank ...
        assert lrm[-1] > 3 * lrm[0], "LRM must degrade as rank grows"
        # ... while LM is comparatively flat (within ~40x across the sweep,
        # versus orders of magnitude for LRM in the paper's full grid).
        assert lm[-1] <= 40 * lm[0]

        # At the lowest rank LRM is the most accurate mechanism.
        first = ratios[0]
        errors_at_first = {
            row["mechanism"]: row["expected_average_error"]
            for row in result.rows
            if row.get("dataset") == dataset
            and row.get("s_ratio") == first
            and row.get("expected_average_error") is not None
        }
        assert errors_at_first["LRM"] == min(errors_at_first.values())
