"""Opt-in serving-tier load benchmark: the TCP service under concurrency.

A load generator (one :class:`~repro.serving.client.AsyncServiceClient`
connection, ``CONCURRENCY`` requests in flight) drives a live
:class:`~repro.serving.server.PlanService` through its real TCP front-end
for every ``workers x mode`` combination in :data:`GRID_AXES` —
``unbatched`` forces ``max_batch=1`` (every request is its own worker
round-trip and ledger transaction), ``coalesced`` lets the micro-batching
coalescer form ``execute_many`` batches. Per cell it records client-side
p50/p99 request latency and wall-clock releases/sec, emits
``benchmarks/BENCH_service.json`` (regressable via
``benchmarks/check_regression.py --time-field p99_latency_seconds``), and
asserts the acceptance criterion:

* **throughput** — 4-worker coalesced serving sustains >=
  :data:`TARGET_COALESCED_SPEEDUP` x the releases/sec of the 1-worker
  unbatched control.

All requests are one tenant on one plan — the worst case for the durable
ledger (every spend contends on one flock-serialized file) and therefore
the case micro-batching is for: the coalesced path pays one ledger
transaction, one noise draw and one pipe round-trip per *batch*. On a
single-CPU host the speedup is pure batching; on multi-core hosts worker
parallelism adds on top.

Latencies are pooled across ``REPRO_BENCH_REPS`` (default 3) runs after
one untimed warm-up per service; releases/sec reports the best rep. The
committed seed baseline (``benchmarks/baselines/BENCH_service_seed.json``)
snapshots this file's first run; baselines are machine-specific —
regenerate on new hardware per the file's embedded description.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_service_perf.py -m perf -s
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine.plan import build_plan
from repro.io.serialization import save_plan
from repro.serving import AsyncServiceClient, PlanService, ServiceConfig
from repro.workloads import wrelated

pytestmark = pytest.mark.perf

_HERE = Path(__file__).resolve().parent
SEED_BASELINE_PATH = _HERE / "baselines" / "BENCH_service_seed.json"
OUTPUT_PATH = _HERE / "BENCH_service.json"

#: Acceptance floor: 4-worker coalesced vs 1-worker unbatched releases/sec.
TARGET_COALESCED_SPEEDUP = 3.0

#: The served plan (one cell shape; the grid varies the service, not the
#: workload): WRelated 32x256, rank 4, answered by the Laplace mechanism so
#: per-release worker compute is small and the serving overheads dominate —
#: the regime the tier exists to optimize.
WORKLOAD = {"workload": "wrelated", "m": 32, "n": 256, "s": 4, "mechanism": "LM",
            "epsilon": 0.05}

#: Service shapes: every worker count is measured unbatched and coalesced.
WORKER_COUNTS = (1, 4, 16)
MODES = ("unbatched", "coalesced")

#: Requests per timed rep and client-side in-flight cap.
REQUESTS = 192
CONCURRENCY = 64

#: Coalescer shape for the ``coalesced`` cells.
MAX_BATCH = 32
MAX_WAIT = 0.004

#: Budget large enough that no cell exhausts it.
TOTAL_BUDGET = 1e9


def _stage(tmp_dir):
    plans = Path(tmp_dir) / "plans"
    plans.mkdir()
    workload = wrelated(
        WORKLOAD["m"], WORKLOAD["n"], s=WORKLOAD["s"], seed=2012
    )
    plan = build_plan(
        workload, epsilon_hint=WORKLOAD["epsilon"], mechanism=WORKLOAD["mechanism"]
    )
    save_plan(plan, plans / "bench.plan.npz")
    return plans, np.arange(float(WORKLOAD["n"]))


#: Client-side handling of LedgerBusyError backpressure: an overloaded
#: unbatched cell (many workers, one tenant ledger, one CPU) sheds load
#: rather than queueing unboundedly; a real client retries with backoff.
#: Retries are counted per cell and the retry waits stay inside the
#: request's measured latency — overload shows up as tail latency, which
#: is exactly what the p99 column is for.
BUSY_RETRIES = 10
BUSY_BACKOFF = 0.05


async def _drive(client, requests, concurrency, busy_count=None):
    """Fire ``requests`` executes with at most ``concurrency`` in flight;
    returns per-request latencies (seconds) in completion order."""
    from repro.serving import ServiceError

    semaphore = asyncio.Semaphore(concurrency)
    latencies = []

    async def one():
        async with semaphore:
            start = time.perf_counter()
            for attempt in range(BUSY_RETRIES + 1):
                try:
                    await client.execute("bench", "bench", WORKLOAD["epsilon"])
                    break
                except ServiceError as exc:
                    if exc.kind != "LedgerBusyError" or attempt == BUSY_RETRIES:
                        raise
                    if busy_count is not None:
                        busy_count[0] += 1
                    await asyncio.sleep(BUSY_BACKOFF * (attempt + 1))
            latencies.append(time.perf_counter() - start)

    await asyncio.gather(*[one() for _ in range(requests)])
    return latencies


async def _run_service(tmp_dir, plans, data, workers, mode, reps):
    config = ServiceConfig(
        plans_dir=plans,
        ledger_root=Path(tmp_dir) / f"ledgers-{workers}-{mode}",
        data=data,
        total_epsilon=TOTAL_BUDGET,
        workers=workers,
        seed=7,
        max_batch=1 if mode == "unbatched" else MAX_BATCH,
        max_wait=MAX_WAIT,
    )
    service = PlanService(config)
    host, port = await service.start()
    client = await AsyncServiceClient.connect(host, port)
    try:
        await _drive(client, min(REQUESTS, 32), CONCURRENCY)  # warm-up, untimed
        latencies = []
        walls = []
        busy_count = [0]
        for _ in range(reps):
            start = time.perf_counter()
            latencies.extend(
                await _drive(client, REQUESTS, CONCURRENCY, busy_count=busy_count)
            )
            walls.append(time.perf_counter() - start)
        batches = service.coalescer.batches_flushed
        coalesced = service.coalescer.requests_coalesced
    finally:
        await client.close()
        await service.shutdown()
    latencies = np.asarray(latencies)
    best_wall = min(walls)
    return {
        **WORKLOAD,
        "workers": workers,
        "mode": mode,
        "requests": REQUESTS,
        "concurrency": CONCURRENCY,
        "max_batch": config.max_batch,
        "p50_latency_seconds": float(np.percentile(latencies, 50)),
        "p99_latency_seconds": float(np.percentile(latencies, 99)),
        "releases_per_second": REQUESTS / best_wall,
        "wall_seconds_all": walls,
        "busy_retries": busy_count[0],
        "mean_batch_size": (coalesced / batches) if batches else 1.0,
    }


def test_service_throughput_and_latency(tmp_path):
    reps = int(os.environ.get("REPRO_BENCH_REPS", "3"))
    plans, data = _stage(tmp_path)

    cells = []
    for workers in WORKER_COUNTS:
        for mode in MODES:
            cell = asyncio.run(
                _run_service(tmp_path, plans, data, workers, mode, reps)
            )
            cells.append(cell)

    def rps(workers, mode):
        return next(
            c["releases_per_second"]
            for c in cells
            if c["workers"] == workers and c["mode"] == mode
        )

    speedup = rps(4, "coalesced") / rps(1, "unbatched")
    report = {
        "label": os.environ.get("REPRO_BENCH_LABEL", "current"),
        "description": "TCP service load benchmark: one tenant, one LM plan, "
        f"{REQUESTS} requests/rep at concurrency {CONCURRENCY}; p50/p99 are "
        "client-side request latencies, releases_per_second the best rep.",
        "requests": REQUESTS,
        "concurrency": CONCURRENCY,
        "reps": reps,
        "cells": cells,
        "speedup_4coalesced_vs_1unbatched": speedup,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2))

    print()
    header = (
        f"{'workers':>7} {'mode':<10} {'rps':>9} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'batch':>6} {'busy':>5}"
    )
    print(header)
    for cell in cells:
        print(
            f"{cell['workers']:>7} {cell['mode']:<10} "
            f"{cell['releases_per_second']:>9,.0f} "
            f"{cell['p50_latency_seconds'] * 1e3:>8.2f} "
            f"{cell['p99_latency_seconds'] * 1e3:>8.2f} "
            f"{cell['mean_batch_size']:>6.1f} {cell['busy_retries']:>5}"
        )
    print(
        f"4-worker coalesced vs 1-worker unbatched: {speedup:.2f}x "
        f"(target {TARGET_COALESCED_SPEEDUP}x; report: {OUTPUT_PATH})"
    )

    assert speedup >= TARGET_COALESCED_SPEEDUP, (
        f"coalesced 4-worker throughput only {speedup:.2f}x the 1-worker "
        f"unbatched control (target {TARGET_COALESCED_SPEEDUP}x); see "
        f"{OUTPUT_PATH} for per-cell data"
    )
