"""Opt-in serving-tier load benchmark: the TCP service under concurrency.

A load generator (one :class:`~repro.serving.client.AsyncServiceClient`
connection, ``CONCURRENCY`` requests in flight) drives a live
:class:`~repro.serving.server.PlanService` through its real TCP front-end
for every ``workers x mode`` combination in :data:`GRID_AXES` —
``unbatched`` forces ``max_batch=1`` (every request is its own worker
round-trip and ledger transaction), ``coalesced`` lets the micro-batching
coalescer form ``execute_many`` batches. Per cell it records client-side
p50/p99 request latency and wall-clock releases/sec, emits
``benchmarks/BENCH_service.json`` (regressable via
``benchmarks/check_regression.py --time-field p99_latency_seconds``), and
asserts the acceptance criterion:

* **throughput** — 4-worker coalesced serving sustains >=
  :data:`TARGET_COALESCED_SPEEDUP` x the releases/sec of the 1-worker
  unbatched control.
* **availability under faults** — an extra ``faults`` cell re-runs the
  4-worker coalesced shape while a chaos task SIGKILLs a random worker
  every :data:`KILL_INTERVAL` seconds; the supervised pool must keep
  logical availability (success after bounded retries, deliberately shed
  requests excluded) at or above :data:`TARGET_AVAILABILITY`.

Every cell records ``availability`` and ``shed_rate`` so
``check_regression.py --availability-field availability`` can hold an
absolute floor across reports.

All requests are one tenant on one plan — the worst case for the durable
ledger (every spend contends on one flock-serialized file) and therefore
the case micro-batching is for: the coalesced path pays one ledger
transaction, one noise draw and one pipe round-trip per *batch*. On a
single-CPU host the speedup is pure batching; on multi-core hosts worker
parallelism adds on top.

Latencies are pooled across ``REPRO_BENCH_REPS`` (default 3) runs after
one untimed warm-up per service; releases/sec reports the best rep. The
committed seed baseline (``benchmarks/baselines/BENCH_service_seed.json``)
snapshots this file's first run; baselines are machine-specific —
regenerate on new hardware per the file's embedded description.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_service_perf.py -m perf -s
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine.plan import build_plan
from repro.io.serialization import save_plan
from repro.serving import AsyncServiceClient, PlanService, ServiceConfig
from repro.workloads import wrelated

pytestmark = pytest.mark.perf

_HERE = Path(__file__).resolve().parent
SEED_BASELINE_PATH = _HERE / "baselines" / "BENCH_service_seed.json"
OUTPUT_PATH = _HERE / "BENCH_service.json"

#: Acceptance floor: 4-worker coalesced vs 1-worker unbatched releases/sec.
TARGET_COALESCED_SPEEDUP = 3.0

#: The served plan (one cell shape; the grid varies the service, not the
#: workload): WRelated 32x256, rank 4, answered by the Laplace mechanism so
#: per-release worker compute is small and the serving overheads dominate —
#: the regime the tier exists to optimize.
WORKLOAD = {"workload": "wrelated", "m": 32, "n": 256, "s": 4, "mechanism": "LM",
            "epsilon": 0.05}

#: Service shapes: every worker count is measured unbatched and coalesced.
WORKER_COUNTS = (1, 4, 16)
MODES = ("unbatched", "coalesced")

#: Requests per timed rep and client-side in-flight cap.
REQUESTS = 192
CONCURRENCY = 64

#: Coalescer shape for the ``coalesced`` cells.
MAX_BATCH = 32
MAX_WAIT = 0.004

#: Budget large enough that no cell exhausts it.
TOTAL_BUDGET = 1e9

#: Chaos shape for the ``faults`` cell: one random worker SIGKILLed every
#: KILL_INTERVAL seconds while the load generator runs; the cell must keep
#: logical availability at or above TARGET_AVAILABILITY.
KILL_INTERVAL = 0.4
TARGET_AVAILABILITY = 0.99

#: Structured refusals that never charge the ledger: retried freely and
#: excluded from the availability denominator (deliberate load shedding).
_SHED_KINDS = frozenset({"LedgerBusyError", "overloaded", "deadline_exceeded"})
#: Failures a resilient client retries in the faults cell: the worker died
#: or hung under it (the supervisor respawns; the retry lands elsewhere).
_FAULT_KINDS = frozenset(
    {"WorkerCrashError", "WorkerTimeoutError", "InternalError"}
)


def _stage(tmp_dir):
    plans = Path(tmp_dir) / "plans"
    plans.mkdir()
    workload = wrelated(
        WORKLOAD["m"], WORKLOAD["n"], s=WORKLOAD["s"], seed=2012
    )
    plan = build_plan(
        workload, epsilon_hint=WORKLOAD["epsilon"], mechanism=WORKLOAD["mechanism"]
    )
    save_plan(plan, plans / "bench.plan.npz")
    return plans, np.arange(float(WORKLOAD["n"]))


#: Client-side handling of LedgerBusyError backpressure: an overloaded
#: unbatched cell (many workers, one tenant ledger, one CPU) sheds load
#: rather than queueing unboundedly; a real client retries with backoff.
#: Retries are counted per cell and the retry waits stay inside the
#: request's measured latency — overload shows up as tail latency, which
#: is exactly what the p99 column is for.
BUSY_RETRIES = 10
BUSY_BACKOFF = 0.05


async def _drive(client, requests, concurrency, stats=None, retry_faults=False):
    """Fire ``requests`` executes with at most ``concurrency`` in flight;
    returns per-request latencies (seconds) in completion order. ``stats``
    accumulates attempt/shed/fault counters; with ``retry_faults`` the
    driver also retries crash-shaped failures (the faults cell)."""
    from repro.serving import ServiceError

    semaphore = asyncio.Semaphore(concurrency)
    latencies = []
    if stats is None:
        stats = {}
    for field in ("attempts", "served", "shed", "faulted",
                  "failed_hard", "failed_shed_only"):
        stats.setdefault(field, 0)

    async def one():
        async with semaphore:
            start = time.perf_counter()
            served = False
            saw_fault = False
            for attempt in range(BUSY_RETRIES + 1):
                stats["attempts"] += 1
                try:
                    await client.execute("bench", "bench", WORKLOAD["epsilon"])
                    served = True
                    break
                except ServiceError as exc:
                    if exc.kind in _SHED_KINDS:
                        stats["shed"] += 1
                    elif retry_faults and exc.kind in _FAULT_KINDS:
                        stats["faulted"] += 1
                        saw_fault = True
                    else:
                        raise
                    if attempt == BUSY_RETRIES:
                        break
                    await asyncio.sleep(BUSY_BACKOFF * (attempt + 1))
            if served:
                stats["served"] += 1
                latencies.append(time.perf_counter() - start)
            elif saw_fault:
                stats["failed_hard"] += 1
            else:
                stats["failed_shed_only"] += 1

    await asyncio.gather(*[one() for _ in range(requests)])
    return latencies


async def _kill_loop(service, stopping, kills):
    """The faults cell's chaos task: SIGKILL a random live worker every
    KILL_INTERVAL seconds until told to stop."""
    import os
    import random
    import signal

    rng = random.Random(1307)
    while not stopping.is_set():
        await asyncio.sleep(KILL_INTERVAL)
        pids = service.pool.pids()
        if pids:
            os.kill(rng.choice(pids), signal.SIGKILL)
            kills[0] += 1


async def _run_service(tmp_dir, plans, data, workers, mode, reps):
    faults = mode == "faults"
    supervision = (
        # Tight supervision so respawns land within the measured window.
        dict(heartbeat_interval=0.2, heartbeat_timeout=0.6,
             restart_budget=10_000, backoff_base=0.02, healthy_after=5.0)
        if faults else {}
    )
    config = ServiceConfig(
        plans_dir=plans,
        ledger_root=Path(tmp_dir) / f"ledgers-{workers}-{mode}",
        data=data,
        total_epsilon=TOTAL_BUDGET,
        workers=workers,
        seed=7,
        max_batch=1 if mode == "unbatched" else MAX_BATCH,
        max_wait=MAX_WAIT,
        **supervision,
    )
    service = PlanService(config)
    host, port = await service.start()
    client = await AsyncServiceClient.connect(host, port)
    kills = [0]
    try:
        await _drive(client, min(REQUESTS, 32), CONCURRENCY)  # warm-up, untimed
        latencies = []
        walls = []
        stats = {}
        stopping = asyncio.Event()
        killer = (
            asyncio.ensure_future(_kill_loop(service, stopping, kills))
            if faults else None
        )
        try:
            for _ in range(reps):
                start = time.perf_counter()
                latencies.extend(
                    await _drive(client, REQUESTS, CONCURRENCY, stats=stats,
                                 retry_faults=faults)
                )
                walls.append(time.perf_counter() - start)
        finally:
            stopping.set()
            if killer is not None:
                await killer
        batches = service.coalescer.batches_flushed
        coalesced = service.coalescer.requests_coalesced
    finally:
        await client.close()
        await service.shutdown()
    latencies = np.asarray(latencies)
    best_wall = min(walls)
    decided = stats["served"] + stats["failed_hard"]
    return {
        **WORKLOAD,
        "workers": workers,
        "mode": mode,
        "requests": REQUESTS,
        "concurrency": CONCURRENCY,
        "max_batch": config.max_batch,
        "p50_latency_seconds": float(np.percentile(latencies, 50)),
        "p99_latency_seconds": float(np.percentile(latencies, 99)),
        "releases_per_second": (stats["served"] / reps) / best_wall,
        "wall_seconds_all": walls,
        "busy_retries": stats["shed"],
        "mean_batch_size": (coalesced / batches) if batches else 1.0,
        "availability": stats["served"] / decided if decided else 1.0,
        "shed_rate": stats["shed"] / max(1, stats["attempts"]),
        "worker_kills": kills[0],
    }


def test_service_throughput_and_latency(tmp_path):
    reps = int(os.environ.get("REPRO_BENCH_REPS", "3"))
    plans, data = _stage(tmp_path)

    cells = []
    for workers in WORKER_COUNTS:
        for mode in MODES:
            cell = asyncio.run(
                _run_service(tmp_path, plans, data, workers, mode, reps)
            )
            cells.append(cell)
    # Availability under faults: the 4-worker coalesced shape with a chaos
    # task killing a random worker every KILL_INTERVAL seconds.
    faults_cell = asyncio.run(
        _run_service(tmp_path, plans, data, 4, "faults", reps)
    )
    cells.append(faults_cell)

    def rps(workers, mode):
        return next(
            c["releases_per_second"]
            for c in cells
            if c["workers"] == workers and c["mode"] == mode
        )

    speedup = rps(4, "coalesced") / rps(1, "unbatched")
    report = {
        "label": os.environ.get("REPRO_BENCH_LABEL", "current"),
        "description": "TCP service load benchmark: one tenant, one LM plan, "
        f"{REQUESTS} requests/rep at concurrency {CONCURRENCY}; p50/p99 are "
        "client-side request latencies, releases_per_second the best rep.",
        "requests": REQUESTS,
        "concurrency": CONCURRENCY,
        "reps": reps,
        "cells": cells,
        "speedup_4coalesced_vs_1unbatched": speedup,
        "availability_under_faults": faults_cell["availability"],
        "worker_kills_under_faults": faults_cell["worker_kills"],
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2))

    print()
    header = (
        f"{'workers':>7} {'mode':<10} {'rps':>9} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'batch':>6} {'busy':>5} {'avail':>7} {'shed':>6}"
    )
    print(header)
    for cell in cells:
        print(
            f"{cell['workers']:>7} {cell['mode']:<10} "
            f"{cell['releases_per_second']:>9,.0f} "
            f"{cell['p50_latency_seconds'] * 1e3:>8.2f} "
            f"{cell['p99_latency_seconds'] * 1e3:>8.2f} "
            f"{cell['mean_batch_size']:>6.1f} {cell['busy_retries']:>5} "
            f"{cell['availability']:>7.4f} {cell['shed_rate']:>6.2%}"
        )
    print(
        f"4-worker coalesced vs 1-worker unbatched: {speedup:.2f}x "
        f"(target {TARGET_COALESCED_SPEEDUP}x; report: {OUTPUT_PATH})"
    )
    print(
        f"availability under faults ({faults_cell['worker_kills']} worker "
        f"kills): {faults_cell['availability']:.4f} "
        f"(floor {TARGET_AVAILABILITY})"
    )

    assert speedup >= TARGET_COALESCED_SPEEDUP, (
        f"coalesced 4-worker throughput only {speedup:.2f}x the 1-worker "
        f"unbatched control (target {TARGET_COALESCED_SPEEDUP}x); see "
        f"{OUTPUT_PATH} for per-cell data"
    )
    assert faults_cell["availability"] >= TARGET_AVAILABILITY, (
        f"availability under worker kills fell to "
        f"{faults_cell['availability']:.4f} (floor {TARGET_AVAILABILITY}); "
        f"see {OUTPUT_PATH} for the faults cell"
    )
