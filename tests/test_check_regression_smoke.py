"""Tier-1 smoke for the committed subsampled-capacity baseline.

The subsampled-Gaussian benchmark counts are exact float arithmetic, so
unlike the hardware-bound perf baselines they can be verified on every
run: the committed baseline must match what the current amplified RDP
arithmetic predicts, and ``check_regression.py`` must accept the baseline
against itself and reject a doctored regression.
"""

import importlib.util
import json
import os

import pytest

from repro.privacy.rdp import releases_per_budget

_BENCHMARKS = os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")
BASELINE = os.path.abspath(
    os.path.join(_BENCHMARKS, "baselines", "BENCH_accounting_subsampled_pr10.json")
)


def _load_check_regression():
    spec = importlib.util.spec_from_file_location(
        "check_regression", os.path.join(_BENCHMARKS, "check_regression.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_baseline_counts_match_amplified_arithmetic():
    cells = json.loads(open(BASELINE).read())["cells"]
    assert cells, "committed subsampled baseline is empty"
    for cell in cells:
        _, budget_tag = cell["workload"].rsplit("-E", 1)
        budget_epsilon, budget_delta = budget_tag.split("-D")
        predicted = releases_per_budget(
            cell["epsilon"], _base_delta(cell),
            float(budget_epsilon), float(budget_delta),
            model="rdp", sample_rate=cell["sample_rate"],
        )
        assert abs(cell["releases"] - predicted) <= 1, (cell, predicted)
        assert cell["releases"] > cell["unsampled_releases"]


def _base_delta(cell):
    # The committed grid pins per-release deltas by budget shape.
    return 1e-7 if cell["epsilon"] == 0.5 else 1e-8


def test_check_regression_accepts_baseline_against_itself(tmp_path):
    check = _load_check_regression()
    code, lines = check.compare(
        BASELINE, BASELINE, threshold=0.2, time_field="epsilon_per_release"
    )
    assert code == 0
    assert lines[-1] == "ok: within the regression budget"


def test_check_regression_rejects_doctored_capacity(tmp_path):
    check = _load_check_regression()
    report = json.loads(open(BASELINE).read())
    for cell in report["cells"]:
        cell["releases"] = max(1, cell["releases"] // 2)
        cell["epsilon_per_release"] *= 2.0  # half the capacity: a regression
    doctored = tmp_path / "doctored.json"
    doctored.write_text(json.dumps(report))
    code, lines = check.compare(
        BASELINE, str(doctored), threshold=0.2, time_field="epsilon_per_release"
    )
    assert code == 1
    assert any("REGRESSION" in line for line in lines)


def test_check_regression_reports_missing_overlap(tmp_path):
    check = _load_check_regression()
    empty = tmp_path / "empty.json"
    empty.write_text(json.dumps({"description": "", "cells": []}))
    code, lines = check.compare(
        BASELINE, str(empty), threshold=0.2, time_field="epsilon_per_release"
    )
    assert code == 2
    assert lines == ["no matching cells between the two reports"]
