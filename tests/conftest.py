"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import wdiscrete, wrange, wrelated


@pytest.fixture
def rng():
    """A fresh, deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_related():
    """A small, strongly low-rank WRelated workload (16 x 64, rank 3)."""
    return wrelated(m=16, n=64, s=3, seed=7)


@pytest.fixture
def small_range():
    """A small WRange workload (16 x 32)."""
    return wrange(m=16, n=32, seed=7)


@pytest.fixture
def small_discrete():
    """A small WDiscrete workload (12 x 24)."""
    return wdiscrete(m=12, n=24, seed=7)


@pytest.fixture
def fast_lrm_kwargs():
    """LowRankMechanism budgets small enough for unit tests."""
    return {"max_outer": 25, "max_inner": 4, "nesterov_iters": 25, "stall_iters": 6}
