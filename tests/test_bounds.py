"""Unit tests for the Section-4 error bounds."""

import numpy as np
import pytest

from repro.core.bounds import (
    approximation_ratio,
    bound_summary,
    hardt_talwar_lower_bound,
    lrm_error_upper_bound,
    relaxed_error_bound,
)
from repro.exceptions import ValidationError
from repro.workloads import wrelated


class TestUpperBound:
    def test_formula(self):
        # r = 2, sum lambda^2 = 5, eps = 1 -> 10
        assert lrm_error_upper_bound([2.0, 1.0], 1.0) == pytest.approx(10.0)

    def test_epsilon_scaling(self):
        assert lrm_error_upper_bound([1.0], 0.1) == pytest.approx(100 * lrm_error_upper_bound([1.0], 1.0))

    def test_ignores_zero_eigenvalues(self):
        assert lrm_error_upper_bound([2.0, 0.0], 1.0) == pytest.approx(4.0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            lrm_error_upper_bound([-1.0], 1.0)

    def test_rejects_all_zero(self):
        with pytest.raises(ValidationError):
            lrm_error_upper_bound([0.0, 0.0], 1.0)


class TestLowerBound:
    def test_formula_rank_one(self):
        # r=1: ((2/1) * lambda)^2 * 1 = 4 lambda^2
        assert hardt_talwar_lower_bound([3.0], 1.0) == pytest.approx(36.0)

    def test_formula_rank_two(self):
        # r=2: ((4/2) * l1 l2)^{1} * 8 = 16 l1 l2
        assert hardt_talwar_lower_bound([2.0, 1.0], 1.0) == pytest.approx(2 * 2 * 1 * 8)

    def test_no_overflow_at_large_rank(self):
        values = np.full(500, 2.0)
        assert np.isfinite(hardt_talwar_lower_bound(values, 1.0))

    def test_epsilon_scaling(self):
        assert hardt_talwar_lower_bound([1.0, 2.0], 0.5) == pytest.approx(
            4 * hardt_talwar_lower_bound([1.0, 2.0], 1.0)
        )

    def test_monotone_in_eigenvalues(self):
        small = hardt_talwar_lower_bound([1.0, 1.0], 1.0)
        large = hardt_talwar_lower_bound([2.0, 2.0], 1.0)
        assert large > small


class TestApproximationRatio:
    def test_uniform_spectrum(self):
        # C = 1 -> ratio = r / 16
        assert approximation_ratio(np.ones(8)) == pytest.approx(8 / 16)

    def test_grows_with_conditioning(self):
        flat = approximation_ratio([1.0] * 6)
        skewed = approximation_ratio([10.0] + [1.0] * 5)
        assert skewed > flat

    def test_exact_mode_requires_rank(self):
        with pytest.raises(ValidationError):
            approximation_ratio(np.ones(3), exact=True)

    def test_exact_mode_large_rank_ok(self):
        assert approximation_ratio(np.ones(6), exact=True) > 0


class TestRelaxedBound:
    def test_formula(self):
        b = np.ones((2, 2))  # tr = 4
        x = np.array([1.0, 2.0])  # sum sq = 5
        assert relaxed_error_bound(b, 0.5, x, 1.0) == pytest.approx(2 * 4 + 0.5 * 5)

    def test_noise_term_epsilon_scaling(self):
        b = np.eye(2)
        x = np.zeros(3) + 1e-300  # negligible structural term
        assert relaxed_error_bound(b, 1e-12, x, 0.1) == pytest.approx(
            2 * 2 / 0.01, rel=1e-6
        )


class TestBoundSummary:
    def test_upper_at_least_lower_for_real_workload(self):
        wl = wrelated(12, 24, s=3, seed=0)
        summary = bound_summary(wl, 1.0)
        assert summary["upper_bound"] > 0
        assert summary["lower_bound"] > 0
        assert summary["bound_gap"] == pytest.approx(
            summary["upper_bound"] / summary["lower_bound"]
        )

    def test_accepts_raw_matrix(self):
        summary = bound_summary(np.eye(4), 1.0)
        assert set(summary) == {"upper_bound", "lower_bound", "bound_gap", "approximation_ratio"}

    def test_uniform_spectrum_gap_modest(self):
        # Theorem 2: with C = 1 the gap is O(r); identity workload has C = 1.
        summary = bound_summary(np.eye(16), 1.0)
        assert summary["bound_gap"] <= 16
