"""Unit tests for the Matrix Mechanism (MM, Appendix B)."""

import numpy as np
import pytest

from repro.mechanisms.matrix_mechanism import (
    MatrixMechanism,
    smoothed_max,
    smoothed_max_gradient,
)
from repro.workloads import Workload, wrange, wrelated


class TestSmoothedMax:
    def test_upper_bounds_max(self):
        v = np.array([1.0, 3.0, 2.0])
        assert smoothed_max(v, 0.1) >= 3.0

    def test_uniform_approximation_bound(self):
        # max(v) <= f_mu(v) <= max(v) + mu log n (Appendix B).
        v = np.array([1.0, 3.0, 2.0, 0.5])
        mu = 0.05
        assert smoothed_max(v, mu) <= 3.0 + mu * np.log(4) + 1e-12

    def test_tightens_as_mu_shrinks(self):
        v = np.array([1.0, 2.0])
        assert abs(smoothed_max(v, 0.01) - 2.0) < abs(smoothed_max(v, 1.0) - 2.0)

    def test_stable_for_large_values(self):
        v = np.array([1e8, 1e8 - 1])
        assert np.isfinite(smoothed_max(v, 0.1))

    def test_gradient_is_softmax(self):
        v = np.array([1.0, 2.0, 3.0])
        grad = smoothed_max_gradient(v, 0.5)
        assert grad.sum() == pytest.approx(1.0)
        assert np.all(grad > 0)
        assert np.argmax(grad) == 2

    def test_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(0)
        v = rng.standard_normal(5)
        mu = 0.3
        grad = smoothed_max_gradient(v, mu)
        for i in range(5):
            delta = np.zeros(5)
            delta[i] = 1e-6
            numeric = (smoothed_max(v + delta, mu) - smoothed_max(v - delta, mu)) / 2e-6
            assert grad[i] == pytest.approx(numeric, rel=1e-4, abs=1e-8)


class TestMatrixMechanism:
    def test_fit_and_answer_shape(self):
        w = wrange(6, 16, seed=0)
        mech = MatrixMechanism(max_iters=15).fit(w)
        assert mech.answer(np.ones(16), 1.0, rng=0).shape == (6,)

    def test_strategy_is_full_rank_square(self):
        w = wrange(4, 8, seed=1)
        mech = MatrixMechanism(max_iters=10).fit(w)
        assert mech.strategy_matrix.shape == (8, 8)
        assert np.linalg.matrix_rank(mech.strategy_matrix) == 8

    def test_strategy_symmetric_psd(self):
        w = wrange(4, 8, seed=1)
        mech = MatrixMechanism(max_iters=10).fit(w)
        a = mech.strategy_matrix
        assert np.allclose(a, a.T, atol=1e-8)
        assert np.all(np.linalg.eigvalsh(a) > -1e-9)

    def test_objective_decreases(self):
        w = wrelated(8, 12, s=3, seed=2)
        mech = MatrixMechanism(max_iters=25).fit(w)
        history = mech.objective_history
        assert history[-1] <= history[0] + 1e-9

    def test_unbiased(self):
        w = wrange(4, 8, seed=3)
        mech = MatrixMechanism(max_iters=10).fit(w)
        x = np.arange(8.0) * 7
        rng = np.random.default_rng(0)
        mean_answer = np.mean([mech.answer(x, 1.0, rng) for _ in range(4000)], axis=0)
        assert np.allclose(mean_answer, w.answer(x), atol=np.abs(w.answer(x)).max() * 0.1 + 5)

    def test_empirical_matches_analytic(self):
        w = wrange(6, 16, seed=4)
        mech = MatrixMechanism(max_iters=10).fit(w)
        x = np.ones(16) * 10
        empirical = mech.empirical_squared_error(x, 1.0, trials=2000, rng=5)
        assert empirical == pytest.approx(mech.expected_squared_error(1.0), rel=0.15)

    def test_identity_workload_near_identity_strategy(self):
        # For W = I the optimal M is (a multiple of) the identity.
        w = Workload(np.eye(6))
        mech = MatrixMechanism(max_iters=40).fit(w)
        lm_error = 2 * 6  # identity strategy, sensitivity 1, eps 1
        assert mech.expected_squared_error(1.0) <= lm_error * 1.5

    def test_sensitivity_uses_l1_norm(self):
        w = wrange(4, 8, seed=6)
        mech = MatrixMechanism(max_iters=10).fit(w)
        expected = np.abs(mech.strategy_matrix).sum(axis=0).max()
        assert mech.strategy_sensitivity == pytest.approx(expected)
