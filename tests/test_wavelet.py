"""Unit tests for the Wavelet Mechanism (WM)."""

import numpy as np
import pytest

from repro.mechanisms.wavelet import WaveletMechanism
from repro.mechanisms.baselines import NoiseOnDataMechanism
from repro.workloads import Workload, wrange


class TestWaveletMechanism:
    def test_answer_shape(self):
        w = wrange(6, 16, seed=0)
        mech = WaveletMechanism().fit(w)
        assert mech.answer(np.ones(16), 1.0, rng=0).shape == (6,)

    def test_sensitivity_value(self):
        mech = WaveletMechanism().fit(wrange(4, 16, seed=0))
        assert mech.strategy_sensitivity == 1 + 4  # 1 + log2(16)

    def test_padding_to_power_of_two(self):
        w = wrange(4, 12, seed=0)  # pads to 16
        mech = WaveletMechanism().fit(w)
        assert mech.strategy_sensitivity == 5.0
        assert mech.answer(np.ones(12), 1.0, rng=0).shape == (4,)

    def test_unbiased(self):
        w = wrange(4, 8, seed=1)
        mech = WaveletMechanism().fit(w)
        x = np.arange(8.0) * 10
        rng = np.random.default_rng(0)
        mean_answer = np.mean([mech.answer(x, 1.0, rng) for _ in range(4000)], axis=0)
        assert np.allclose(mean_answer, w.answer(x), atol=3.0)

    def test_empirical_matches_analytic(self):
        w = wrange(8, 32, seed=2)
        mech = WaveletMechanism().fit(w)
        x = np.ones(32) * 100
        empirical = mech.empirical_squared_error(x, 1.0, trials=2000, rng=3)
        assert empirical == pytest.approx(mech.expected_squared_error(1.0), rel=0.15)

    def test_analytic_error_against_dense_algebra(self):
        from repro.linalg.haar import haar_matrix, haar_sensitivity

        w = wrange(5, 16, seed=4)
        mech = WaveletMechanism().fit(w)
        dense = haar_matrix(16, sparse=False)
        recombination = w.matrix @ np.linalg.inv(dense)
        delta = haar_sensitivity(16)
        expected = 2 * delta**2 * np.sum(recombination**2)
        assert mech.expected_squared_error(1.0) == pytest.approx(expected, rel=1e-9)

    def test_beats_lm_on_large_range_workload(self):
        # The Privelet selling point: polylog error for ranges on large domains.
        w = wrange(32, 512, seed=5)
        wm = WaveletMechanism().fit(w)
        lm = NoiseOnDataMechanism().fit(w)
        assert wm.expected_squared_error(1.0) < lm.expected_squared_error(1.0)

    def test_total_query_error_small(self):
        # The total-sum query is a single wavelet coefficient.
        w = Workload(np.ones((1, 64)))
        mech = WaveletMechanism().fit(w)
        delta = mech.strategy_sensitivity
        # W A^{-1} = e_0 (root coefficient row), norm 1.
        assert mech.expected_squared_error(1.0) == pytest.approx(2 * delta**2)

    def test_error_cached_across_epsilon(self):
        w = wrange(4, 16, seed=6)
        mech = WaveletMechanism().fit(w)
        e1 = mech.expected_squared_error(1.0)
        e2 = mech.expected_squared_error(0.5)
        assert e2 == pytest.approx(4 * e1)
