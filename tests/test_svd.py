"""Unit tests for repro.linalg.svd."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.linalg.svd import (
    effective_rank,
    eigenvalue_ratio,
    frobenius_norm,
    low_rank_approximation,
    matrix_rank,
    singular_values,
    svd_decomposition,
)


def _rank_k_matrix(m, n, k, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, k)) @ rng.standard_normal((k, n))


class TestSingularValues:
    def test_sorted_descending(self):
        values = singular_values(_rank_k_matrix(6, 8, 4))
        assert np.all(np.diff(values) <= 1e-12)

    def test_identity(self):
        assert np.allclose(singular_values(np.eye(3)), [1.0, 1.0, 1.0])

    def test_known_diagonal(self):
        matrix = np.diag([3.0, 1.0, 2.0])
        assert np.allclose(singular_values(matrix), [3.0, 2.0, 1.0])


class TestMatrixRank:
    def test_full_rank(self):
        assert matrix_rank(np.eye(4)) == 4

    def test_low_rank(self):
        assert matrix_rank(_rank_k_matrix(10, 12, 3)) == 3

    def test_rank_one(self):
        assert matrix_rank(np.outer(np.ones(5), np.arange(1, 4))) == 1


class TestEffectiveRank:
    def test_full_energy(self):
        assert effective_rank(np.eye(3), energy=1.0) == 3

    def test_dominant_direction(self):
        matrix = np.diag([100.0, 0.1, 0.1])
        assert effective_rank(matrix, energy=0.99) == 1

    def test_rejects_bad_energy(self):
        with pytest.raises(ValidationError):
            effective_rank(np.eye(2), energy=0.0)

    def test_zero_matrix(self):
        # all-zero matrix is rejected upstream? No: as_matrix allows zeros.
        assert effective_rank(np.zeros((2, 2))) == 0


class TestEigenvalueRatio:
    def test_identity_is_one(self):
        assert eigenvalue_ratio(np.eye(4)) == pytest.approx(1.0)

    def test_known_ratio(self):
        assert eigenvalue_ratio(np.diag([8.0, 2.0])) == pytest.approx(4.0)

    def test_ignores_zero_eigenvalues(self):
        matrix = np.diag([8.0, 2.0, 0.0])
        assert eigenvalue_ratio(matrix) == pytest.approx(4.0)

    def test_zero_matrix_raises(self):
        with pytest.raises(ValidationError):
            eigenvalue_ratio(np.zeros((3, 3)))


class TestLowRankApproximation:
    def test_exact_when_rank_sufficient(self):
        matrix = _rank_k_matrix(6, 7, 2)
        assert np.allclose(low_rank_approximation(matrix, 2), matrix)

    def test_rank_of_result(self):
        approx = low_rank_approximation(_rank_k_matrix(8, 8, 5), 2)
        assert matrix_rank(approx) == 2

    def test_eckart_young_optimality(self):
        matrix = _rank_k_matrix(6, 6, 5, seed=3)
        approx = low_rank_approximation(matrix, 2)
        sigma = singular_values(matrix)
        expected_error = np.sqrt(np.sum(sigma[2:] ** 2))
        assert np.linalg.norm(matrix - approx) == pytest.approx(expected_error, rel=1e-9)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValidationError):
            low_rank_approximation(np.eye(3), 0)


class TestSvdDecomposition:
    def test_reconstruction(self):
        matrix = _rank_k_matrix(5, 9, 3)
        u, sigma, vt = svd_decomposition(matrix)
        assert np.allclose((u * sigma) @ vt, matrix)

    def test_truncation_shapes(self):
        u, sigma, vt = svd_decomposition(_rank_k_matrix(5, 9, 4), rank=2)
        assert u.shape == (5, 2)
        assert sigma.shape == (2,)
        assert vt.shape == (2, 9)

    def test_orthogonality(self):
        u, _, vt = svd_decomposition(_rank_k_matrix(6, 6, 6, seed=5))
        assert np.allclose(u.T @ u, np.eye(u.shape[1]), atol=1e-10)
        assert np.allclose(vt @ vt.T, np.eye(vt.shape[0]), atol=1e-10)


class TestFrobeniusNorm:
    def test_known_value(self):
        assert frobenius_norm(np.array([[3.0, 4.0]])) == pytest.approx(5.0)

    def test_matches_numpy(self):
        matrix = _rank_k_matrix(4, 5, 3, seed=9)
        assert frobenius_norm(matrix) == pytest.approx(np.linalg.norm(matrix))

    def test_sparse_input(self):
        import scipy.sparse as sp

        matrix = sp.eye(4) * 2.0
        assert frobenius_norm(matrix) == pytest.approx(4.0)
