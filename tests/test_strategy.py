"""Unit tests for generic and SVD strategy mechanisms."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms.registry import make_mechanism
from repro.mechanisms.strategy import StrategyMechanism, SVDStrategyMechanism
from repro.workloads import Workload, wrange, wrelated


class TestStrategyMechanism:
    def _intro_workload(self):
        return Workload(
            [
                [1.0, 1.0, 1.0, 1.0],
                [1.0, 1.0, 0.0, 0.0],
                [0.0, 0.0, 1.0, 1.0],
            ]
        )

    def test_intro_example_strategy(self):
        # Answering via {q2, q3} has sensitivity 1 and total error 8/eps^2.
        workload = self._intro_workload()
        strategy = workload.matrix[1:]
        mech = StrategyMechanism(strategy).fit(workload)
        assert mech.strategy_sensitivity == 1.0
        assert mech.expected_squared_error(1.0) == pytest.approx(8.0)

    def test_identity_strategy_matches_nod(self):
        from repro.mechanisms.baselines import NoiseOnDataMechanism

        wl = wrange(6, 16, seed=0)
        strategy_mech = StrategyMechanism(np.eye(16)).fit(wl)
        nod = NoiseOnDataMechanism().fit(wl)
        assert strategy_mech.expected_squared_error(1.0) == pytest.approx(
            nod.expected_squared_error(1.0)
        )

    def test_unbiased(self):
        workload = self._intro_workload()
        mech = StrategyMechanism(workload.matrix[1:]).fit(workload)
        x = np.array([10.0, 20.0, 30.0, 40.0])
        rng = np.random.default_rng(0)
        mean_answer = np.mean([mech.answer(x, 1.0, rng) for _ in range(4000)], axis=0)
        assert np.allclose(mean_answer, workload.answer(x), atol=2.0)

    def test_rejects_unsupported_workload(self):
        workload = Workload([[0.0, 1.0]])
        with pytest.raises(ValidationError, match="row space"):
            StrategyMechanism(np.array([[1.0, 0.0]])).fit(workload)

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ValidationError, match="columns"):
            StrategyMechanism(np.eye(3)).fit(Workload(np.eye(4)))

    def test_empirical_matches_analytic(self):
        workload = self._intro_workload()
        mech = StrategyMechanism(workload.matrix[1:]).fit(workload)
        empirical = mech.empirical_squared_error(np.ones(4), 1.0, trials=3000, rng=1)
        assert empirical == pytest.approx(8.0, rel=0.1)


class TestSVDStrategyMechanism:
    def test_answers_exactly_in_expectation(self):
        wl = wrelated(6, 20, s=2, seed=0)
        mech = SVDStrategyMechanism().fit(wl)
        x = np.arange(20.0)
        rng = np.random.default_rng(2)
        mean_answer = np.mean([mech.answer(x, 1.0, rng) for _ in range(4000)], axis=0)
        exact = wl.answer(x)
        assert np.allclose(mean_answer, exact, atol=0.05 * np.abs(exact).max() + 2)

    def test_factors_reproduce_workload(self):
        wl = wrelated(6, 20, s=2, seed=0)
        mech = SVDStrategyMechanism().fit(wl)
        b, l = mech.decomposition_factors
        assert np.allclose(b @ l, wl.matrix, atol=1e-8)

    def test_l_feasible(self):
        wl = wrelated(6, 20, s=2, seed=0)
        mech = SVDStrategyMechanism().fit(wl)
        _, l = mech.decomposition_factors
        assert np.abs(l).sum(axis=0).max() == pytest.approx(1.0)

    def test_lrm_beats_svd_baseline(self, fast_lrm_kwargs):
        # The ablation this mechanism exists for: ALM optimisation improves
        # on the raw SVD strategy.
        from repro.core.lrm import LowRankMechanism

        wl = wrelated(16, 128, s=3, seed=1)
        svd_mech = SVDStrategyMechanism().fit(wl)
        lrm = LowRankMechanism(**fast_lrm_kwargs).fit(wl)
        assert lrm.expected_squared_error(1.0) <= svd_mech.expected_squared_error(1.0) * 1.001

    def test_registry_label(self):
        assert isinstance(make_mechanism("SVDM"), SVDStrategyMechanism)
