"""Regenerate the committed pre-typed (format-1) fixture ledgers.

These fixtures pin the on-disk compatibility contract of the typed-cost
migration: ledgers written by the scalar-cost release (meta ``format: 1``,
every journaled cost an ``[epsilon, delta]`` list) must replay
bit-identically under the typed reader. Run from the repo root:

    PYTHONPATH=src python tests/fixtures/make_pretyped_ledgers.py

The spend sequence below is what ``tests/test_cost.py`` replays; if you
change it, update the pinned expected totals there.
"""

import os
import sys

import repro.privacy.ledger as ledger_mod
from repro.privacy.accountant import make_accountant
from repro.privacy.ledger import open_ledger

HERE = os.path.dirname(os.path.abspath(__file__))
OUT = os.path.join(HERE, "ledgers")

#: The deterministic scalar spend sequence, identical for every fixture
#: (pure-DP ledgers use only the delta=0 spends' epsilons).
SPENDS = {
    "pure": [(0.3, 0.0), (0.25, 0.0), (0.2, 0.0), (0.1, 0.0)],
    "basic": [(0.3, 1e-7), (0.25, 0.0), (0.2, 2e-7), (0.1, 0.0)],
    "rdp": [(0.3, 1e-7), (0.25, 0.0), (0.2, 2e-7), (0.1, 0.0)],
}
BUDGETS = {"pure": (4.0, 0.0), "basic": (4.0, 1e-5), "rdp": (4.0, 1e-5)}


def main():
    os.makedirs(OUT, exist_ok=True)
    # Write authentic format-1 streams: the pre-typed release declared
    # format 1 in its meta header and journaled costs as [eps, delta]
    # lists — which scalar spends still encode as, so pinning the version
    # constant is the only difference from today's writer.
    ledger_mod.LEDGER_FORMAT_VERSION = 1
    for model in ("pure", "basic", "rdp"):
        total_epsilon, total_delta = BUDGETS[model]
        for suffix in ("journal", "db"):
            path = os.path.join(OUT, f"pretyped_{model}.{suffix}")
            if os.path.exists(path):
                os.remove(path)
            inner = make_accountant(total_epsilon, total_delta, model=model)
            durable = open_ledger(path, inner)
            spends = SPENDS[model]
            durable.spend(*spends[0])
            durable.spend(*spends[1])
            durable.spend_many(spends[2:])
            print(
                f"{os.path.basename(path):24s} spent_epsilon="
                f"{durable.spent_epsilon!r} spent_delta={durable.spent_delta!r}"
            )
            durable.close()


if __name__ == "__main__":
    sys.exit(main())
