"""Unit tests for the hierarchical tree substrate (HM's strategy)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.linalg.trees import (
    tree_apply,
    tree_apply_transpose,
    tree_consistency,
    tree_matrix,
    tree_num_nodes,
    tree_pseudoinverse_rows,
    tree_sensitivity,
)


class TestBasics:
    def test_num_nodes(self):
        assert tree_num_nodes(1) == 1
        assert tree_num_nodes(8) == 15
        assert tree_num_nodes(1024) == 2047

    def test_sensitivity(self):
        assert tree_sensitivity(1) == 1.0
        assert tree_sensitivity(8) == 4.0
        assert tree_sensitivity(1024) == 11.0

    def test_sensitivity_matches_matrix(self):
        for n in (2, 8, 16):
            dense = tree_matrix(n, sparse=False)
            assert np.abs(dense).sum(axis=0).max() == tree_sensitivity(n)

    def test_rejects_non_power(self):
        with pytest.raises(ValidationError):
            tree_num_nodes(6)


class TestApply:
    @pytest.mark.parametrize("n", [1, 2, 8, 64])
    def test_matches_matrix(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n)
        dense = tree_matrix(n, sparse=False)
        assert np.allclose(tree_apply(x), dense @ x)

    def test_root_is_total(self):
        x = np.arange(16.0)
        assert tree_apply(x)[0] == pytest.approx(x.sum())

    def test_leaves_are_data(self):
        x = np.arange(8.0)
        nodes = tree_apply(x)
        assert np.allclose(nodes[-8:], x)

    @pytest.mark.parametrize("n", [2, 8, 64])
    def test_transpose_matches_matrix(self, n):
        rng = np.random.default_rng(n + 1)
        y = rng.standard_normal(2 * n - 1)
        dense = tree_matrix(n, sparse=False)
        assert np.allclose(tree_apply_transpose(y), dense.T @ y)

    def test_transpose_rejects_bad_length(self):
        with pytest.raises(ValidationError):
            tree_apply_transpose(np.ones(6))

    def test_adjoint_identity(self):
        # <A x, y> == <x, A^T y> for random x, y.
        rng = np.random.default_rng(9)
        n = 32
        x = rng.standard_normal(n)
        y = rng.standard_normal(2 * n - 1)
        assert np.dot(tree_apply(x), y) == pytest.approx(np.dot(x, tree_apply_transpose(y)))


class TestConsistency:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_matches_pseudoinverse(self, n):
        rng = np.random.default_rng(n)
        noisy = rng.standard_normal(2 * n - 1)
        dense = tree_matrix(n, sparse=False)
        expected = np.linalg.pinv(dense) @ noisy
        assert np.allclose(tree_consistency(noisy), expected)

    def test_noise_free_recovers_data(self):
        x = np.arange(16.0)
        assert np.allclose(tree_consistency(tree_apply(x)), x)

    def test_consistency_reduces_leaf_error(self):
        # Averaged over noise draws, the consistent estimate beats raw leaves.
        rng = np.random.default_rng(3)
        n = 32
        x = rng.integers(0, 100, n).astype(float)
        exact = tree_apply(x)
        raw_error = 0.0
        consistent_error = 0.0
        for _ in range(100):
            noisy = exact + rng.laplace(0, 5.0, exact.size)
            raw_error += np.sum((noisy[-n:] - x) ** 2)
            consistent_error += np.sum((tree_consistency(noisy) - x) ** 2)
        assert consistent_error < raw_error

    def test_rejects_bad_length(self):
        with pytest.raises(ValidationError):
            tree_consistency(np.ones(4))

    def test_rejects_bad_branching(self):
        with pytest.raises(ValidationError):
            tree_consistency(np.ones(7), branching=3)


class TestPseudoinverseRows:
    @pytest.mark.parametrize("n", [4, 16])
    def test_matches_dense(self, n):
        rng = np.random.default_rng(n)
        w = rng.standard_normal((3, n))
        dense = tree_matrix(n, sparse=False)
        expected = w @ np.linalg.pinv(dense)
        assert np.allclose(tree_pseudoinverse_rows(w), expected, atol=1e-6)

    def test_norm_matches_dense(self):
        rng = np.random.default_rng(5)
        n = 32
        w = rng.standard_normal((4, n))
        dense = tree_matrix(n, sparse=False)
        expected = np.sum((w @ np.linalg.pinv(dense)) ** 2)
        actual = np.sum(tree_pseudoinverse_rows(w) ** 2)
        assert actual == pytest.approx(expected, rel=1e-6)


class TestTreeMatrix:
    def test_shape(self):
        assert tree_matrix(8).shape == (15, 8)

    def test_binary_entries(self):
        dense = tree_matrix(8, sparse=False)
        assert set(np.unique(dense)) <= {0.0, 1.0}

    def test_every_level_covers_domain(self):
        n = 8
        dense = tree_matrix(n, sparse=False)
        offset = 0
        size = 1
        while size <= n:
            level = dense[offset : offset + size]
            assert np.allclose(level.sum(axis=0), 1.0)
            offset += size
            size *= 2
