"""Unit tests for the histogram front-end and domain mapper."""

import numpy as np
import pytest

pytestmark = pytest.mark.filterwarnings(
    "ignore:PrivateQueryEngine.answer_workload is deprecated:DeprecationWarning"
)

from repro.data.histogram import (
    DomainMapper,
    grid_histogram_from_records,
    histogram_from_records,
)
from repro.exceptions import ValidationError


class TestHistogramFromRecords:
    def test_counts_sum_to_records(self):
        records = np.random.default_rng(0).normal(50, 10, 500)
        counts, _ = histogram_from_records(records, bins=16, value_range=(0, 100))
        assert counts.sum() == 500

    def test_explicit_edges(self):
        counts, edges = histogram_from_records([0.5, 1.5, 1.6], bins=[0.0, 1.0, 2.0])
        assert np.allclose(counts, [1.0, 2.0])
        assert np.allclose(edges, [0.0, 1.0, 2.0])

    def test_out_of_range_clipped(self):
        counts, _ = histogram_from_records([-5.0, 50.0], bins=2, value_range=(0, 10))
        assert counts.sum() == 2
        assert counts[0] == 1.0 and counts[1] == 1.0

    def test_rejects_bad_edges(self):
        with pytest.raises(ValidationError):
            histogram_from_records([1.0], bins=[0.0, 0.0, 1.0])

    def test_rejects_degenerate_range(self):
        with pytest.raises(ValidationError):
            histogram_from_records([1.0, 1.0], bins=4)


class TestGridHistogram:
    def test_shape_and_total(self):
        rng = np.random.default_rng(1)
        x, y = rng.normal(0, 1, 300), rng.normal(0, 1, 300)
        counts, ex, ey = grid_histogram_from_records(x, y, 4, 6, range_x=(-3, 3), range_y=(-3, 3))
        assert counts.size == 24
        assert counts.sum() == 300
        assert ex.size == 5 and ey.size == 7

    def test_row_major_layout_matches_marginals(self):
        # One record at grid cell (row 1, col 2) of a 3x4 grid.
        counts, _, _ = grid_histogram_from_records(
            [1.5], [2.5], 3, 4, range_x=(0, 3), range_y=(0, 4)
        )
        grid = counts.reshape(3, 4)
        assert grid[1, 2] == 1.0
        from repro.workloads import marginals_workload

        answers = marginals_workload(3, 4).answer(counts)
        assert answers[1] == 1.0  # row-1 marginal
        assert answers[3 + 2] == 1.0  # col-2 marginal

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            grid_histogram_from_records([1.0, 2.0], [1.0], 2, 2, range_x=(0, 3), range_y=(0, 3))


class TestDomainMapper:
    def _mapper(self):
        return DomainMapper(np.linspace(0.0, 100.0, 11))  # 10 bins of width 10

    def test_domain_size(self):
        assert self._mapper().domain_size == 10

    def test_bin_of(self):
        mapper = self._mapper()
        assert mapper.bin_of(5.0) == 0
        assert mapper.bin_of(95.0) == 9
        assert mapper.bin_of(10.0) == 1  # right-open bins

    def test_bin_of_clips(self):
        mapper = self._mapper()
        assert mapper.bin_of(-50.0) == 0
        assert mapper.bin_of(500.0) == 9

    def test_range_row(self):
        row = self._mapper().range_row(25.0, 44.0)
        assert np.allclose(np.flatnonzero(row), [2, 3, 4])

    def test_range_row_rejects_inverted(self):
        with pytest.raises(ValidationError):
            self._mapper().range_row(50.0, 10.0)

    def test_range_workload(self):
        workload = self._mapper().range_workload([(0, 49), (50, 100)])
        assert workload.shape == (2, 10)
        # The two ranges partition the domain.
        assert np.allclose(workload.matrix.sum(axis=0), 1.0)

    def test_range_workload_needs_intervals(self):
        with pytest.raises(ValidationError):
            self._mapper().range_workload([])

    def test_end_to_end_private_range_count(self):
        # Records -> histogram -> value-space query -> DP release.
        from repro.engine import PrivateQueryEngine

        rng = np.random.default_rng(2)
        ages = rng.integers(0, 100, 2000).astype(float)
        counts, edges = histogram_from_records(ages, bins=20, value_range=(0, 100))
        mapper = DomainMapper(edges)
        workload = mapper.range_workload([(18, 64), (65, 100)])
        engine = PrivateQueryEngine(counts, total_budget=1.0, seed=3)
        release = engine.answer_workload(workload, epsilon=0.5, mechanism="LM")
        exact = workload.answer(counts)
        # eps = 0.5 on thousands of records: answers within a loose band.
        assert np.all(np.abs(release.answers - exact) < 200)

    def test_rejects_bad_edges(self):
        with pytest.raises(ValidationError):
            DomainMapper([3.0, 2.0, 1.0])


class TestWorkloadAlgebra:
    def test_scaled(self):
        from repro.workloads import Workload

        w = Workload(np.eye(3)).scaled(2.0)
        assert np.allclose(w.matrix, 2 * np.eye(3))

    def test_scaled_rejects_zero(self):
        from repro.workloads import Workload

        with pytest.raises(ValidationError):
            Workload(np.eye(2)).scaled(0.0)

    def test_kron_shape(self):
        from repro.workloads import Workload

        a = Workload(np.ones((2, 3)))
        b = Workload(np.eye(4))
        assert a.kron(b).shape == (8, 12)

    def test_kron_answers_product_queries(self):
        from repro.workloads import Workload, total_workload

        # total (x) identity over a 2x3 grid = column sums of the grid.
        grid = np.arange(6.0)  # [[0,1,2],[3,4,5]]
        w = total_workload(2).kron(Workload(np.eye(3)))
        assert np.allclose(w.answer(grid), [3.0, 5.0, 7.0])

    def test_kron_rank_multiplies(self):
        from repro.workloads import wrelated

        a = wrelated(6, 8, s=2, seed=0)
        b = wrelated(5, 7, s=2, seed=1)
        assert a.kron(b).rank == 4

    def test_kron_type_check(self):
        from repro.workloads import Workload

        with pytest.raises(ValidationError):
            Workload(np.eye(2)).kron(np.eye(2))
