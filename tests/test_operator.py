"""Dense-vs-operator equivalence tests for the implicit workload layer.

Every structured generator family is checked against its materialised twin
on the full protocol surface (matvec, rmatvec, matmat, rmatmat, gram,
column sums, Frobenius norm), on the Workload facade (answer, sensitivity,
spectral properties, digests), and through the matvec-driven fit path
(objectives within tolerance of the dense fit).
"""

import numpy as np
import pytest

from repro.core.alm import decompose_workload_operator
from repro.core.lrm import LowRankMechanism
from repro.exceptions import DecompositionError, ValidationError
from repro.linalg.operator import (
    DenseOperator,
    IntervalOperator,
    KronOperator,
    MarginalOperator,
    ScaledOperator,
    SparseOperator,
    as_operator,
    operator_from_spec,
    operator_spec,
)
from repro.linalg.randomized import power_iteration_lmax, randomized_svd
from repro.privacy.sensitivity import column_l1_norms, l1_sensitivity, l2_sensitivity
from repro.workloads import (
    Workload,
    allrange_workload,
    identity_workload,
    marginals_workload,
    prefix_workload,
    sliding_window_workload,
    total_workload,
    wrange,
)

#: (name, implicit-workload factory) for every structured generator family.
FAMILIES = [
    ("prefix", lambda: prefix_workload(24)),
    ("allrange", lambda: allrange_workload(9)),
    ("sliding_window", lambda: sliding_window_workload(20, 5)),
    ("wrange", lambda: wrange(11, 30, seed=3)),
    ("marginals", lambda: marginals_workload(4, 6)),
    ("total", lambda: total_workload(13)),
    ("identity", lambda: identity_workload(10)),
    ("kron", lambda: wrange(4, 6, seed=1).kron(marginals_workload(2, 3))),
    ("scaled", lambda: prefix_workload(15).scaled(-2.5)),
]


def _family(request):
    return request.param[1]()


@pytest.fixture(params=FAMILIES, ids=[name for name, _ in FAMILIES])
def implicit(request):
    return _family(request)


class TestOperatorActionEquivalence:
    def test_is_implicit_with_dense_twin(self, implicit):
        assert implicit.is_implicit
        assert not implicit.dense().is_implicit

    def test_matvec_rmatvec_match_dense(self, implicit):
        rng = np.random.default_rng(0)
        operator = implicit.operator
        dense = implicit.dense().matrix
        x = rng.standard_normal(operator.shape[1])
        u = rng.standard_normal(operator.shape[0])
        assert np.allclose(operator.matvec(x), dense @ x, atol=1e-10)
        assert np.allclose(operator.rmatvec(u), dense.T @ u, atol=1e-10)

    def test_matmat_rmatmat_match_dense(self, implicit):
        rng = np.random.default_rng(1)
        operator = implicit.operator
        dense = implicit.dense().matrix
        x = rng.standard_normal((operator.shape[1], 3))
        u = rng.standard_normal((operator.shape[0], 4))
        assert np.allclose(operator.matmat(x), dense @ x, atol=1e-10)
        assert np.allclose(operator.rmatmat(u), dense.T @ u, atol=1e-10)

    def test_gram_action_matches_dense(self, implicit):
        rng = np.random.default_rng(2)
        operator = implicit.operator
        dense = implicit.dense().matrix
        u = rng.standard_normal(operator.shape[0])
        assert np.allclose(operator.gram(u), dense @ (dense.T @ u), atol=1e-10)

    def test_column_sums_match_dense(self, implicit):
        operator = implicit.operator
        dense = implicit.dense().matrix
        assert np.allclose(operator.column_abs_sums(), np.abs(dense).sum(axis=0))
        assert np.allclose(operator.column_sq_sums(), (dense**2).sum(axis=0))

    def test_frobenius_matches_dense(self, implicit):
        assert implicit.frobenius_squared == pytest.approx(
            float(np.sum(implicit.dense().matrix ** 2))
        )

    def test_to_dense_matches_matrix(self, implicit):
        assert np.array_equal(implicit.operator.to_dense(), implicit.matrix)


class TestWorkloadFacadeEquivalence:
    def test_answer_matches_dense(self, implicit):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(implicit.domain_size)
        assert np.allclose(implicit.answer(x), implicit.dense().answer(x), atol=1e-10)

    def test_sensitivity_matches_dense(self, implicit):
        assert implicit.sensitivity == pytest.approx(implicit.dense().sensitivity)

    def test_l2_sensitivity_matches_dense(self, implicit):
        assert l2_sensitivity(implicit.operator) == pytest.approx(
            l2_sensitivity(implicit.dense().matrix)
        )

    def test_singular_values_match_dense(self, implicit):
        # .singular_values on the implicit workload materialises through
        # the guarded escape hatch; it must agree with the dense twin.
        assert np.allclose(
            implicit.singular_values, implicit.dense().singular_values, atol=1e-9
        )

    def test_content_digest_is_stable_per_construction(self, request):
        for name, make in FAMILIES:
            first, second = make(), make()
            assert first.content_digest == second.content_digest, name
            # Memoized and well-formed.
            assert first.content_digest is first.content_digest
            assert len(first.content_digest) == 40
            int(first.content_digest, 16)

    def test_content_digests_distinguish_families_and_params(self):
        digests = {make().content_digest for _, make in FAMILIES}
        assert len(digests) == len(FAMILIES)
        assert prefix_workload(24).content_digest != prefix_workload(25).content_digest
        assert (
            sliding_window_workload(20, 5).content_digest
            != sliding_window_workload(20, 6).content_digest
        )

    def test_equality_follows_digest(self):
        assert wrange(6, 20, seed=5) == wrange(6, 20, seed=5)
        assert wrange(6, 20, seed=5) != wrange(6, 20, seed=6)
        assert hash(wrange(6, 20, seed=5)) == hash(wrange(6, 20, seed=5))
        # Representation is part of identity: an implicit workload and its
        # dense twin have different digests (documented).
        implicit = prefix_workload(8)
        assert implicit != implicit.dense()

    def test_matrix_guard_refuses_huge_materialisation(self, monkeypatch):
        workload = prefix_workload(64)
        monkeypatch.setattr(Workload, "MAX_DENSE_ENTRIES", 100)
        with pytest.raises(ValidationError, match="MAX_DENSE_ENTRIES"):
            workload.matrix
        with pytest.raises(ValidationError, match="max_entries"):
            workload.dense()
        # The explicit override still works.
        assert workload.dense(max_entries=64 * 64).matrix.shape == (64, 64)

    def test_materialised_matrix_is_read_only(self):
        matrix = prefix_workload(6).matrix
        with pytest.raises(ValueError):
            matrix[0, 0] = 9.0

    def test_row_extraction_never_materialises(self, monkeypatch):
        monkeypatch.setattr(Workload, "MAX_DENSE_ENTRIES", 100)
        workload = sliding_window_workload(64, 8)
        row = workload.row(3)
        expected = np.zeros(64)
        expected[3:11] = 1.0
        assert np.array_equal(row, expected)

    def test_scaled_stays_implicit(self):
        scaled = prefix_workload(12).scaled(3.0)
        assert scaled.is_implicit
        assert np.allclose(scaled.matrix, 3.0 * prefix_workload(12).matrix)

    def test_kron_is_lazy_and_matches_np_kron(self):
        left = wrange(3, 5, seed=0)
        right = prefix_workload(4)
        product = left.kron(right)
        assert product.is_implicit
        assert np.allclose(product.matrix, np.kron(left.matrix, right.matrix))
        x = np.arange(float(product.domain_size))
        assert np.allclose(
            product.answer(x), np.kron(left.matrix, right.matrix) @ x, atol=1e-9
        )


class TestOperatorConstruction:
    def test_interval_validation(self):
        with pytest.raises(ValidationError):
            IntervalOperator([0], [5], 4)  # hi out of range
        with pytest.raises(ValidationError):
            IntervalOperator([3], [1], 8)  # lo > hi
        with pytest.raises(ValidationError):
            IntervalOperator([], [], 4)

    def test_scaled_rejects_zero_factor(self):
        with pytest.raises(ValidationError):
            ScaledOperator(MarginalOperator(2, 2), 0.0)

    def test_as_operator_coercions(self):
        import scipy.sparse as sp

        assert isinstance(as_operator(np.eye(3)), DenseOperator)
        assert isinstance(as_operator(sp.identity(3, format="csr")), SparseOperator)
        interval = IntervalOperator([0], [1], 3)
        assert as_operator(interval) is interval

    def test_sparse_operator_matches_dense(self):
        import scipy.sparse as sp

        rng = np.random.default_rng(4)
        dense = np.where(rng.random((7, 9)) < 0.3, rng.standard_normal((7, 9)), 0.0)
        operator = SparseOperator(sp.csr_matrix(dense))
        x = rng.standard_normal(9)
        assert np.allclose(operator.matvec(x), dense @ x)
        assert np.allclose(operator.column_abs_sums(), np.abs(dense).sum(axis=0))
        assert operator.frobenius_squared() == pytest.approx(float(np.sum(dense**2)))

    def test_operator_spec_roundtrip(self, implicit):
        arrays = {}
        spec = operator_spec(implicit.operator, arrays)
        rebuilt = operator_from_spec(spec, arrays)
        assert rebuilt.shape == implicit.shape
        assert rebuilt.content_digest() == implicit.operator.content_digest()
        x = np.arange(float(implicit.domain_size))
        assert np.allclose(rebuilt.matvec(x), implicit.answer(x), atol=1e-10)


class TestMatvecSpectralKernels:
    def test_randomized_svd_operator_matches_dense_spectrum(self):
        workload = marginals_workload(8, 12)  # rank 19, fast-decaying
        u, sigma, vt = randomized_svd(workload.operator, 19, rng=0)
        dense_sigma = np.linalg.svd(workload.dense().matrix, compute_uv=False)
        assert np.allclose(sigma, dense_sigma[:19], atol=1e-8)
        # The factorisation reconstructs the workload.
        assert np.allclose(
            (u * sigma) @ vt, workload.dense().matrix, atol=1e-8
        )

    def test_randomized_svd_operator_large_sketch_path(self):
        # Force the sketch branch (not the dense fallback) and check the
        # leading singular values still come out right.
        workload = prefix_workload(256)
        _, sigma, _ = randomized_svd(workload.operator, 8, n_iter=6, rng=1, min_dim=16)
        dense_sigma = np.linalg.svd(workload.dense().matrix, compute_uv=False)
        assert np.allclose(sigma, dense_sigma[:8], rtol=1e-3)

    def test_power_iteration_on_operator_gives_sigma_max_squared(self):
        workload = prefix_workload(64)
        lmax, vector = power_iteration_lmax(workload.operator, tol=1e-12)
        top = np.linalg.svd(workload.dense().matrix, compute_uv=False)[0]
        assert lmax == pytest.approx(top**2, rel=1e-6)
        assert vector.shape == (64,)

    def test_power_iteration_on_callable(self):
        gram = np.diag([4.0, 1.0, 0.5])
        lmax, _ = power_iteration_lmax(lambda v: gram @ v, dim=3, tol=1e-12)
        assert lmax == pytest.approx(4.0)
        with pytest.raises(ValidationError, match="dim"):
            power_iteration_lmax(lambda v: v)

    def test_implicit_svd_is_memoized(self):
        workload = prefix_workload(32)
        first = workload.implicit_svd(8, seed=0)
        second = workload.implicit_svd(8, seed=0)
        assert first[0] is second[0]
        different = workload.implicit_svd(9, seed=0)
        assert different[1].size == 9

    def test_column_l1_norms_accepts_operator(self):
        workload = sliding_window_workload(12, 4)
        assert np.allclose(
            column_l1_norms(workload.operator),
            np.abs(workload.dense().matrix).sum(axis=0),
        )
        assert l1_sensitivity(workload.operator) == workload.sensitivity


#: Families where the two representations solve the *same* spectral
#: problem, so the fitted objectives are directly comparable: rank=None at
#: small n (both paths see the full exact spectrum), or an explicit rank at
#: n > RANDOMIZED_SVD_MIN_DIM (both paths run the same seeded sketch and
#: truncate identically). In between — explicit rank at small n — the dense
#: solver optimises against the full spectrum while the operator path works
#: on the rank-truncated compression, and objectives legitimately diverge.
FIT_FAMILIES = [
    ("marginals", lambda: marginals_workload(6, 8), None),
    ("prefix", lambda: prefix_workload(48), None),
    ("sliding_window", lambda: sliding_window_workload(40, 8), None),
    ("kron", lambda: total_workload(6).kron(prefix_workload(8)), None),
]

FAST_FIT = dict(max_outer=25, max_inner=3, nesterov_iters=25, stall_iters=8)


class TestMatvecDrivenFit:
    @pytest.mark.parametrize(
        "name, make, rank", FIT_FAMILIES, ids=[f[0] for f in FIT_FAMILIES]
    )
    def test_fit_objective_matches_dense_within_tolerance(self, name, make, rank):
        implicit = make()
        dense = implicit.dense()
        op_mech = LowRankMechanism(rank=rank, **FAST_FIT).fit(implicit)
        dense_mech = LowRankMechanism(rank=rank, **FAST_FIT).fit(dense)
        op_objective = op_mech.decomposition.objective
        dense_objective = dense_mech.decomposition.objective
        assert op_objective == pytest.approx(dense_objective, rel=0.25), name
        # Noise accounting flows from the decomposition identically.
        assert op_mech.expected_squared_error(1.0) == pytest.approx(
            dense_mech.expected_squared_error(1.0), rel=0.6
        )

    def test_truncated_fit_never_worse_than_dense(self):
        # Explicit rank far below rank(W): the compressed program excludes
        # the spectral tail the dense solver keeps fighting, so the
        # operator fit's objective must be at least as good (it is usually
        # strictly better — the dense refine phase inflates B covering the
        # tail).
        implicit = prefix_workload(256)
        dense = implicit.dense()
        op_mech = LowRankMechanism(rank=16, **FAST_FIT).fit(implicit)
        dense_mech = LowRankMechanism(rank=16, **FAST_FIT).fit(dense)
        assert (
            op_mech.decomposition.objective
            <= dense_mech.decomposition.objective * 1.05
        )

    def test_operator_fit_release_is_unbiased(self):
        workload = marginals_workload(5, 7)
        mechanism = LowRankMechanism(**FAST_FIT).fit(workload)
        x = np.arange(float(workload.domain_size))
        exact = workload.answer(x)
        rng = np.random.default_rng(0)
        mean = np.mean(
            [mechanism.answer(x, 1.0, rng) for _ in range(2000)], axis=0
        )
        assert np.allclose(mean, exact, atol=0.05 * np.abs(exact).max() + 3.0)

    def test_structural_error_term_runs_implicit(self):
        workload = prefix_workload(32)
        mechanism = LowRankMechanism(rank=8, **FAST_FIT).fit(workload)
        x = np.ones(32)
        with_structural = mechanism.expected_squared_error(0.5, x=x)
        noise_only = mechanism.expected_squared_error(0.5)
        assert with_structural >= noise_only

    def test_rank_discovery_falls_back_dense_at_moderate_size(self):
        # min(m, n) above the sketch cap but m*n cheap to materialise:
        # rank=None must take the dense fallback, not refuse — default LRM
        # fits of moderate full-rank implicit workloads (the flagship
        # WRange family) keep working.
        operator = prefix_workload(256).operator
        dec = decompose_workload_operator(operator, rank=None, **FAST_FIT)
        assert dec.rank >= 256  # full-rank discovery ran
        workload = wrange(400, 300, seed=0)
        mech = LowRankMechanism(**FAST_FIT).fit(workload)
        assert mech.decomposition.b.shape[0] == 400

    def test_rank_discovery_raises_when_sketch_saturates_at_scale(self, monkeypatch):
        # Past the dense-fallback budget a capped sketch cannot certify a
        # full spectrum; the error must ask for an explicit rank.
        import repro.linalg.randomized as randomized

        monkeypatch.setattr(randomized, "RANK_DISCOVERY_DENSE_ENTRIES", 1000)
        operator = prefix_workload(256).operator
        with pytest.raises(DecompositionError, match="explicit rank"):
            decompose_workload_operator(operator, rank=None)

    def test_rank_discovery_routing_predicate(self):
        # The shared routing rule: dense fallback covers everything the
        # .matrix guard could materialise (up to 50M entries), so the
        # explicit-rank demand is reserved for genuinely large domains.
        from repro.linalg.randomized import rank_discovery_needs_dense

        assert rank_discovery_needs_dense((4096, 4096), None)  # 16.7M entries
        assert rank_discovery_needs_dense((7000, 7000), None)  # 49M entries
        assert not rank_discovery_needs_dense((65536, 65536), None)  # too big
        assert not rank_discovery_needs_dense((100, 100), None)  # sketch exact
        assert not rank_discovery_needs_dense((4096, 4096), 32)  # explicit rank

    def test_sketch_perf_zero_with_precomputed_svd(self):
        workload = prefix_workload(512)
        dec = decompose_workload_operator(
            workload.operator, rank=8, svd=workload.implicit_svd(8, seed=0),
            max_outer=5, max_inner=2, nesterov_iters=8, stall_iters=3,
        )
        assert dec.perf["sketch"] == {"seconds": 0.0, "flops": 0.0}

    def test_operator_defining_arrays_are_isolated_and_frozen(self):
        # Caller-side mutation must not reach the operator (digests are the
        # plan-cache anchors), and the operator's own arrays are read-only.
        lows = np.array([0, 1], dtype=np.int64)
        highs = np.array([1, 3], dtype=np.int64)
        operator = IntervalOperator(lows, highs, 4)
        digest = operator.content_digest()
        before = operator.matvec(np.arange(4.0))
        lows[0] = 3
        highs[0] = 3
        assert operator.content_digest() == digest
        assert np.array_equal(operator.matvec(np.arange(4.0)), before)
        with pytest.raises(ValueError):
            operator.lows[0] = 2

    def test_gaussian_variant_fits_implicit(self):
        from repro.core.lrm import GaussianLowRankMechanism

        workload = marginals_workload(4, 5)
        mechanism = GaussianLowRankMechanism(delta=1e-6, **FAST_FIT).fit(workload)
        assert mechanism.decomposition.norm == "l2"
        release = mechanism.answer(np.ones(20), 0.5, rng=1)
        assert release.shape == (9,)


class TestImplicitRelease:
    def test_lm_release_operator_stays_implicit(self):
        workload = prefix_workload(40)
        from repro.mechanisms.baselines import NoiseOnDataMechanism
        from repro.linalg.operator import WorkloadOperator

        mechanism = NoiseOnDataMechanism().fit(workload)
        operator = mechanism.release_operator()
        assert isinstance(operator.recombination, WorkloadOperator)
        x = np.arange(40.0)
        rows = mechanism.answer_many(x, [0.5, 1.0], rng=2)
        assert rows.shape == (2, 40)
        # Manual replication: one (k, n) draw, recombined by the operator.
        from repro.privacy.noise import laplace_noise_batch

        rng = np.random.default_rng(2)
        noise = laplace_noise_batch(40, 1.0, [0.5, 1.0], rng)
        expected = workload.operator.matmat((x[None, :] + noise).T).T
        assert np.allclose(rows, expected, atol=1e-10)

    def test_nor_release_matches_dense_distribution(self):
        workload = sliding_window_workload(16, 4)
        from repro.mechanisms.baselines import NoiseOnResultsMechanism

        mechanism = NoiseOnResultsMechanism().fit(workload)
        release = mechanism.answer(np.arange(16.0), 1.0, rng=0)
        dense_mechanism = NoiseOnResultsMechanism().fit(workload.dense())
        dense_release = dense_mechanism.answer(np.arange(16.0), 1.0, rng=0)
        # Identical strategy answers and sensitivity => identical seeded draw.
        assert np.allclose(release, dense_release, atol=1e-10)

    def test_engine_plans_and_executes_implicit_workload(self):
        from repro.engine import PrivateQueryEngine

        workload = marginals_workload(4, 8)
        engine = PrivateQueryEngine(
            np.arange(32.0), total_budget=10.0, seed=0,
            mechanism_kwargs={"LRM": dict(FAST_FIT)},
        )
        plan = engine.plan(workload)
        release = engine.execute(plan, 0.5)
        assert release.answers.shape == (12,)
        assert plan.workload_key.startswith("12x32:")

    def test_postprocess_clamp_never_materialises(self, monkeypatch):
        # non_negative/integral post-processing must not force an implicit
        # workload dense — only the consistency projection reads W.
        from repro.engine import PrivateQueryEngine

        workload = prefix_workload(64)
        engine = PrivateQueryEngine(np.arange(64.0), total_budget=10.0, seed=0)
        plan = engine.plan(workload, mechanism="LM")
        monkeypatch.setattr(Workload, "MAX_DENSE_ENTRIES", 100)
        release = engine.execute(plan, 0.5, non_negative=True, integral=True)
        assert np.all(release.answers >= 0.0)
        assert np.array_equal(release.answers, np.round(release.answers))
        # The consistency projection legitimately needs W and hits the guard.
        with pytest.raises(ValidationError, match="MAX_DENSE_ENTRIES"):
            engine.execute(plan, 0.5, consistent=True)

    def test_kron_matmat_batched_matches_dense(self):
        left = wrange(3, 5, seed=2)
        right = marginals_workload(2, 4)
        operator = KronOperator(left.operator, right.operator)
        dense = np.kron(left.matrix, right.matrix)
        rng = np.random.default_rng(5)
        x = rng.standard_normal((dense.shape[1], 7))
        u = rng.standard_normal((dense.shape[0], 6))
        assert np.allclose(operator.matmat(x), dense @ x, atol=1e-10)
        assert np.allclose(operator.rmatmat(u), dense.T @ u, atol=1e-10)

    def test_kron_mechanism_as_workload_is_lazy(self):
        from repro.core.kron import KronLowRankMechanism

        fast = {"max_outer": 15, "max_inner": 3, "nesterov_iters": 15, "stall_iters": 5}
        mech = KronLowRankMechanism(**fast).fit(
            wrange(4, 6, seed=0), prefix_workload(5)
        )
        product = mech.as_workload()
        assert product.is_implicit
        x = np.arange(30.0)
        assert np.allclose(product.answer(x), mech.exact_answer(x), atol=1e-9)
